//! TACOMA-rs: a reproduction of *Operating System Support for Mobile Agents*
//! (Johansen, van Renesse, Schneider — HotOS-V, 1995).
//!
//! This facade crate re-exports the whole workspace under one roof so that
//! applications (and the examples in `examples/`) can depend on a single
//! crate:
//!
//! * [`core`] — folders, briefcases, file cabinets, agents, `meet`, places and
//!   the [`core::TacomaSystem`] driver on a simulated network;
//! * [`net`] — the deterministic discrete-event network simulator and the
//!   open-arrival workload generator;
//! * [`script`] — TacoScript, the Tcl-like language mobile agents are written in;
//! * [`agents`] — the system agents (`ag_tac`, `rexec`, `courier`, `diffusion`);
//! * [`cash`] — electronic cash, the validation agent and the audit protocol;
//! * [`sched`] — broker-based scheduling and protected agents;
//! * [`ft`] — rear-guard fault tolerance;
//! * [`apps`] — the StormCast and AgentMail applications;
//! * [`util`] — deterministic RNG, ids and statistics helpers.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-claim-vs-measured record.
//!
//! # Example
//!
//! ```
//! use tacoma::prelude::*;
//!
//! // Two sites, the default system agents everywhere.
//! let mut sys = TacomaSystem::builder()
//!     .topology(Topology::full_mesh(2, LinkSpec::default()))
//!     .seed(7)
//!     .with_agents(tacoma::agents::standard_agents)
//!     .build();
//!
//! // A script agent that migrates to site 1 and leaves a note there.
//! let code = r#"
//!     if {[my_site] == 0} { move_to 1 } else { cab_append notes LOG "hello" }
//! "#;
//! sys.inject_meet(
//!     SiteId(0),
//!     AgentName::new("ag_tac"),
//!     tacoma::agents::script_briefcase(code, &[]),
//! );
//! sys.run_until_quiescent(1_000);
//! assert!(sys.place(SiteId(1)).cabinets().contains("notes"));
//! ```

#![warn(missing_docs)]

pub use tacoma_agents as agents;
pub use tacoma_apps as apps;
pub use tacoma_cash as cash;
pub use tacoma_core as core;
pub use tacoma_ft as ft;
pub use tacoma_net as net;
pub use tacoma_sched as sched;
pub use tacoma_script as script;
pub use tacoma_util as util;

/// The most commonly used items, re-exported for `use tacoma::prelude::*`.
pub mod prelude {
    pub use tacoma_core::prelude::*;
    pub use tacoma_core::{Briefcase, FileCabinet, Folder, TacomaSystem};
    pub use tacoma_net::{Duration, LinkSpec, SimTime, Topology, TransportKind};
    pub use tacoma_util::{AgentName, DetRng, SiteId};
}
