//! Marketplace: electronic cash, double-spend prevention, and audited exchanges.
//!
//! Run with `cargo run --example marketplace`.
//!
//! A customer wallet is funded by the mint; we then (1) pay the mint-validated
//! way and watch a replayed bill bounce, and (2) run a batch of
//! funds-for-service exchanges with some cheating customers and providers and
//! let the audit court assign blame — the paper's §3 in action.

use tacoma::cash::{AuditCourt, ExchangeConfig, ExchangeProtocol, Mint, PartyBehavior, Verdict};
use tacoma::util::DetRng;

fn main() {
    let mut mint = Mint::new(42);
    let mut wallet = mint.issue_wallet(20, 10);
    println!(
        "customer funded with {} ECUs worth {}",
        wallet.len(),
        wallet.total()
    );

    // Double-spend demonstration.
    let bills = wallet.withdraw_at_least(30).expect("sufficient funds");
    let copies = bills.clone();
    let fresh = mint
        .validate_and_reissue(&bills)
        .expect("first spend is valid");
    println!("first spend validated: {} fresh bills issued", fresh.len());
    match mint.validate_and_reissue(&copies) {
        Err(e) => println!("replayed copies foiled by the validation agent: {e}"),
        Ok(_) => unreachable!("the mint must reject retired serials"),
    }

    // Audited exchanges with a mix of honest and cheating parties.
    let mut rng = DetRng::new(7);
    let mut court = AuditCourt::new();
    let mut provider_earned = 0u64;
    println!();
    println!(
        "{:<6} {:<10} {:<10} {:<20}",
        "id", "customer", "provider", "verdict"
    );
    for id in 0..10u64 {
        let customer = if rng.chance(0.2) {
            PartyBehavior::Cheats
        } else {
            PartyBehavior::Honest
        };
        let provider = if rng.chance(0.2) {
            PartyBehavior::Cheats
        } else {
            PartyBehavior::Honest
        };
        let config = ExchangeConfig {
            exchange_id: id,
            price: 10,
            customer_key: 0xC0 + id,
            provider_key: 0xF0 + id,
            customer,
            provider,
        };
        let outcome = ExchangeProtocol::run(&mut mint, config, &mut wallet);
        provider_earned += outcome.provider_income;
        let verdict = court.audit_outcome(
            &outcome,
            config.customer_key,
            config.provider_key,
            customer == PartyBehavior::Honest,
            provider == PartyBehavior::Honest,
        );
        println!(
            "{:<6} {:<10} {:<10} {:<20}",
            id,
            format!("{customer:?}"),
            format!("{provider:?}"),
            format!("{verdict:?}")
        );
        let _ = verdict == Verdict::NoViolation;
    }
    let stats = court.stats();
    println!();
    println!(
        "audits: {}, correct verdicts: {}, missed cheaters: {}, false accusations: {}",
        stats.audits, stats.correct, stats.missed, stats.false_accusations
    );
    println!(
        "customer wallet now holds {}, providers earned {}",
        wallet.total(),
        provider_earned
    );
    assert_eq!(
        stats.false_accusations, 0,
        "honest parties are never blamed"
    );
}
