//! Quickstart: a mobile agent that tours the network and reports back.
//!
//! Run with `cargo run --example quickstart`.
//!
//! The example builds a five-site simulated network with the standard TACOMA
//! system agents, then launches a TacoScript agent from site 0 that visits
//! every other site using the paper's migration idiom (set `HOST`/`CONTACT`,
//! meet `rexec`), leaves a guest-book entry at each, and couriers a summary
//! folder home.

use tacoma::agents::{script_briefcase, standard_agents};
use tacoma::prelude::*;

fn main() {
    let mut sys = TacomaSystem::builder()
        .topology(Topology::full_mesh(5, LinkSpec::default()))
        .seed(2026)
        .with_agents(standard_agents)
        .build();

    // The touring agent lives in its own .taco file so `taco-vet` (and the CI
    // lint job) can check it without compiling this example.
    let code = include_str!("scripts/quickstart_tour.taco");

    let mut bc = script_briefcase(code, &[]);
    bc.put_string("ORIGCODE", code);
    for site in ["1", "2", "3", "4"] {
        bc.folder_mut("ITINERARY").enqueue(site.as_bytes().to_vec());
    }
    sys.inject_meet(SiteId(0), AgentName::new("ag_tac"), bc);

    let events = sys.run_until_quiescent(100_000);
    println!("simulation processed {events} events in {}", sys.now());
    println!("network moved {}", sys.net_metrics().total_bytes());
    println!();

    for s in 0..sys.site_count() {
        let visitors = sys
            .place(SiteId(s))
            .cabinets()
            .get("guestbook")
            .and_then(|c| c.folder_ref("VISITORS").map(|f| f.strings()))
            .unwrap_or_default();
        println!(
            "site {s}: guest book has {} entr(y/ies): {:?}",
            visitors.len(),
            visitors
        );
    }

    let stats = sys.stats();
    println!();
    println!(
        "meets completed: {}, migrations: {}, failures: {}",
        stats.meets_completed, stats.remote_meets, stats.meets_failed
    );
    assert_eq!(stats.meets_failed, 0, "the tour should complete cleanly");
}
