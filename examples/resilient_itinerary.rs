//! Resilient itinerary: rear guards carrying a computation past site failures.
//!
//! Run with `cargo run --example resilient_itinerary`.
//!
//! Two identical fleets of itinerary-following agents run over the same
//! failure schedule; one fleet leaves rear guards behind (§5 of the paper),
//! the other does not.  The example prints completion rates and the guards'
//! overhead.

use tacoma::ft::{run_itinerary_experiment, FtConfig};

fn main() {
    let base = FtConfig {
        sites: 10,
        itinerary_len: 7,
        travellers: 30,
        crash_prob: 0.4,
        crash_window_ms: 15,
        downtime_ms: (500, 3_000),
        seed: 31,
        ..Default::default()
    };

    println!("30 travellers, 7-site itineraries, ~40% of sites suffer an outage mid-journey");
    println!();
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>14}",
        "configuration", "completed", "rate", "dup. visits", "bytes moved"
    );
    let mut rates = Vec::new();
    for guarded in [false, true] {
        let result = run_itinerary_experiment(&FtConfig {
            guarded,
            ..base.clone()
        });
        println!(
            "{:<16} {:>12} {:>11.0}% {:>12} {:>14}",
            if guarded { "rear guards" } else { "unguarded" },
            result.completed,
            result.completion_rate * 100.0,
            result.duplicate_visits,
            result.network_bytes
        );
        rates.push(result.completion_rate);
    }
    println!();
    println!(
        "rear guards lifted completion from {:.0}% to {:.0}%",
        rates[0] * 100.0,
        rates[1] * 100.0
    );
    assert!(rates[1] >= rates[0]);
}
