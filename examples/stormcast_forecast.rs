//! StormCast: the paper's storm-prediction application, agent vs client-server.
//!
//! Run with `cargo run --example stormcast_forecast`.
//!
//! Synthetic Arctic weather sensors accumulate readings at their own sites; a
//! mobile collector agent filters them where they live and carries only a
//! per-site summary to the expert system, while the client-server variant
//! ships every raw reading.  The example prints the bandwidth the two plans
//! consumed and the warnings issued — the paper's §1 claim in one screen.

use tacoma::apps::{run_stormcast, StormcastConfig, StormcastPlan};

fn main() {
    println!("StormCast forecast run: 12 sensor sites, 500 readings each, storm over 1/4 of them");
    println!();
    println!(
        "{:<28} {:>14} {:>12} {:>10}",
        "plan", "bytes on wire", "latency(ms)", "warnings"
    );
    let mut results = Vec::new();
    for plan in [StormcastPlan::Agent, StormcastPlan::ClientServer] {
        let result = run_stormcast(&StormcastConfig {
            sensors: 12,
            readings_per_sensor: 500,
            storm_fraction: 0.25,
            plan,
            sim_shards: 1,
            seed: 1995,
        });
        println!(
            "{:<28} {:>14} {:>12.2} {:>10}",
            result.plan.label(),
            result.network_bytes,
            result.latency_ms,
            result.warnings
        );
        results.push(result);
    }
    let factor = results[1].network_bytes as f64 / results[0].network_bytes.max(1) as f64;
    println!();
    println!(
        "the agent plan conserved {factor:.1}x bandwidth while issuing the same {} warning(s)",
        results[0].warnings
    );
    assert_eq!(results[0].warnings, results[1].warnings);
}
