//! Cross-crate integration tests: whole-system scenarios spanning the runtime,
//! the script interpreter, the system agents, cash, scheduling and fault
//! tolerance.

use tacoma::agents::diffusion::{BULLETIN, DIFFUSION_CABINET};
use tacoma::agents::{diffusion_briefcase, script_briefcase, standard_agents};
use tacoma::cash::{cash_briefcase, wallet_from_briefcase, MintAgent};
use tacoma::ft::{run_itinerary_experiment, FtConfig};
use tacoma::prelude::*;
use tacoma::sched::{run_scheduling_experiment, PlacementPolicy, SchedulingConfig};
use tacoma::util::DetRng;

fn system(sites: u32, seed: u64) -> TacomaSystem {
    TacomaSystem::builder()
        .topology(Topology::full_mesh(sites, LinkSpec::default()))
        .seed(seed)
        .with_agents(standard_agents)
        .build()
}

#[test]
fn script_agent_chains_migration_cabinets_and_courier() {
    // A script agent hops 0 -> 1 -> 2, accumulating data, and at the last stop
    // files everything into a cabinet; a second, independent agent then reads
    // that cabinet — communication between agents that were never co-resident,
    // which is exactly what §2 says site-local folders are for.
    let mut sys = system(3, 99);
    let hop_code = r#"
        bc_push DATA "from [my_site]"
        set next [bc_dequeue ITINERARY]
        if {$next ne ""} {
            bc_push CODE [bc_peek ORIGCODE]
            bc_put HOST $next
            bc_put CONTACT ag_tac
            meet rexec
        } else {
            foreach d [bc_list DATA] { cab_append shared RESULTS $d }
        }
    "#;
    let mut bc = script_briefcase(hop_code, &[]);
    bc.put_string("ORIGCODE", hop_code);
    bc.folder_mut("ITINERARY").enqueue(b"1".to_vec());
    bc.folder_mut("ITINERARY").enqueue(b"2".to_vec());
    sys.inject_meet(SiteId(0), AgentName::new("ag_tac"), bc);
    sys.run_until_quiescent(10_000);

    let reader_code = r#"
        set n [llength [cab_list shared RESULTS]]
        bc_put COUNT $n
        return $n
    "#;
    let reply = sys
        .try_direct_meet(
            SiteId(2),
            &AgentName::new("ag_tac"),
            script_briefcase(reader_code, &[]),
        )
        .expect("reader agent runs");
    assert_eq!(reply.peek_string("COUNT").as_deref(), Some("3"));
    assert_eq!(sys.stats().meets_failed, 0);
}

#[test]
fn diffusion_and_cash_coexist_in_one_system() {
    // Flood an announcement while a purchase is being validated — the two
    // subsystems share the same kernel, sites and network.
    let mut sys = system(6, 123);
    let mut mint_agent = MintAgent::new(5);
    let wallet = mint_agent.mint_mut().issue_wallet(4, 25);
    sys.register_agent(SiteId(3), Box::new(mint_agent));

    sys.inject_meet(
        SiteId(0),
        AgentName::new("diffusion"),
        diffusion_briefcase("sale", "mint open for business at site 3"),
    );
    sys.run_until_quiescent(100_000);

    // Everyone heard the announcement.
    for s in 0..6 {
        let bulletin = sys
            .place(SiteId(s))
            .cabinets()
            .get(DIFFUSION_CABINET)
            .and_then(|c| c.folder_ref(BULLETIN).map(|f| f.len()))
            .unwrap_or(0);
        assert_eq!(
            bulletin, 1,
            "site {s} should have the announcement exactly once"
        );
    }

    // Pay at the mint and verify the reissued bills replace the old ones.
    let reply = sys
        .try_direct_meet(SiteId(3), &AgentName::new("mint"), cash_briefcase(&wallet))
        .expect("valid cash validates");
    let fresh = wallet_from_briefcase(&reply);
    assert_eq!(fresh.total(), wallet.total());
    // Replaying the old bills is now foiled.
    assert!(sys
        .try_direct_meet(SiteId(3), &AgentName::new("mint"), cash_briefcase(&wallet))
        .is_err());
}

#[test]
fn site_recovery_restores_system_agents_and_flushed_state() {
    let mut sys = system(3, 7);
    // A script agent stores durable state and flushes the cabinet... via a
    // native helper since flushing is a kernel service.
    struct Archivist;
    impl Agent for Archivist {
        fn name(&self) -> AgentName {
            AgentName::new("archivist")
        }
        fn meet(&mut self, ctx: &mut MeetCtx<'_>, bc: Briefcase) -> MeetOutcome {
            if let Some(note) = bc.peek_string("NOTE") {
                ctx.cabinet("archive").append_str("NOTES", &note);
                ctx.flush_cabinet("archive");
            }
            Ok(Briefcase::new())
        }
    }
    sys.register_agent(SiteId(1), Box::new(Archivist));
    let mut bc = Briefcase::new();
    bc.put_string("NOTE", "survive me");
    sys.inject_meet(SiteId(1), AgentName::new("archivist"), bc);
    sys.run_until_quiescent(1_000);

    let plan = tacoma::net::FailurePlan::none().outage(
        SiteId(1),
        sys.now() + Duration::from_millis(1),
        Duration::from_millis(10),
    );
    sys.apply_failure_plan(&plan);
    sys.run_until_quiescent(1_000);

    let place = sys.place(SiteId(1));
    assert!(place.is_up());
    // The standard agents are back after recovery and the flushed archive survived.
    assert!(place.has_agent(&AgentName::new("rexec")));
    assert!(place.has_agent(&AgentName::new("ag_tac")));
    assert!(place.cabinets().contains("archive"));
    // But the archivist itself was registered manually, not via a factory, so
    // it is gone — recovery reinstalls only the default agent set.
    assert!(!place.has_agent(&AgentName::new("archivist")));
}

#[test]
fn scheduling_experiment_places_work_on_faster_providers() {
    let config = SchedulingConfig {
        providers: 4,
        capacities: vec![1.0, 1.0, 4.0, 4.0],
        jobs: 60,
        mean_job_ms: 50.0,
        mean_interarrival_ms: 10.0,
        policy: PlacementPolicy::LoadBased,
        seed: 11,
        ..Default::default()
    };
    let result = run_scheduling_experiment(&config);
    assert_eq!(result.completed, 60);
    let slow: u64 = result.per_provider[0] + result.per_provider[1];
    let fast: u64 = result.per_provider[2] + result.per_provider[3];
    assert!(
        fast > slow,
        "the load-based broker should favour the 4x-faster providers (fast={fast}, slow={slow})"
    );
}

#[test]
fn rear_guards_change_the_outcome_under_injected_failures() {
    let base = FtConfig {
        sites: 9,
        itinerary_len: 6,
        travellers: 20,
        crash_prob: 0.5,
        crash_window_ms: 12,
        downtime_ms: (800, 2_500),
        seed: 4242,
        ..Default::default()
    };
    let unguarded = run_itinerary_experiment(&FtConfig {
        guarded: false,
        ..base
    });
    let guarded = run_itinerary_experiment(&FtConfig {
        guarded: true,
        ..base
    });
    assert!(guarded.completion_rate >= unguarded.completion_rate);
    assert!(guarded.meets > unguarded.meets, "guards are not free");
}

#[test]
fn deterministic_end_to_end_replay() {
    // The same seed gives byte-for-byte identical network accounting across a
    // non-trivial mixed workload — the property every experiment relies on.
    let run = |seed: u64| {
        let mut sys = system(4, seed);
        sys.inject_meet(
            SiteId(0),
            AgentName::new("diffusion"),
            diffusion_briefcase("m", "payload"),
        );
        let code = "if {[my_site] == 1} { move_to 2 } else { cab_append t DONE x }";
        sys.inject_meet(
            SiteId(1),
            AgentName::new("ag_tac"),
            script_briefcase(code, &[]),
        );
        sys.run_until_quiescent(100_000);
        (
            sys.net_metrics().total_bytes().get(),
            sys.stats().meets_completed,
            sys.now(),
        )
    };
    assert_eq!(run(55), run(55));
    let mut rng = DetRng::new(1);
    assert_ne!(rng.next_u64(), 0);
}
