//! Property-based tests over the core data structures and protocols.

use proptest::prelude::*;
use tacoma::cash::Mint;
use tacoma::core::codec;
use tacoma::core::{Briefcase, FileCabinet, Folder};
use tacoma::script::{parse_script, Interp, NullHost, RecordingHost};

proptest! {
    /// Folders behave as a stack: pushing then popping returns elements in
    /// reverse order and leaves the folder empty.
    #[test]
    fn folder_stack_law(elems in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..32)) {
        let mut folder = Folder::new();
        for e in &elems {
            folder.push(e.clone());
        }
        prop_assert_eq!(folder.len(), elems.len());
        let mut popped = Vec::new();
        while let Some(e) = folder.pop() {
            popped.push(e);
        }
        popped.reverse();
        prop_assert_eq!(popped, elems);
        prop_assert!(folder.is_empty());
    }

    /// Folders behave as a queue: dequeue order equals enqueue order.
    #[test]
    fn folder_queue_law(elems in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..32)) {
        let mut folder = Folder::new();
        for e in &elems {
            folder.enqueue(e.clone());
        }
        let mut dequeued = Vec::new();
        while let Some(e) = folder.dequeue() {
            dequeued.push(e);
        }
        prop_assert_eq!(dequeued, elems);
    }

    /// Briefcase wire encoding round-trips arbitrary folder contents exactly.
    #[test]
    fn briefcase_codec_round_trip(
        folders in proptest::collection::btree_map(
            "[A-Za-z_][A-Za-z0-9_]{0,12}",
            proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..48), 0..8),
            0..8,
        )
    ) {
        let mut bc = Briefcase::new();
        for (name, elems) in &folders {
            bc.put(name.clone(), Folder::from_elems(elems.clone()));
        }
        let encoded = codec::encode_briefcase(&bc);
        let decoded = codec::decode_briefcase(&encoded).expect("decode");
        prop_assert_eq!(decoded, bc);
    }

    /// The codec never panics on arbitrary byte soup and never silently
    /// accepts trailing garbage after a valid briefcase.
    #[test]
    fn briefcase_codec_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = codec::decode_briefcase(&bytes);
        let mut valid = codec::encode_briefcase(&Briefcase::new());
        valid.extend_from_slice(&bytes);
        if !bytes.is_empty() {
            prop_assert!(codec::decode_briefcase(&valid).is_err());
        }
    }

    /// Briefcases with boundary-sized elements — empty elements, an element
    /// at the generator's maximum length, and an empty folder alongside the
    /// randomized contents — round-trip exactly.
    #[test]
    fn briefcase_codec_round_trips_boundary_elements(
        folders in proptest::collection::btree_map(
            "[A-Za-z_][A-Za-z0-9_]{0,12}",
            proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..48), 0..8),
            0..8,
        ),
        fill in any::<u8>(),
    ) {
        const MAX_ELEM: usize = 4096;
        let mut bc = Briefcase::new();
        for (name, elems) in &folders {
            bc.put(name.clone(), Folder::from_elems(elems.clone()));
        }
        // Boundary folder: an empty element, a max-length element, and
        // nothing else; plus a folder with no elements at all.
        let edge = Folder::from_elems(vec![Vec::new(), vec![fill; MAX_ELEM]]);
        bc.put("EDGE_ELEMS", edge);
        bc.put("EDGE_EMPTY", Folder::new());
        let encoded = codec::encode_briefcase(&bc);
        let decoded = codec::decode_briefcase(&encoded).expect("decode");
        prop_assert_eq!(&decoded, &bc);
        let round = decoded.folder("EDGE_ELEMS").expect("edge folder survives");
        prop_assert_eq!(round.len(), 2);
        prop_assert!(decoded.folder("EDGE_EMPTY").expect("empty folder survives").is_empty());
    }

    /// Meet requests — contact name, sender id, origin site and a briefcase
    /// of randomized folder contents — round-trip through the wire codec.
    #[test]
    fn meet_request_codec_round_trip(
        contact in "[a-z][a-z0-9_-]{0,15}",
        sender in any::<u64>(),
        origin in any::<u32>(),
        folders in proptest::collection::btree_map(
            "[A-Z][A-Z0-9_]{0,8}",
            proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..6),
            0..6,
        ),
    ) {
        let mut bc = Briefcase::new();
        for (name, elems) in &folders {
            bc.put(name.clone(), Folder::from_elems(elems.clone()));
        }
        // Boundary contents ride along in every case.
        bc.put("B", Folder::from_elems(vec![Vec::new(), vec![0xA5; 2048]]));
        let req = codec::MeetRequest {
            contact: tacoma::util::AgentName::new(contact),
            sender: tacoma::util::AgentId(sender),
            origin: tacoma::util::SiteId(origin),
            briefcase: bc,
        };
        let encoded = codec::encode_meet_request(&req);
        let decoded = codec::decode_meet_request(&encoded).expect("decode");
        prop_assert_eq!(decoded, req);
        // Truncating the tail must never decode successfully.
        let cut = encoded.len() - 1;
        prop_assert!(codec::decode_meet_request(&encoded[..cut]).is_err());
    }

    /// Cabinet snapshot/restore preserves contents and rebuilds the index.
    #[test]
    fn cabinet_snapshot_round_trip(
        entries in proptest::collection::vec(("[A-Z]{1,6}", proptest::collection::vec(any::<u8>(), 1..32)), 0..24)
    ) {
        let mut cab = FileCabinet::new();
        for (folder, elem) in &entries {
            cab.append(folder, elem.clone());
        }
        let mut restored = FileCabinet::restore(&cab.snapshot()).expect("restore");
        prop_assert_eq!(restored.payload_bytes(), cab.payload_bytes());
        for (folder, elem) in &entries {
            prop_assert!(restored.folder_contains(folder, elem));
        }
    }

    /// The TacoScript parser never panics on arbitrary input, and whenever it
    /// parses successfully the interpreter also terminates (possibly with an
    /// error) within its step budget.
    #[test]
    fn script_pipeline_is_total(src in "[ -~\\n]{0,200}") {
        if let Ok(_cmds) = parse_script(&src) {
            let mut host = NullHost;
            let mut interp = Interp::with_config(
                &mut host,
                tacoma::script::InterpConfig { max_steps: 2_000, max_depth: 16 },
            );
            let _ = interp.run(&src);
        }
    }

    /// expr evaluates any pair of small integers combined by an operator to
    /// the mathematically correct result.
    #[test]
    fn expr_arithmetic_matches_rust(a in -1000i64..1000, b in -1000i64..1000, op in 0usize..4) {
        let ops = ["+", "-", "*", "=="];
        let src = format!("expr {a} {} {b}", ops[op]);
        let mut host = NullHost;
        let mut interp = Interp::new(&mut host);
        let out = interp.run(&src).expect("arithmetic never fails").result;
        let expected = match op {
            0 => (a + b).to_string(),
            1 => (a - b).to_string(),
            2 => (a * b).to_string(),
            _ => if a == b { "1".to_string() } else { "0".to_string() },
        };
        prop_assert_eq!(out, expected);
    }

    /// Total value is conserved by any sequence of mint operations, and no
    /// retired bill is ever accepted again (no double spend succeeds).
    #[test]
    fn cash_conservation_and_no_double_spend(
        denominations in proptest::collection::vec(1u64..100, 1..12),
        spend_order in proptest::collection::vec(any::<u16>(), 0..24),
    ) {
        let mut mint = Mint::new(9);
        let mut live: Vec<_> = denominations.iter().map(|&d| mint.issue(d)).collect();
        let mut retired: Vec<_> = Vec::new();
        let total: u64 = denominations.iter().sum();
        for pick in spend_order {
            if live.is_empty() { break; }
            let idx = pick as usize % live.len();
            let bill = live[idx];
            // Occasionally try to double-spend a retired bill instead.
            if !retired.is_empty() && pick % 3 == 0 {
                let old = retired[pick as usize % retired.len()];
                prop_assert!(mint.validate_and_reissue(&[old]).is_err());
                continue;
            }
            let fresh = mint.validate_and_reissue(&[bill]).expect("live bill validates");
            prop_assert_eq!(fresh[0].amount, bill.amount);
            live[idx] = fresh[0];
            retired.push(bill);
        }
        let live_total: u64 = live.iter().map(|e| e.amount).sum();
        prop_assert_eq!(live_total, total, "no value created or destroyed");
        prop_assert_eq!(mint.outstanding(), live.len());
    }

    /// Tcl-style list formatting and parsing round-trip arbitrary words.
    #[test]
    fn list_round_trip(words in proptest::collection::vec("[a-z0-9 ]{0,12}", 0..12)) {
        let formatted = tacoma::script::format_list(words.iter());
        let parsed = tacoma::script::parse_list(&formatted);
        prop_assert_eq!(parsed, words);
    }

    /// Load reports round-trip through their briefcase encoding exactly —
    /// including non-finite capacities (NaN, ±∞) and boundary values (±0,
    /// MIN_POSITIVE, MAX, arbitrary bit patterns), since brokers must not be
    /// corrupted by whatever a briefcase claims a provider's capacity is.
    #[test]
    fn load_report_briefcase_round_trip(
        site in any::<u32>(),
        queue_len in any::<u64>(),
        at_micros in any::<u64>(),
        selector in 0usize..8,
        bits in any::<u64>(),
    ) {
        use tacoma::sched::LoadReport;
        use tacoma::util::SiteId;
        let capacity = [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.0,
            -0.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::from_bits(bits),
        ][selector];
        let report = LoadReport { site: SiteId(site), queue_len, queue_cost: 0.0, capacity, at_micros };
        let parsed = LoadReport::from_briefcase(&report.to_briefcase())
            .expect("complete briefcase parses");
        prop_assert_eq!(parsed.site, report.site);
        prop_assert_eq!(parsed.queue_len, report.queue_len);
        prop_assert_eq!(parsed.at_micros, report.at_micros);
        if capacity.is_nan() {
            // NaN has no canonical wire spelling; any NaN comes back NaN and
            // the derived ordering stays uncorrupted (infinite, not NaN).
            prop_assert!(parsed.capacity.is_nan());
            prop_assert!(parsed.expected_wait().is_infinite());
        } else {
            // Rust's shortest-round-trip float formatting is exact: the
            // parsed capacity is bit-identical, signed zeros included.
            prop_assert_eq!(parsed.capacity.to_bits(), report.capacity.to_bits());
        }
    }
}

#[test]
fn recording_host_is_reusable_across_property_runs() {
    // A plain (non-property) sanity check that the test host used above
    // behaves: scripts can read back what they pushed.
    let mut host = RecordingHost::new();
    let mut interp = Interp::new(&mut host);
    let out = interp
        .run("bc_push X 1; bc_push X 2; bc_list X")
        .unwrap()
        .result;
    assert_eq!(out, "1 2");
}
