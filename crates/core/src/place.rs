//! Places: the per-site TACOMA kernel.
//!
//! The prototype (§6) runs one Tcl interpreter per site "which provides the
//! place where agents execute".  A [`Place`] is our equivalent: it owns the
//! site's agent registry and file cabinets, executes meets, and collects the
//! deferred actions agents queue during a meet so the system driver can carry
//! them out (send remote meet requests, set timers, install agents, flush
//! cabinets).

use crate::agent::{Action, Agent, AgentRegistry, MeetCtx, MeetOutcome, RegisteredAgent};
use crate::briefcase::Briefcase;
use crate::cabinet::CabinetStore;
use crate::error::TacomaError;
use tacoma_net::SimTime;
use tacoma_util::{AgentId, AgentName, DetRng, SiteId};

/// Everything the kernel needs to know about the world to run one meet.
///
/// The system driver fills this in from the network simulator; unit tests can
/// fabricate it directly.
#[derive(Debug, Clone, Copy)]
pub struct DispatchEnv<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// Site the request originated from.
    pub origin: SiteId,
    /// Agent instance that issued the request.
    pub sender: AgentId,
    /// Neighbouring sites in the topology.
    pub neighbors: &'a [SiteId],
    /// Liveness of every site (index = site id).
    pub alive: &'a [bool],
    /// Reachability of every site from the executing site (index = site id).
    /// Empty when the system does not track reachability (custody disabled);
    /// `MeetCtx::site_is_reachable` then falls back to liveness.
    pub reachable: &'a [bool],
    /// Whether store-and-forward custody is enabled system-wide (remote meets
    /// to unreachable sites park instead of failing).
    pub custody: bool,
}

impl<'a> DispatchEnv<'a> {
    /// A minimal environment for tests: time zero, no neighbours, all alive.
    pub fn for_tests(alive: &'a [bool]) -> Self {
        DispatchEnv {
            now: SimTime::ZERO,
            origin: SiteId(0),
            sender: AgentId::SYSTEM,
            neighbors: &[],
            alive,
            reachable: &[],
            custody: false,
        }
    }
}

/// Counters a place keeps about its own activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlaceStats {
    /// Meets executed successfully at this site.
    pub meets_ok: u64,
    /// Meets that returned an error.
    pub meets_failed: u64,
    /// Agents installed over the lifetime of the place (including recoveries).
    pub agents_installed: u64,
    /// Times the place crashed.
    pub crashes: u64,
}

/// The per-site kernel: agent registry, cabinets, and dispatch.
pub struct Place {
    site: SiteId,
    up: bool,
    registry: AgentRegistry,
    cabinets: CabinetStore,
    rng: DetRng,
    trace: Vec<String>,
    stats: PlaceStats,
}

impl Place {
    /// Creates an empty, running place for `site`.
    pub fn new(site: SiteId, rng: DetRng) -> Self {
        Place {
            site,
            up: true,
            registry: AgentRegistry::new(),
            cabinets: CabinetStore::new(),
            rng,
            trace: Vec::new(),
            stats: PlaceStats::default(),
        }
    }

    /// The site this place runs at.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Whether the place is currently up.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Counters about this place's activity.
    pub fn stats(&self) -> PlaceStats {
        self.stats
    }

    /// Installs a native agent under its well-known name.
    pub fn install_agent(&mut self, id: AgentId, agent: Box<dyn Agent>) {
        self.stats.agents_installed += 1;
        self.registry.install(RegisteredAgent { id, agent });
    }

    /// Removes an agent by name, returning whether it existed.
    pub fn remove_agent(&mut self, name: &AgentName) -> bool {
        self.registry.remove(name).is_some()
    }

    /// Names of the agents currently registered here.
    pub fn agent_names(&self) -> Vec<AgentName> {
        self.registry.names()
    }

    /// Whether an agent with the given name is registered here.
    pub fn has_agent(&self, name: &AgentName) -> bool {
        self.registry.contains(name)
    }

    /// Read-only access to the site's cabinets.
    pub fn cabinets(&self) -> &CabinetStore {
        &self.cabinets
    }

    /// Mutable access to the site's cabinets (used by tests and by the system
    /// driver when seeding experiment data at a site).
    pub fn cabinets_mut(&mut self) -> &mut CabinetStore {
        &mut self.cabinets
    }

    /// The kernel trace lines collected at this site.
    pub fn trace(&self) -> &[String] {
        &self.trace
    }

    /// Executes a meet with `contact`, collecting deferred actions in `outbox`.
    ///
    /// Returns the callee's outcome.  If the place is down, returns
    /// [`TacomaError::SiteDown`].
    pub fn dispatch(
        &mut self,
        contact: &AgentName,
        briefcase: Briefcase,
        env: DispatchEnv<'_>,
        outbox: &mut Vec<Action>,
    ) -> MeetOutcome {
        if !self.up {
            return Err(TacomaError::SiteDown(self.site));
        }
        let mut registered = match self.registry.take(contact, self.site) {
            Ok(r) => r,
            Err(e) => {
                self.stats.meets_failed += 1;
                return Err(e);
            }
        };
        let mut ctx = MeetCtx {
            site: self.site,
            now: env.now,
            agent_id: registered.id,
            origin: env.origin,
            sender: env.sender,
            depth: 0,
            cabinets: &mut self.cabinets,
            registry: &mut self.registry,
            outbox,
            rng: &mut self.rng,
            neighbors: env.neighbors,
            alive: env.alive,
            reachable: env.reachable,
            custody: env.custody,
            trace: &mut self.trace,
        };
        let outcome = registered.agent.meet(&mut ctx, briefcase);
        self.registry.put_back(registered);
        match &outcome {
            Ok(_) => self.stats.meets_ok += 1,
            Err(_) => self.stats.meets_failed += 1,
        }
        outcome
    }

    /// Runs an agent's `on_install` hook, collecting any actions it queues
    /// (scheduling timers, sending an initial report, ...) into `outbox`.
    pub fn run_install_hook(
        &mut self,
        name: &AgentName,
        env: DispatchEnv<'_>,
        outbox: &mut Vec<Action>,
    ) {
        let Ok(mut registered) = self.registry.take(name, self.site) else {
            return;
        };
        let mut ctx = MeetCtx {
            site: self.site,
            now: env.now,
            agent_id: registered.id,
            origin: env.origin,
            sender: env.sender,
            depth: 0,
            cabinets: &mut self.cabinets,
            registry: &mut self.registry,
            outbox,
            rng: &mut self.rng,
            neighbors: env.neighbors,
            alive: env.alive,
            reachable: env.reachable,
            custody: env.custody,
            trace: &mut self.trace,
        };
        registered.agent.on_install(&mut ctx);
        self.registry.put_back(registered);
    }

    /// Crashes the place: every resident agent and every (unflushed) cabinet
    /// is lost, matching §5's failure model.
    pub fn crash(&mut self) {
        self.up = false;
        self.stats.crashes += 1;
        self.registry.clear();
        self.cabinets.clear();
    }

    /// Marks the place as up again (the system driver re-installs the default
    /// agents and restores flushed cabinets).
    pub fn recover(&mut self) {
        self.up = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::MeetOutcome;

    struct Greeter;
    impl Agent for Greeter {
        fn name(&self) -> AgentName {
            AgentName::new("greeter")
        }
        fn meet(&mut self, ctx: &mut MeetCtx<'_>, mut bc: Briefcase) -> MeetOutcome {
            bc.put_string("GREETING", format!("hello from {}", ctx.site()));
            ctx.cabinet("visits").append_str("LOG", "met");
            Ok(bc)
        }
        fn on_install(&mut self, ctx: &mut MeetCtx<'_>) {
            ctx.cabinet("visits").append_str("LOG", "installed");
        }
    }

    struct Failing;
    impl Agent for Failing {
        fn name(&self) -> AgentName {
            AgentName::new("failing")
        }
        fn meet(&mut self, _ctx: &mut MeetCtx<'_>, _bc: Briefcase) -> MeetOutcome {
            Err(TacomaError::Refused("always".into()))
        }
    }

    fn place() -> Place {
        let mut p = Place::new(SiteId(0), DetRng::new(5));
        p.install_agent(AgentId(1), Box::new(Greeter));
        p.install_agent(AgentId(2), Box::new(Failing));
        p
    }

    #[test]
    fn dispatch_success_and_failure_counting() {
        let mut p = place();
        let alive = [true];
        let mut outbox = Vec::new();
        let ok = p.dispatch(
            &AgentName::new("greeter"),
            Briefcase::new(),
            DispatchEnv::for_tests(&alive),
            &mut outbox,
        );
        assert!(ok.unwrap().contains("GREETING"));
        let err = p.dispatch(
            &AgentName::new("failing"),
            Briefcase::new(),
            DispatchEnv::for_tests(&alive),
            &mut outbox,
        );
        assert!(matches!(err, Err(TacomaError::Refused(_))));
        let missing = p.dispatch(
            &AgentName::new("ghost"),
            Briefcase::new(),
            DispatchEnv::for_tests(&alive),
            &mut outbox,
        );
        assert!(matches!(missing, Err(TacomaError::NoSuchAgent { .. })));
        assert_eq!(p.stats().meets_ok, 1);
        assert_eq!(p.stats().meets_failed, 2);
        assert!(p.cabinets().contains("visits"));
    }

    #[test]
    fn install_hook_runs() {
        let mut p = place();
        let alive = [true];
        let mut outbox = Vec::new();
        p.run_install_hook(
            &AgentName::new("greeter"),
            DispatchEnv::for_tests(&alive),
            &mut outbox,
        );
        let cab = p.cabinets().get("visits").unwrap();
        assert!(cab.payload_bytes() > 0);
        // Hook for an unknown agent is a no-op.
        p.run_install_hook(
            &AgentName::new("ghost"),
            DispatchEnv::for_tests(&alive),
            &mut outbox,
        );
    }

    #[test]
    fn crash_clears_state_and_refuses_meets() {
        let mut p = place();
        let alive = [true];
        let mut outbox = Vec::new();
        p.dispatch(
            &AgentName::new("greeter"),
            Briefcase::new(),
            DispatchEnv::for_tests(&alive),
            &mut outbox,
        )
        .unwrap();
        assert!(p.cabinets().contains("visits"));
        p.crash();
        assert!(!p.is_up());
        assert!(p.agent_names().is_empty());
        assert!(!p.cabinets().contains("visits"));
        let refused = p.dispatch(
            &AgentName::new("greeter"),
            Briefcase::new(),
            DispatchEnv::for_tests(&alive),
            &mut outbox,
        );
        assert!(matches!(refused, Err(TacomaError::SiteDown(_))));
        p.recover();
        assert!(p.is_up());
        assert_eq!(p.stats().crashes, 1);
    }

    #[test]
    fn agent_management() {
        let mut p = place();
        assert!(p.has_agent(&AgentName::new("greeter")));
        assert_eq!(p.agent_names().len(), 2);
        assert!(p.remove_agent(&AgentName::new("greeter")));
        assert!(!p.remove_agent(&AgentName::new("greeter")));
        assert!(!p.has_agent(&AgentName::new("greeter")));
    }
}
