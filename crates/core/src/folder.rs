//! Folders: named lists of uninterpreted byte sequences.
//!
//! The paper (§2) defines a folder as "a list of elements, each of which is an
//! uninterpreted sequence of bits.  Because it is a list, it can be treated as
//! a stack or a queue."  Folders must be cheap to move between sites, so —
//! unlike files — they carry no elaborate index structures.
//!
//! Elements are raw bytes; the typed accessors (`push_str`, `push_u64`, ...)
//! are conveniences over the byte representation and never change what is
//! stored on the wire.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One element of a folder: an uninterpreted sequence of bytes.
pub type FolderElem = Vec<u8>;

/// A list of uninterpreted byte sequences, usable as a stack or a queue.
///
/// Stack operations ([`Folder::push`]/[`Folder::pop`]) work on the *back* of
/// the list; queue operations ([`Folder::enqueue`]/[`Folder::dequeue`]) add at
/// the back and remove from the front.  This matches the paper's description
/// of a folder being usable either way.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Folder {
    elements: VecDeque<FolderElem>,
}

impl Folder {
    /// Creates an empty folder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a folder holding a single byte-string element.
    pub fn single(elem: impl Into<FolderElem>) -> Self {
        let mut f = Folder::new();
        f.push(elem.into());
        f
    }

    /// Creates a folder holding a single UTF-8 string element.
    pub fn of_str(s: impl AsRef<str>) -> Self {
        Folder::single(s.as_ref().as_bytes().to_vec())
    }

    /// Creates a folder from an iterator of elements.
    pub fn from_elems(elems: impl IntoIterator<Item = FolderElem>) -> Self {
        Folder {
            elements: elems.into_iter().collect(),
        }
    }

    /// Number of elements in the folder.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the folder has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Pushes an element on the back (stack push).
    pub fn push(&mut self, elem: impl Into<FolderElem>) {
        self.elements.push_back(elem.into());
    }

    /// Pops the element from the back (stack pop).
    pub fn pop(&mut self) -> Option<FolderElem> {
        self.elements.pop_back()
    }

    /// Adds an element at the back (queue enqueue, same end as `push`).
    pub fn enqueue(&mut self, elem: impl Into<FolderElem>) {
        self.elements.push_back(elem.into());
    }

    /// Removes the element at the front (queue dequeue).
    pub fn dequeue(&mut self) -> Option<FolderElem> {
        self.elements.pop_front()
    }

    /// The element at the back (what `pop` would return), without removing it.
    pub fn peek_back(&self) -> Option<&FolderElem> {
        self.elements.back()
    }

    /// The element at the front (what `dequeue` would return), without removing it.
    pub fn peek_front(&self) -> Option<&FolderElem> {
        self.elements.front()
    }

    /// The element at position `idx` from the front.
    pub fn get(&self, idx: usize) -> Option<&FolderElem> {
        self.elements.get(idx)
    }

    /// Iterates over elements from front to back.
    pub fn iter(&self) -> impl Iterator<Item = &FolderElem> {
        self.elements.iter()
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.elements.clear();
    }

    /// Appends all elements of `other`, leaving `other` empty.
    pub fn append(&mut self, other: &mut Folder) {
        self.elements.append(&mut other.elements);
    }

    /// Total payload bytes across all elements (excluding framing).
    pub fn payload_bytes(&self) -> usize {
        self.elements.iter().map(|e| e.len()).sum()
    }

    /// Whether any element equals the given bytes.
    pub fn contains_elem(&self, elem: &[u8]) -> bool {
        self.elements.iter().any(|e| e == elem)
    }

    // ----- typed conveniences ------------------------------------------------

    /// Pushes a UTF-8 string element.
    pub fn push_str(&mut self, s: impl AsRef<str>) {
        self.push(s.as_ref().as_bytes().to_vec());
    }

    /// Pops an element and decodes it as UTF-8 (lossily).
    pub fn pop_str(&mut self) -> Option<String> {
        self.pop().map(|b| String::from_utf8_lossy(&b).into_owned())
    }

    /// Dequeues an element and decodes it as UTF-8 (lossily).
    pub fn dequeue_str(&mut self) -> Option<String> {
        self.dequeue()
            .map(|b| String::from_utf8_lossy(&b).into_owned())
    }

    /// Reads the back element as UTF-8 without removing it.
    pub fn peek_str(&self) -> Option<String> {
        self.peek_back()
            .map(|b| String::from_utf8_lossy(b).into_owned())
    }

    /// Pushes a `u64` in little-endian encoding.
    pub fn push_u64(&mut self, v: u64) {
        self.push(v.to_le_bytes().to_vec());
    }

    /// Pops an element and decodes it as a little-endian `u64`.
    ///
    /// Returns `None` if the folder is empty or the element is not 8 bytes.
    pub fn pop_u64(&mut self) -> Option<u64> {
        let e = self.pop()?;
        let arr: [u8; 8] = e.try_into().ok()?;
        Some(u64::from_le_bytes(arr))
    }

    /// Reads the back element as a `u64` without removing it.
    pub fn peek_u64(&self) -> Option<u64> {
        let e = self.peek_back()?;
        let arr: [u8; 8] = e.as_slice().try_into().ok()?;
        Some(u64::from_le_bytes(arr))
    }

    /// Pushes an `f64` in little-endian encoding.
    pub fn push_f64(&mut self, v: f64) {
        self.push(v.to_le_bytes().to_vec());
    }

    /// Pops an element and decodes it as a little-endian `f64`.
    pub fn pop_f64(&mut self) -> Option<f64> {
        let e = self.pop()?;
        let arr: [u8; 8] = e.try_into().ok()?;
        Some(f64::from_le_bytes(arr))
    }

    /// Collects every element decoded as UTF-8, front to back.
    pub fn strings(&self) -> Vec<String> {
        self.iter()
            .map(|b| String::from_utf8_lossy(b).into_owned())
            .collect()
    }
}

impl FromIterator<FolderElem> for Folder {
    fn from_iter<T: IntoIterator<Item = FolderElem>>(iter: T) -> Self {
        Folder::from_elems(iter)
    }
}

impl<'a> IntoIterator for &'a Folder {
    type Item = &'a FolderElem;
    type IntoIter = std::collections::vec_deque::Iter<'a, FolderElem>;
    fn into_iter(self) -> Self::IntoIter {
        self.elements.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_order_is_lifo() {
        let mut f = Folder::new();
        f.push_str("a");
        f.push_str("b");
        f.push_str("c");
        assert_eq!(f.pop_str().as_deref(), Some("c"));
        assert_eq!(f.pop_str().as_deref(), Some("b"));
        assert_eq!(f.pop_str().as_deref(), Some("a"));
        assert!(f.pop().is_none());
    }

    #[test]
    fn queue_order_is_fifo() {
        let mut f = Folder::new();
        f.enqueue(b"1".to_vec());
        f.enqueue(b"2".to_vec());
        f.enqueue(b"3".to_vec());
        assert_eq!(f.dequeue_str().as_deref(), Some("1"));
        assert_eq!(f.dequeue_str().as_deref(), Some("2"));
        assert_eq!(f.dequeue_str().as_deref(), Some("3"));
        assert!(f.dequeue().is_none());
    }

    #[test]
    fn mixed_stack_and_queue_use_shared_list() {
        // The paper stresses a folder IS one list that can be treated either way.
        let mut f = Folder::new();
        f.push_str("bottom");
        f.push_str("top");
        assert_eq!(f.dequeue_str().as_deref(), Some("bottom"));
        assert_eq!(f.pop_str().as_deref(), Some("top"));
    }

    #[test]
    fn peeks_do_not_remove() {
        let mut f = Folder::new();
        f.push_str("x");
        assert_eq!(f.peek_str().as_deref(), Some("x"));
        assert_eq!(f.peek_front().unwrap(), b"x");
        assert_eq!(f.peek_back().unwrap(), b"x");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn u64_and_f64_round_trip() {
        let mut f = Folder::new();
        f.push_u64(123_456_789);
        assert_eq!(f.peek_u64(), Some(123_456_789));
        assert_eq!(f.pop_u64(), Some(123_456_789));
        f.push_f64(2.5);
        assert_eq!(f.pop_f64(), Some(2.5));
        // Wrong-width element decodes to None but is still consumed.
        f.push_str("not a number");
        assert_eq!(f.pop_u64(), None);
        assert!(f.is_empty());
    }

    #[test]
    fn bytes_are_uninterpreted() {
        let mut f = Folder::new();
        let blob = vec![0u8, 255, 128, 7];
        f.push(blob.clone());
        assert!(f.contains_elem(&blob));
        assert_eq!(f.pop(), Some(blob));
    }

    #[test]
    fn append_moves_elements() {
        let mut a = Folder::from_elems([b"1".to_vec(), b"2".to_vec()]);
        let mut b = Folder::from_elems([b"3".to_vec()]);
        a.append(&mut b);
        assert_eq!(a.len(), 3);
        assert!(b.is_empty());
        assert_eq!(a.strings(), vec!["1", "2", "3"]);
    }

    #[test]
    fn payload_bytes_counts_all_elements() {
        let mut f = Folder::new();
        f.push(vec![0u8; 10]);
        f.push(vec![0u8; 22]);
        assert_eq!(f.payload_bytes(), 32);
        f.clear();
        assert_eq!(f.payload_bytes(), 0);
        assert!(f.is_empty());
    }

    #[test]
    fn constructors() {
        assert_eq!(Folder::of_str("hi").len(), 1);
        assert_eq!(Folder::single(vec![1, 2, 3]).payload_bytes(), 3);
        let f: Folder = [b"a".to_vec(), b"b".to_vec()].into_iter().collect();
        assert_eq!(f.len(), 2);
        assert_eq!(f.get(1).unwrap(), b"b");
        assert!(f.get(2).is_none());
    }

    #[test]
    fn iteration_is_front_to_back() {
        let f = Folder::from_elems([b"x".to_vec(), b"y".to_vec()]);
        let collected: Vec<&FolderElem> = (&f).into_iter().collect();
        assert_eq!(collected.len(), 2);
        assert_eq!(f.strings(), vec!["x", "y"]);
    }
}
