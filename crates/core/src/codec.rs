//! The TACOMA wire codec: a small length-prefixed binary encoding for folders,
//! briefcases and meet requests.
//!
//! The simulator charges links by the number of bytes that cross them, so the
//! encoding of a migrating briefcase must be concrete.  The format is
//! deliberately simple (the paper stresses folders carry no elaborate index
//! structures):
//!
//! ```text
//! folder    := u32 elem_count { u32 len, bytes }*
//! briefcase := u32 folder_count { u32 name_len, name, folder }*
//! meet_req  := u8 version, u32 contact_len, contact, u64 sender_id,
//!              u32 origin_site, briefcase
//! ```
//!
//! All integers are little-endian.  Decoding is strict: trailing bytes or
//! truncated input produce an error rather than a partial value.

use crate::briefcase::Briefcase;
use crate::error::TacomaError;
use crate::folder::Folder;
use tacoma_util::{AgentId, AgentName, SiteId};

/// Protocol version byte for meet requests.
const MEET_VERSION: u8 = 1;

/// A remote meet request as it travels between sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeetRequest {
    /// The agent to meet at the destination site.
    pub contact: AgentName,
    /// The agent instance that issued the request (for tracing/rear guards).
    pub sender: AgentId,
    /// The site the request originated from.
    pub origin: SiteId,
    /// The briefcase handed to the contact agent.
    pub briefcase: Briefcase,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// A cursor over an input buffer with strict bounds checking.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], TacomaError> {
        if self.pos + n > self.buf.len() {
            return Err(TacomaError::Codec(format!(
                "truncated input: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, TacomaError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, TacomaError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, TacomaError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, TacomaError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn finish(&self) -> Result<(), TacomaError> {
        if self.pos != self.buf.len() {
            Err(TacomaError::Codec(format!(
                "{} trailing bytes after decode",
                self.buf.len() - self.pos
            )))
        } else {
            Ok(())
        }
    }
}

/// Encodes a folder.
pub fn encode_folder(folder: &Folder) -> Vec<u8> {
    let mut out = Vec::new();
    encode_folder_into(folder, &mut out);
    out
}

fn encode_folder_into(folder: &Folder, out: &mut Vec<u8>) {
    put_u32(out, folder.len() as u32);
    for elem in folder.iter() {
        put_bytes(out, elem);
    }
}

fn decode_folder_from(r: &mut Reader<'_>) -> Result<Folder, TacomaError> {
    let count = r.u32()? as usize;
    let mut folder = Folder::new();
    for _ in 0..count {
        folder.push(r.bytes()?);
    }
    Ok(folder)
}

/// Decodes a folder, rejecting trailing bytes.
pub fn decode_folder(buf: &[u8]) -> Result<Folder, TacomaError> {
    let mut r = Reader::new(buf);
    let f = decode_folder_from(&mut r)?;
    r.finish()?;
    Ok(f)
}

/// Encodes a briefcase.
pub fn encode_briefcase(bc: &Briefcase) -> Vec<u8> {
    let mut out = Vec::new();
    encode_briefcase_into(bc, &mut out);
    out
}

fn encode_briefcase_into(bc: &Briefcase, out: &mut Vec<u8>) {
    put_u32(out, bc.len() as u32);
    for (name, folder) in bc.iter() {
        put_bytes(out, name.as_bytes());
        encode_folder_into(folder, out);
    }
}

fn decode_briefcase_from(r: &mut Reader<'_>) -> Result<Briefcase, TacomaError> {
    let count = r.u32()? as usize;
    let mut bc = Briefcase::new();
    for _ in 0..count {
        let name_bytes = r.bytes()?;
        let name = String::from_utf8(name_bytes)
            .map_err(|_| TacomaError::Codec("folder name is not UTF-8".into()))?;
        let folder = decode_folder_from(r)?;
        bc.put(name, folder);
    }
    Ok(bc)
}

/// Decodes a briefcase, rejecting trailing bytes.
pub fn decode_briefcase(buf: &[u8]) -> Result<Briefcase, TacomaError> {
    let mut r = Reader::new(buf);
    let bc = decode_briefcase_from(&mut r)?;
    r.finish()?;
    Ok(bc)
}

/// Encodes a remote meet request.
pub fn encode_meet_request(req: &MeetRequest) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(MEET_VERSION);
    put_bytes(&mut out, req.contact.as_str().as_bytes());
    put_u64(&mut out, req.sender.0);
    put_u32(&mut out, req.origin.0);
    encode_briefcase_into(&req.briefcase, &mut out);
    out
}

/// Decodes a remote meet request.
pub fn decode_meet_request(buf: &[u8]) -> Result<MeetRequest, TacomaError> {
    let mut r = Reader::new(buf);
    let version = r.u8()?;
    if version != MEET_VERSION {
        return Err(TacomaError::Codec(format!(
            "unknown meet request version {version}"
        )));
    }
    let contact_bytes = r.bytes()?;
    let contact = String::from_utf8(contact_bytes)
        .map_err(|_| TacomaError::Codec("contact name is not UTF-8".into()))?;
    let sender = AgentId(r.u64()?);
    let origin = SiteId(r.u32()?);
    let briefcase = decode_briefcase_from(&mut r)?;
    r.finish()?;
    Ok(MeetRequest {
        contact: AgentName::new(contact),
        sender,
        origin,
        briefcase,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_briefcase() -> Briefcase {
        let mut bc = Briefcase::new();
        bc.put_string("HOST", "site2");
        bc.folder_mut("DATA").push(vec![1, 2, 3, 255]);
        bc.folder_mut("DATA").push(vec![]);
        bc.put_u64("HOPS", 9);
        bc
    }

    #[test]
    fn folder_round_trip() {
        let mut f = Folder::new();
        f.push_str("hello");
        f.push(vec![0, 1, 2]);
        f.push(vec![]);
        let encoded = encode_folder(&f);
        let decoded = decode_folder(&encoded).unwrap();
        assert_eq!(f, decoded);
    }

    #[test]
    fn empty_folder_and_briefcase_round_trip() {
        assert_eq!(
            decode_folder(&encode_folder(&Folder::new())).unwrap(),
            Folder::new()
        );
        assert_eq!(
            decode_briefcase(&encode_briefcase(&Briefcase::new())).unwrap(),
            Briefcase::new()
        );
    }

    #[test]
    fn briefcase_round_trip() {
        let bc = sample_briefcase();
        let decoded = decode_briefcase(&encode_briefcase(&bc)).unwrap();
        assert_eq!(bc, decoded);
    }

    #[test]
    fn meet_request_round_trip() {
        let req = MeetRequest {
            contact: AgentName::new("rexec"),
            sender: AgentId(77),
            origin: SiteId(3),
            briefcase: sample_briefcase(),
        };
        let decoded = decode_meet_request(&encode_meet_request(&req)).unwrap();
        assert_eq!(req, decoded);
    }

    #[test]
    fn truncated_input_is_rejected() {
        let bc = sample_briefcase();
        let encoded = encode_briefcase(&bc);
        for cut in [0, 1, encoded.len() / 2, encoded.len() - 1] {
            assert!(
                decode_briefcase(&encoded[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut encoded = encode_folder(&Folder::of_str("x"));
        encoded.push(0);
        assert!(decode_folder(&encoded).is_err());
    }

    #[test]
    fn wrong_version_is_rejected() {
        let req = MeetRequest {
            contact: AgentName::new("a"),
            sender: AgentId(1),
            origin: SiteId(0),
            briefcase: Briefcase::new(),
        };
        let mut encoded = encode_meet_request(&req);
        encoded[0] = 99;
        assert!(decode_meet_request(&encoded).is_err());
    }

    #[test]
    fn non_utf8_name_is_rejected() {
        // Hand-build a briefcase encoding with an invalid UTF-8 name.
        let mut out = Vec::new();
        put_u32(&mut out, 1);
        put_bytes(&mut out, &[0xFF, 0xFE]);
        encode_folder_into(&Folder::new(), &mut out);
        assert!(decode_briefcase(&out).is_err());
    }

    #[test]
    fn wire_size_scales_with_payload() {
        let mut bc = Briefcase::new();
        bc.folder_mut("D").push(vec![0u8; 10_000]);
        let size = encode_briefcase(&bc).len();
        assert!(
            (10_000..10_100).contains(&size),
            "size {size} should be payload plus small framing"
        );
    }
}
