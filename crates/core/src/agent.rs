//! The agent abstraction and the meet operation.
//!
//! In the paper (§2) "one agent causes another to execute using the *meet*
//! operation, where a briefcase allows information to be exchanged between the
//! two agents.  The meet operation is thus analogous to a procedure call, and
//! the specified briefcase is analogous to an argument list."
//!
//! A native agent implements the [`Agent`] trait.  Its [`Agent::meet`] method
//! receives the caller's briefcase and a [`MeetCtx`] giving access to the
//! local site's kernel services: file cabinets, nested local meets, and
//! deferred actions (remote meets, timers, spawning agents), which the kernel
//! executes after the meet returns.  Returning `Ok(briefcase)` terminates the
//! meet and hands the briefcase back to the caller; the callee may also have
//! queued deferred actions that run afterwards — the paper's "B may continue
//! executing concurrently with A".

use crate::briefcase::Briefcase;
use crate::cabinet::{CabinetStore, FileCabinet};
use crate::error::TacomaError;
use std::collections::BTreeMap;
use tacoma_net::{Duration, SimTime, TransportKind};
use tacoma_util::{AgentId, AgentName, DetRng, SiteId};

/// Maximum depth of nested local meets, to stop accidental meet cycles.
pub const MAX_MEET_DEPTH: u32 = 16;

/// The result of a meet: the briefcase handed back to the caller, or an error.
pub type MeetOutcome = Result<Briefcase, TacomaError>;

/// A native TACOMA agent.
///
/// System agents (`rexec`, `courier`, brokers, the mint, ...) and
/// application agents implement this trait and are registered at one or more
/// sites.  Mobile *script* agents do not implement this trait; they are
/// TacoScript text carried in a `CODE` folder and executed by the `ag_tac`
/// interpreter agent, which is itself a native agent.
pub trait Agent {
    /// The well-known name other agents use to meet this one.
    fn name(&self) -> AgentName;

    /// Executes one meet: the paper's procedure-call analogue.
    fn meet(&mut self, ctx: &mut MeetCtx<'_>, briefcase: Briefcase) -> MeetOutcome;

    /// Called once when the agent is installed at a site (registration or
    /// site recovery).  The default does nothing.
    fn on_install(&mut self, _ctx: &mut MeetCtx<'_>) {}
}

/// A deferred action queued by an agent during a meet and executed by the
/// kernel after the meet returns.
pub enum Action {
    /// Request a meet with `contact` at another site, shipping `briefcase`
    /// over the network (this is how migration, couriers and diffusion move).
    RemoteMeet {
        /// Destination site.
        to: SiteId,
        /// Agent to meet there.
        contact: AgentName,
        /// Briefcase to hand over.
        briefcase: Briefcase,
        /// Transport personality to charge the transfer with.
        transport: TransportKind,
    },
    /// Request an asynchronous meet with a local agent (runs after the
    /// current meet completes — the callee "continues concurrently").
    LocalMeet {
        /// Agent to meet at this site.
        contact: AgentName,
        /// Briefcase to hand over.
        briefcase: Briefcase,
    },
    /// Ask the kernel to meet `contact` with `briefcase` after `delay`,
    /// adding a `TIMER` folder holding `key`.
    Timer {
        /// Agent to meet when the timer fires.
        contact: AgentName,
        /// Caller-chosen key, delivered in the `TIMER` folder.
        key: u64,
        /// How long to wait.
        delay: Duration,
        /// Briefcase to deliver.
        briefcase: Briefcase,
    },
    /// Install a new native agent at this site (used by brokers creating
    /// protected-agent relays and by the fault-tolerance layer installing
    /// rear guards).
    RegisterAgent {
        /// The agent to install.
        agent: Box<dyn Agent>,
    },
    /// Flush a named cabinet to the site's stable store so it survives a
    /// crash ("file cabinets can be flushed to disk when permanence is
    /// required", §6).
    FlushCabinet {
        /// The cabinet to snapshot.
        name: String,
    },
    /// Remove a named agent from this site (e.g. a rear guard retiring itself).
    Unregister {
        /// The agent to remove.
        name: AgentName,
    },
}

impl std::fmt::Debug for Action {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Action::RemoteMeet {
                to,
                contact,
                briefcase,
                transport,
            } => f
                .debug_struct("RemoteMeet")
                .field("to", to)
                .field("contact", contact)
                .field("folders", &briefcase.len())
                .field("transport", transport)
                .finish(),
            Action::LocalMeet { contact, briefcase } => f
                .debug_struct("LocalMeet")
                .field("contact", contact)
                .field("folders", &briefcase.len())
                .finish(),
            Action::Timer {
                contact,
                key,
                delay,
                ..
            } => f
                .debug_struct("Timer")
                .field("contact", contact)
                .field("key", key)
                .field("delay", delay)
                .finish(),
            Action::RegisterAgent { agent } => f
                .debug_struct("RegisterAgent")
                .field("name", &agent.name())
                .finish(),
            Action::FlushCabinet { name } => {
                f.debug_struct("FlushCabinet").field("name", name).finish()
            }
            Action::Unregister { name } => {
                f.debug_struct("Unregister").field("name", name).finish()
            }
        }
    }
}

/// A registered agent slot: the agent plus its instance id.
pub struct RegisteredAgent {
    /// Unique instance id of this agent.
    pub id: AgentId,
    /// The agent itself.
    pub agent: Box<dyn Agent>,
}

/// The per-site registry of native agents, addressed by name.
///
/// The registry supports *taking* an agent out while it executes a meet so
/// that nested local meets (A meets B, B meets C) work without aliasing; a
/// nested meet of an agent that is already executing fails with
/// [`TacomaError::AgentBusy`].
#[derive(Default)]
pub struct AgentRegistry {
    slots: BTreeMap<AgentName, Option<RegisteredAgent>>,
}

impl AgentRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs an agent, replacing any previous agent of the same name.
    pub fn install(&mut self, registered: RegisteredAgent) {
        self.slots.insert(registered.agent.name(), Some(registered));
    }

    /// Removes an agent by name.
    pub fn remove(&mut self, name: &AgentName) -> Option<RegisteredAgent> {
        self.slots.remove(name).flatten()
    }

    /// Whether an agent with the given name is registered (busy or not).
    pub fn contains(&self, name: &AgentName) -> bool {
        self.slots.contains_key(name)
    }

    /// Names of all registered agents.
    pub fn names(&self) -> Vec<AgentName> {
        self.slots.keys().cloned().collect()
    }

    /// Number of registered agents.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Takes an agent out for execution.
    pub fn take(&mut self, name: &AgentName, site: SiteId) -> Result<RegisteredAgent, TacomaError> {
        match self.slots.get_mut(name) {
            None => Err(TacomaError::NoSuchAgent {
                name: name.clone(),
                site,
            }),
            Some(slot) => slot
                .take()
                .ok_or_else(|| TacomaError::AgentBusy(name.clone())),
        }
    }

    /// Puts an agent back after execution.
    pub fn put_back(&mut self, registered: RegisteredAgent) {
        let name = registered.agent.name();
        // If the agent unregistered itself during the meet the slot is gone;
        // respect that and drop the instance.
        if let Some(slot) = self.slots.get_mut(&name) {
            *slot = Some(registered);
        }
    }

    /// Clears every slot (site crash).
    pub fn clear(&mut self) {
        self.slots.clear();
    }
}

/// Kernel services available to an agent during a meet.
pub struct MeetCtx<'a> {
    /// Site where the meet executes.
    pub(crate) site: SiteId,
    /// Current simulated time.
    pub(crate) now: SimTime,
    /// Instance id of the executing agent.
    pub(crate) agent_id: AgentId,
    /// Site the meet request originated from (equals `site` for local meets).
    pub(crate) origin: SiteId,
    /// Instance id of the requesting agent ([`AgentId::SYSTEM`] for injected meets).
    pub(crate) sender: AgentId,
    /// Nested meet depth.
    pub(crate) depth: u32,
    pub(crate) cabinets: &'a mut CabinetStore,
    pub(crate) registry: &'a mut AgentRegistry,
    pub(crate) outbox: &'a mut Vec<Action>,
    pub(crate) rng: &'a mut DetRng,
    pub(crate) neighbors: &'a [SiteId],
    pub(crate) alive: &'a [bool],
    pub(crate) reachable: &'a [bool],
    pub(crate) custody: bool,
    pub(crate) trace: &'a mut Vec<String>,
}

impl<'a> MeetCtx<'a> {
    /// The site this meet executes at.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Instance id of the executing agent.
    pub fn agent_id(&self) -> AgentId {
        self.agent_id
    }

    /// Site the meet request originated from.
    pub fn origin(&self) -> SiteId {
        self.origin
    }

    /// Instance id of the agent that requested the meet.
    pub fn sender(&self) -> AgentId {
        self.sender
    }

    /// Total number of sites in the system.
    pub fn site_count(&self) -> u32 {
        self.alive.len() as u32
    }

    /// Neighbouring sites of this site in the network topology.
    pub fn neighbors(&self) -> &[SiteId] {
        self.neighbors
    }

    /// Whether a site is currently believed to be up.
    ///
    /// This models the membership information a Horus-style group layer
    /// provides; the fault-tolerance crate documents the assumption.
    pub fn site_is_up(&self, site: SiteId) -> bool {
        self.alive.get(site.index()).copied().unwrap_or(false)
    }

    /// Whether a site is currently *reachable* from this one over live,
    /// unpartitioned links.  A site can be up yet unreachable (partition):
    /// with custody enabled a message to it is parked, not lost, so rear
    /// guards should wait instead of relaunching.  When the system does not
    /// track reachability (custody disabled) this falls back to
    /// [`MeetCtx::site_is_up`].
    pub fn site_is_reachable(&self, site: SiteId) -> bool {
        if self.reachable.is_empty() {
            return self.site_is_up(site);
        }
        self.reachable.get(site.index()).copied().unwrap_or(false)
    }

    /// Whether store-and-forward custody is enabled: remote meets to
    /// unreachable sites are parked and delivered after the partition heals
    /// (or expire after their TTL) instead of failing fast.
    pub fn custody_enabled(&self) -> bool {
        self.custody
    }

    /// Deterministic per-site random number generator.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Access to a named file cabinet at this site (created if absent).
    pub fn cabinet(&mut self, name: &str) -> &mut FileCabinet {
        self.cabinets.cabinet(name)
    }

    /// Whether a cabinet with the given name exists at this site.
    pub fn has_cabinet(&self, name: &str) -> bool {
        self.cabinets.contains(name)
    }

    /// Names of the agents registered at this site.
    pub fn local_agents(&self) -> Vec<AgentName> {
        self.registry.names()
    }

    /// Whether an agent with the given name is registered at this site.
    pub fn has_agent(&self, name: &AgentName) -> bool {
        self.registry.contains(name)
    }

    /// Executes a nested, synchronous meet with another agent at this site.
    ///
    /// This is the paper's `meet B with bc` when both agents are co-located.
    /// The callee's deferred actions join the same outbox and run after the
    /// outermost meet completes.
    pub fn meet_local(&mut self, contact: &AgentName, briefcase: Briefcase) -> MeetOutcome {
        if self.depth >= MAX_MEET_DEPTH {
            return Err(TacomaError::BudgetExceeded(format!(
                "meet depth {} exceeded at {}",
                MAX_MEET_DEPTH, self.site
            )));
        }
        let mut registered = self.registry.take(contact, self.site)?;
        let mut child = MeetCtx {
            site: self.site,
            now: self.now,
            agent_id: registered.id,
            origin: self.site,
            sender: self.agent_id,
            depth: self.depth + 1,
            cabinets: &mut *self.cabinets,
            registry: &mut *self.registry,
            outbox: &mut *self.outbox,
            rng: &mut *self.rng,
            neighbors: self.neighbors,
            alive: self.alive,
            reachable: self.reachable,
            custody: self.custody,
            trace: &mut *self.trace,
        };
        let outcome = registered.agent.meet(&mut child, briefcase);
        self.registry.put_back(registered);
        outcome
    }

    /// Queues a meet with an agent at another site; the briefcase travels over
    /// the network after the current meet returns.
    pub fn remote_meet(
        &mut self,
        to: SiteId,
        contact: AgentName,
        briefcase: Briefcase,
        transport: TransportKind,
    ) {
        self.outbox.push(Action::RemoteMeet {
            to,
            contact,
            briefcase,
            transport,
        });
    }

    /// Queues an asynchronous meet with a local agent, run after the current
    /// meet completes.
    pub fn local_meet_async(&mut self, contact: AgentName, briefcase: Briefcase) {
        self.outbox.push(Action::LocalMeet { contact, briefcase });
    }

    /// Schedules a meet with `contact` after `delay`; the delivered briefcase
    /// gains a `TIMER` folder holding `key`.
    pub fn schedule(
        &mut self,
        contact: AgentName,
        key: u64,
        delay: Duration,
        briefcase: Briefcase,
    ) {
        self.outbox.push(Action::Timer {
            contact,
            key,
            delay,
            briefcase,
        });
    }

    /// Installs a new native agent at this site after the meet completes.
    pub fn spawn_agent(&mut self, agent: Box<dyn Agent>) {
        self.outbox.push(Action::RegisterAgent { agent });
    }

    /// Removes a named agent from this site after the meet completes.
    pub fn unregister_agent(&mut self, name: AgentName) {
        self.outbox.push(Action::Unregister { name });
    }

    /// Flushes a cabinet to stable storage so it survives site crashes.
    pub fn flush_cabinet(&mut self, name: impl Into<String>) {
        self.outbox.push(Action::FlushCabinet { name: name.into() });
    }

    /// Appends a line to the system trace (visible via `TacomaSystem::trace`).
    pub fn log(&mut self, message: impl Into<String>) {
        let line = format!("[{} {}] {}", self.now, self.site, message.into());
        self.trace.push(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::folder::Folder;

    struct Echo;
    impl Agent for Echo {
        fn name(&self) -> AgentName {
            AgentName::new("echo")
        }
        fn meet(&mut self, _ctx: &mut MeetCtx<'_>, mut bc: Briefcase) -> MeetOutcome {
            bc.put_string("ECHOED", "yes");
            Ok(bc)
        }
    }

    struct Caller;
    impl Agent for Caller {
        fn name(&self) -> AgentName {
            AgentName::new("caller")
        }
        fn meet(&mut self, ctx: &mut MeetCtx<'_>, bc: Briefcase) -> MeetOutcome {
            ctx.meet_local(&AgentName::new("echo"), bc)
        }
    }

    struct SelfMeet;
    impl Agent for SelfMeet {
        fn name(&self) -> AgentName {
            AgentName::new("narcissist")
        }
        fn meet(&mut self, ctx: &mut MeetCtx<'_>, bc: Briefcase) -> MeetOutcome {
            ctx.meet_local(&AgentName::new("narcissist"), bc)
        }
    }

    fn run_meet(
        registry: &mut AgentRegistry,
        cabinets: &mut CabinetStore,
        name: &str,
        bc: Briefcase,
    ) -> (MeetOutcome, Vec<Action>) {
        let mut outbox = Vec::new();
        let mut rng = DetRng::new(1);
        let mut trace = Vec::new();
        let alive = [true, true];
        let neighbors = [SiteId(1)];
        let name = AgentName::new(name);
        let mut registered = registry.take(&name, SiteId(0)).expect("agent exists");
        let mut ctx = MeetCtx {
            site: SiteId(0),
            now: SimTime::ZERO,
            agent_id: registered.id,
            origin: SiteId(0),
            sender: AgentId::SYSTEM,
            depth: 0,
            cabinets,
            registry,
            outbox: &mut outbox,
            rng: &mut rng,
            neighbors: &neighbors,
            alive: &alive,
            reachable: &[],
            custody: false,
            trace: &mut trace,
        };
        let outcome = registered.agent.meet(&mut ctx, bc);
        registry.put_back(registered);
        (outcome, outbox)
    }

    fn registry_with(agents: Vec<Box<dyn Agent>>) -> AgentRegistry {
        let mut reg = AgentRegistry::new();
        for (i, agent) in agents.into_iter().enumerate() {
            reg.install(RegisteredAgent {
                id: AgentId(i as u64 + 1),
                agent,
            });
        }
        reg
    }

    #[test]
    fn registry_take_and_put_back() {
        let mut reg = registry_with(vec![Box::new(Echo)]);
        assert_eq!(reg.len(), 1);
        assert!(reg.contains(&AgentName::new("echo")));
        let taken = reg.take(&AgentName::new("echo"), SiteId(0)).unwrap();
        // While taken, the agent is busy.
        assert!(matches!(
            reg.take(&AgentName::new("echo"), SiteId(0)),
            Err(TacomaError::AgentBusy(_))
        ));
        reg.put_back(taken);
        assert!(reg.take(&AgentName::new("echo"), SiteId(0)).is_ok());
    }

    #[test]
    fn unknown_agent_is_reported_with_site() {
        let mut reg = AgentRegistry::new();
        let err = match reg.take(&AgentName::new("ghost"), SiteId(3)) {
            Err(e) => e,
            Ok(_) => panic!("ghost agent should not exist"),
        };
        assert!(matches!(err, TacomaError::NoSuchAgent { .. }));
        assert!(err.to_string().contains("site3"));
    }

    #[test]
    fn nested_local_meet_works() {
        let mut reg = registry_with(vec![Box::new(Echo), Box::new(Caller)]);
        let mut cabs = CabinetStore::new();
        let (outcome, outbox) = run_meet(&mut reg, &mut cabs, "caller", Briefcase::new());
        let bc = outcome.unwrap();
        assert_eq!(bc.peek_string("ECHOED").as_deref(), Some("yes"));
        assert!(outbox.is_empty());
        // Both agents are back in their slots afterwards.
        assert!(reg.take(&AgentName::new("echo"), SiteId(0)).is_ok());
    }

    #[test]
    fn self_meet_is_reported_busy() {
        let mut reg = registry_with(vec![Box::new(SelfMeet)]);
        let mut cabs = CabinetStore::new();
        let (outcome, _) = run_meet(&mut reg, &mut cabs, "narcissist", Briefcase::new());
        assert!(matches!(outcome, Err(TacomaError::AgentBusy(_))));
    }

    #[test]
    fn ctx_actions_are_queued() {
        struct Queuer;
        impl Agent for Queuer {
            fn name(&self) -> AgentName {
                AgentName::new("queuer")
            }
            fn meet(&mut self, ctx: &mut MeetCtx<'_>, bc: Briefcase) -> MeetOutcome {
                ctx.remote_meet(
                    SiteId(1),
                    AgentName::new("rexec"),
                    Briefcase::new(),
                    TransportKind::Tcp,
                );
                ctx.schedule(
                    AgentName::new("queuer"),
                    42,
                    Duration::from_millis(5),
                    Briefcase::new(),
                );
                ctx.local_meet_async(AgentName::new("queuer"), Briefcase::new());
                ctx.flush_cabinet("state");
                ctx.unregister_agent(AgentName::new("queuer"));
                ctx.spawn_agent(Box::new(Echo));
                ctx.log("queued everything");
                Ok(bc)
            }
        }
        let mut reg = registry_with(vec![Box::new(Queuer)]);
        let mut cabs = CabinetStore::new();
        let (outcome, outbox) = run_meet(&mut reg, &mut cabs, "queuer", Briefcase::new());
        assert!(outcome.is_ok());
        assert_eq!(outbox.len(), 6);
        let debug = format!("{outbox:?}");
        assert!(debug.contains("RemoteMeet"));
        assert!(debug.contains("Timer"));
        assert!(debug.contains("RegisterAgent"));
    }

    #[test]
    fn ctx_exposes_site_information() {
        struct Inspector;
        impl Agent for Inspector {
            fn name(&self) -> AgentName {
                AgentName::new("inspector")
            }
            fn meet(&mut self, ctx: &mut MeetCtx<'_>, mut bc: Briefcase) -> MeetOutcome {
                bc.put_u64("SITES", ctx.site_count() as u64);
                bc.put_u64("NEIGHBORS", ctx.neighbors().len() as u64);
                bc.put_string(
                    "UP1",
                    if ctx.site_is_up(SiteId(1)) {
                        "yes"
                    } else {
                        "no"
                    },
                );
                bc.put_string(
                    "HAS_SELF",
                    if ctx.has_agent(&AgentName::new("inspector")) {
                        "yes"
                    } else {
                        "no"
                    },
                );
                let mut f = Folder::new();
                f.push_u64(ctx.rng().next_u64());
                bc.put("RANDOM", f);
                ctx.cabinet("notes").append_str("LOG", "visited");
                Ok(bc)
            }
        }
        let mut reg = registry_with(vec![Box::new(Inspector)]);
        let mut cabs = CabinetStore::new();
        let (outcome, _) = run_meet(&mut reg, &mut cabs, "inspector", Briefcase::new());
        let bc = outcome.unwrap();
        assert_eq!(bc.peek_u64("SITES"), Some(2));
        assert_eq!(bc.peek_u64("NEIGHBORS"), Some(1));
        assert_eq!(bc.peek_string("UP1").as_deref(), Some("yes"));
        // The inspector's own slot is empty (taken) during its meet.
        assert_eq!(bc.peek_string("HAS_SELF").as_deref(), Some("yes"));
        assert!(cabs.contains("notes"));
    }
}
