//! File cabinets: site-local folder groupings.
//!
//! The paper (§2) distinguishes the folders an agent carries (its briefcase)
//! from *site-local* folders that stay behind: they "allow more efficient use
//! of network bandwidth" and "allow communication between agents that are not
//! simultaneously resident at a given site".  Groupings of site-local folders
//! are called *file cabinets*; unlike briefcases, cabinets are rarely moved,
//! so they may be implemented with structures that optimise access time even
//! if that makes them more expensive to move.  The prototype (§6) notes that
//! cabinets "can be flushed to disk when permanence is required".
//!
//! Our [`FileCabinet`] keeps, besides the folders themselves, an inverted
//! index from element bytes to folder names — deliberately the kind of
//! access-accelerating structure the paper says briefcases must *not* carry —
//! and supports snapshot/restore to model flushing to stable storage.

use crate::folder::{Folder, FolderElem};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A site-local grouping of named folders with an access index.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileCabinet {
    folders: BTreeMap<String, Folder>,
    /// Inverted index: element bytes → names of folders containing them.
    index: BTreeMap<FolderElem, BTreeSet<String>>,
    /// Access statistics (reads + writes), used by the E4 experiment.
    accesses: u64,
}

impl FileCabinet {
    /// Creates an empty cabinet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of folders in the cabinet.
    pub fn len(&self) -> usize {
        self.folders.len()
    }

    /// Whether the cabinet holds no folders.
    pub fn is_empty(&self) -> bool {
        self.folders.is_empty()
    }

    /// Whether a folder with the given name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.folders.contains_key(name)
    }

    /// Read access to a folder.
    pub fn folder(&mut self, name: &str) -> Option<&Folder> {
        self.accesses += 1;
        self.folders.get(name)
    }

    /// Read access to a folder without touching the access counter (used by
    /// experiment drivers and assertions that inspect state from outside the
    /// agent world).
    pub fn folder_ref(&self, name: &str) -> Option<&Folder> {
        self.folders.get(name)
    }

    /// Appends an element to a named folder, creating the folder if needed.
    pub fn append(&mut self, name: &str, elem: impl Into<FolderElem>) {
        self.accesses += 1;
        let elem = elem.into();
        self.index
            .entry(elem.clone())
            .or_default()
            .insert(name.to_string());
        self.folders.entry(name.to_string()).or_default().push(elem);
    }

    /// Appends a string element to a named folder.
    pub fn append_str(&mut self, name: &str, s: impl AsRef<str>) {
        self.append(name, s.as_ref().as_bytes().to_vec());
    }

    /// Replaces a folder wholesale (rebuilding index entries).
    pub fn put(&mut self, name: impl Into<String>, folder: Folder) {
        self.accesses += 1;
        let name = name.into();
        self.remove_from_index(&name);
        for elem in folder.iter() {
            self.index
                .entry(elem.clone())
                .or_default()
                .insert(name.clone());
        }
        self.folders.insert(name, folder);
    }

    /// Removes and returns a folder.
    pub fn take(&mut self, name: &str) -> Option<Folder> {
        self.accesses += 1;
        self.remove_from_index(name);
        self.folders.remove(name)
    }

    /// Pops the last element of a named folder (stack discipline).
    pub fn pop(&mut self, name: &str) -> Option<FolderElem> {
        self.accesses += 1;
        let folder = self.folders.get_mut(name)?;
        let elem = folder.pop()?;
        // An identical element may appear in the folder more than once; only
        // drop the index entry when the last copy is gone.
        if !folder.contains_elem(&elem) {
            if let Some(set) = self.index.get_mut(&elem) {
                set.remove(name);
                if set.is_empty() {
                    self.index.remove(&elem);
                }
            }
        }
        Some(elem)
    }

    /// Dequeues the first element of a named folder (queue discipline).
    pub fn dequeue(&mut self, name: &str) -> Option<FolderElem> {
        self.accesses += 1;
        let folder = self.folders.get_mut(name)?;
        let elem = folder.dequeue()?;
        if !folder.contains_elem(&elem) {
            if let Some(set) = self.index.get_mut(&elem) {
                set.remove(name);
                if set.is_empty() {
                    self.index.remove(&elem);
                }
            }
        }
        Some(elem)
    }

    /// Whether any folder of the cabinet contains the given element — an
    /// indexed lookup, O(log n), the access-time optimisation cabinets are
    /// allowed to have.
    pub fn contains_elem(&mut self, elem: &[u8]) -> bool {
        self.accesses += 1;
        self.index.contains_key(elem)
    }

    /// Whether a *specific folder* contains the element (still indexed).
    pub fn folder_contains(&mut self, name: &str, elem: &[u8]) -> bool {
        self.accesses += 1;
        self.index
            .get(elem)
            .map(|set| set.contains(name))
            .unwrap_or(false)
    }

    /// Names of all folders, in order.
    pub fn names(&self) -> Vec<&str> {
        self.folders.keys().map(|k| k.as_str()).collect()
    }

    /// Total payload bytes stored in the cabinet (excluding the index).
    pub fn payload_bytes(&self) -> usize {
        self.folders
            .iter()
            .map(|(k, v)| k.len() + v.payload_bytes())
            .sum()
    }

    /// Number of access operations performed since creation or restore.
    pub fn access_count(&self) -> u64 {
        self.accesses
    }

    /// Serializes the cabinet's folders to a stable-storage snapshot
    /// ("flushed to disk when permanence is required", §6).  The index is not
    /// stored; it is rebuilt on restore.
    pub fn snapshot(&self) -> Vec<u8> {
        let bc: crate::briefcase::Briefcase = self
            .folders
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        crate::codec::encode_briefcase(&bc)
    }

    /// Rebuilds a cabinet from a snapshot produced by [`FileCabinet::snapshot`].
    pub fn restore(snapshot: &[u8]) -> Result<Self, crate::error::TacomaError> {
        let bc = crate::codec::decode_briefcase(snapshot)?;
        let mut cab = FileCabinet::new();
        for (name, folder) in bc.iter() {
            cab.put(name.to_string(), folder.clone());
        }
        cab.accesses = 0;
        Ok(cab)
    }

    /// The cost (in bytes) of moving this cabinet to another site: the
    /// snapshot plus the rebuilt index, making cabinets measurably more
    /// expensive to move than briefcases of the same content (E4).
    pub fn move_cost_bytes(&self) -> usize {
        let index_bytes: usize = self
            .index
            .iter()
            .map(|(elem, names)| elem.len() + names.iter().map(|n| n.len() + 8).sum::<usize>())
            .sum();
        self.snapshot().len() + index_bytes
    }

    fn remove_from_index(&mut self, name: &str) {
        if let Some(folder) = self.folders.get(name) {
            for elem in folder.iter() {
                if let Some(set) = self.index.get_mut(elem) {
                    set.remove(name);
                    if set.is_empty() {
                        self.index.remove(elem);
                    }
                }
            }
        }
    }
}

/// All file cabinets of one site, keyed by cabinet name.
///
/// The paper groups site-local folders into cabinets; a site may have several
/// (the scheduling service and the mail application each keep their own).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CabinetStore {
    cabinets: BTreeMap<String, FileCabinet>,
}

impl CabinetStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Access to a cabinet, creating it empty if absent.
    pub fn cabinet(&mut self, name: &str) -> &mut FileCabinet {
        self.cabinets.entry(name.to_string()).or_default()
    }

    /// Read-only access to a cabinet if it exists.
    pub fn get(&self, name: &str) -> Option<&FileCabinet> {
        self.cabinets.get(name)
    }

    /// Whether a cabinet with the given name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.cabinets.contains_key(name)
    }

    /// Inserts (or replaces) a whole cabinet under the given name.
    pub fn put_cabinet(&mut self, name: impl Into<String>, cabinet: FileCabinet) {
        self.cabinets.insert(name.into(), cabinet);
    }

    /// Names of all cabinets.
    pub fn names(&self) -> Vec<&str> {
        self.cabinets.keys().map(|k| k.as_str()).collect()
    }

    /// Removes every cabinet (volatile state lost in a crash).
    pub fn clear(&mut self) {
        self.cabinets.clear();
    }

    /// Snapshots every cabinet, keyed by name (flush-to-disk for the whole site).
    pub fn snapshot_all(&self) -> BTreeMap<String, Vec<u8>> {
        self.cabinets
            .iter()
            .map(|(name, cab)| (name.clone(), cab.snapshot()))
            .collect()
    }

    /// Restores cabinets from snapshots, replacing current contents.
    pub fn restore_all(
        &mut self,
        snapshots: &BTreeMap<String, Vec<u8>>,
    ) -> Result<(), crate::error::TacomaError> {
        self.cabinets.clear();
        for (name, snap) in snapshots {
            self.cabinets
                .insert(name.clone(), FileCabinet::restore(snap)?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_indexed_lookup() {
        let mut cab = FileCabinet::new();
        cab.append_str("VISITED", "site1");
        cab.append_str("VISITED", "site2");
        assert!(cab.contains_elem(b"site1"));
        assert!(cab.folder_contains("VISITED", b"site2"));
        assert!(!cab.contains_elem(b"site9"));
        assert!(!cab.folder_contains("OTHER", b"site1"));
        assert_eq!(cab.folder("VISITED").unwrap().len(), 2);
        assert!(cab.access_count() > 0);
    }

    #[test]
    fn pop_and_dequeue_update_index() {
        let mut cab = FileCabinet::new();
        cab.append_str("Q", "a");
        cab.append_str("Q", "b");
        assert_eq!(cab.dequeue("Q").unwrap(), b"a");
        assert!(!cab.contains_elem(b"a"));
        assert!(cab.contains_elem(b"b"));
        assert_eq!(cab.pop("Q").unwrap(), b"b");
        assert!(!cab.contains_elem(b"b"));
        assert!(cab.pop("Q").is_none());
        assert!(cab.dequeue("MISSING").is_none());
    }

    #[test]
    fn duplicate_elements_keep_index_until_last_copy_gone() {
        let mut cab = FileCabinet::new();
        cab.append_str("F", "dup");
        cab.append_str("F", "dup");
        cab.pop("F");
        assert!(cab.contains_elem(b"dup"), "one copy remains");
        cab.pop("F");
        assert!(!cab.contains_elem(b"dup"));
    }

    #[test]
    fn put_and_take_rebuild_index() {
        let mut cab = FileCabinet::new();
        cab.put("F", Folder::from_elems([b"x".to_vec(), b"y".to_vec()]));
        assert!(cab.contains_elem(b"x"));
        cab.put("F", Folder::of_str("z"));
        assert!(
            !cab.contains_elem(b"x"),
            "replaced folder's elements leave the index"
        );
        assert!(cab.contains_elem(b"z"));
        let taken = cab.take("F").unwrap();
        assert_eq!(taken.strings(), vec!["z"]);
        assert!(!cab.contains_elem(b"z"));
        assert!(cab.is_empty());
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut cab = FileCabinet::new();
        cab.append_str("MAIL", "msg1");
        cab.append("BLOB", vec![0u8, 1, 2]);
        let snap = cab.snapshot();
        let mut restored = FileCabinet::restore(&snap).unwrap();
        assert_eq!(restored.names(), vec!["BLOB", "MAIL"]);
        assert!(restored.contains_elem(b"msg1"), "index rebuilt on restore");
        assert_eq!(restored.payload_bytes(), cab.payload_bytes());
        assert!(FileCabinet::restore(&snap[..snap.len() - 1]).is_err());
    }

    #[test]
    fn move_cost_exceeds_snapshot_size() {
        let mut cab = FileCabinet::new();
        for i in 0..100 {
            cab.append_str("DATA", format!("element-{i}"));
        }
        assert!(cab.move_cost_bytes() > cab.snapshot().len());
    }

    #[test]
    fn cabinet_store_lifecycle() {
        let mut store = CabinetStore::new();
        store.cabinet("scheduler").append_str("LOAD", "0.5");
        store.cabinet("mail").append_str("INBOX", "hello");
        assert!(store.contains("scheduler"));
        assert_eq!(store.names(), vec!["mail", "scheduler"]);
        assert!(store.get("mail").is_some());
        assert!(store.get("nope").is_none());

        let snaps = store.snapshot_all();
        store.clear();
        assert!(store.names().is_empty());
        store.restore_all(&snaps).unwrap();
        assert!(store.cabinet("mail").contains_elem(b"hello"));
    }
}
