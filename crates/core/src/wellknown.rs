//! Well-known folder and agent names used by the TACOMA conventions.
//!
//! The paper's system agents communicate through folders with conventional
//! names: `rexec` expects a `HOST` and a `CONTACT` folder, interpreters expect
//! a `CODE` folder, the diffusion agent keeps a `SITES` folder both in its
//! briefcase and site-locally, and so on.  Centralising the names here keeps
//! the crates from drifting apart on spelling.

/// Folder holding the source text of a script agent.
pub const CODE: &str = "CODE";
/// Folder naming the destination site of a migration (one element, the site id).
pub const HOST: &str = "HOST";
/// Folder naming the agent to execute at the destination of a migration.
pub const CONTACT: &str = "CONTACT";
/// Folder listing site ids (diffusion's visited set, itineraries, ...).
pub const SITES: &str = "SITES";
/// Folder carrying the remaining itinerary of a travelling agent.
pub const ITINERARY: &str = "ITINERARY";
/// Folder carrying an agent's accumulated results.
pub const RESULTS: &str = "RESULTS";
/// Folder carrying a request payload for a service agent.
pub const REQUEST: &str = "REQUEST";
/// Folder carrying a reply payload from a service agent.
pub const REPLY: &str = "REPLY";
/// Folder carrying electronic cash (ECU records).
pub const CASH: &str = "CASH";
/// Folder collecting signed action records for later audits.
pub const RECEIPTS: &str = "RECEIPTS";
/// Folder identifying the original requester (site and agent name) of a task.
pub const ORIGIN: &str = "ORIGIN";
/// Folder carrying a timer key when the kernel fires a scheduled meet.
pub const TIMER: &str = "TIMER";
/// Folder carrying an error description when a meet is refused or fails.
pub const ERROR: &str = "ERROR";
/// Folder naming the transport personality a migration should use.
pub const TRANSPORT: &str = "TRANSPORT";
/// Folder re-pointing a monitor (or client) at a new broker site after a
/// failover; holds the adopting broker's site id.
pub const REHOME: &str = "REHOME";
/// Folder instructing a broker to adopt another broker's provider shard;
/// holds the orphaned shard's id.
pub const ADOPT: &str = "ADOPT";
/// Folder carrying an aggregated shard digest between federated brokers.
pub const DIGEST: &str = "DIGEST";
/// Folder naming a broker federation shard.
pub const SHARD: &str = "SHARD";
/// Folder carrying the statically proven worst-case step bound of the
/// briefcase's `CODE` script, stamped by the cost gate at admission.
pub const COST: &str = "COST";

/// The interpreter agent that executes `CODE` folders (the prototype's `ag_tcl`).
pub const AG_TAC: &str = "ag_tac";
/// The migration agent (expects `HOST` and `CONTACT`).
pub const REXEC: &str = "rexec";
/// The folder-transfer agent.
pub const COURIER: &str = "courier";
/// The flooding agent.
pub const DIFFUSION: &str = "diffusion";
/// The matchmaking/scheduling broker.
pub const BROKER: &str = "broker";
/// The load-monitoring agent.
pub const MONITOR: &str = "monitor";
/// The admission-ticket agent of the scheduling service.
pub const TICKET: &str = "ticket";
/// The validation (mint) agent of the electronic-cash subsystem.
pub const MINT: &str = "mint";
/// The audit-court agent of the exchange protocol.
pub const COURT: &str = "court";
/// The failover guard watching a federated broker (see `tacoma_ft`).
pub const BROKER_GUARD: &str = "broker_guard";

/// Every well-known agent name, for building `meet`-target allowlists (the
/// taco-vet gate and CLI seed their known-agent sets from this).
pub const AGENTS: &[&str] = &[
    AG_TAC,
    REXEC,
    COURIER,
    DIFFUSION,
    BROKER,
    MONITOR,
    TICKET,
    MINT,
    COURT,
    BROKER_GUARD,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        let folders = [
            CODE, HOST, CONTACT, SITES, ITINERARY, RESULTS, REQUEST, REPLY, CASH, RECEIPTS, ORIGIN,
            TIMER, ERROR, TRANSPORT, REHOME, ADOPT, DIGEST, SHARD,
        ];
        let mut sorted = folders.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), folders.len());

        let mut sorted = AGENTS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), AGENTS.len());
    }
}
