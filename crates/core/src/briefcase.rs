//! Briefcases: the named folder collections that travel with agents.
//!
//! The paper (§2) associates a *briefcase* with each agent so that "its future
//! actions \[can\] depend on its past ones", and uses a briefcase as the
//! argument list of a `meet` (each folder is one argument).  A briefcase must
//! be cheap to serialize and ship, since that happens on every migration.

use crate::folder::Folder;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A collection of named folders.
///
/// Folder names are ordinary strings; lookups are by exact name.  The map is
/// ordered (`BTreeMap`) so serialization and wire sizes are deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Briefcase {
    folders: BTreeMap<String, Folder>,
}

impl Briefcase {
    /// Creates an empty briefcase.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of folders in the briefcase.
    pub fn len(&self) -> usize {
        self.folders.len()
    }

    /// Whether the briefcase holds no folders.
    pub fn is_empty(&self) -> bool {
        self.folders.is_empty()
    }

    /// Whether a folder with the given name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.folders.contains_key(name)
    }

    /// Read access to a folder, if present.
    pub fn folder(&self, name: &str) -> Option<&Folder> {
        self.folders.get(name)
    }

    /// Mutable access to a folder, creating an empty one if absent.
    pub fn folder_mut(&mut self, name: &str) -> &mut Folder {
        self.folders.entry(name.to_string()).or_default()
    }

    /// Inserts (or replaces) a folder under the given name.
    pub fn put(&mut self, name: impl Into<String>, folder: Folder) -> Option<Folder> {
        self.folders.insert(name.into(), folder)
    }

    /// Removes and returns a folder.
    pub fn take(&mut self, name: &str) -> Option<Folder> {
        self.folders.remove(name)
    }

    /// Removes a folder, returning an error-friendly `Option` of its single
    /// string element (convenience for `HOST`/`CONTACT`-style folders).
    pub fn take_string(&mut self, name: &str) -> Option<String> {
        self.take(name).and_then(|mut f| f.pop_str())
    }

    /// Reads the top string element of a folder without consuming it.
    pub fn peek_string(&self, name: &str) -> Option<String> {
        self.folder(name).and_then(|f| f.peek_str())
    }

    /// Reads the top `u64` element of a folder without consuming it.
    pub fn peek_u64(&self, name: &str) -> Option<u64> {
        self.folder(name).and_then(|f| f.peek_u64())
    }

    /// Convenience: creates/overwrites a folder holding a single string.
    pub fn put_string(&mut self, name: impl Into<String>, value: impl AsRef<str>) {
        self.put(name, Folder::of_str(value));
    }

    /// Convenience: creates/overwrites a folder holding a single `u64`.
    pub fn put_u64(&mut self, name: impl Into<String>, value: u64) {
        let mut f = Folder::new();
        f.push_u64(value);
        self.put(name, f);
    }

    /// Iterates over `(name, folder)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Folder)> {
        self.folders.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The folder names, in order.
    pub fn names(&self) -> Vec<&str> {
        self.folders.keys().map(|k| k.as_str()).collect()
    }

    /// Merges every folder of `other` into this briefcase.  Folders with the
    /// same name are concatenated (other's elements appended).
    pub fn merge(&mut self, other: Briefcase) {
        for (name, mut folder) in other.folders {
            self.folders.entry(name).or_default().append(&mut folder);
        }
    }

    /// Total payload bytes across all folders (excluding framing).
    pub fn payload_bytes(&self) -> usize {
        self.folders
            .iter()
            .map(|(k, v)| k.len() + v.payload_bytes())
            .sum()
    }

    /// The number of bytes this briefcase occupies on the wire when encoded
    /// with the TACOMA codec (see [`crate::codec`]).
    pub fn wire_size(&self) -> usize {
        crate::codec::encode_briefcase(self).len()
    }
}

impl FromIterator<(String, Folder)> for Briefcase {
    fn from_iter<T: IntoIterator<Item = (String, Folder)>>(iter: T) -> Self {
        Briefcase {
            folders: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_take() {
        let mut bc = Briefcase::new();
        assert!(bc.is_empty());
        bc.put_string("HOST", "site3");
        bc.put_u64("HOPS", 4);
        assert_eq!(bc.len(), 2);
        assert!(bc.contains("HOST"));
        assert_eq!(bc.peek_string("HOST").as_deref(), Some("site3"));
        assert_eq!(bc.peek_u64("HOPS"), Some(4));
        assert_eq!(bc.take_string("HOST").as_deref(), Some("site3"));
        assert!(!bc.contains("HOST"));
        assert!(bc.take("HOST").is_none());
    }

    #[test]
    fn folder_mut_creates_on_demand() {
        let mut bc = Briefcase::new();
        bc.folder_mut("RESULTS").push_str("r1");
        bc.folder_mut("RESULTS").push_str("r2");
        assert_eq!(bc.folder("RESULTS").unwrap().len(), 2);
        assert!(bc.folder("MISSING").is_none());
    }

    #[test]
    fn put_replaces_and_returns_old() {
        let mut bc = Briefcase::new();
        bc.put_string("X", "old");
        let old = bc.put("X", Folder::of_str("new")).unwrap();
        assert_eq!(old.strings(), vec!["old"]);
        assert_eq!(bc.peek_string("X").as_deref(), Some("new"));
    }

    #[test]
    fn merge_concatenates_same_name() {
        let mut a = Briefcase::new();
        a.folder_mut("SITES").push_str("site0");
        let mut b = Briefcase::new();
        b.folder_mut("SITES").push_str("site1");
        b.put_string("EXTRA", "e");
        a.merge(b);
        assert_eq!(a.folder("SITES").unwrap().strings(), vec!["site0", "site1"]);
        assert!(a.contains("EXTRA"));
    }

    #[test]
    fn names_are_sorted_and_iteration_matches() {
        let mut bc = Briefcase::new();
        bc.put_string("B", "2");
        bc.put_string("A", "1");
        bc.put_string("C", "3");
        assert_eq!(bc.names(), vec!["A", "B", "C"]);
        let via_iter: Vec<&str> = bc.iter().map(|(n, _)| n).collect();
        assert_eq!(via_iter, vec!["A", "B", "C"]);
    }

    #[test]
    fn payload_and_wire_sizes_grow_with_content() {
        let mut bc = Briefcase::new();
        let empty_wire = bc.wire_size();
        bc.folder_mut("DATA").push(vec![0u8; 1000]);
        assert!(bc.payload_bytes() >= 1000);
        assert!(bc.wire_size() > empty_wire + 1000);
    }

    #[test]
    fn from_iterator() {
        let bc: Briefcase = vec![
            ("A".to_string(), Folder::of_str("x")),
            ("B".to_string(), Folder::of_str("y")),
        ]
        .into_iter()
        .collect();
        assert_eq!(bc.len(), 2);
    }
}
