//! TACOMA core: the operating-system abstractions the paper proposes for
//! mobile agents.
//!
//! The paper's §2 argues that a surprisingly small set of abstractions
//! suffices to support mobile agents:
//!
//! * a **folder** — a named list of uninterpreted byte sequences that can be
//!   used as a stack or a queue ([`folder::Folder`]);
//! * a **briefcase** — the collection of named folders that travels with an
//!   agent and doubles as the argument list of a meet ([`briefcase::Briefcase`]);
//! * a **file cabinet** — a site-local grouping of folders optimised for
//!   access rather than transfer ([`cabinet::FileCabinet`]);
//! * the **meet** operation — one agent causes another to execute, passing a
//!   briefcase, analogous to a procedure call ([`agent::Agent::meet`]).
//!
//! Everything else — migration, couriers, diffusion, brokers, electronic
//! cash — is provided *by other agents* built on these primitives; those live
//! in the `tacoma-agents`, `tacoma-cash`, `tacoma-sched` and `tacoma-ft`
//! crates.  This crate supplies the per-site kernel ([`place::Place`]) and the
//! whole-system driver ([`system::TacomaSystem`]) that executes meets, routes
//! remote meet requests over the simulated network, and applies site failures.
//!
//! # Quick start
//!
//! ```
//! use tacoma_core::prelude::*;
//!
//! // A trivial native agent that counts how many times it has been met.
//! struct Counter { count: u64 }
//! impl Agent for Counter {
//!     fn name(&self) -> AgentName { AgentName::new("counter") }
//!     fn meet(&mut self, _ctx: &mut MeetCtx<'_>, mut bc: Briefcase) -> MeetOutcome {
//!         self.count += 1;
//!         bc.folder_mut("COUNT").push_u64(self.count);
//!         Ok(bc)
//!     }
//! }
//!
//! let mut sys = TacomaSystem::builder()
//!     .topology(tacoma_net::Topology::full_mesh(2, tacoma_net::LinkSpec::default()))
//!     .seed(7)
//!     .build();
//! sys.register_agent(SiteId(0), Box::new(Counter { count: 0 }));
//! sys.inject_meet(SiteId(0), AgentName::new("counter"), Briefcase::new());
//! sys.run_until_quiescent(10_000);
//! assert_eq!(sys.stats().meets_completed, 1);
//! ```

#![warn(missing_docs)]

pub mod agent;
pub mod briefcase;
pub mod cabinet;
pub mod codec;
pub mod error;
pub mod folder;
pub mod place;
pub mod system;
pub mod wellknown;

pub use agent::{Agent, MeetCtx, MeetOutcome};
pub use briefcase::Briefcase;
pub use cabinet::{CabinetStore, FileCabinet};
pub use error::TacomaError;
pub use folder::{Folder, FolderElem};
pub use place::Place;
pub use system::{AdmissionConfig, SystemBuilder, SystemStats, TacomaSystem};

/// Convenient glob import for building agents and systems.
pub mod prelude {
    pub use crate::agent::{Agent, MeetCtx, MeetOutcome};
    pub use crate::briefcase::Briefcase;
    pub use crate::cabinet::FileCabinet;
    pub use crate::error::TacomaError;
    pub use crate::folder::Folder;
    pub use crate::system::{AdmissionConfig, SystemBuilder, TacomaSystem};
    pub use crate::wellknown;
    pub use tacoma_net::{Duration, SimTime, TransportKind};
    pub use tacoma_util::{AgentId, AgentName, SiteId};
}
