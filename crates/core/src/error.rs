//! Error types shared by the TACOMA runtime and its agents.

use tacoma_net::NetError;
use tacoma_util::{AgentName, SiteId};

/// Errors produced by the TACOMA kernel, its codec, and its agents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TacomaError {
    /// No agent with the given name is registered at the site.
    NoSuchAgent {
        /// The name that failed to resolve.
        name: AgentName,
        /// The site where resolution was attempted.
        site: SiteId,
    },
    /// The named agent is already executing a meet (re-entrant meets of the
    /// same agent are not supported, mirroring a single-threaded interpreter
    /// per agent in the prototype).
    AgentBusy(AgentName),
    /// The target site is down.
    SiteDown(SiteId),
    /// A required folder is missing from a briefcase.
    MissingFolder(String),
    /// A folder exists but its contents are malformed for the operation.
    BadFolder {
        /// Folder name.
        name: String,
        /// Why the contents were rejected.
        reason: String,
    },
    /// Wire encoding/decoding failed.
    Codec(String),
    /// The network layer refused or failed the operation.
    Net(String),
    /// A script agent failed to parse or execute.
    Script(String),
    /// An electronic-cash operation was rejected (double spend, bad ECU, ...).
    Cash(String),
    /// An agent explicitly refused the meet (policy, missing payment, ...).
    Refused(String),
    /// The interpreter or kernel exhausted a resource budget.
    BudgetExceeded(String),
    /// Any other error.
    Other(String),
}

impl TacomaError {
    /// Convenience constructor for [`TacomaError::MissingFolder`].
    pub fn missing(name: &str) -> Self {
        TacomaError::MissingFolder(name.to_string())
    }

    /// Convenience constructor for [`TacomaError::BadFolder`].
    pub fn bad_folder(name: &str, reason: impl Into<String>) -> Self {
        TacomaError::BadFolder {
            name: name.to_string(),
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for TacomaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TacomaError::NoSuchAgent { name, site } => {
                write!(f, "no agent named '{name}' at {site}")
            }
            TacomaError::AgentBusy(name) => write!(f, "agent '{name}' is busy"),
            TacomaError::SiteDown(site) => write!(f, "{site} is down"),
            TacomaError::MissingFolder(name) => write!(f, "missing folder '{name}'"),
            TacomaError::BadFolder { name, reason } => {
                write!(f, "bad folder '{name}': {reason}")
            }
            TacomaError::Codec(msg) => write!(f, "codec error: {msg}"),
            TacomaError::Net(msg) => write!(f, "network error: {msg}"),
            TacomaError::Script(msg) => write!(f, "script error: {msg}"),
            TacomaError::Cash(msg) => write!(f, "cash error: {msg}"),
            TacomaError::Refused(msg) => write!(f, "meet refused: {msg}"),
            TacomaError::BudgetExceeded(msg) => write!(f, "budget exceeded: {msg}"),
            TacomaError::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for TacomaError {}

impl From<NetError> for TacomaError {
    fn from(e: NetError) -> Self {
        TacomaError::Net(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TacomaError::NoSuchAgent {
            name: AgentName::new("ghost"),
            site: SiteId(4),
        };
        assert!(e.to_string().contains("ghost"));
        assert!(e.to_string().contains("site4"));
        assert!(TacomaError::missing("CODE").to_string().contains("CODE"));
        assert!(TacomaError::bad_folder("HOST", "not a site id")
            .to_string()
            .contains("not a site id"));
    }

    #[test]
    fn net_error_converts() {
        let net = NetError::DestinationDown(SiteId(2));
        let e: TacomaError = net.into();
        assert!(matches!(e, TacomaError::Net(_)));
        assert!(e.to_string().contains("site2"));
    }
}
