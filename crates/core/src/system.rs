//! The whole-system driver: places wired onto the simulated network.
//!
//! [`TacomaSystem`] owns one [`Place`] per site of a
//! [`tacoma_net::Topology`] plus the [`tacoma_net::SimNet`] event queue, and
//! implements the glue the paper leaves to the operating system:
//!
//! * remote meet requests are encoded with the TACOMA codec, shipped over the
//!   network (charging bytes and latency), and dispatched to the contact
//!   agent at the destination site;
//! * timers become delayed meets carrying a `TIMER` folder;
//! * site crashes destroy the resident agents and unflushed cabinets, and
//!   recoveries re-install the default agent set and restore flushed
//!   cabinets from the stable store;
//! * byte, meet and migration counters are collected for the experiments.

use crate::agent::{Action, Agent};
use crate::briefcase::Briefcase;
use crate::codec::{self, MeetRequest};
use crate::error::TacomaError;
use crate::place::{DispatchEnv, Place};
use crate::wellknown;
use std::collections::{BTreeMap, VecDeque};
use tacoma_net::{
    CustodyConfig, Duration, Event, FailurePlan, LinkSpec, NetMetrics, SendOptions, SimNet,
    SimTime, Topology, TransportKind,
};
use tacoma_util::{AgentId, AgentIdGen, AgentName, DetRng, SiteId};

/// Message kind used on the wire for meet requests.
const KIND_MEET: u16 = 1;

/// Timer-key bit marking an admission-service completion (see
/// [`AdmissionConfig`]); the low bits carry the usual monotone counter.
const SERVICE_KEY_FLAG: u64 = 1 << 63;

/// Timer key reserved for the janitor sweep tick.
const JANITOR_KEY: u64 = 1 << 62;

/// A factory that produces the default agents installed at every site (and
/// re-installed after a recovery).
pub type AgentFactory = Box<dyn Fn(SiteId) -> Vec<Box<dyn Agent>>>;

/// Whole-run counters kept by the system driver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SystemStats {
    /// Meets requested (injected, remote, local-async and timer-driven).
    pub meets_requested: u64,
    /// Meets that completed successfully.
    pub meets_completed: u64,
    /// Meets that returned an error.
    pub meets_failed: u64,
    /// Remote meet requests shipped over the network.
    pub remote_meets: u64,
    /// Local asynchronous meets executed.
    pub local_meets: u64,
    /// Timer meets fired.
    pub timer_meets: u64,
    /// Remote sends that failed (unreachable or dead destination, or a full
    /// custody queue when custody is enabled).
    pub send_failures: u64,
    /// Custodied meets that expired undelivered (terminal, like a failure,
    /// but attributable to the network rather than the contact agent).
    pub meets_expired: u64,
    /// Meets shed by a bounded admission queue ([`AdmissionConfig`]): the
    /// request reached its place but the place pushed back — queue full,
    /// admission deadline exceeded (janitor sweep), or the site crashed with
    /// the meet still queued.  A terminal outcome: with admission enabled the
    /// conservation invariant reads `requested == completed + failed +
    /// send_failures + expired + shed`.
    pub meets_shed: u64,
    /// Agents installed across all sites (including recoveries).
    pub agents_installed: u64,
    /// Script agents rejected by the install-time `taco-vet` gate: their CODE
    /// folder failed static analysis, so the meet was refused before any
    /// request was queued (not counted in `meets_requested`).
    pub scripts_rejected: u64,
    /// Script agents rejected by the install-time fleet audit
    /// ([`SystemBuilder::audit_fleet`]): the CODE folder vetted clean in
    /// isolation but composed badly with the declared fleet (unproduced
    /// folder reads, out-of-range itineraries, meet livelocks).  Like
    /// `scripts_rejected`, the refusal happens before the meet is counted in
    /// `meets_requested`.
    pub audits_rejected: u64,
    /// Script agents rejected by the install-time cost gate
    /// ([`SystemBuilder::cost_gate`]): static analysis proved the CODE
    /// folder's cost bound violates the configured step/depth budget.  Like
    /// `scripts_rejected`, the refusal happens before the meet is counted in
    /// `meets_requested`.
    pub costs_rejected: u64,
    /// Site crashes observed.
    pub crashes: u64,
    /// Site recoveries observed.
    pub recoveries: u64,
    /// Cabinet flushes to stable storage.
    pub cabinet_flushes: u64,
}

/// Backpressure configuration: bounded per-place meet admission queues.
///
/// Without admission control (the default) a delivered meet request is
/// dispatched the instant it arrives — fine for closed workloads that drain
/// to zero, meaningless under open arrivals where offered load can exceed
/// service capacity indefinitely.  With admission control every place gains:
///
/// * a **bounded FIFO admission queue** (`capacity`); a request arriving at a
///   full queue is *shed* — a terminal outcome counted in
///   [`SystemStats::meets_shed`] and folded into the meet-conservation
///   invariant, never silently dropped;
/// * a **service model**: one meet is dispatched at a time per place, holding
///   the server for `service_floor + service_per_kib × ⌈encoded size⌉` of
///   simulated time, so queueing delay is real and p99/p999 waits mean
///   something;
/// * a **janitor sweep** every `janitor_period`: entries that have waited
///   past `deadline` are shed (better a fast no than a useless late yes);
///   the sweep disarms itself when every queue is empty, so closed runs
///   still quiesce.
///
/// Waits and sheds are recorded in the simulator's
/// [`tacoma_net::NetMetrics`] (`net.wait_p99_ms`, `net.shed_rate`, …).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Queue capacity per place; `usize::MAX` models the unbounded queue
    /// (admission control off, service model still on) E18 uses as its
    /// divergence baseline.
    pub capacity: usize,
    /// Fixed service cost per meet.
    pub service_floor: Duration,
    /// Additional service cost per KiB of encoded meet request.
    pub service_per_kib: Duration,
    /// Additional service cost per 1000 statically proven interpreter steps
    /// (the `COST` folder stamped by the cost gate).  Zero (the default)
    /// preserves the pure size-based model; meets without a `COST` folder
    /// are charged size only either way.
    pub service_per_kilostep: Duration,
    /// Janitor deadline: queued entries older than this are shed by the next
    /// sweep.  `None` disables deadline shedding.
    pub deadline: Option<Duration>,
    /// Janitor sweep period.
    pub janitor_period: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            capacity: 64,
            service_floor: Duration::from_micros(500),
            service_per_kib: Duration::from_micros(250),
            service_per_kilostep: Duration::from_micros(0),
            deadline: Some(Duration::from_millis(500)),
            janitor_period: Duration::from_millis(100),
        }
    }
}

impl AdmissionConfig {
    /// The same service model with the queue bound (and deadline) removed:
    /// the "no admission control" arm of an overload experiment.
    pub fn unbounded(mut self) -> Self {
        self.capacity = usize::MAX;
        self.deadline = None;
        self
    }

    /// Service time for an encoded request of `bytes` bytes.
    pub fn service_time(&self, bytes: u64) -> Duration {
        let kib = bytes.div_ceil(1024);
        Duration::from_micros(
            self.service_floor
                .micros()
                .saturating_add(self.service_per_kib.micros().saturating_mul(kib)),
        )
    }

    /// Service time for an encoded request of `bytes` bytes whose script has
    /// a statically proven worst-case of `steps` interpreter steps.
    pub fn service_time_with_steps(&self, bytes: u64, steps: u64) -> Duration {
        let kilosteps = steps.div_ceil(1000);
        Duration::from_micros(
            self.service_time(bytes)
                .micros()
                .saturating_add(self.service_per_kilostep.micros().saturating_mul(kilosteps)),
        )
    }
}

/// Builder for [`TacomaSystem`].
pub struct SystemBuilder {
    topology: Topology,
    seed: u64,
    default_transport: TransportKind,
    custody: Option<CustodyConfig>,
    admission: Option<AdmissionConfig>,
    factories: Vec<AgentFactory>,
    vet_scripts: bool,
    audit_fleet: Option<tacoma_script::AuditConfig>,
    cost_gate: Option<tacoma_script::CostGate>,
    sim_shards: u32,
}

impl SystemBuilder {
    /// Starts a builder with a 2-site full mesh and seed 0.
    pub fn new() -> Self {
        SystemBuilder {
            topology: Topology::full_mesh(2, LinkSpec::default()),
            seed: 0,
            default_transport: TransportKind::Tcp,
            custody: None,
            admission: None,
            factories: Vec::new(),
            vet_scripts: true,
            audit_fleet: None,
            cost_gate: None,
            sim_shards: 1,
        }
    }

    /// Sets the network topology.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Sets the master random seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the transport used when an agent does not specify one.
    pub fn default_transport(mut self, transport: TransportKind) -> Self {
        self.default_transport = transport;
        self
    }

    /// Enables store-and-forward custody: meets sent while the destination is
    /// unreachable (partition or outage) are parked at a custodian and
    /// delivered when the network heals, expiring terminally after the TTL.
    /// Without this, such sends fail fast and count as `send_failures`.
    pub fn custody(mut self, config: CustodyConfig) -> Self {
        self.custody = Some(config);
        self
    }

    /// Enables bounded admission queues, load shedding, and the janitor
    /// sweep at every place (see [`AdmissionConfig`]).  Off by default, so
    /// closed workloads keep their exact historical behaviour: a delivered
    /// meet dispatches the instant it arrives and nothing is ever shed.
    pub fn admission(mut self, config: AdmissionConfig) -> Self {
        self.admission = Some(config);
        self
    }

    /// Sets the number of event-queue shards the network simulator partitions
    /// its pending events into (clique-aligned on ring-of-cliques topologies).
    ///
    /// Sharding is a pure storage-layout choice: events are always executed
    /// in global (time, sequence) order, so any shard count produces
    /// byte-identical runs — CI diffs `--shards 1` against `--shards 4` to
    /// enforce exactly that.  Values are clamped to the topology by the plan.
    pub fn shards(mut self, shards: u32) -> Self {
        self.sim_shards = shards.max(1);
        self
    }

    /// Enables or disables the install-time script vet (on by default).
    ///
    /// When enabled, a briefcase carrying a `CODE` folder is statically
    /// analysed (taco-vet) before the meet request is queued; a script with
    /// error-severity defects is rejected up front instead of failing halfway
    /// through a migration.  Disable to reproduce the unvetted behaviour.
    pub fn vet_scripts(mut self, enabled: bool) -> Self {
        self.vet_scripts = enabled;
        self
    }

    /// Enables the install-time *fleet audit* (off by default).
    ///
    /// The per-script vet ([`SystemBuilder::vet_scripts`]) checks a CODE
    /// folder in isolation; the fleet audit additionally composes it against
    /// the declared fleet — checking folder flow, literal itineraries against
    /// the real site count, and the meet graph for livelocks.  An injected
    /// script whose audit produces error-severity findings is refused before
    /// the meet request is queued, counted in
    /// [`SystemStats::audits_rejected`].  The briefcase's own folders are
    /// added to the config's injected set, and the topology's site count is
    /// filled in automatically if the config does not declare one.
    pub fn audit_fleet(mut self, config: tacoma_script::AuditConfig) -> Self {
        self.audit_fleet = Some(config);
        self
    }

    /// Enables the install-time *cost gate* (off by default).
    ///
    /// Every entry-point briefcase carrying a `CODE` folder has its static
    /// cost bound ([`tacoma_script::cost_bound`]) checked against the gate's
    /// step/depth budget before the meet request is queued.  A lenient gate
    /// rejects only certain death (proven *lower* bound above budget — zero
    /// false positives); a strict gate additionally rejects scripts without a
    /// proven finite bound within budget, so every admitted script is
    /// guaranteed to finish inside the interpreter's budget.  Rejections are
    /// counted in [`SystemStats::costs_rejected`]; admitted scripts with a
    /// finite bound are annotated with a [`wellknown::COST`] folder carrying
    /// the proven worst-case step count, which admission control's
    /// `service_per_kilostep` term and cost-aware placement consume.
    pub fn cost_gate(mut self, gate: tacoma_script::CostGate) -> Self {
        self.cost_gate = Some(gate);
        self
    }

    /// Adds a factory whose agents are installed at every site (now and after
    /// every recovery).
    pub fn with_agents(
        mut self,
        factory: impl Fn(SiteId) -> Vec<Box<dyn Agent>> + 'static,
    ) -> Self {
        self.factories.push(Box::new(factory));
        self
    }

    /// Adds a factory whose agents are installed only at the listed sites —
    /// the wiring federated deployments use to place one broker per shard
    /// gateway.  Like [`SystemBuilder::with_agents`], the factory re-runs on
    /// recovery, so a crashed broker site comes back with its broker
    /// reinstalled instead of permanently orphaning its shard.
    pub fn with_agents_at(
        self,
        sites: Vec<SiteId>,
        factory: impl Fn(SiteId) -> Vec<Box<dyn Agent>> + 'static,
    ) -> Self {
        self.with_agents(move |site| {
            if sites.contains(&site) {
                factory(site)
            } else {
                Vec::new()
            }
        })
    }

    /// Builds the system, installing the factory agents everywhere.
    pub fn build(self) -> TacomaSystem {
        let master = DetRng::new(self.seed);
        let site_count = self.topology.site_count();
        let neighbors: Vec<Vec<SiteId>> = (0..site_count)
            .map(|s| self.topology.neighbors(SiteId(s)))
            .collect();
        let mut net = SimNet::new(self.topology);
        if self.sim_shards > 1 {
            net.set_shards(self.sim_shards);
        }
        if let Some(config) = self.custody {
            net.set_custody(config);
        }
        let mut places: Vec<Place> = (0..site_count)
            .map(|s| Place::new(SiteId(s), master.derive(1000 + s as u64)))
            .collect();
        let mut idgen = AgentIdGen::new();
        let mut stats = SystemStats::default();
        for place in &mut places {
            for factory in &self.factories {
                for agent in factory(place.site()) {
                    place.install_agent(idgen.fresh(), agent);
                    stats.agents_installed += 1;
                }
            }
        }
        let mut sys = TacomaSystem {
            net,
            places,
            neighbors,
            factories: self.factories,
            idgen,
            stable: vec![BTreeMap::new(); site_count as usize],
            pending_timers: BTreeMap::new(),
            next_timer_key: 1,
            admission: self.admission,
            admission_queues: vec![VecDeque::new(); site_count as usize],
            in_service: vec![None; site_count as usize],
            janitor_armed: false,
            default_transport: self.default_transport,
            vet_scripts: self.vet_scripts,
            audit_fleet: {
                let mut audit = self.audit_fleet;
                if let Some(config) = audit.as_mut() {
                    if config.declared_site_count().is_none() {
                        config.set_site_count(site_count);
                    }
                }
                audit
            },
            cost_gate: self.cost_gate,
            stats,
            rng: master.derive(1),
            trace: Vec::new(),
            reachable_cache: BTreeMap::new(),
        };
        sys.run_install_hooks();
        sys
    }
}

impl Default for SystemBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// The TACOMA system: every place, the network, and the event loop.
pub struct TacomaSystem {
    net: SimNet,
    places: Vec<Place>,
    neighbors: Vec<Vec<SiteId>>,
    factories: Vec<AgentFactory>,
    idgen: AgentIdGen,
    /// Per-site stable store holding flushed cabinet snapshots.
    stable: Vec<BTreeMap<String, Vec<u8>>>,
    /// Timer key → (site, contact, briefcase) for scheduled meets.
    pending_timers: BTreeMap<u64, (SiteId, AgentName, Briefcase)>,
    next_timer_key: u64,
    /// Backpressure configuration; `None` means meets dispatch on arrival.
    admission: Option<AdmissionConfig>,
    /// Per-site bounded FIFO admission queues: (enqueue time, request).
    /// Unused (all empty) when `admission` is `None`.
    admission_queues: Vec<VecDeque<(SimTime, MeetRequest)>>,
    /// Per-site request currently holding the server, keyed by its service
    /// timer so a stale completion (site crashed and its slot was cleared)
    /// is detected and ignored.
    in_service: Vec<Option<(u64, MeetRequest)>>,
    /// Whether a janitor sweep timer is currently scheduled.
    janitor_armed: bool,
    default_transport: TransportKind,
    /// Whether entry-point meets carrying a CODE folder are statically vetted.
    vet_scripts: bool,
    /// Fleet-level audit applied to entry-point CODE folders, when enabled.
    audit_fleet: Option<tacoma_script::AuditConfig>,
    /// Static cost budget applied to entry-point CODE folders, when enabled.
    cost_gate: Option<tacoma_script::CostGate>,
    stats: SystemStats,
    rng: DetRng,
    trace: Vec<String>,
    /// Reachability masks keyed by site, valid for the stored routing epoch
    /// (see [`TacomaSystem::dispatch_inputs`]).
    reachable_cache: BTreeMap<SiteId, (u64, Vec<bool>)>,
}

impl TacomaSystem {
    /// Starts building a system.
    pub fn builder() -> SystemBuilder {
        SystemBuilder::new()
    }

    /// Convenience constructor: given topology and seed, no default agents.
    pub fn new(topology: Topology, seed: u64) -> Self {
        SystemBuilder::new().topology(topology).seed(seed).build()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// Number of sites.
    pub fn site_count(&self) -> u32 {
        self.net.site_count()
    }

    /// Whole-run counters.
    pub fn stats(&self) -> SystemStats {
        self.stats
    }

    /// A deterministic random stream derived from the system seed, for
    /// experiment drivers that need randomness outside any agent.
    pub fn driver_rng(&mut self) -> &mut DetRng {
        &mut self.rng
    }

    /// Network byte/message counters.
    pub fn net_metrics(&self) -> &NetMetrics {
        self.net.metrics()
    }

    /// Resets the network byte/message counters (e.g. between experiment phases).
    pub fn reset_net_metrics(&mut self) {
        self.net.reset_metrics();
    }

    /// Read access to the network simulator.
    pub fn net(&self) -> &SimNet {
        &self.net
    }

    /// Mutable access to the network simulator (partitions, manual failures).
    pub fn net_mut(&mut self) -> &mut SimNet {
        &mut self.net
    }

    /// Read access to a site's place.
    ///
    /// # Panics
    ///
    /// Panics if the site id is out of range.
    pub fn place(&self, site: SiteId) -> &Place {
        &self.places[site.index()]
    }

    /// Mutable access to a site's place (seeding cabinets, installing agents).
    ///
    /// # Panics
    ///
    /// Panics if the site id is out of range.
    pub fn place_mut(&mut self, site: SiteId) -> &mut Place {
        &mut self.places[site.index()]
    }

    /// The system-wide trace (agent `ctx.log` lines plus kernel notes).
    pub fn trace(&self) -> Vec<String> {
        let mut all = self.trace.clone();
        for place in &self.places {
            all.extend_from_slice(place.trace());
        }
        all
    }

    /// Installs a native agent at one site with a fresh instance id, running
    /// its `on_install` hook immediately.
    pub fn register_agent(&mut self, site: SiteId, agent: Box<dyn Agent>) -> AgentId {
        let id = self.idgen.fresh();
        let name = agent.name();
        self.stats.agents_installed += 1;
        self.places[site.index()].install_agent(id, agent);
        self.run_install_hook_for(site, &name);
        id
    }

    /// Applies a failure plan (scheduled crashes/recoveries).
    pub fn apply_failure_plan(&mut self, plan: &FailurePlan) {
        self.net.apply_failure_plan(plan);
    }

    /// Requests a meet with `contact` at `site`, as an external client would.
    ///
    /// The request is queued as a local message so it executes inside the
    /// event loop with proper timing.
    pub fn inject_meet(&mut self, site: SiteId, contact: AgentName, briefcase: Briefcase) {
        self.inject_meet_at(site, site, contact, briefcase);
    }

    /// Requests a meet at `site` whose request is recorded as originating
    /// from `origin` (used by experiments that model an off-network client
    /// attached to `origin`).
    pub fn inject_meet_at(
        &mut self,
        origin: SiteId,
        site: SiteId,
        contact: AgentName,
        mut briefcase: Briefcase,
    ) {
        if let Err(report) = self.vet_briefcase(site, &briefcase) {
            self.stats.scripts_rejected += 1;
            self.trace.push(format!(
                "[{}] rejected CODE folder bound for {contact} at {site}:\n{report}",
                self.net.now()
            ));
            return;
        }
        if let Err(report) = self.audit_briefcase(&contact, &briefcase) {
            self.stats.audits_rejected += 1;
            self.trace.push(format!(
                "[{}] fleet audit rejected CODE folder bound for {contact} at {site}:\n{report}",
                self.net.now()
            ));
            return;
        }
        if let Err(reason) = self.apply_cost_gate(&mut briefcase) {
            self.stats.costs_rejected += 1;
            self.trace.push(format!(
                "[{}] cost gate rejected CODE folder bound for {contact} at {site}: {reason}",
                self.net.now()
            ));
            return;
        }
        self.stats.meets_requested += 1;
        let req = MeetRequest {
            contact,
            sender: AgentId::SYSTEM,
            origin,
            briefcase,
        };
        let payload = codec::encode_meet_request(&req);
        let custody = self.net.custody_enabled();
        let result = self.net.send(SendOptions {
            from: site,
            to: site,
            payload,
            kind: KIND_MEET,
            transport: self.default_transport,
            custody,
        });
        if result.is_err() {
            self.stats.send_failures += 1;
        }
    }

    /// Runs the event loop until no events remain or `max_events` have been
    /// processed.  Returns the number of events processed.
    pub fn run_until_quiescent(&mut self, max_events: u64) -> u64 {
        let mut processed = 0;
        while processed < max_events {
            let Some(event) = self.net.step() else {
                break;
            };
            processed += 1;
            self.handle_event(event);
        }
        processed
    }

    /// Runs the event loop until simulated time passes `deadline` or the
    /// queue drains.  Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut processed = 0;
        while let Some(next) = self.net.peek_time() {
            if next > deadline {
                break;
            }
            let Some(event) = self.net.step() else {
                break;
            };
            processed += 1;
            self.handle_event(event);
        }
        processed
    }

    /// Runs for an additional `span` of simulated time.
    pub fn run_for(&mut self, span: Duration) -> u64 {
        let deadline = self.now() + span;
        self.run_until(deadline)
    }

    /// Builds the per-meet environment inputs: liveness of every site, the
    /// reachability mask from `site` (custody mode only), and the custody
    /// flag.  Reachability masks are cached per routing epoch, so custody
    /// runs pay one BFS per site per liveness change — not per meet.
    fn dispatch_inputs(&mut self, site: SiteId) -> (Vec<bool>, Vec<bool>, bool) {
        let alive: Vec<bool> = (0..self.net.site_count())
            .map(|s| self.net.is_up(SiteId(s)))
            .collect();
        let custody = self.net.custody_enabled();
        let reachable = if custody {
            // Reachability (liveness + partitions) from the meet site, so
            // agents can tell custody-pending from dead (rear guards).
            let epoch = self.net.route_epoch();
            match self.reachable_cache.get(&site) {
                Some((cached_epoch, mask)) if *cached_epoch == epoch => mask.clone(),
                _ => {
                    let mask = self.net.reachable_mask(site);
                    self.reachable_cache.insert(site, (epoch, mask.clone()));
                    mask
                }
            }
        } else {
            Vec::new()
        };
        (alive, reachable, custody)
    }

    fn handle_event(&mut self, event: Event) {
        match event {
            Event::Message(msg) => {
                if msg.kind != KIND_MEET {
                    self.trace.push(format!(
                        "[{}] dropping unknown message kind {} at {}",
                        self.net.now(),
                        msg.kind,
                        msg.to
                    ));
                    return;
                }
                match codec::decode_meet_request(&msg.payload) {
                    Ok(req) => {
                        self.deliver_meet(msg.to, req);
                    }
                    Err(e) => {
                        self.trace.push(format!(
                            "[{}] undecodable meet request at {}: {e}",
                            self.net.now(),
                            msg.to
                        ));
                        self.stats.meets_failed += 1;
                    }
                }
            }
            Event::Timer { site, key } => {
                if key & SERVICE_KEY_FLAG != 0 {
                    self.finish_service(site, key);
                    return;
                }
                if key == JANITOR_KEY {
                    self.janitor_sweep();
                    return;
                }
                if let Some((timer_site, contact, mut briefcase)) = self.pending_timers.remove(&key)
                {
                    debug_assert_eq!(site, timer_site);
                    self.stats.timer_meets += 1;
                    self.stats.meets_requested += 1;
                    briefcase.folder_mut(wellknown::TIMER).push_u64(key);
                    let req = MeetRequest {
                        contact,
                        sender: AgentId::SYSTEM,
                        origin: site,
                        briefcase,
                    };
                    self.deliver_meet(site, req);
                }
            }
            Event::MessageExpired(exp) => {
                if exp.kind == KIND_MEET {
                    self.stats.meets_expired += 1;
                }
                self.trace.push(format!(
                    "[{}] custodied message {} -> {} expired undelivered",
                    self.net.now(),
                    exp.from,
                    exp.to
                ));
            }
            Event::SiteCrashed(site) => {
                self.stats.crashes += 1;
                self.places[site.index()].crash();
                // A crash takes the admission queue down with the place:
                // everything queued or in service there is terminally shed
                // (the service-completion timer for the in-service entry dies
                // with the site inside the simulator, so only the slot needs
                // clearing here).
                let dropped = self.admission_queues[site.index()].len() as u64
                    + u64::from(self.in_service[site.index()].take().is_some());
                self.admission_queues[site.index()].clear();
                if dropped > 0 {
                    self.stats.meets_shed += dropped;
                    for _ in 0..dropped {
                        self.net.metrics_mut().record_shed();
                    }
                }
                self.trace
                    .push(format!("[{}] {site} crashed", self.net.now()));
            }
            Event::SiteRecovered(site) => {
                self.stats.recoveries += 1;
                self.recover_site(site);
                self.trace
                    .push(format!("[{}] {site} recovered", self.net.now()));
            }
        }
    }

    /// Schedules a meet with `contact` at `site` to be requested after
    /// `delay` of simulated time, as an open-arrival workload driver would.
    ///
    /// Unlike [`TacomaSystem::inject_meet`], which enqueues the request as a
    /// zero-latency local message *now*, this arms a kernel timer: the meet
    /// counts toward `meets_requested` only when the timer fires, so an
    /// entire arrival trace can be pre-loaded up front and still replay
    /// identically at any `--jobs`/`--shards` setting.  The briefcase gains a
    /// `TIMER` folder carrying the timer key, like any scheduled meet.
    pub fn schedule_meet(
        &mut self,
        site: SiteId,
        contact: AgentName,
        mut briefcase: Briefcase,
        delay: Duration,
    ) {
        // The cost gate runs at schedule time (not when the timer fires), so
        // preloaded arrival traces replay identically at any `--jobs` /
        // `--shards` setting; vet/audit intentionally do not run here — the
        // timer path has never gated, and the cost gate is the one defense
        // that open-arrival workloads need.
        if let Err(reason) = self.apply_cost_gate(&mut briefcase) {
            self.stats.costs_rejected += 1;
            self.trace.push(format!(
                "[{}] cost gate rejected scheduled CODE folder bound for {contact} at {site}: {reason}",
                self.net.now()
            ));
            return;
        }
        let key = self.next_timer_key;
        self.next_timer_key += 1;
        self.pending_timers.insert(key, (site, contact, briefcase));
        self.net.schedule_timer(site, delay, key);
    }

    /// Routes a delivered meet request through admission control when it is
    /// enabled, or straight to dispatch when it is not.
    fn deliver_meet(&mut self, site: SiteId, req: MeetRequest) {
        if self.admission.is_some() {
            self.admit_meet(site, req);
        } else {
            self.execute_meet(site, req);
        }
    }

    /// Admission control: enqueue the request at `site`, or shed it if the
    /// bounded queue is full.  Shedding is a terminal outcome — it is counted
    /// in [`SystemStats::meets_shed`] and the simulator's metrics, keeping
    /// the meet-conservation invariant exact.
    fn admit_meet(&mut self, site: SiteId, req: MeetRequest) {
        let config = self
            .admission
            .expect("admit_meet requires admission config");
        let queue = &mut self.admission_queues[site.index()];
        if queue.len() >= config.capacity {
            self.stats.meets_shed += 1;
            self.net.metrics_mut().record_shed();
            self.trace.push(format!(
                "[{}] shed meet with {} at {site}: admission queue full ({})",
                self.net.now(),
                req.contact,
                config.capacity
            ));
            return;
        }
        let now = self.net.now();
        queue.push_back((now, req));
        self.arm_janitor();
        self.maybe_start_service(site);
    }

    /// Starts serving the next queued request at `site` if the server there
    /// is idle: records the admission wait, charges the size-dependent
    /// service time, and arms the completion timer.
    fn maybe_start_service(&mut self, site: SiteId) {
        if self.in_service[site.index()].is_some() {
            return;
        }
        let Some((enqueued_at, req)) = self.admission_queues[site.index()].pop_front() else {
            return;
        };
        let config = self.admission.expect("service requires admission config");
        let now = self.net.now();
        let wait_ms = now.since(enqueued_at).as_millis_f64();
        let depth = self.admission_queues[site.index()].len() as u64 + 1;
        let bytes = codec::encode_meet_request(&req).len() as u64;
        self.net.metrics_mut().record_admission(wait_ms, depth);
        let steps = req.briefcase.peek_u64(wellknown::COST).unwrap_or(0);
        let service = config.service_time_with_steps(bytes, steps);
        let key = SERVICE_KEY_FLAG | self.next_timer_key;
        self.next_timer_key += 1;
        self.in_service[site.index()] = Some((key, req));
        self.net.schedule_timer(site, service, key);
    }

    /// Service completion: dispatch the meet that held the server at `site`
    /// and pull the next one off the queue.  A stale key (the site crashed
    /// and its slot was cleared, then recovered before the timer popped) is
    /// ignored.
    fn finish_service(&mut self, site: SiteId, key: u64) {
        match self.in_service[site.index()] {
            Some((stored, _)) if stored == key => {}
            _ => return,
        }
        let (_, req) = self.in_service[site.index()].take().expect("checked above");
        self.execute_meet(site, req);
        self.maybe_start_service(site);
    }

    /// Arms the janitor sweep timer if admission control has a deadline and
    /// no sweep is already scheduled.  The janitor timer is anchored at site
    /// 0 purely as an event-queue address; the sweep itself walks every
    /// site's queue.
    fn arm_janitor(&mut self) {
        if self.janitor_armed {
            return;
        }
        let Some(config) = self.admission else {
            return;
        };
        if config.deadline.is_none() {
            return;
        }
        self.janitor_armed = true;
        self.net
            .schedule_timer(SiteId(0), config.janitor_period, JANITOR_KEY);
    }

    /// Periodic janitor sweep: sheds queued entries whose wait has passed the
    /// admission deadline (the queues are FIFO, so expired entries are always
    /// at the front), then re-arms itself only while work remains — an idle
    /// system quiesces with no standing timer.
    fn janitor_sweep(&mut self) {
        self.janitor_armed = false;
        let Some(config) = self.admission else {
            return;
        };
        let Some(deadline) = config.deadline else {
            return;
        };
        let now = self.net.now();
        let mut swept: u64 = 0;
        for queue in &mut self.admission_queues {
            while let Some((enqueued_at, _)) = queue.front() {
                if now.since(*enqueued_at) < deadline {
                    break;
                }
                queue.pop_front();
                swept += 1;
            }
        }
        self.stats.meets_shed += swept;
        self.net.metrics_mut().record_janitor_sweep(swept);
        if swept > 0 {
            self.trace
                .push(format!("[{now}] janitor shed {swept} expired meet(s)"));
        }
        let busy = self.admission_queues.iter().any(|q| !q.is_empty())
            || self.in_service.iter().any(|s| s.is_some());
        if busy {
            self.arm_janitor();
        }
    }

    fn execute_meet(&mut self, site: SiteId, req: MeetRequest) {
        let (alive, reachable, custody) = self.dispatch_inputs(site);
        let mut outbox: Vec<Action> = Vec::new();
        let env = DispatchEnv {
            now: self.net.now(),
            origin: req.origin,
            sender: req.sender,
            neighbors: &self.neighbors[site.index()],
            alive: &alive,
            reachable: &reachable,
            custody,
        };
        let outcome =
            self.places[site.index()].dispatch(&req.contact, req.briefcase, env, &mut outbox);
        match outcome {
            Ok(_) => self.stats.meets_completed += 1,
            Err(e) => {
                self.stats.meets_failed += 1;
                self.trace.push(format!(
                    "[{}] meet '{}' at {site} failed: {e}",
                    self.net.now(),
                    req.contact
                ));
            }
        }
        self.process_actions(site, outbox);
    }

    fn process_actions(&mut self, site: SiteId, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::RemoteMeet {
                    to,
                    contact,
                    briefcase,
                    transport,
                } => {
                    self.stats.meets_requested += 1;
                    self.stats.remote_meets += 1;
                    let req = MeetRequest {
                        contact,
                        sender: AgentId::SYSTEM,
                        origin: site,
                        briefcase,
                    };
                    let payload = codec::encode_meet_request(&req);
                    let custody = self.net.custody_enabled();
                    let result = self.net.send(SendOptions {
                        from: site,
                        to,
                        payload,
                        kind: KIND_MEET,
                        transport,
                        custody,
                    });
                    if let Err(e) = result {
                        self.stats.send_failures += 1;
                        self.trace.push(format!(
                            "[{}] remote meet from {site} to {to} failed: {e}",
                            self.net.now()
                        ));
                    }
                }
                Action::LocalMeet { contact, briefcase } => {
                    self.stats.meets_requested += 1;
                    self.stats.local_meets += 1;
                    let req = MeetRequest {
                        contact,
                        sender: AgentId::SYSTEM,
                        origin: site,
                        briefcase,
                    };
                    let payload = codec::encode_meet_request(&req);
                    let custody = self.net.custody_enabled();
                    if self
                        .net
                        .send(SendOptions {
                            from: site,
                            to: site,
                            payload,
                            kind: KIND_MEET,
                            transport: self.default_transport,
                            custody,
                        })
                        .is_err()
                    {
                        self.stats.send_failures += 1;
                    }
                }
                Action::Timer {
                    contact,
                    key: _user_key,
                    delay,
                    briefcase,
                } => {
                    let key = self.next_timer_key;
                    self.next_timer_key += 1;
                    self.pending_timers.insert(key, (site, contact, briefcase));
                    self.net.schedule_timer(site, delay, key);
                }
                Action::RegisterAgent { agent } => {
                    let id = self.idgen.fresh();
                    let name = agent.name();
                    self.stats.agents_installed += 1;
                    self.places[site.index()].install_agent(id, agent);
                    self.run_install_hook_for(site, &name);
                }
                Action::FlushCabinet { name } => {
                    self.stats.cabinet_flushes += 1;
                    let place = &self.places[site.index()];
                    if let Some(cab) = place.cabinets().get(&name) {
                        self.stable[site.index()].insert(name, cab.snapshot());
                    }
                }
                Action::Unregister { name } => {
                    self.places[site.index()].remove_agent(&name);
                }
            }
        }
    }

    fn recover_site(&mut self, site: SiteId) {
        let place = &mut self.places[site.index()];
        place.recover();
        // Re-install the default agent set.
        for factory in &self.factories {
            for agent in factory(site) {
                place.install_agent(self.idgen.fresh(), agent);
                self.stats.agents_installed += 1;
            }
        }
        // Restore flushed cabinets from the stable store.
        for (name, snapshot) in &self.stable[site.index()] {
            if let Ok(cab) = crate::cabinet::FileCabinet::restore(snapshot) {
                place.cabinets_mut().put_cabinet(name.clone(), cab);
            }
        }
        self.run_install_hooks_at(site);
    }

    fn run_install_hooks(&mut self) {
        for s in 0..self.site_count() {
            self.run_install_hooks_at(SiteId(s));
        }
    }

    fn run_install_hooks_at(&mut self, site: SiteId) {
        let names = self.places[site.index()].agent_names();
        for name in names {
            self.run_install_hook_for(site, &name);
        }
    }

    /// Runs one agent's `on_install` hook and carries out any actions it
    /// queued (installed agents may schedule timers or send reports).
    fn run_install_hook_for(&mut self, site: SiteId, name: &AgentName) {
        let (alive, reachable, custody) = self.dispatch_inputs(site);
        let env = DispatchEnv {
            now: self.net.now(),
            origin: site,
            sender: AgentId::SYSTEM,
            neighbors: &self.neighbors[site.index()],
            alive: &alive,
            reachable: &reachable,
            custody,
        };
        let mut outbox = Vec::new();
        self.places[site.index()].run_install_hook(name, env, &mut outbox);
        self.process_actions(site, outbox);
    }

    /// Statically vets the briefcase's CODE folder (if any) before a meet is
    /// admitted at `site`.  Only the last CODE element is checked — that is the
    /// one `ag_tac` pops and executes; earlier elements are continuations that
    /// were produced by already-vetted code.  Returns the rendered diagnostics
    /// when the script has error-severity defects.
    ///
    /// Only *entry points* ([`TacomaSystem::inject_meet_at`] and
    /// [`TacomaSystem::try_direct_meet`]) vet: once an agent is admitted, its
    /// nested and remote meets carry code that was already checked, and
    /// re-vetting every migration leg would charge the analysis cost per hop.
    fn vet_briefcase(&self, site: SiteId, briefcase: &Briefcase) -> Result<(), String> {
        if !self.vet_scripts {
            return Ok(());
        }
        let Some(code) = briefcase.peek_string(wellknown::CODE) else {
            return Ok(());
        };
        let mut known: Vec<String> = wellknown::AGENTS.iter().map(|a| a.to_string()).collect();
        known.extend(
            self.places[site.index()]
                .agent_names()
                .into_iter()
                .map(|n| n.as_str().to_string()),
        );
        let config = tacoma_script::AnalysisConfig::new()
            .known_agents(known)
            .source_name("CODE");
        tacoma_script::vet(&code, &config)
    }

    /// Audits the briefcase's CODE folder against the configured fleet (when
    /// [`SystemBuilder::audit_fleet`] is set).  The script is declared under
    /// the contact's name and every folder the briefcase actually carries is
    /// added to the injected set, so the audit sees exactly the environment
    /// the agent will run in.  Returns the rendered findings when any are
    /// error-severity.
    fn audit_briefcase(&self, contact: &AgentName, briefcase: &Briefcase) -> Result<(), String> {
        let Some(base) = &self.audit_fleet else {
            return Ok(());
        };
        let Some(code) = briefcase.peek_string(wellknown::CODE) else {
            return Ok(());
        };
        let mut config = base.clone();
        config.add_agent(contact.as_str(), "CODE", code);
        for folder in briefcase.names() {
            config.add_injected(folder);
        }
        let findings = tacoma_script::audit(&config);
        if tacoma_script::audit_has_errors(&findings) {
            Err(tacoma_script::render_audit(&findings))
        } else {
            Ok(())
        }
    }

    /// Checks the briefcase's CODE folder (if any) against the configured
    /// cost gate.  Returns the proven finite worst-case step bound (to stamp
    /// into the [`wellknown::COST`] folder) on success, `Ok(None)` when there
    /// is nothing to check or no finite bound to stamp, and the rejection
    /// reason when the gate refuses the script.  Like vet and audit, only
    /// entry points are checked.
    fn cost_check(&self, briefcase: &Briefcase) -> Result<Option<u64>, String> {
        let Some(gate) = self.cost_gate else {
            return Ok(None);
        };
        let Some(code) = briefcase.peek_string(wellknown::CODE) else {
            return Ok(None);
        };
        let bound = tacoma_script::cost_bound(&code)
            .map_err(|e| format!("cost: CODE folder does not parse: {}", e.render("CODE")))?;
        gate.check(&bound)?;
        Ok(bound.steps.hi)
    }

    /// Runs the cost gate over a briefcase and stamps the proven bound into
    /// its [`wellknown::COST`] folder on admission.
    fn apply_cost_gate(&self, briefcase: &mut Briefcase) -> Result<(), String> {
        if let Some(hi) = self.cost_check(briefcase)? {
            briefcase.put_u64(wellknown::COST, hi);
        }
        Ok(())
    }

    /// Returns an error descriptor if the agent name cannot be met at the site
    /// right now (used by tests to assert protected-agent isolation without
    /// going through the event loop).
    pub fn try_direct_meet(
        &mut self,
        site: SiteId,
        contact: &AgentName,
        mut briefcase: Briefcase,
    ) -> Result<Briefcase, TacomaError> {
        if let Err(report) = self.vet_briefcase(site, &briefcase) {
            self.stats.scripts_rejected += 1;
            return Err(TacomaError::Script(format!("script rejected:\n{report}")));
        }
        if let Err(report) = self.audit_briefcase(contact, &briefcase) {
            self.stats.audits_rejected += 1;
            return Err(TacomaError::Script(format!(
                "script rejected by fleet audit:\n{report}"
            )));
        }
        if let Err(reason) = self.apply_cost_gate(&mut briefcase) {
            self.stats.costs_rejected += 1;
            return Err(TacomaError::Script(format!(
                "script rejected by cost gate: {reason}"
            )));
        }
        let (alive, reachable, custody) = self.dispatch_inputs(site);
        let mut outbox = Vec::new();
        let env = DispatchEnv {
            now: self.net.now(),
            origin: site,
            sender: AgentId::SYSTEM,
            neighbors: &self.neighbors[site.index()],
            alive: &alive,
            reachable: &reachable,
            custody,
        };
        self.stats.meets_requested += 1;
        let outcome = self.places[site.index()].dispatch(contact, briefcase, env, &mut outbox);
        match &outcome {
            Ok(_) => self.stats.meets_completed += 1,
            Err(_) => self.stats.meets_failed += 1,
        }
        self.process_actions(site, outbox);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{Agent, MeetCtx, MeetOutcome};
    use crate::folder::Folder;

    /// Visits every site in its ITINERARY folder, appending a mark at each.
    struct Tourist;
    impl Agent for Tourist {
        fn name(&self) -> AgentName {
            AgentName::new("tourist")
        }
        fn meet(&mut self, ctx: &mut MeetCtx<'_>, mut bc: Briefcase) -> MeetOutcome {
            let here = ctx.site();
            ctx.cabinet("guestbook")
                .append_str("VISITS", format!("visited-{here}"));
            bc.folder_mut(wellknown::RESULTS)
                .push_str(format!("{}", ctx.site()));
            let next = bc.folder_mut(wellknown::ITINERARY).dequeue_str();
            if let Some(next) = next {
                let to = SiteId(next.parse::<u32>().unwrap());
                ctx.remote_meet(
                    to,
                    AgentName::new("tourist"),
                    bc.clone(),
                    TransportKind::Tcp,
                );
            }
            Ok(bc)
        }
    }

    struct Pinger;
    impl Agent for Pinger {
        fn name(&self) -> AgentName {
            AgentName::new("pinger")
        }
        fn meet(&mut self, ctx: &mut MeetCtx<'_>, bc: Briefcase) -> MeetOutcome {
            let count = bc.peek_u64("COUNT").unwrap_or(0);
            ctx.cabinet("pings")
                .append_str("LOG", format!("ping-{count}"));
            if count > 0 {
                let mut next = Briefcase::new();
                next.put_u64("COUNT", count - 1);
                ctx.schedule(
                    AgentName::new("pinger"),
                    count,
                    Duration::from_millis(10),
                    next,
                );
            }
            Ok(bc)
        }
    }

    struct CabinetWriter;
    impl Agent for CabinetWriter {
        fn name(&self) -> AgentName {
            AgentName::new("writer")
        }
        fn meet(&mut self, ctx: &mut MeetCtx<'_>, bc: Briefcase) -> MeetOutcome {
            ctx.cabinet("durable").append_str("DATA", "precious");
            ctx.flush_cabinet("durable");
            ctx.cabinet("volatile").append_str("DATA", "ephemeral");
            Ok(bc)
        }
    }

    fn system(sites: u32) -> TacomaSystem {
        TacomaSystem::builder()
            .topology(Topology::full_mesh(sites, LinkSpec::default()))
            .seed(42)
            .with_agents(|_| vec![Box::new(Tourist), Box::new(Pinger), Box::new(CabinetWriter)])
            .build()
    }

    #[test]
    fn itinerary_walk_visits_every_site() {
        let mut sys = system(4);
        let mut bc = Briefcase::new();
        let mut itinerary = Folder::new();
        for s in [1u32, 2, 3] {
            itinerary.enqueue(s.to_string().into_bytes());
        }
        bc.put(wellknown::ITINERARY, itinerary);
        sys.inject_meet(SiteId(0), AgentName::new("tourist"), bc);
        sys.run_until_quiescent(1_000);

        for s in 0..4 {
            let cab = sys.place(SiteId(s)).cabinets().get("guestbook").unwrap();
            assert!(cab.payload_bytes() > 0, "site {s} should have been visited");
        }
        let stats = sys.stats();
        assert_eq!(stats.meets_completed, 4);
        assert_eq!(stats.remote_meets, 3);
        assert!(sys.net_metrics().total_bytes().get() > 0);
        assert!(sys.now() > SimTime::ZERO);
    }

    #[test]
    fn timers_drive_repeated_meets() {
        let mut sys = system(1);
        let mut bc = Briefcase::new();
        bc.put_u64("COUNT", 3);
        sys.inject_meet(SiteId(0), AgentName::new("pinger"), bc);
        sys.run_until_quiescent(1_000);
        let stats = sys.stats();
        assert_eq!(stats.timer_meets, 3);
        assert_eq!(stats.meets_completed, 4);
        let cab = sys.place(SiteId(0)).cabinets().get("pings").unwrap();
        assert!(cab.payload_bytes() > 0);
    }

    #[test]
    fn meet_with_unknown_agent_counts_as_failure() {
        let mut sys = system(2);
        sys.inject_meet(SiteId(0), AgentName::new("nobody"), Briefcase::new());
        sys.run_until_quiescent(100);
        assert_eq!(sys.stats().meets_failed, 1);
        assert_eq!(sys.stats().meets_completed, 0);
        assert!(!sys.trace().is_empty());
    }

    #[test]
    fn crash_loses_volatile_but_flushed_cabinet_survives() {
        let mut sys = system(2);
        sys.inject_meet(SiteId(1), AgentName::new("writer"), Briefcase::new());
        sys.run_until_quiescent(100);
        assert!(sys.place(SiteId(1)).cabinets().contains("volatile"));
        assert!(sys.place(SiteId(1)).cabinets().contains("durable"));
        assert_eq!(sys.stats().cabinet_flushes, 1);

        // Crash and recover site 1 via a failure plan.
        let plan = FailurePlan::none().outage(
            SiteId(1),
            sys.now() + Duration::from_millis(1),
            Duration::from_millis(5),
        );
        sys.apply_failure_plan(&plan);
        sys.run_until_quiescent(100);

        assert_eq!(sys.stats().crashes, 1);
        assert_eq!(sys.stats().recoveries, 1);
        let place = sys.place(SiteId(1));
        assert!(place.is_up());
        assert!(
            place.cabinets().contains("durable"),
            "flushed cabinet must be restored after recovery"
        );
        assert!(
            !place.cabinets().contains("volatile"),
            "unflushed cabinet must be lost"
        );
        // Default agents are re-installed after recovery.
        assert!(place.has_agent(&AgentName::new("tourist")));
    }

    #[test]
    fn send_to_dead_site_is_counted_not_fatal() {
        let mut sys = system(3);
        sys.net_mut().crash_now(SiteId(2));
        let mut bc = Briefcase::new();
        let mut itinerary = Folder::new();
        itinerary.enqueue(b"2".to_vec());
        bc.put(wellknown::ITINERARY, itinerary);
        sys.inject_meet(SiteId(0), AgentName::new("tourist"), bc);
        sys.run_until_quiescent(100);
        assert_eq!(sys.stats().send_failures, 1);
        assert_eq!(sys.stats().meets_completed, 1);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sys = system(1);
        let mut bc = Briefcase::new();
        bc.put_u64("COUNT", 100);
        sys.inject_meet(SiteId(0), AgentName::new("pinger"), bc);
        // Each ping reschedules itself after 10 ms; in 35 ms we expect only a few.
        sys.run_until(SimTime::ZERO + Duration::from_millis(35));
        assert!(sys.stats().meets_completed >= 2);
        assert!(sys.stats().meets_completed <= 5);
        assert!(sys.now() <= SimTime::ZERO + Duration::from_millis(36));
    }

    #[test]
    fn try_direct_meet_bypasses_network() {
        let mut sys = system(2);
        let outcome = sys.try_direct_meet(SiteId(0), &AgentName::new("writer"), Briefcase::new());
        assert!(outcome.is_ok());
        assert!(sys.place(SiteId(0)).cabinets().contains("durable"));
        let missing = sys.try_direct_meet(SiteId(0), &AgentName::new("ghost"), Briefcase::new());
        assert!(missing.is_err());
    }

    #[test]
    fn remote_meet_accounting_spans_sites_and_failures() {
        // The meet hot path: a local meet whose agent issues a remote meet to
        // another site. Every leg must land in exactly one counter —
        // `meets_completed`, `meets_failed` (dispatch error at the far end) or
        // `send_failures` (destination down under a `FailurePlan` outage).
        struct Forwarder;
        impl Agent for Forwarder {
            fn name(&self) -> AgentName {
                AgentName::new("forwarder")
            }
            fn meet(&mut self, ctx: &mut MeetCtx<'_>, bc: Briefcase) -> MeetOutcome {
                if ctx.site() == SiteId(0) {
                    let contact = bc.peek_string("CONTACT").expect("CONTACT set by injector");
                    ctx.remote_meet(
                        SiteId(1),
                        AgentName::new(contact),
                        bc.clone(),
                        TransportKind::Tcp,
                    );
                }
                Ok(bc)
            }
        }
        let inject = |sys: &mut TacomaSystem, contact: &str| {
            let mut bc = Briefcase::new();
            bc.put_string("CONTACT", contact);
            sys.inject_meet(SiteId(0), AgentName::new("forwarder"), bc);
        };
        let mut sys = TacomaSystem::builder()
            .topology(Topology::full_mesh(2, LinkSpec::default()))
            .seed(5)
            .with_agents(|_| vec![Box::new(Forwarder) as Box<dyn Agent>])
            .build();

        // Healthy cross-site hop: both legs complete.
        inject(&mut sys, "forwarder");
        sys.run_until_quiescent(100);
        let s = sys.stats();
        assert_eq!(s.remote_meets, 1);
        assert_eq!(s.meets_completed, 2);
        assert_eq!(s.meets_failed, 0);
        assert_eq!(s.send_failures, 0);

        // The hop crosses the wire but the contact does not exist at site 1:
        // delivered, dispatched, and counted as a failed meet.
        inject(&mut sys, "nobody");
        sys.run_until_quiescent(100);
        let s = sys.stats();
        assert_eq!(s.remote_meets, 2);
        assert_eq!(s.meets_completed, 3, "the local leg still completes");
        assert_eq!(s.meets_failed, 1);
        assert_eq!(s.send_failures, 0);

        // Site-failure path: a FailurePlan outage takes site 1 down, so the
        // forwarded leg is dropped at send time instead of failing a dispatch.
        let plan = FailurePlan::none().outage(
            SiteId(1),
            sys.now() + Duration::from_micros(1),
            Duration::from_millis(5),
        );
        sys.apply_failure_plan(&plan);
        sys.run_for(Duration::from_millis(1));
        assert_eq!(sys.stats().crashes, 1);
        assert!(!sys.net().is_up(SiteId(1)));

        inject(&mut sys, "forwarder");
        sys.run_for(Duration::from_millis(1));
        let s = sys.stats();
        assert_eq!(s.remote_meets, 3);
        assert_eq!(
            s.send_failures, 1,
            "send to a dead site is dropped, not a meet failure"
        );
        assert_eq!(s.meets_completed, 4, "only the local leg completes");
        assert_eq!(
            s.meets_failed, 1,
            "a dropped send must not count as a failed meet"
        );

        // After the planned recovery the same hop completes end to end again.
        sys.run_until_quiescent(1_000);
        assert_eq!(sys.stats().recoveries, 1);
        inject(&mut sys, "forwarder");
        sys.run_until_quiescent(100);
        let s = sys.stats();
        assert_eq!(s.remote_meets, 4);
        assert_eq!(s.meets_completed, 6);
        // Conservation: every requested meet either completed, failed at
        // dispatch, or was dropped by a failed send.
        assert_eq!(
            s.meets_requested,
            s.meets_completed + s.meets_failed + s.send_failures
        );
    }

    #[test]
    fn custody_parks_meets_across_partitions_and_conserves_accounting() {
        let mut sys = TacomaSystem::builder()
            .topology(Topology::full_mesh(3, LinkSpec::default()))
            .seed(42)
            .custody(CustodyConfig {
                capacity: 8,
                ttl: Duration::from_millis(50),
            })
            .with_agents(|_| vec![Box::new(Tourist) as Box<dyn Agent>])
            .build();
        let send_tourist_to_2 = |sys: &mut TacomaSystem| {
            let mut bc = Briefcase::new();
            let mut itinerary = Folder::new();
            itinerary.enqueue(b"2".to_vec());
            bc.put(wellknown::ITINERARY, itinerary);
            sys.inject_meet(SiteId(0), AgentName::new("tourist"), bc);
        };

        // Partitioned: the remote leg parks instead of failing fast.
        sys.net_mut().partition(&[SiteId(2)]);
        send_tourist_to_2(&mut sys);
        sys.run_for(Duration::from_millis(10));
        let s = sys.stats();
        assert_eq!(s.send_failures, 0, "custody absorbs the partition");
        assert_eq!(s.meets_completed, 1, "only the local leg has run");
        assert_eq!(sys.net().custody_backlog(), 1);

        // Healing delivers the parked meet: delayed, not lost.
        sys.net_mut().heal_partition();
        sys.run_until_quiescent(1_000);
        let s = sys.stats();
        assert_eq!(s.meets_completed, 2);
        assert_eq!(s.meets_expired, 0);

        // Partition again and never heal: the TTL makes the meet terminal.
        sys.net_mut().partition(&[SiteId(2)]);
        send_tourist_to_2(&mut sys);
        sys.run_until_quiescent(1_000);
        let s = sys.stats();
        assert_eq!(s.meets_expired, 1, "the parked meet expired");
        assert_eq!(s.meets_completed, 3, "the local leg still completed");
        // Conservation with the new terminal bucket: every requested meet is
        // exactly one of completed / failed / send-failed / expired.
        assert_eq!(
            s.meets_requested,
            s.meets_completed + s.meets_failed + s.send_failures + s.meets_expired
        );
    }

    #[test]
    fn register_agent_at_single_site() {
        struct Once;
        impl Agent for Once {
            fn name(&self) -> AgentName {
                AgentName::new("once")
            }
            fn meet(&mut self, _ctx: &mut MeetCtx<'_>, bc: Briefcase) -> MeetOutcome {
                Ok(bc)
            }
        }
        let mut sys = TacomaSystem::new(Topology::full_mesh(2, LinkSpec::default()), 1);
        sys.register_agent(SiteId(1), Box::new(Once));
        assert!(sys.place(SiteId(1)).has_agent(&AgentName::new("once")));
        assert!(!sys.place(SiteId(0)).has_agent(&AgentName::new("once")));
        assert!(sys
            .try_direct_meet(SiteId(1), &AgentName::new("once"), Briefcase::new())
            .is_ok());
    }

    #[test]
    fn defective_code_folders_are_rejected_at_install_time() {
        // `$x` is read before anything assigns it: taco-vet flags this as an
        // error, so the briefcase must be refused before the meet request is
        // even queued — not fail later, mid-migration.
        let mut bc = Briefcase::new();
        bc.put(wellknown::CODE, Folder::of_str("set y $x"));

        let mut sys = TacomaSystem::new(Topology::full_mesh(2, LinkSpec::default()), 7);
        sys.inject_meet(SiteId(0), AgentName::new(wellknown::AG_TAC), bc.clone());
        sys.run_until_quiescent(100);
        let s = sys.stats();
        assert_eq!(s.scripts_rejected, 1);
        assert_eq!(s.meets_requested, 0, "rejected before the request counts");
        assert_eq!(s.remote_meets, 0, "nothing was shipped anywhere");
        assert!(sys.trace().iter().any(|l| l.contains("use-before-set")));

        // The synchronous entry point surfaces the full report as an error.
        let err = sys
            .try_direct_meet(SiteId(0), &AgentName::new(wellknown::AG_TAC), bc.clone())
            .unwrap_err();
        assert!(err.to_string().contains("use-before-set"));
        assert_eq!(sys.stats().scripts_rejected, 2);

        // Opting out restores the unvetted behaviour: the same briefcase is
        // admitted and only fails at dispatch time.
        let mut raw = TacomaSystem::builder()
            .topology(Topology::full_mesh(2, LinkSpec::default()))
            .vet_scripts(false)
            .build();
        raw.inject_meet(SiteId(0), AgentName::new(wellknown::AG_TAC), bc);
        raw.run_until_quiescent(100);
        let s = raw.stats();
        assert_eq!(s.scripts_rejected, 0);
        assert_eq!(s.meets_requested, 1);
        assert_eq!(
            s.meets_failed, 1,
            "no interpreter installed: runtime failure"
        );
    }

    #[test]
    fn clean_code_folders_pass_the_vet_gate() {
        let mut bc = Briefcase::new();
        bc.put(
            wellknown::CODE,
            Folder::of_str("set x 1\nbc_put NOTE $x\nreturn done"),
        );
        let mut sys = TacomaSystem::new(Topology::full_mesh(2, LinkSpec::default()), 7);
        sys.inject_meet(SiteId(0), AgentName::new(wellknown::AG_TAC), bc);
        sys.run_until_quiescent(100);
        let s = sys.stats();
        assert_eq!(s.scripts_rejected, 0);
        assert_eq!(s.meets_requested, 1);
    }

    #[test]
    fn fleet_audit_rejects_what_the_per_script_vet_cannot_see() {
        // `move_to 99` is perfectly well-formed in isolation — the per-script
        // vet passes it — but the fleet has only 4 sites, which only the
        // fleet audit knows.
        let mut bc = Briefcase::new();
        bc.put(
            wellknown::CODE,
            Folder::of_str("bc_push LOG [my_site]\nmove_to 99\nreturn moving"),
        );
        let mut sys = TacomaSystem::builder()
            .topology(Topology::full_mesh(4, LinkSpec::default()))
            .audit_fleet(tacoma_script::AuditConfig::new().deliver("LOG"))
            .build();
        sys.inject_meet(SiteId(0), AgentName::new(wellknown::AG_TAC), bc.clone());
        sys.run_until_quiescent(100);
        let s = sys.stats();
        assert_eq!(s.scripts_rejected, 0, "the per-script vet saw nothing");
        assert_eq!(s.audits_rejected, 1);
        assert_eq!(s.meets_requested, 0, "rejected before the request counts");
        assert!(sys
            .trace()
            .iter()
            .any(|l| l.contains("itinerary-out-of-range")));

        // The synchronous entry point surfaces the findings too.
        let err = sys
            .try_direct_meet(SiteId(0), &AgentName::new(wellknown::AG_TAC), bc.clone())
            .unwrap_err();
        assert!(err.to_string().contains("itinerary-out-of-range"));
        assert_eq!(sys.stats().audits_rejected, 2);
        assert_eq!(sys.stats().meets_requested, 0);

        // Without an audit config (the default) the same briefcase is
        // admitted: the fleet audit is strictly opt-in.
        let mut raw = TacomaSystem::builder()
            .topology(Topology::full_mesh(4, LinkSpec::default()))
            .build();
        raw.inject_meet(SiteId(0), AgentName::new(wellknown::AG_TAC), bc);
        raw.run_until_quiescent(100);
        assert_eq!(raw.stats().audits_rejected, 0);
        assert_eq!(raw.stats().meets_requested, 1);
    }

    #[test]
    fn fleet_audit_admits_clean_scripts_and_tolerates_warnings() {
        // Reads HOPS (present in the briefcase, so auto-injected) and writes
        // NOTE, which nothing reads — a dead-folder-write *warning*, and
        // warnings do not reject.
        let mut bc = Briefcase::new();
        bc.put(
            wellknown::CODE,
            Folder::of_str("set h [bc_pop HOPS]\nbc_put NOTE $h\nreturn ok"),
        );
        bc.put("HOPS", Folder::of_str("3"));
        let mut sys = TacomaSystem::builder()
            .topology(Topology::full_mesh(2, LinkSpec::default()))
            .audit_fleet(tacoma_script::AuditConfig::new())
            .build();
        sys.inject_meet(SiteId(0), AgentName::new(wellknown::AG_TAC), bc);
        sys.run_until_quiescent(100);
        let s = sys.stats();
        assert_eq!(s.audits_rejected, 0);
        assert_eq!(s.meets_requested, 1);
    }

    #[test]
    fn cost_gate_rejects_certain_death_and_stamps_bounds() {
        // A loop whose proven *lower* bound (202 steps) exceeds the budget:
        // running it is guaranteed to die on the interpreter's step budget,
        // so even the lenient gate refuses it up front.
        let mut heavy = Briefcase::new();
        heavy.put(
            wellknown::CODE,
            Folder::of_str("set i 0\nwhile {$i < 100} { incr i }\nreturn done"),
        );
        let mut sys = TacomaSystem::builder()
            .topology(Topology::full_mesh(2, LinkSpec::default()))
            .cost_gate(tacoma_script::CostGate::lenient(50, 8))
            .build();
        sys.inject_meet(SiteId(0), AgentName::new(wellknown::AG_TAC), heavy.clone());
        sys.run_until_quiescent(100);
        let s = sys.stats();
        assert_eq!(s.costs_rejected, 1);
        assert_eq!(s.scripts_rejected, 0, "the vet saw nothing wrong");
        assert_eq!(s.meets_requested, 0, "rejected before the request counts");
        assert!(sys.trace().iter().any(|l| l.contains("lower bound")));

        // The synchronous entry point surfaces the reason too.
        let err = sys
            .try_direct_meet(SiteId(0), &AgentName::new(wellknown::AG_TAC), heavy.clone())
            .unwrap_err();
        assert!(err.to_string().contains("cost"));
        assert_eq!(sys.stats().costs_rejected, 2);

        // A light script passes and is annotated with its proven bound.
        let mut light = Briefcase::new();
        light.put(wellknown::CODE, Folder::of_str("set x 1\nreturn ok"));
        sys.inject_meet(SiteId(0), AgentName::new(wellknown::AG_TAC), light);
        sys.run_until_quiescent(100);
        assert_eq!(sys.stats().costs_rejected, 2);
        assert_eq!(sys.stats().meets_requested, 1);

        // Without a gate (the default) the heavy briefcase is admitted: the
        // cost gate is strictly opt-in.
        let mut raw = TacomaSystem::builder()
            .topology(Topology::full_mesh(2, LinkSpec::default()))
            .build();
        raw.inject_meet(SiteId(0), AgentName::new(wellknown::AG_TAC), heavy);
        raw.run_until_quiescent(100);
        assert_eq!(raw.stats().costs_rejected, 0);
        assert_eq!(raw.stats().meets_requested, 1);
    }

    #[test]
    fn strict_cost_gate_requires_proven_finite_bounds() {
        // Input-bound (foreach over a runtime list) has no finite static
        // bound: the lenient gate admits it, the strict gate refuses it.
        let mut bc = Briefcase::new();
        bc.put(
            wellknown::CODE,
            Folder::of_str("foreach x [bc_list ITEMS] { bc_push OUT $x }\nreturn ok"),
        );
        let mut lenient = TacomaSystem::builder()
            .topology(Topology::full_mesh(2, LinkSpec::default()))
            .cost_gate(tacoma_script::CostGate::lenient(1000, 8))
            .build();
        lenient.inject_meet(SiteId(0), AgentName::new(wellknown::AG_TAC), bc.clone());
        lenient.run_until_quiescent(100);
        assert_eq!(lenient.stats().costs_rejected, 0);
        assert_eq!(lenient.stats().meets_requested, 1);

        let mut strict = TacomaSystem::builder()
            .topology(Topology::full_mesh(2, LinkSpec::default()))
            .cost_gate(tacoma_script::CostGate::strict(1000, 8))
            .build();
        strict.inject_meet(SiteId(0), AgentName::new(wellknown::AG_TAC), bc);
        strict.run_until_quiescent(100);
        assert_eq!(strict.stats().costs_rejected, 1);
        assert_eq!(strict.stats().meets_requested, 0);
    }

    #[test]
    fn scheduled_meets_are_cost_gated_at_schedule_time() {
        let mut heavy = Briefcase::new();
        heavy.put(
            wellknown::CODE,
            Folder::of_str("set i 0\nwhile {$i < 100} { incr i }\nreturn done"),
        );
        let mut sys = TacomaSystem::builder()
            .topology(Topology::full_mesh(2, LinkSpec::default()))
            .cost_gate(tacoma_script::CostGate::lenient(50, 8))
            .build();
        sys.schedule_meet(
            SiteId(0),
            AgentName::new(wellknown::AG_TAC),
            heavy,
            Duration::from_millis(1),
        );
        // Rejected synchronously: no timer armed, nothing fires.
        assert_eq!(sys.stats().costs_rejected, 1);
        sys.run_until_quiescent(100);
        assert_eq!(sys.stats().timer_meets, 0);
        assert_eq!(sys.stats().meets_requested, 0);
    }

    #[test]
    fn cost_annotation_stretches_service_time() {
        // Two identical-size requests, one carrying a COST annotation: with a
        // per-kilostep charge the annotated one must hold the server longer.
        let config = AdmissionConfig {
            capacity: usize::MAX,
            service_floor: Duration::from_micros(500),
            service_per_kib: Duration::from_micros(0),
            service_per_kilostep: Duration::from_millis(3),
            deadline: None,
            janitor_period: Duration::from_millis(100),
        };
        assert_eq!(
            config.service_time_with_steps(100, 0),
            Duration::from_micros(500)
        );
        assert_eq!(
            config.service_time_with_steps(100, 4_500),
            Duration::from_micros(500 + 5 * 3_000)
        );
        // And the zero default keeps the historical pure-size model.
        let legacy = AdmissionConfig::default();
        assert_eq!(
            legacy.service_time_with_steps(2048, 10_000),
            legacy.service_time(2048)
        );
    }

    #[test]
    fn wellknown_agents_are_modelled_by_the_audit() {
        // Every wellknown agent the kernel installs must be known to the
        // audit's implicit-agent model, or literal meets against it would
        // dangle out of the meet graph.
        for agent in wellknown::AGENTS {
            assert!(
                tacoma_script::audit::WELLKNOWN_AGENTS.contains(agent),
                "wellknown agent '{agent}' missing from the audit model"
            );
        }
    }

    /// Conservation with the shed bucket: every requested meet lands in
    /// exactly one terminal outcome.
    fn assert_conserved(s: &SystemStats) {
        assert_eq!(
            s.meets_requested,
            s.meets_completed + s.meets_failed + s.send_failures + s.meets_expired + s.meets_shed,
            "meet conservation violated: {s:?}"
        );
    }

    fn admission_system(config: AdmissionConfig) -> TacomaSystem {
        TacomaSystem::builder()
            .topology(Topology::full_mesh(2, LinkSpec::default()))
            .seed(7)
            .admission(config)
            .with_agents(|_| vec![Box::new(Pinger)])
            .build()
    }

    #[test]
    fn admission_overflow_sheds_and_conserves() {
        // Queue of 2 with slow service: a burst of 10 can hold at most one
        // in service plus two queued at its peak, so most of the burst sheds.
        let mut sys = admission_system(AdmissionConfig {
            capacity: 2,
            service_floor: Duration::from_millis(50),
            service_per_kib: Duration::from_micros(0),
            service_per_kilostep: Duration::from_micros(0),
            deadline: None,
            janitor_period: Duration::from_millis(100),
        });
        for _ in 0..10 {
            sys.inject_meet(SiteId(0), AgentName::new("pinger"), Briefcase::new());
        }
        sys.run_until_quiescent(10_000);
        let s = sys.stats();
        assert_eq!(s.meets_requested, 10);
        assert!(s.meets_shed >= 7, "expected most of the burst shed: {s:?}");
        assert!(s.meets_completed >= 1, "the served head must complete");
        assert_conserved(&s);
        let m = sys.net_metrics();
        assert_eq!(m.shed_meets(), s.meets_shed);
        assert_eq!(m.admitted_meets(), s.meets_completed);
        assert!(m.shed_rate() > 0.5);
        assert!(m.admission_queue_peak() >= 2);
    }

    #[test]
    fn admission_unbounded_never_sheds() {
        let mut sys = admission_system(
            AdmissionConfig {
                capacity: 2,
                service_floor: Duration::from_millis(5),
                service_per_kib: Duration::from_micros(0),
                service_per_kilostep: Duration::from_micros(0),
                deadline: Some(Duration::from_millis(1)),
                janitor_period: Duration::from_millis(1),
            }
            .unbounded(),
        );
        for _ in 0..20 {
            sys.inject_meet(SiteId(0), AgentName::new("pinger"), Briefcase::new());
        }
        sys.run_until_quiescent(10_000);
        let s = sys.stats();
        assert_eq!(s.meets_shed, 0, "unbounded admission must not shed");
        assert_eq!(s.meets_completed, 20);
        assert_conserved(&s);
        // Queueing delay is real: later arrivals waited behind ~95ms of
        // service, which the wait summary must reflect.
        assert!(sys.net_metrics().admission_waits().max() >= 90.0);
    }

    #[test]
    fn janitor_sheds_expired_entries_and_quiesces() {
        // Slow service with a short deadline: everything behind the head of
        // the queue goes stale and the janitor sweeps it.
        let mut sys = admission_system(AdmissionConfig {
            capacity: usize::MAX,
            service_floor: Duration::from_millis(50),
            service_per_kib: Duration::from_micros(0),
            service_per_kilostep: Duration::from_micros(0),
            deadline: Some(Duration::from_millis(10)),
            janitor_period: Duration::from_millis(5),
        });
        for _ in 0..6 {
            sys.inject_meet(SiteId(0), AgentName::new("pinger"), Briefcase::new());
        }
        let processed = sys.run_until_quiescent(10_000);
        assert!(
            processed < 10_000,
            "janitor must disarm and let the run drain"
        );
        let s = sys.stats();
        let m = sys.net_metrics();
        assert!(m.janitor_sweeps() > 0, "janitor never ran");
        assert!(m.janitor_shed() > 0, "janitor never shed: {s:?}");
        assert_eq!(
            m.janitor_shed() + (m.shed_meets() - m.janitor_shed()),
            s.meets_shed
        );
        assert!(s.meets_completed >= 1);
        assert_conserved(&s);
    }

    #[test]
    fn scheduled_meets_flow_through_admission() {
        let mut sys = admission_system(AdmissionConfig::default());
        for i in 0..4u64 {
            sys.schedule_meet(
                SiteId(1),
                AgentName::new("pinger"),
                Briefcase::new(),
                Duration::from_millis(i),
            );
        }
        sys.run_until_quiescent(10_000);
        let s = sys.stats();
        assert_eq!(s.timer_meets, 4);
        assert_eq!(s.meets_requested, 4);
        assert_eq!(s.meets_completed, 4);
        assert_conserved(&s);
        assert_eq!(sys.net_metrics().admitted_meets(), 4);
    }

    #[test]
    fn crash_sheds_queued_admissions() {
        let mut sys = admission_system(AdmissionConfig {
            capacity: usize::MAX,
            service_floor: Duration::from_millis(50),
            service_per_kib: Duration::from_micros(0),
            service_per_kilostep: Duration::from_micros(0),
            deadline: None,
            janitor_period: Duration::from_millis(100),
        });
        for _ in 0..5 {
            sys.inject_meet(SiteId(0), AgentName::new("pinger"), Briefcase::new());
        }
        // Let the burst land in the queue, then take the site down mid-queue
        // (the crash is a scheduled event so it flows through the loop).
        sys.apply_failure_plan(&FailurePlan::none().crash(SiteId(0), SimTime(5_000)));
        sys.run_until_quiescent(10_000);
        let s = sys.stats();
        assert!(
            s.meets_shed >= 4,
            "queued and in-service meets must shed: {s:?}"
        );
        assert_conserved(&s);
    }
}
