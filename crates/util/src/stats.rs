//! Small statistics helpers used by the experiment harness.
//!
//! The bench harness regenerates the paper's (qualitative) results as small
//! tables: bytes moved, agents spawned, completion times, queue waits.  This
//! module provides the online summary statistics and fixed-bucket histograms
//! those tables are printed from, without pulling in a statistics crate.

use serde::{Deserialize, Serialize};

/// Online summary statistics over a stream of `f64` samples.
///
/// Tracks count, mean, min, max and an exact list of samples for percentile
/// queries.  The sample list is retained because experiment sizes in this
/// reproduction are modest (≤ a few hundred thousand samples).  The running
/// sum uses Neumaier-compensated summation, so the mean stays honest at 10^5+
/// samples of mixed magnitude instead of silently losing low-order bits to
/// naive accumulation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Summary {
    samples: Vec<f64>,
    sum: f64,
    /// Neumaier compensation term: the low-order bits the running `sum`
    /// could not represent, folded back in by [`Summary::sum`].
    compensation: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample (Neumaier-compensated).
    pub fn add(&mut self, value: f64) {
        self.samples.push(value);
        let t = self.sum + value;
        // Neumaier's branch: compensate with whichever operand lost bits.
        if self.sum.abs() >= value.abs() {
            self.compensation += (self.sum - t) + value;
        } else {
            self.compensation += (value - t) + self.sum;
        }
        self.sum = t;
    }

    /// Adds every sample from an iterator.
    pub fn extend(&mut self, values: impl IntoIterator<Item = f64>) {
        for v in values {
            self.add(v);
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Returns true if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sum of all samples (compensated).
    pub fn sum(&self) -> f64 {
        self.sum + self.compensation
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum() / self.samples.len() as f64
        }
    }

    /// Smallest sample, or 0.0 when empty.
    pub fn min(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .min_finite()
    }

    /// Largest sample, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .max_finite()
    }

    /// Population standard deviation, or 0.0 when fewer than two samples.
    pub fn std_dev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .samples
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / self.samples.len() as f64;
        var.sqrt()
    }

    /// The `p`-th percentile (0.0–100.0) by nearest-rank, or 0.0 when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }
}

/// Extension trait turning non-finite fold results into 0.0 for empty inputs.
trait FiniteOrZero {
    fn min_finite(self) -> f64;
    fn max_finite(self) -> f64;
}

impl FiniteOrZero for f64 {
    fn min_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
    fn max_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

/// A fixed-width-bucket histogram over non-negative samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    bucket_width: f64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of width `bucket_width`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is not positive or `buckets` is zero.
    pub fn new(bucket_width: f64, buckets: usize) -> Self {
        assert!(bucket_width > 0.0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        Self {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
            count: 0,
        }
    }

    /// Records one sample (negative samples land in the first bucket).
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        let idx = (value.max(0.0) / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of samples beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Returns `(bucket_lower_bound, count)` pairs for non-empty buckets.
    pub fn non_empty_buckets(&self) -> Vec<(f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as f64 * self.bucket_width, c))
            .collect()
    }
}

/// Formats a ratio as a `x.yz×` factor string for experiment tables.
pub fn factor(numerator: f64, denominator: f64) -> String {
    if denominator == 0.0 {
        "∞×".to_string()
    } else {
        format!("{:.2}×", numerator / denominator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.median(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn summary_basic_stats() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum(), 15.0);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.median(), 3.0);
        assert!((s.std_dev() - std::f64::consts::SQRT_2).abs() < 0.001);
    }

    #[test]
    fn sum_is_compensated_against_cancellation() {
        // Naive accumulation returns 0.0 here: adding 1.0 to 1e16 loses the
        // low bits, and subtracting 1e16 back exposes the loss.
        let mut s = Summary::new();
        s.extend([1e16, 1.0, -1e16]);
        assert_eq!(s.sum(), 1.0);
        assert_eq!(s.mean(), 1.0 / 3.0);
    }

    #[test]
    fn mean_is_honest_over_many_small_samples_after_a_spike() {
        // One large sample followed by 10^5 tiny ones: the naive running sum
        // absorbs none of the tiny ones (each is below 1 ulp of 1e16), so its
        // mean equals spike/n exactly; the compensated mean keeps them.
        let n = 100_000u64;
        let mut s = Summary::new();
        s.add(1e16);
        for _ in 0..n {
            s.add(0.5);
        }
        let expected = (1e16 + 0.5 * n as f64) / (n as f64 + 1.0);
        let naive = 1e16 / (n as f64 + 1.0);
        assert_eq!(s.mean(), expected);
        assert!((s.mean() - naive).abs() > 0.4, "compensation must matter");
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut s = Summary::new();
        s.extend((1..=100).map(|i| i as f64));
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 100.0);
        let p95 = s.percentile(95.0);
        assert!((94.0..=96.0).contains(&p95));
    }

    #[test]
    fn empty_percentiles_are_zero_at_every_rank() {
        let s = Summary::new();
        for p in [0.0, 50.0, 100.0, -5.0, 250.0] {
            assert_eq!(s.percentile(p), 0.0, "p={p} on empty input");
        }
    }

    #[test]
    fn percentile_extremes_pin_to_min_and_max() {
        let mut s = Summary::new();
        s.extend([5.0, 1.0, 9.0, 3.0]);
        assert_eq!(s.percentile(0.0), s.min());
        assert_eq!(s.percentile(100.0), s.max());
        // Out-of-range ranks clamp instead of indexing out of bounds.
        assert_eq!(s.percentile(-10.0), 1.0);
        assert_eq!(s.percentile(1000.0), 9.0);
    }

    #[test]
    fn single_sample_summary_is_its_own_min_max_and_median() {
        let mut s = Summary::new();
        s.add(-2.5);
        assert_eq!(s.min(), -2.5);
        assert_eq!(s.max(), -2.5);
        assert_eq!(s.median(), -2.5);
        assert_eq!(s.percentile(0.0), -2.5);
        assert_eq!(s.percentile(100.0), -2.5);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(10.0, 5);
        for v in [0.0, 5.0, 9.9, 10.0, 49.9, 50.0, 1000.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.overflow(), 2);
        let buckets = h.non_empty_buckets();
        assert_eq!(buckets[0], (0.0, 3));
        assert!(buckets.contains(&(10.0, 1)));
        assert!(buckets.contains(&(40.0, 1)));
    }

    #[test]
    fn negative_samples_clamp_to_first_bucket() {
        let mut h = Histogram::new(1.0, 3);
        h.record(-5.0);
        assert_eq!(h.non_empty_buckets(), vec![(0.0, 1)]);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_width_histogram_panics() {
        let _ = Histogram::new(0.0, 3);
    }

    #[test]
    fn factor_formats() {
        assert_eq!(factor(10.0, 5.0), "2.00×");
        assert_eq!(factor(1.0, 0.0), "∞×");
    }
}
