//! Utility substrate for the TACOMA reproduction.
//!
//! This crate collects the small, dependency-free building blocks that every
//! other crate in the workspace relies on:
//!
//! * [`rng::DetRng`] — a deterministic, seedable pseudo-random number
//!   generator (SplitMix64 seeding an xoshiro256** core) so that every
//!   simulation run and every experiment in the paper reproduction is exactly
//!   repeatable from a seed.
//! * [`ids`] — strongly typed identifiers for sites and agents.
//! * [`stats`] — tiny online statistics and histogram helpers used by the
//!   benchmark harness to print the experiment tables.
//! * [`bytesize`] — human-readable byte-size formatting for reports.
//! * [`json`] — a deterministic hand-rolled JSON value/writer/parser (the
//!   vendored serde is a no-op shim, so machine-readable bench reports go
//!   through this instead).
//! * [`metric`] — typed metric values and comparison tolerances shared by
//!   the network accounting layer and the bench regression gate.
//!
//! Nothing in this crate knows about agents, folders, or the simulated
//! network; it exists so those crates can stay focused on the paper's
//! abstractions.

#![warn(missing_docs)]

pub mod bytesize;
pub mod ids;
pub mod json;
pub mod metric;
pub mod rng;
pub mod stats;

pub use bytesize::{human_bytes, ByteCount};
pub use ids::{AgentId, AgentIdGen, AgentName, SiteId};
pub use json::{Json, JsonError};
pub use metric::{metric_key, MetricValue, Tolerance};
pub use rng::DetRng;
pub use stats::{factor, Histogram, Summary};
