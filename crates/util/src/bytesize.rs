//! Byte-size accounting and formatting.
//!
//! The paper's central quantitative claim (§1) is that structuring an
//! application as agents conserves network bandwidth, because data is filtered
//! where it lives instead of being shipped raw.  Every experiment that tests
//! that claim reports *bytes moved over links*; this module provides the
//! counter type and human-readable formatting used in those tables.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign};

/// A monotonically accumulating byte counter.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ByteCount(pub u64);

impl ByteCount {
    /// Zero bytes.
    pub const ZERO: ByteCount = ByteCount(0);

    /// Creates a counter holding `n` bytes.
    pub fn new(n: u64) -> Self {
        ByteCount(n)
    }

    /// Raw byte value.
    pub fn get(self) -> u64 {
        self.0
    }

    /// Adds `n` bytes.
    pub fn add_bytes(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Returns the value in KiB as a float.
    pub fn kib(self) -> f64 {
        self.0 as f64 / 1024.0
    }

    /// Returns the value in MiB as a float.
    pub fn mib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }
}

impl Add for ByteCount {
    type Output = ByteCount;
    fn add(self, rhs: ByteCount) -> ByteCount {
        ByteCount(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for ByteCount {
    fn add_assign(&mut self, rhs: ByteCount) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl From<u64> for ByteCount {
    fn from(v: u64) -> Self {
        ByteCount(v)
    }
}

impl From<usize> for ByteCount {
    fn from(v: usize) -> Self {
        ByteCount(v as u64)
    }
}

impl fmt::Display for ByteCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&human_bytes(self.0))
    }
}

/// Formats a byte count with a binary unit suffix (B, KiB, MiB, GiB).
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    if bytes < 1024 {
        return format!("{bytes} B");
    }
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    format!("{value:.2} {}", UNITS[unit])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(0), "0 B");
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(1024), "1.00 KiB");
        assert_eq!(human_bytes(1536), "1.50 KiB");
        assert_eq!(human_bytes(1024 * 1024), "1.00 MiB");
        assert_eq!(human_bytes(3 * 1024 * 1024 * 1024), "3.00 GiB");
    }

    #[test]
    fn byte_count_arithmetic() {
        let mut c = ByteCount::ZERO;
        c.add_bytes(100);
        c += ByteCount::new(24);
        assert_eq!(c.get(), 124);
        assert_eq!((c + ByteCount::new(1)).get(), 125);
        assert_eq!(ByteCount::from(2048u64).kib(), 2.0);
        assert_eq!(ByteCount::from(1024usize * 1024).mib(), 1.0);
    }

    #[test]
    fn byte_count_saturates() {
        let mut c = ByteCount::new(u64::MAX - 1);
        c.add_bytes(100);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn display_uses_human_format() {
        assert_eq!(ByteCount::new(2048).to_string(), "2.00 KiB");
    }
}
