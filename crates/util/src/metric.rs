//! Typed metric values shared by the network accounting layer and the bench
//! report subsystem.
//!
//! Every measured quantity an experiment emits — byte totals, wait times,
//! rendered factors like `"15.3×"` — is carried as a [`MetricValue`] so that
//! reports can serialize it to JSON losslessly and the regression gate can
//! compare it against a baseline with a per-metric [`Tolerance`].

use crate::json::Json;
use std::fmt;

/// One measured value, typed so comparisons and serialization are lossless.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// An exact non-negative counter (bytes, meets, messages).
    Count(u64),
    /// A real-valued measurement (milliseconds, ratios).
    Float(f64),
    /// A boolean outcome (e.g. "indexed hit").
    Flag(bool),
    /// Anything non-numeric (labels, rendered fractions like `"10/10"`).
    Text(String),
}

impl MetricValue {
    /// Classifies a rendered table cell into the tightest type that parses.
    ///
    /// `"1234"` → `Count`, `"21.4"` → `Float`, `"true"` → `Flag`, everything
    /// else (percentages, factors, fractions) stays `Text` and is compared
    /// for exact equality by the gate.
    pub fn from_cell(cell: &str) -> MetricValue {
        if let Ok(n) = cell.parse::<u64>() {
            return MetricValue::Count(n);
        }
        if let Ok(f) = cell.parse::<f64>() {
            if f.is_finite() {
                return MetricValue::Float(f);
            }
        }
        if let Ok(b) = cell.parse::<bool>() {
            return MetricValue::Flag(b);
        }
        MetricValue::Text(cell.to_string())
    }

    /// The value as a number, when it has one.
    pub fn as_number(&self) -> Option<f64> {
        match *self {
            MetricValue::Count(n) => Some(n as f64),
            MetricValue::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Serializes to a JSON value.
    pub fn to_json(&self) -> Json {
        match self {
            MetricValue::Count(n) => Json::Uint(*n),
            MetricValue::Float(f) => Json::Float(*f),
            MetricValue::Flag(b) => Json::Bool(*b),
            MetricValue::Text(s) => Json::Str(s.clone()),
        }
    }

    /// Deserializes from a JSON value.
    pub fn from_json(json: &Json) -> Option<MetricValue> {
        match json {
            Json::Uint(n) => Some(MetricValue::Count(*n)),
            Json::Int(n) => Some(MetricValue::Float(*n as f64)),
            Json::Float(f) => Some(MetricValue::Float(*f)),
            Json::Bool(b) => Some(MetricValue::Flag(*b)),
            Json::Str(s) => Some(MetricValue::Text(s.clone())),
            _ => None,
        }
    }

    /// Whether `self` (the current run) is within `tol` of `baseline`.
    ///
    /// Numeric pairs compare as `|cur - base| <= max(abs, rel * |base|)`;
    /// flags and text require exact equality; a type change never passes.
    pub fn within(&self, baseline: &MetricValue, tol: Tolerance) -> bool {
        match (self.as_number(), baseline.as_number()) {
            (Some(cur), Some(base)) => {
                let allowed = tol.abs.max(tol.rel * base.abs());
                (cur - base).abs() <= allowed
            }
            (None, None) => self == baseline,
            _ => false,
        }
    }
}

impl fmt::Display for MetricValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricValue::Count(n) => write!(f, "{n}"),
            MetricValue::Float(v) => write!(f, "{v}"),
            MetricValue::Flag(b) => write!(f, "{b}"),
            MetricValue::Text(s) => write!(f, "{s}"),
        }
    }
}

/// How far a metric may drift from its baseline before the gate fails.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Relative slack as a fraction of the baseline value.
    pub rel: f64,
    /// Absolute slack, useful for values that hover near zero.
    pub abs: f64,
}

impl Tolerance {
    /// Exact match required (the default for a deterministic simulator).
    pub const EXACT: Tolerance = Tolerance { rel: 0.0, abs: 0.0 };

    /// A relative tolerance with no absolute slack.
    pub fn rel(rel: f64) -> Tolerance {
        Tolerance { rel, abs: 0.0 }
    }
}

impl Default for Tolerance {
    fn default() -> Tolerance {
        Tolerance::EXACT
    }
}

/// Turns a table header into a stable metric-key segment: lowercase ASCII
/// with every run of non-alphanumeric characters collapsed to one `_`.
pub fn metric_key(header: &str) -> String {
    let mut key = String::with_capacity(header.len());
    let mut pending_sep = false;
    for c in header.chars() {
        if c.is_ascii_alphanumeric() {
            if pending_sep && !key.is_empty() {
                key.push('_');
            }
            pending_sep = false;
            key.push(c.to_ascii_lowercase());
        } else {
            pending_sep = true;
        }
    }
    if key.is_empty() {
        key.push('_');
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_classify_into_the_tightest_type() {
        assert_eq!(MetricValue::from_cell("1234"), MetricValue::Count(1234));
        assert_eq!(MetricValue::from_cell("21.4"), MetricValue::Float(21.4));
        assert_eq!(MetricValue::from_cell("true"), MetricValue::Flag(true));
        assert_eq!(
            MetricValue::from_cell("10/10"),
            MetricValue::Text("10/10".into())
        );
        assert_eq!(
            MetricValue::from_cell("15.3×"),
            MetricValue::Text("15.3×".into())
        );
    }

    #[test]
    fn json_round_trip_preserves_type_and_value() {
        for v in [
            MetricValue::Count(u64::MAX),
            MetricValue::Float(0.125),
            MetricValue::Flag(false),
            MetricValue::Text("98%".into()),
        ] {
            let json = v.to_json();
            assert_eq!(MetricValue::from_json(&json), Some(v));
        }
    }

    #[test]
    fn tolerance_boundaries_are_inclusive() {
        let base = MetricValue::Count(1000);
        let tol = Tolerance::rel(0.02);
        assert!(
            MetricValue::Count(1020).within(&base, tol),
            "at the boundary passes"
        );
        assert!(
            MetricValue::Count(980).within(&base, tol),
            "drift below passes too"
        );
        assert!(
            !MetricValue::Count(1021).within(&base, tol),
            "past the boundary fails"
        );
        assert!(MetricValue::Count(1000).within(&base, Tolerance::EXACT));
        assert!(!MetricValue::Count(1001).within(&base, Tolerance::EXACT));
    }

    #[test]
    fn absolute_slack_covers_near_zero_baselines() {
        let base = MetricValue::Float(0.0);
        assert!(!MetricValue::Float(0.5).within(&base, Tolerance::rel(0.10)));
        assert!(MetricValue::Float(0.5).within(
            &base,
            Tolerance {
                rel: 0.10,
                abs: 0.5
            }
        ));
    }

    #[test]
    fn text_and_flags_require_equality_and_types_never_cross() {
        let loose = Tolerance::rel(10.0);
        assert!(MetricValue::Text("ok".into()).within(&MetricValue::Text("ok".into()), loose));
        assert!(!MetricValue::Text("ok".into()).within(&MetricValue::Text("no".into()), loose));
        assert!(!MetricValue::Count(1).within(&MetricValue::Text("1".into()), loose));
        assert!(!MetricValue::Flag(true).within(&MetricValue::Flag(false), loose));
    }

    #[test]
    fn metric_keys_are_stable_slugs() {
        assert_eq!(metric_key("records/site"), "records_site");
        assert_eq!(metric_key("client-server bytes"), "client_server_bytes");
        assert_eq!(metric_key("p95 wait ms"), "p95_wait_ms");
        assert_eq!(metric_key("—"), "_");
    }
}
