//! A minimal, deterministic JSON value type with a writer and parser.
//!
//! The workspace's `serde` is an offline no-op shim (see `shims/serde`), so
//! the bench report layer serializes through this hand-rolled module instead.
//! Two properties matter more than generality here:
//!
//! 1. **Determinism** — objects preserve insertion order and the writer is
//!    byte-stable, so the same report always serializes to the same bytes
//!    (the regression gate diffs reports byte-for-byte in tests).
//! 2. **Round-trip fidelity** — `u64` counters are kept exact (not routed
//!    through `f64`), and float formatting uses Rust's shortest round-trip
//!    representation.
//!
//! Non-finite floats have no JSON representation and are written as `null`.

use std::fmt;

/// A JSON document fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, kept exact (counters, byte totals).
    Uint(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion-ordered so serialization is deterministic.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Creates an empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Sets `key: value` on an object (panics on non-objects — builder use
    /// only).  An existing key is replaced **in place**, keeping its original
    /// position, so objects never carry duplicate keys and serialization
    /// order stays deterministic under re-sets.
    pub fn set(&mut self, key: impl Into<String>, value: Json) {
        match self {
            Json::Object(pairs) => {
                let key = key.into();
                match pairs.iter_mut().find(|(k, _)| *k == key) {
                    Some(pair) => pair.1 = value,
                    None => pairs.push((key, value)),
                }
            }
            _ => panic!("Json::set on a non-object"),
        }
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Uint(n) => Some(n),
            Json::Int(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// The value as an `f64` if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Uint(n) => Some(n as f64),
            Json::Int(n) => Some(n as f64),
            Json::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object pairs.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Uint(n) => out.push_str(&n.to_string()),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // `{}` on f64 is the shortest representation that parses
                    // back to the same bits, so writing is deterministic and
                    // the round trip is exact.
                    let s = format!("{f}");
                    out.push_str(&s);
                    // Keep floats distinguishable from integers on re-parse.
                    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document, requiring it to span the whole input.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            chars: input.char_indices().peekable(),
            input,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if let Some(&(pos, _)) = p.chars.peek() {
            return Err(JsonError::at(pos, "trailing characters after document"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl JsonError {
    fn at(offset: usize, message: impl Into<String>) -> JsonError {
        JsonError {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    input: &'a str,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(&(_, c)) if c.is_ascii_whitespace()) {
            self.chars.next();
        }
    }

    fn pos(&mut self) -> usize {
        self.chars
            .peek()
            .map(|&(i, _)| i)
            .unwrap_or(self.input.len())
    }

    fn expect(&mut self, want: char) -> Result<(), JsonError> {
        match self.chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((i, c)) => Err(JsonError::at(i, format!("expected '{want}', found '{c}'"))),
            None => Err(JsonError::at(
                self.input.len(),
                format!("expected '{want}', found end of input"),
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        for want in word.chars() {
            self.expect(want)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.chars.peek() {
            Some(&(_, 'n')) => self.literal("null", Json::Null),
            Some(&(_, 't')) => self.literal("true", Json::Bool(true)),
            Some(&(_, 'f')) => self.literal("false", Json::Bool(false)),
            Some(&(_, '"')) => Ok(Json::Str(self.string()?)),
            Some(&(_, '[')) => self.array(),
            Some(&(_, '{')) => self.object(),
            Some(&(_, c)) if c == '-' || c.is_ascii_digit() => self.number(),
            Some(&(i, c)) => Err(JsonError::at(i, format!("unexpected character '{c}'"))),
            None => Err(JsonError::at(self.input.len(), "unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if matches!(self.chars.peek(), Some(&(_, ']'))) {
            self.chars.next();
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.chars.next() {
                Some((_, ',')) => continue,
                Some((_, ']')) => return Ok(Json::Array(items)),
                Some((i, c)) => {
                    return Err(JsonError::at(
                        i,
                        format!("expected ',' or ']', found '{c}'"),
                    ))
                }
                None => return Err(JsonError::at(self.input.len(), "unterminated array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect('{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if matches!(self.chars.peek(), Some(&(_, '}'))) {
            self.chars.next();
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.chars.next() {
                Some((_, ',')) => continue,
                Some((_, '}')) => return Ok(Json::Object(pairs)),
                Some((i, c)) => {
                    return Err(JsonError::at(
                        i,
                        format!("expected ',' or '}}', found '{c}'"),
                    ))
                }
                None => return Err(JsonError::at(self.input.len(), "unterminated object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                Some((_, '"')) => return Ok(out),
                Some((i, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((_, 'u')) => out.push(self.unicode_escape(i)?),
                    Some((i, c)) => {
                        return Err(JsonError::at(i, format!("invalid escape '\\{c}'")))
                    }
                    None => return Err(JsonError::at(self.input.len(), "unterminated escape")),
                },
                Some((_, c)) => out.push(c),
                None => return Err(JsonError::at(self.input.len(), "unterminated string")),
            }
        }
    }

    fn hex4(&mut self, start: usize) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            match self.chars.next().and_then(|(_, c)| c.to_digit(16)) {
                Some(d) => code = code * 16 + d,
                None => return Err(JsonError::at(start, "invalid \\u escape")),
            }
        }
        Ok(code)
    }

    fn unicode_escape(&mut self, start: usize) -> Result<char, JsonError> {
        let hi = self.hex4(start)?;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair: expect a trailing \uXXXX low surrogate.
            self.expect('\\')?;
            self.expect('u')?;
            let lo = self.hex4(start)?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(JsonError::at(start, "unpaired surrogate"));
            }
            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            return char::from_u32(code)
                .ok_or_else(|| JsonError::at(start, "invalid surrogate pair"));
        }
        char::from_u32(hi).ok_or_else(|| JsonError::at(start, "invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos();
        let mut is_float = false;
        if matches!(self.chars.peek(), Some(&(_, '-'))) {
            self.chars.next();
        }
        while let Some(&(_, c)) = self.chars.peek() {
            match c {
                '0'..='9' => {
                    self.chars.next();
                }
                '.' | 'e' | 'E' | '+' | '-' => {
                    is_float = true;
                    self.chars.next();
                }
                _ => break,
            }
        }
        let end = self.pos();
        let text = &self.input[start..end];
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::Uint(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| JsonError::at(start, format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let mut metrics = Json::object();
        metrics.set("bytes", Json::Uint(u64::MAX));
        metrics.set("wait_ms", Json::Float(21.375));
        metrics.set("label", Json::Str("15.3× — \"saving\"\n".into()));
        let mut doc = Json::object();
        doc.set("schema", Json::Uint(1));
        doc.set("ok", Json::Bool(true));
        doc.set("none", Json::Null);
        doc.set("neg", Json::Int(-42));
        doc.set("metrics", metrics);
        doc.set("rows", Json::Array(vec![Json::Uint(1), Json::Uint(2)]));
        let text = doc.to_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        // The writer is byte-stable across round trips.
        assert_eq!(parsed.to_pretty(), text);
    }

    #[test]
    fn set_replaces_an_existing_key_in_place() {
        let mut obj = Json::object();
        obj.set("a", Json::Uint(1));
        obj.set("b", Json::Uint(2));
        // Regression: this used to append a second "a" entry instead of
        // replacing the first, so `get` answered the stale value and the
        // document serialized with a duplicate key.
        obj.set("a", Json::Uint(10));
        let pairs = obj.as_object().unwrap();
        assert_eq!(pairs.len(), 2, "no duplicate keys");
        assert_eq!(pairs[0].0, "a", "replaced key keeps its position");
        assert_eq!(obj.get("a").and_then(Json::as_u64), Some(10));
        assert_eq!(obj.get("b").and_then(Json::as_u64), Some(2));
        // Serialization is deterministic and mentions "a" exactly once.
        let text = obj.to_pretty();
        assert_eq!(text.matches("\"a\"").count(), 1, "{text}");
        assert_eq!(Json::parse(&text).unwrap().to_pretty(), text);
    }

    #[test]
    fn u64_counters_stay_exact() {
        let big = u64::MAX - 1;
        let parsed = Json::parse(&big.to_string()).unwrap();
        assert_eq!(parsed.as_u64(), Some(big));
    }

    #[test]
    fn floats_stay_floats_through_the_round_trip() {
        let text = Json::Float(3.0).to_pretty();
        assert_eq!(text.trim(), "3.0");
        assert_eq!(Json::parse(&text).unwrap(), Json::Float(3.0));
    }

    #[test]
    fn parses_escapes_and_surrogates() {
        let parsed = Json::parse(r#""aéb 😀 \n""#).unwrap();
        assert_eq!(parsed.as_str(), Some("aéb 😀 \n"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\":}",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn object_get_and_accessors() {
        let doc = Json::parse(r#"{"a": 1, "b": [true], "c": "x", "f": 1.5}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(
            doc.get("b").and_then(Json::as_array).map(|a| a.len()),
            Some(1)
        );
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(doc.get("missing"), None);
    }
}
