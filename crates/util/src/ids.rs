//! Strongly typed identifiers used across the TACOMA reproduction.
//!
//! The paper's model has two kinds of named entities: *sites* (the places
//! agents execute, one Tcl interpreter per site in the prototype) and
//! *agents*.  System agents additionally have well-known *names* (`rexec`,
//! `broker`, ...), which is how other agents find them — the paper's §2 notes
//! that services for agents are provided directly by other agents addressed
//! by name.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a site (a place where agents execute).
///
/// Sites are dense small integers assigned by the network simulator, which
/// makes them convenient indices into per-site vectors.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SiteId(pub u32);

impl SiteId {
    /// Returns the site id as a usable vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site{}", self.0)
    }
}

impl From<u32> for SiteId {
    fn from(v: u32) -> Self {
        SiteId(v)
    }
}

/// Unique identifier of an agent *instance*.
///
/// Each time an agent is created (including a migrated or cloned copy) it gets
/// a fresh `AgentId`; the lineage is tracked by the runtime where needed
/// (e.g. rear guards in the fault-tolerance crate).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct AgentId(pub u64);

impl AgentId {
    /// A reserved id used by the runtime itself (e.g. kernel-initiated meets).
    pub const SYSTEM: AgentId = AgentId(0);

    /// Returns true if this is the reserved system id.
    pub fn is_system(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "agent{}", self.0)
    }
}

/// Well-known name of an agent, used to address it in a `meet`.
///
/// The paper addresses system agents by name (`rexec`, `ag_tcl`, brokers);
/// this is a thin newtype over a string so briefcase folders can carry agent
/// names as uninterpreted bytes and the runtime can still compare them
/// cheaply.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AgentName(pub String);

impl AgentName {
    /// Creates an agent name from anything string-like.
    pub fn new(name: impl Into<String>) -> Self {
        AgentName(name.into())
    }

    /// Returns the name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for AgentName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for AgentName {
    fn from(s: &str) -> Self {
        AgentName(s.to_string())
    }
}

impl From<String> for AgentName {
    fn from(s: String) -> Self {
        AgentName(s)
    }
}

/// A monotonic generator of fresh [`AgentId`]s.
///
/// Each [`crate::ids::AgentId`] is unique per generator; the TACOMA system
/// owns a single generator so ids are globally unique within a simulation.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct AgentIdGen {
    next: u64,
}

impl AgentIdGen {
    /// Creates a generator whose first issued id is 1 (0 is reserved).
    pub fn new() -> Self {
        AgentIdGen { next: 1 }
    }

    /// Issues a fresh agent id.
    pub fn fresh(&mut self) -> AgentId {
        if self.next == 0 {
            self.next = 1;
        }
        let id = AgentId(self.next);
        self.next += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_display_and_index() {
        let s = SiteId(7);
        assert_eq!(s.to_string(), "site7");
        assert_eq!(s.index(), 7);
        assert_eq!(SiteId::from(3u32), SiteId(3));
    }

    #[test]
    fn agent_id_gen_is_monotonic_and_skips_zero() {
        let mut g = AgentIdGen::new();
        let a = g.fresh();
        let b = g.fresh();
        assert!(a.0 > 0);
        assert!(b.0 > a.0);
        assert!(!a.is_system());
        assert!(AgentId::SYSTEM.is_system());
    }

    #[test]
    fn default_gen_never_issues_system_id() {
        let mut g = AgentIdGen::default();
        assert!(!g.fresh().is_system());
    }

    #[test]
    fn agent_name_round_trips() {
        let n = AgentName::new("rexec");
        assert_eq!(n.as_str(), "rexec");
        assert_eq!(n.to_string(), "rexec");
        assert_eq!(AgentName::from("rexec"), n);
        assert_eq!(AgentName::from(String::from("rexec")), n);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(AgentId(1) < AgentId(2));
        assert!(SiteId(0) < SiteId(1));
    }
}
