//! The funds-for-services exchange protocol.
//!
//! Section 3 of the paper observes that exchanging payment for service "must
//! not [make it] possible to obtain a service without paying for it or to pay
//! without obtaining the service", rejects transactional support (performance,
//! trust, and unfamiliarity to the computer illiterate), and instead adopts
//! the business-world solution: *participants document their actions* so that
//! a third party can audit them, and "an aggrieved agent requests an audit."
//!
//! [`ExchangeProtocol::run`] simulates one purchase between a customer and a
//! provider, each of which may be honest or may cheat, producing the signed
//! [`ActionRecord`]s both parties keep in their `RECEIPTS` folders.  The
//! [`crate::audit::AuditCourt`] replays those records to assign blame
//! (experiment E6).

use crate::ecu::Wallet;
use crate::mint::Mint;
use crate::{sign, SigningKey};
use serde::{Deserialize, Serialize};

/// The step of the protocol an action record documents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActionKind {
    /// Customer: "I sent payment of `amount`."
    PaymentSent,
    /// Provider: "I received (and validated) payment of `amount`."
    PaymentReceived,
    /// Provider: "I delivered the service."
    ServiceDelivered,
    /// Customer: "I received the service."
    ServiceAcknowledged,
}

/// One signed statement about a protocol step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActionRecord {
    /// Which exchange this record belongs to.
    pub exchange_id: u64,
    /// What the signer asserts happened.
    pub kind: ActionKind,
    /// Key identifier of the asserting party (customer or provider).
    pub signer: SigningKey,
    /// The amount of money involved.
    pub amount: u64,
    /// Toy MAC over the record contents under the signer's key.
    pub signature: u64,
}

impl ActionRecord {
    /// Creates and signs a record.
    pub fn signed(exchange_id: u64, kind: ActionKind, signer: SigningKey, amount: u64) -> Self {
        let mut rec = ActionRecord {
            exchange_id,
            kind,
            signer,
            amount,
            signature: 0,
        };
        rec.signature = sign(signer, &rec.canonical_bytes());
        rec
    }

    /// The bytes covered by the signature.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        out.extend_from_slice(&self.exchange_id.to_le_bytes());
        out.push(match self.kind {
            ActionKind::PaymentSent => 1,
            ActionKind::PaymentReceived => 2,
            ActionKind::ServiceDelivered => 3,
            ActionKind::ServiceAcknowledged => 4,
        });
        out.extend_from_slice(&self.signer.to_le_bytes());
        out.extend_from_slice(&self.amount.to_le_bytes());
        out
    }

    /// Whether the signature verifies under the claimed signer's key.
    pub fn verifies(&self) -> bool {
        sign(self.signer, &self.canonical_bytes()) == self.signature
    }
}

/// How a party behaves during an exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartyBehavior {
    /// Follows the protocol.
    Honest,
    /// Cheats: the customer withholds payment but later claims to have paid;
    /// the provider keeps the payment but withholds the service.
    Cheats,
}

/// Static configuration of one exchange.
#[derive(Debug, Clone, Copy)]
pub struct ExchangeConfig {
    /// Unique id of the exchange (used in records and by the court).
    pub exchange_id: u64,
    /// Price of the service.
    pub price: u64,
    /// Customer signing key.
    pub customer_key: SigningKey,
    /// Provider signing key.
    pub provider_key: SigningKey,
    /// Customer behaviour.
    pub customer: PartyBehavior,
    /// Provider behaviour.
    pub provider: PartyBehavior,
}

/// Everything that came out of one simulated exchange.
#[derive(Debug, Clone)]
pub struct ExchangeOutcome {
    /// The configuration that produced this outcome.
    pub config_id: u64,
    /// Records the customer ended up holding.
    pub customer_records: Vec<ActionRecord>,
    /// Records the provider ended up holding.
    pub provider_records: Vec<ActionRecord>,
    /// Whether payment actually reached (and validated at) the provider.
    pub payment_made: bool,
    /// Whether the service was actually delivered.
    pub service_delivered: bool,
    /// Protocol messages exchanged (for overhead comparisons).
    pub messages: u32,
    /// ECUs the provider banked (validated and reissued).
    pub provider_income: u64,
}

/// The exchange protocol driver.
#[derive(Debug, Default)]
pub struct ExchangeProtocol;

impl ExchangeProtocol {
    /// Runs one exchange.
    ///
    /// The customer pays out of `customer_wallet`; money the provider accepts
    /// is validated (and thereby re-issued) at `mint` before the service is
    /// rendered, exactly as §3 prescribes.
    pub fn run(
        mint: &mut Mint,
        config: ExchangeConfig,
        customer_wallet: &mut Wallet,
    ) -> ExchangeOutcome {
        let mut out = ExchangeOutcome {
            config_id: config.exchange_id,
            customer_records: Vec::new(),
            provider_records: Vec::new(),
            payment_made: false,
            service_delivered: false,
            messages: 0,
            provider_income: 0,
        };

        // Step 1: customer sends payment (or doesn't, if cheating).
        let payment = if config.customer == PartyBehavior::Honest {
            customer_wallet.withdraw_at_least(config.price)
        } else {
            None
        };
        // Either way the customer records a PaymentSent claim; a cheating
        // customer fabricates it (the record is self-signed, so it proves
        // nothing to the court on its own).
        out.customer_records.push(ActionRecord::signed(
            config.exchange_id,
            ActionKind::PaymentSent,
            config.customer_key,
            config.price,
        ));
        out.messages += 1; // request + (possibly empty) payment

        // Step 2: provider validates whatever arrived at the mint.
        let validated = match &payment {
            Some(ecus) => mint.validate_and_reissue(ecus).ok(),
            None => None,
        };
        out.messages += 2; // provider <-> mint round trip
        if let Some(fresh) = validated {
            out.payment_made = true;
            out.provider_income = fresh.iter().map(|e| e.amount).sum();
            // The provider acknowledges payment; the customer keeps this
            // provider-signed receipt — it is the evidence an audit needs.
            let receipt = ActionRecord::signed(
                config.exchange_id,
                ActionKind::PaymentReceived,
                config.provider_key,
                config.price,
            );
            out.customer_records.push(receipt);
            out.provider_records.push(receipt);
            out.messages += 1;

            // Step 3: provider delivers the service (or keeps the money).
            if config.provider == PartyBehavior::Honest {
                out.service_delivered = true;
                let delivery = ActionRecord::signed(
                    config.exchange_id,
                    ActionKind::ServiceDelivered,
                    config.provider_key,
                    config.price,
                );
                out.customer_records.push(delivery);
                out.provider_records.push(delivery);
                out.messages += 1;

                // Step 4: customer acknowledges; the provider keeps this
                // customer-signed receipt as protection against false claims.
                let ack = ActionRecord::signed(
                    config.exchange_id,
                    ActionKind::ServiceAcknowledged,
                    config.customer_key,
                    config.price,
                );
                out.provider_records.push(ack);
                out.customer_records.push(ack);
                out.messages += 1;
            }
        } else if payment.is_some() {
            // Payment was sent but did not validate (double spend upstream);
            // the provider refuses service.  Return the ECUs to the customer
            // (they were not retired).
            if let Some(ecus) = payment {
                customer_wallet.deposit_all(ecus);
            }
        }

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(price: u64) -> (Mint, Wallet) {
        let mut mint = Mint::new(11);
        let wallet = mint.issue_wallet(4, price);
        (mint, wallet)
    }

    fn config(customer: PartyBehavior, provider: PartyBehavior) -> ExchangeConfig {
        ExchangeConfig {
            exchange_id: 1,
            price: 10,
            customer_key: 0xAAAA,
            provider_key: 0xBBBB,
            customer,
            provider,
        }
    }

    #[test]
    fn honest_exchange_completes_with_four_record_kinds() {
        let (mut mint, mut wallet) = setup(10);
        let out = ExchangeProtocol::run(
            &mut mint,
            config(PartyBehavior::Honest, PartyBehavior::Honest),
            &mut wallet,
        );
        assert!(out.payment_made);
        assert!(out.service_delivered);
        assert_eq!(out.provider_income, 10);
        assert_eq!(wallet.total(), 30);
        assert_eq!(out.customer_records.len(), 4);
        assert_eq!(out.provider_records.len(), 3);
        assert!(out.customer_records.iter().all(|r| r.verifies()));
    }

    #[test]
    fn cheating_customer_pays_nothing_and_gets_nothing() {
        let (mut mint, mut wallet) = setup(10);
        let out = ExchangeProtocol::run(
            &mut mint,
            config(PartyBehavior::Cheats, PartyBehavior::Honest),
            &mut wallet,
        );
        assert!(!out.payment_made);
        assert!(!out.service_delivered);
        assert_eq!(wallet.total(), 40, "no money left the wallet");
        // The customer holds only its own self-signed claim.
        assert_eq!(out.customer_records.len(), 1);
        assert_eq!(out.customer_records[0].kind, ActionKind::PaymentSent);
    }

    #[test]
    fn cheating_provider_keeps_money_without_delivering() {
        let (mut mint, mut wallet) = setup(10);
        let out = ExchangeProtocol::run(
            &mut mint,
            config(PartyBehavior::Honest, PartyBehavior::Cheats),
            &mut wallet,
        );
        assert!(out.payment_made);
        assert!(!out.service_delivered);
        assert_eq!(out.provider_income, 10);
        assert_eq!(wallet.total(), 30);
        // The customer holds the provider-signed payment receipt — the
        // evidence the audit court will use.
        assert!(out
            .customer_records
            .iter()
            .any(|r| r.kind == ActionKind::PaymentReceived && r.signer == 0xBBBB && r.verifies()));
        assert!(!out
            .customer_records
            .iter()
            .any(|r| r.kind == ActionKind::ServiceDelivered));
    }

    #[test]
    fn double_spent_payment_is_refused_and_returned() {
        let mut mint = Mint::new(12);
        let bill = mint.issue(10);
        // Spend the bill once directly at the mint, so the wallet's copy is stale.
        mint.validate_and_reissue(&[bill]).unwrap();
        let mut wallet = Wallet::from_ecus([bill]);
        let out = ExchangeProtocol::run(
            &mut mint,
            config(PartyBehavior::Honest, PartyBehavior::Honest),
            &mut wallet,
        );
        assert!(!out.payment_made);
        assert!(!out.service_delivered);
        assert_eq!(wallet.total(), 10, "stale bill returned to the customer");
    }

    #[test]
    fn records_do_not_verify_after_tampering() {
        let rec = ActionRecord::signed(7, ActionKind::PaymentReceived, 99, 25);
        assert!(rec.verifies());
        let mut tampered = rec;
        tampered.amount = 2500;
        assert!(!tampered.verifies());
        let mut forged = rec;
        forged.signer = 100; // claim someone else signed it
        assert!(!forged.verifies());
    }
}
