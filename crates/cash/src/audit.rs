//! The audit court: assigning blame from signed action records.
//!
//! Per §3, the exchange protocol relies on "the threat of audits … a third
//! party (a court, in real life) can perform an audit to find violations of a
//! contract.  An aggrieved agent requests an audit."  The court here receives
//! the records both parties hold for one exchange and decides who, if anyone,
//! violated the contract.
//!
//! The evidence rules follow from who can sign what:
//!
//! * only the *provider* can produce a verifying `PaymentReceived` record, so
//!   a customer holding one has proven payment;
//! * only the *provider* can produce `ServiceDelivered`, and only the
//!   *customer* can produce `ServiceAcknowledged`, so a provider holding the
//!   acknowledgement is safe against false "no service" claims;
//! * a `PaymentSent` record is self-signed by the customer and therefore
//!   proves nothing by itself.

use crate::exchange::{ActionKind, ActionRecord, ExchangeOutcome};
use crate::SigningKey;
use serde::{Deserialize, Serialize};

/// The court's finding for one exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// The exchange completed; no violation.
    NoViolation,
    /// The provider took payment and withheld the service.
    ProviderCheated,
    /// The customer claims to have paid but cannot substantiate it.
    CustomerCheated,
    /// The records are insufficient to decide either way.
    Inconclusive,
}

/// Statistics over a batch of audits (experiment E6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditStats {
    /// Audits performed.
    pub audits: u64,
    /// Verdicts that matched the ground truth.
    pub correct: u64,
    /// Cheaters that escaped detection.
    pub missed: u64,
    /// Honest parties wrongly blamed.
    pub false_accusations: u64,
}

/// The trusted third party that replays records.
#[derive(Debug, Clone, Default)]
pub struct AuditCourt {
    stats: AuditStats,
}

impl AuditCourt {
    /// Creates a court.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters accumulated by [`AuditCourt::audit_outcome`].
    pub fn stats(&self) -> AuditStats {
        self.stats
    }

    /// Decides a verdict from the two parties' records for one exchange.
    pub fn decide(
        &self,
        exchange_id: u64,
        customer_key: SigningKey,
        provider_key: SigningKey,
        customer_records: &[ActionRecord],
        provider_records: &[ActionRecord],
    ) -> Verdict {
        let valid = |records: &[ActionRecord], kind: ActionKind, signer: SigningKey| {
            records.iter().any(|r| {
                r.exchange_id == exchange_id && r.kind == kind && r.signer == signer && r.verifies()
            })
        };

        let provider_has_ack = valid(
            provider_records,
            ActionKind::ServiceAcknowledged,
            customer_key,
        );
        let customer_has_delivery =
            valid(customer_records, ActionKind::ServiceDelivered, provider_key);
        if provider_has_ack || customer_has_delivery {
            return Verdict::NoViolation;
        }

        let customer_proves_payment =
            valid(customer_records, ActionKind::PaymentReceived, provider_key);
        if customer_proves_payment {
            // Paid, but no evidence of delivery anywhere: the provider is at fault.
            return Verdict::ProviderCheated;
        }

        let customer_claims_payment =
            valid(customer_records, ActionKind::PaymentSent, customer_key);
        let provider_saw_payment =
            valid(provider_records, ActionKind::PaymentReceived, provider_key);
        if customer_claims_payment && !provider_saw_payment {
            // The customer asserts payment but holds no provider receipt and
            // the provider has none either: an unsubstantiated claim.
            return Verdict::CustomerCheated;
        }

        Verdict::Inconclusive
    }

    /// Audits a full [`ExchangeOutcome`] produced by the protocol driver,
    /// comparing the verdict against the ground truth recorded in the outcome
    /// and updating the statistics.
    pub fn audit_outcome(
        &mut self,
        outcome: &ExchangeOutcome,
        customer_key: SigningKey,
        provider_key: SigningKey,
        customer_was_honest: bool,
        provider_was_honest: bool,
    ) -> Verdict {
        let verdict = self.decide(
            outcome.config_id,
            customer_key,
            provider_key,
            &outcome.customer_records,
            &outcome.provider_records,
        );
        self.stats.audits += 1;
        let expected = if customer_was_honest && provider_was_honest {
            Verdict::NoViolation
        } else if !provider_was_honest && outcome.payment_made {
            Verdict::ProviderCheated
        } else if !customer_was_honest {
            Verdict::CustomerCheated
        } else {
            Verdict::NoViolation
        };
        if verdict == expected {
            self.stats.correct += 1;
        } else {
            match verdict {
                Verdict::NoViolation | Verdict::Inconclusive => self.stats.missed += 1,
                Verdict::ProviderCheated if provider_was_honest => {
                    self.stats.false_accusations += 1
                }
                Verdict::CustomerCheated if customer_was_honest => {
                    self.stats.false_accusations += 1
                }
                _ => self.stats.missed += 1,
            }
        }
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::exchange::{ExchangeConfig, ExchangeProtocol, PartyBehavior};
    use crate::mint::Mint;

    const CK: SigningKey = 0x1111;
    const PK: SigningKey = 0x2222;

    fn run(customer: PartyBehavior, provider: PartyBehavior) -> crate::exchange::ExchangeOutcome {
        let mut mint = Mint::new(21);
        let mut wallet = mint.issue_wallet(2, 10);
        ExchangeProtocol::run(
            &mut mint,
            ExchangeConfig {
                exchange_id: 5,
                price: 10,
                customer_key: CK,
                provider_key: PK,
                customer,
                provider,
            },
            &mut wallet,
        )
    }

    #[test]
    fn honest_exchange_has_no_violation() {
        let out = run(PartyBehavior::Honest, PartyBehavior::Honest);
        let mut court = AuditCourt::new();
        let v = court.audit_outcome(&out, CK, PK, true, true);
        assert_eq!(v, Verdict::NoViolation);
        assert_eq!(court.stats().correct, 1);
    }

    #[test]
    fn provider_cheating_is_detected() {
        let out = run(PartyBehavior::Honest, PartyBehavior::Cheats);
        let mut court = AuditCourt::new();
        let v = court.audit_outcome(&out, CK, PK, true, false);
        assert_eq!(v, Verdict::ProviderCheated);
        assert_eq!(court.stats().correct, 1);
        assert_eq!(court.stats().false_accusations, 0);
    }

    #[test]
    fn customer_cheating_is_detected() {
        let out = run(PartyBehavior::Cheats, PartyBehavior::Honest);
        let mut court = AuditCourt::new();
        let v = court.audit_outcome(&out, CK, PK, false, true);
        assert_eq!(v, Verdict::CustomerCheated);
        assert_eq!(court.stats().correct, 1);
    }

    #[test]
    fn fabricated_receipt_does_not_frame_the_provider() {
        // A cheating customer forges a PaymentReceived record "signed" by the
        // provider.  Without the provider's key the signature fails and the
        // court does not blame the provider.
        let mut out = run(PartyBehavior::Cheats, PartyBehavior::Honest);
        let mut forged = ActionRecord::signed(5, ActionKind::PaymentReceived, CK, 10);
        forged.signer = PK; // claim the provider signed it
        out.customer_records.push(forged);
        let court = AuditCourt::new();
        let v = court.decide(5, CK, PK, &out.customer_records, &out.provider_records);
        assert_ne!(v, Verdict::ProviderCheated);
    }

    #[test]
    fn false_no_service_claim_fails_against_acknowledgement() {
        // The exchange completed, but the customer later claims no service.
        // The provider's copy of the customer-signed acknowledgement protects it.
        let out = run(PartyBehavior::Honest, PartyBehavior::Honest);
        let customer_records_hiding_delivery: Vec<ActionRecord> = out
            .customer_records
            .iter()
            .copied()
            .filter(|r| {
                r.kind != ActionKind::ServiceDelivered && r.kind != ActionKind::ServiceAcknowledged
            })
            .collect();
        let court = AuditCourt::new();
        let v = court.decide(
            5,
            CK,
            PK,
            &customer_records_hiding_delivery,
            &out.provider_records,
        );
        assert_eq!(v, Verdict::NoViolation);
    }

    #[test]
    fn no_records_is_inconclusive() {
        let court = AuditCourt::new();
        assert_eq!(court.decide(1, CK, PK, &[], &[]), Verdict::Inconclusive);
    }

    #[test]
    fn batch_statistics_accumulate() {
        let mut court = AuditCourt::new();
        for (c, p) in [
            (PartyBehavior::Honest, PartyBehavior::Honest),
            (PartyBehavior::Honest, PartyBehavior::Cheats),
            (PartyBehavior::Cheats, PartyBehavior::Honest),
        ] {
            let out = run(c, p);
            court.audit_outcome(
                &out,
                CK,
                PK,
                c == PartyBehavior::Honest,
                p == PartyBehavior::Honest,
            );
        }
        let stats = court.stats();
        assert_eq!(stats.audits, 3);
        assert_eq!(stats.correct, 3);
        assert_eq!(stats.missed, 0);
        assert_eq!(stats.false_accusations, 0);
    }
}
