//! Electronic cash for TACOMA agents (paper §3).
//!
//! The paper explores electronic cash as the negotiable instrument agents use
//! to obtain and pay for services, and as a brake on runaway agents.  Three
//! pieces are described, and all three are implemented here:
//!
//! * **ECUs** ([`ecu::Ecu`]) — "each unit of electronic cash … a record
//!   containing an amount and a large random number.  Only certain of these
//!   random numbers appear on the records for valid ECUs."  Wallets
//!   ([`ecu::Wallet`]) hold ECU records and move them between agents inside a
//!   `CASH` folder.
//! * **The validation agent** ([`mint::Mint`], wrapped as the native
//!   [`mint::MintAgent`]) — "this agent can check whether a record it is
//!   shown corresponds to a valid ECU.  If it is valid, then a record for an
//!   equivalent ECU is returned, but this record has a new random number
//!   (effectively retiring an old bill and replacing it by a new one)."
//!   Double spending a copied or retired ECU is therefore foiled whenever the
//!   recipient validates before rendering service (experiment E5).
//! * **Funds-for-service exchange with audits** ([`exchange`], [`audit`]) —
//!   the paper rejects transactional support and instead has participants
//!   sign *action records* so that "a third party (a court, in real life) can
//!   perform an audit to find violations of a contract" (experiment E6).
//!
//! ## Security caveat
//!
//! The prototype "used the security mechanisms provided by UNIX" and the
//! paper flags this as provisional.  We follow suit: signatures here are a
//! keyed mixing function ([`sign`]), good enough to make forgery by the
//! *modelled* adversaries (agents replaying or fabricating records without
//! the signer's key) detectable, but **not** cryptographically secure.

#![warn(missing_docs)]

pub mod audit;
pub mod ecu;
pub mod exchange;
pub mod mint;

pub use audit::{AuditCourt, Verdict};
pub use ecu::{Ecu, Wallet};
pub use exchange::{
    ActionKind, ActionRecord, ExchangeConfig, ExchangeOutcome, ExchangeProtocol, PartyBehavior,
};
pub use mint::{cash_briefcase, wallet_from_briefcase, Mint, MintAgent, MintError, MintStats};

/// A party's signing key for the toy MAC scheme.
pub type SigningKey = u64;

/// Computes the toy keyed signature of a byte string.
///
/// This is a SplitMix-style mixing of the key and content — adequate for the
/// audit experiments (a party without the key cannot produce a record that
/// verifies under it against this implementation), but not real cryptography.
pub fn sign(key: SigningKey, content: &[u8]) -> u64 {
    let mut acc = key ^ 0x9E37_79B9_7F4A_7C15;
    for chunk in content.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        let mut z = acc ^ u64::from_le_bytes(word);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        acc = z ^ (z >> 31);
    }
    acc
}

/// Verifies a toy signature.
pub fn verify(key: SigningKey, content: &[u8], signature: u64) -> bool {
    sign(key, content) == signature
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_round_trip() {
        let sig = sign(42, b"pay 10 to provider");
        assert!(verify(42, b"pay 10 to provider", sig));
        assert!(!verify(42, b"pay 99 to provider", sig));
        assert!(!verify(43, b"pay 10 to provider", sig));
    }

    #[test]
    fn signatures_differ_across_contents_and_keys() {
        let a = sign(1, b"x");
        let b = sign(1, b"y");
        let c = sign(2, b"x");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(sign(1, b""), 0);
    }
}
