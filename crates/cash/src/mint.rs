//! The validation agent (mint): issuing, validating and retiring ECUs.
//!
//! The paper's §3 solution to double spending is indirection-free: "a trusted
//! validation agent is employed.  This agent can check whether a record it is
//! shown corresponds to a valid ECU.  If it is valid, then a record for an
//! equivalent ECU is returned, but this record has a new random number
//! (effectively retiring an old bill and replacing it by a new one).  An
//! attempt by an agent to spend retired or copied ECUs will be foiled if a
//! validation agent is always consulted before any service is rendered."
//! Untraceability is preserved because the mint never learns who paid whom —
//! it only sees bills.
//!
//! [`Mint`] is the plain-Rust state machine; [`MintAgent`] wraps it as a
//! native TACOMA agent reachable by `meet mint` with a `CASH` folder.

use crate::ecu::{Ecu, Wallet};
use std::collections::BTreeSet;
use tacoma_core::prelude::*;
// Folder is used in the test module below.
#[cfg(test)]
use tacoma_core::Folder;
use tacoma_util::DetRng;

/// Errors from mint operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MintError {
    /// A presented ECU's serial is not on the valid list (already retired,
    /// copied, or simply forged).
    InvalidEcu(Ecu),
    /// The requested change denominations do not sum to the presented value.
    AmountMismatch {
        /// Value presented.
        presented: u64,
        /// Value requested back.
        requested: u64,
    },
}

impl std::fmt::Display for MintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MintError::InvalidEcu(e) => {
                write!(
                    f,
                    "ECU with amount {} is not valid (retired, copied or forged)",
                    e.amount
                )
            }
            MintError::AmountMismatch {
                presented,
                requested,
            } => {
                write!(
                    f,
                    "requested {requested} does not match presented {presented}"
                )
            }
        }
    }
}

impl std::error::Error for MintError {}

/// Counters the mint keeps, reported by experiment E5.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MintStats {
    /// ECUs issued (initial issuance plus re-issuance).
    pub issued: u64,
    /// ECUs successfully validated and retired.
    pub validated: u64,
    /// Validation attempts rejected (double spends, forgeries).
    pub rejected: u64,
}

/// The trusted validation agent's state: the set of valid serial numbers.
#[derive(Debug, Clone)]
pub struct Mint {
    valid: BTreeSet<u128>,
    rng: DetRng,
    stats: MintStats,
}

impl Mint {
    /// Creates a mint with a deterministic serial-number generator.
    pub fn new(seed: u64) -> Self {
        Mint {
            valid: BTreeSet::new(),
            rng: DetRng::new(seed ^ 0xC0FF_EE00_D00D_F00D),
            stats: MintStats::default(),
        }
    }

    /// Counters for experiments.
    pub fn stats(&self) -> MintStats {
        self.stats
    }

    /// Number of serials currently valid (the mint's state size).
    pub fn outstanding(&self) -> usize {
        self.valid.len()
    }

    /// Total face value the mint believes is in circulation is not tracked —
    /// deliberately: the mint never learns amounts per holder, only serials.
    /// Issues a brand-new ECU of the given amount (e.g. initial funding).
    pub fn issue(&mut self, amount: u64) -> Ecu {
        let serial = self.fresh_serial();
        self.valid.insert(serial);
        self.stats.issued += 1;
        Ecu { amount, serial }
    }

    /// Issues a wallet holding `count` ECUs of `denomination` each.
    pub fn issue_wallet(&mut self, count: usize, denomination: u64) -> Wallet {
        Wallet::from_ecus((0..count).map(|_| self.issue(denomination)))
    }

    /// Checks whether an ECU is currently valid, without retiring it.
    pub fn is_valid(&self, ecu: &Ecu) -> bool {
        self.valid.contains(&ecu.serial)
    }

    /// The paper's validate-and-reissue: each presented ECU is checked and
    /// retired, and an equivalent ECU with a fresh serial is returned.  If any
    /// presented ECU is invalid the whole batch is rejected and nothing is
    /// retired.
    pub fn validate_and_reissue(&mut self, presented: &[Ecu]) -> Result<Vec<Ecu>, MintError> {
        // Reject first (also rejecting duplicates within the batch itself).
        let mut seen = BTreeSet::new();
        for ecu in presented {
            if !self.valid.contains(&ecu.serial) || !seen.insert(ecu.serial) {
                self.stats.rejected += 1;
                return Err(MintError::InvalidEcu(*ecu));
            }
        }
        let mut fresh = Vec::with_capacity(presented.len());
        for ecu in presented {
            self.valid.remove(&ecu.serial);
            self.stats.validated += 1;
            let serial = self.fresh_serial();
            self.valid.insert(serial);
            self.stats.issued += 1;
            fresh.push(Ecu {
                amount: ecu.amount,
                serial,
            });
        }
        Ok(fresh)
    }

    /// Validates `presented` and reissues the same total value split as
    /// `denominations` (change making).  The denominations must sum to the
    /// presented value.
    pub fn reissue_with_change(
        &mut self,
        presented: &[Ecu],
        denominations: &[u64],
    ) -> Result<Vec<Ecu>, MintError> {
        let presented_total: u64 = presented.iter().map(|e| e.amount).sum();
        let requested_total: u64 = denominations.iter().sum();
        if presented_total != requested_total {
            return Err(MintError::AmountMismatch {
                presented: presented_total,
                requested: requested_total,
            });
        }
        // Validate and retire, then mint the requested denominations.
        let mut seen = BTreeSet::new();
        for ecu in presented {
            if !self.valid.contains(&ecu.serial) || !seen.insert(ecu.serial) {
                self.stats.rejected += 1;
                return Err(MintError::InvalidEcu(*ecu));
            }
        }
        for ecu in presented {
            self.valid.remove(&ecu.serial);
            self.stats.validated += 1;
        }
        Ok(denominations
            .iter()
            .map(|&amount| self.issue(amount))
            .collect())
    }

    fn fresh_serial(&mut self) -> u128 {
        loop {
            let serial = ((self.rng.next_u64() as u128) << 64) | self.rng.next_u64() as u128;
            if !self.valid.contains(&serial) {
                return serial;
            }
        }
    }
}

/// The mint as a native TACOMA agent.
///
/// Meet it with a briefcase whose `CASH` folder holds ECU records; the reply's
/// `CASH` folder holds the reissued records, or the meet fails with
/// [`TacomaError::Cash`] if any record is invalid — which is exactly the check
/// a service provider performs "before any service is rendered".
pub struct MintAgent {
    mint: Mint,
}

impl MintAgent {
    /// Creates the agent with its own mint state.
    pub fn new(seed: u64) -> Self {
        MintAgent {
            mint: Mint::new(seed),
        }
    }

    /// Creates the agent around an existing mint (sharing issued serials).
    pub fn from_mint(mint: Mint) -> Self {
        MintAgent { mint }
    }

    /// Read access to the wrapped mint.
    pub fn mint(&self) -> &Mint {
        &self.mint
    }

    /// Mutable access to the wrapped mint (funding wallets in tests/benches).
    pub fn mint_mut(&mut self) -> &mut Mint {
        &mut self.mint
    }
}

impl Agent for MintAgent {
    fn name(&self) -> AgentName {
        AgentName::new(wellknown::MINT)
    }

    fn meet(&mut self, ctx: &mut MeetCtx<'_>, mut bc: Briefcase) -> MeetOutcome {
        let cash = bc
            .take(wellknown::CASH)
            .ok_or_else(|| TacomaError::missing(wellknown::CASH))?;
        let (wallet, skipped) = Wallet::from_folder(&cash);
        if skipped > 0 {
            return Err(TacomaError::Cash(format!(
                "{skipped} malformed ECU record(s)"
            )));
        }
        match self.mint.validate_and_reissue(wallet.ecus()) {
            Ok(fresh) => {
                ctx.log(format!(
                    "mint: validated and reissued {} ECU(s) worth {}",
                    fresh.len(),
                    fresh.iter().map(|e| e.amount).sum::<u64>()
                ));
                let mut out = Briefcase::new();
                out.put(wellknown::CASH, Wallet::from_ecus(fresh).to_folder());
                out.put_string("STATUS", "valid");
                Ok(out)
            }
            Err(e) => Err(TacomaError::Cash(e.to_string())),
        }
    }
}

/// Convenience: puts a wallet into a briefcase's `CASH` folder.
pub fn cash_briefcase(wallet: &Wallet) -> Briefcase {
    let mut bc = Briefcase::new();
    bc.put(wellknown::CASH, wallet.to_folder());
    bc
}

/// Convenience: extracts the wallet from a briefcase's `CASH` folder.
pub fn wallet_from_briefcase(bc: &Briefcase) -> Wallet {
    bc.folder(wellknown::CASH)
        .map(|f| Wallet::from_folder(f).0)
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_and_validate() {
        let mut mint = Mint::new(1);
        let a = mint.issue(10);
        let b = mint.issue(5);
        assert_ne!(a.serial, b.serial);
        assert!(mint.is_valid(&a));
        assert_eq!(mint.outstanding(), 2);

        let fresh = mint.validate_and_reissue(&[a, b]).unwrap();
        assert_eq!(fresh.iter().map(|e| e.amount).sum::<u64>(), 15);
        assert!(!mint.is_valid(&a), "old serials are retired");
        assert!(mint.is_valid(&fresh[0]));
        assert_eq!(mint.outstanding(), 2);
        assert_eq!(mint.stats().validated, 2);
    }

    #[test]
    fn double_spend_is_rejected() {
        let mut mint = Mint::new(2);
        let bill = mint.issue(100);
        let copy = bill; // "copy is a cheap operation"
        assert!(mint.validate_and_reissue(&[bill]).is_ok());
        let err = mint.validate_and_reissue(&[copy]).unwrap_err();
        assert!(matches!(err, MintError::InvalidEcu(_)));
        assert_eq!(mint.stats().rejected, 1);
    }

    #[test]
    fn duplicate_in_one_batch_is_rejected_atomically() {
        let mut mint = Mint::new(3);
        let bill = mint.issue(10);
        let err = mint.validate_and_reissue(&[bill, bill]).unwrap_err();
        assert!(matches!(err, MintError::InvalidEcu(_)));
        // Nothing was retired: the bill is still spendable once.
        assert!(mint.is_valid(&bill));
        assert!(mint.validate_and_reissue(&[bill]).is_ok());
    }

    #[test]
    fn forged_ecu_is_rejected() {
        let mut mint = Mint::new(4);
        let forged = Ecu {
            amount: 1_000_000,
            serial: 0x1234,
        };
        assert!(mint.validate_and_reissue(&[forged]).is_err());
        assert_eq!(mint.stats().validated, 0);
    }

    #[test]
    fn change_making_preserves_value() {
        let mut mint = Mint::new(5);
        let bill = mint.issue(100);
        let change = mint.reissue_with_change(&[bill], &[50, 30, 20]).unwrap();
        assert_eq!(change.len(), 3);
        assert_eq!(change.iter().map(|e| e.amount).sum::<u64>(), 100);
        assert!(!mint.is_valid(&bill));

        let bill2 = mint.issue(10);
        let err = mint.reissue_with_change(&[bill2], &[5, 4]).unwrap_err();
        assert!(matches!(err, MintError::AmountMismatch { .. }));
        assert!(mint.is_valid(&bill2), "mismatch must not retire the bill");
    }

    #[test]
    fn issue_wallet_and_stats() {
        let mut mint = Mint::new(6);
        let w = mint.issue_wallet(10, 5);
        assert_eq!(w.total(), 50);
        assert_eq!(mint.stats().issued, 10);
        assert_eq!(mint.outstanding(), 10);
    }

    #[test]
    fn mint_agent_validates_cash_folders() {
        use tacoma_core::TacomaSystem;
        use tacoma_net::{LinkSpec, Topology};

        let mut sys = TacomaSystem::new(Topology::full_mesh(1, LinkSpec::default()), 9);
        let mut agent = MintAgent::new(7);
        let wallet = agent.mint_mut().issue_wallet(3, 10);
        sys.register_agent(SiteId(0), Box::new(agent));

        // Valid cash validates and comes back with new serials.
        let reply = sys
            .try_direct_meet(
                SiteId(0),
                &AgentName::new(wellknown::MINT),
                cash_briefcase(&wallet),
            )
            .unwrap();
        let fresh = wallet_from_briefcase(&reply);
        assert_eq!(fresh.total(), 30);
        for (old, new) in wallet.ecus().iter().zip(fresh.ecus()) {
            assert_ne!(old.serial, new.serial);
        }

        // Replaying the old (now retired) cash is foiled.
        let err = sys
            .try_direct_meet(
                SiteId(0),
                &AgentName::new(wellknown::MINT),
                cash_briefcase(&wallet),
            )
            .unwrap_err();
        assert!(matches!(err, TacomaError::Cash(_)));

        // Missing CASH folder and malformed records are rejected.
        let err = sys
            .try_direct_meet(
                SiteId(0),
                &AgentName::new(wellknown::MINT),
                Briefcase::new(),
            )
            .unwrap_err();
        assert!(matches!(err, TacomaError::MissingFolder(_)));
        let mut bad = Briefcase::new();
        bad.put(wellknown::CASH, Folder::of_str("garbage"));
        let err = sys
            .try_direct_meet(SiteId(0), &AgentName::new(wellknown::MINT), bad)
            .unwrap_err();
        assert!(matches!(err, TacomaError::Cash(_)));
    }
}
