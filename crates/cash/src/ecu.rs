//! ECUs and wallets.
//!
//! An ECU (electronic cash unit) is exactly the paper's record: an amount and
//! a large random serial number.  ECUs move between agents as elements of a
//! `CASH` folder; a [`Wallet`] is just a convenient in-memory view of such a
//! folder with selection helpers.

use serde::{Deserialize, Serialize};
use tacoma_core::Folder;

/// One unit of electronic cash: an amount and a large random serial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ecu {
    /// Face value.
    pub amount: u64,
    /// The "large random number" identifying this bill (128 bits).
    pub serial: u128,
}

impl Ecu {
    /// Encodes the ECU as a folder element (24 bytes, little-endian).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24);
        out.extend_from_slice(&self.amount.to_le_bytes());
        out.extend_from_slice(&self.serial.to_le_bytes());
        out
    }

    /// Decodes an ECU from a folder element.
    pub fn from_bytes(bytes: &[u8]) -> Option<Ecu> {
        if bytes.len() != 24 {
            return None;
        }
        let amount = u64::from_le_bytes(bytes[..8].try_into().ok()?);
        let serial = u128::from_le_bytes(bytes[8..].try_into().ok()?);
        Some(Ecu { amount, serial })
    }
}

/// A collection of ECUs held by an agent.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Wallet {
    ecus: Vec<Ecu>,
}

impl Wallet {
    /// Creates an empty wallet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a wallet from an iterator of ECUs.
    pub fn from_ecus(ecus: impl IntoIterator<Item = Ecu>) -> Self {
        Wallet {
            ecus: ecus.into_iter().collect(),
        }
    }

    /// Total face value held.
    pub fn total(&self) -> u64 {
        self.ecus.iter().map(|e| e.amount).sum()
    }

    /// Number of ECUs held.
    pub fn len(&self) -> usize {
        self.ecus.len()
    }

    /// Whether the wallet is empty.
    pub fn is_empty(&self) -> bool {
        self.ecus.is_empty()
    }

    /// Adds one ECU.
    pub fn deposit(&mut self, ecu: Ecu) {
        self.ecus.push(ecu);
    }

    /// Adds many ECUs.
    pub fn deposit_all(&mut self, ecus: impl IntoIterator<Item = Ecu>) {
        self.ecus.extend(ecus);
    }

    /// The ECUs currently held (in insertion order).
    pub fn ecus(&self) -> &[Ecu] {
        &self.ecus
    }

    /// Withdraws ECUs covering at least `amount`, greedily using the largest
    /// bills first.  Returns `None` (and leaves the wallet untouched) if the
    /// balance is insufficient.  The withdrawal may exceed `amount`; making
    /// change is the mint's job (see `Mint::reissue_with_change`).
    pub fn withdraw_at_least(&mut self, amount: u64) -> Option<Vec<Ecu>> {
        if self.total() < amount {
            return None;
        }
        let mut sorted: Vec<usize> = (0..self.ecus.len()).collect();
        sorted.sort_by_key(|&i| std::cmp::Reverse(self.ecus[i].amount));
        let mut picked = Vec::new();
        let mut covered = 0u64;
        for idx in sorted {
            if covered >= amount {
                break;
            }
            picked.push(idx);
            covered += self.ecus[idx].amount;
        }
        picked.sort_unstable_by(|a, b| b.cmp(a));
        let mut out = Vec::new();
        for idx in picked {
            out.push(self.ecus.remove(idx));
        }
        Some(out)
    }

    /// Serializes the wallet into a `CASH`-style folder (one ECU per element).
    pub fn to_folder(&self) -> Folder {
        let mut f = Folder::new();
        for ecu in &self.ecus {
            f.push(ecu.to_bytes());
        }
        f
    }

    /// Rebuilds a wallet from a `CASH`-style folder, skipping malformed
    /// elements and reporting how many were skipped.
    pub fn from_folder(folder: &Folder) -> (Wallet, usize) {
        let mut wallet = Wallet::new();
        let mut skipped = 0;
        for elem in folder.iter() {
            match Ecu::from_bytes(elem) {
                Some(ecu) => wallet.deposit(ecu),
                None => skipped += 1,
            }
        }
        (wallet, skipped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ecu(amount: u64, serial: u128) -> Ecu {
        Ecu { amount, serial }
    }

    #[test]
    fn ecu_byte_round_trip() {
        let e = ecu(250, 0xDEAD_BEEF_0123_4567_89AB_CDEF_0011_2233);
        assert_eq!(Ecu::from_bytes(&e.to_bytes()), Some(e));
        assert_eq!(Ecu::from_bytes(&[0u8; 23]), None);
        assert_eq!(Ecu::from_bytes(&[0u8; 25]), None);
    }

    #[test]
    fn wallet_totals_and_deposits() {
        let mut w = Wallet::new();
        assert!(w.is_empty());
        w.deposit(ecu(10, 1));
        w.deposit_all([ecu(5, 2), ecu(20, 3)]);
        assert_eq!(w.total(), 35);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn withdraw_greedy_covers_amount() {
        let mut w = Wallet::from_ecus([ecu(5, 1), ecu(10, 2), ecu(20, 3), ecu(1, 4)]);
        let taken = w.withdraw_at_least(22).unwrap();
        let taken_total: u64 = taken.iter().map(|e| e.amount).sum();
        assert!(taken_total >= 22);
        assert_eq!(taken_total + w.total(), 36, "no value created or destroyed");
        // Greedy large-first: 20 + 10.
        assert_eq!(taken_total, 30);
    }

    #[test]
    fn withdraw_insufficient_leaves_wallet_intact() {
        let mut w = Wallet::from_ecus([ecu(5, 1)]);
        assert!(w.withdraw_at_least(6).is_none());
        assert_eq!(w.total(), 5);
        assert!(w.withdraw_at_least(5).is_some());
        assert_eq!(w.total(), 0);
    }

    #[test]
    fn withdraw_zero_is_empty_but_some() {
        let mut w = Wallet::from_ecus([ecu(5, 1)]);
        let taken = w.withdraw_at_least(0).unwrap();
        assert!(taken.is_empty());
        assert_eq!(w.total(), 5);
    }

    #[test]
    fn folder_round_trip_skips_garbage() {
        let w = Wallet::from_ecus([ecu(1, 10), ecu(2, 20)]);
        let mut folder = w.to_folder();
        folder.push_str("not an ecu");
        let (restored, skipped) = Wallet::from_folder(&folder);
        assert_eq!(restored.total(), 3);
        assert_eq!(restored.len(), 2);
        assert_eq!(skipped, 1);
    }
}
