//! The `rexec` agent: migration between sites.
//!
//! From the paper (§2): "an agent moves from one site to another by meeting
//! with the local rexec agent.  The rexec agent expects to find two folders in
//! the briefcase with which it is invoked: a HOST folder names the site where
//! execution is to be moved and a CONTACT folder names the agent to be
//! executed at that site."  The CONTACT agent is typically `ag_tac`, which
//! re-evaluates the agent's CODE folder at the destination — which is how an
//! agent written in TacoScript travels to a site with a completely different
//! machine architecture.

use crate::helpers::{parse_site, transport_from};
use tacoma_core::prelude::*;

/// The migration agent.  Stateless; one instance is installed per site.
#[derive(Debug, Default)]
pub struct RexecAgent;

impl RexecAgent {
    /// Creates the agent.
    pub fn new() -> Self {
        RexecAgent
    }
}

impl Agent for RexecAgent {
    fn name(&self) -> AgentName {
        AgentName::new(wellknown::REXEC)
    }

    fn meet(&mut self, ctx: &mut MeetCtx<'_>, mut bc: Briefcase) -> MeetOutcome {
        let host_folder = bc
            .take(wellknown::HOST)
            .ok_or_else(|| TacomaError::missing(wellknown::HOST))?;
        let host = parse_site(&host_folder)
            .ok_or_else(|| TacomaError::bad_folder(wellknown::HOST, "not a site id"))?;
        let contact = bc
            .take_string(wellknown::CONTACT)
            .ok_or_else(|| TacomaError::missing(wellknown::CONTACT))?;
        if host.0 >= ctx.site_count() {
            return Err(TacomaError::bad_folder(
                wellknown::HOST,
                format!("site {host} does not exist"),
            ));
        }
        if !ctx.site_is_up(host) {
            return Err(TacomaError::SiteDown(host));
        }
        let transport = transport_from(&bc);
        bc.take(wellknown::TRANSPORT);
        ctx.log(format!("rexec: moving agent to {host} contact {contact}"));
        // Everything that remains in the briefcase travels with the agent.
        ctx.remote_meet(host, AgentName::new(contact), bc, transport);
        // The meet terminates with an empty briefcase: the caller's copy of
        // the computation is now the remote one.
        Ok(Briefcase::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::standard_agents;
    use tacoma_core::{Folder, TacomaSystem};
    use tacoma_net::{LinkSpec, Topology};

    fn system(sites: u32) -> TacomaSystem {
        TacomaSystem::builder()
            .topology(Topology::full_mesh(sites, LinkSpec::default()))
            .seed(3)
            .with_agents(standard_agents)
            .build()
    }

    #[test]
    fn missing_folders_are_rejected() {
        let mut sys = system(2);
        let err = sys
            .try_direct_meet(
                SiteId(0),
                &AgentName::new(wellknown::REXEC),
                Briefcase::new(),
            )
            .unwrap_err();
        assert!(matches!(err, TacomaError::MissingFolder(_)));

        let mut bc = Briefcase::new();
        bc.put_string(wellknown::HOST, "1");
        let err = sys
            .try_direct_meet(SiteId(0), &AgentName::new(wellknown::REXEC), bc)
            .unwrap_err();
        assert!(matches!(err, TacomaError::MissingFolder(_)));
    }

    #[test]
    fn bad_host_is_rejected() {
        let mut sys = system(2);
        let mut bc = Briefcase::new();
        bc.put(wellknown::HOST, Folder::of_str("not-a-site"));
        bc.put_string(wellknown::CONTACT, "ag_tac");
        let err = sys
            .try_direct_meet(SiteId(0), &AgentName::new(wellknown::REXEC), bc)
            .unwrap_err();
        assert!(matches!(err, TacomaError::BadFolder { .. }));

        let mut bc = Briefcase::new();
        bc.put_string(wellknown::HOST, "99");
        bc.put_string(wellknown::CONTACT, "ag_tac");
        let err = sys
            .try_direct_meet(SiteId(0), &AgentName::new(wellknown::REXEC), bc)
            .unwrap_err();
        assert!(matches!(err, TacomaError::BadFolder { .. }));
    }

    #[test]
    fn migration_to_dead_site_is_refused_at_the_source() {
        let mut sys = system(3);
        sys.net_mut().crash_now(SiteId(2));
        let mut bc = Briefcase::new();
        bc.put_string(wellknown::HOST, "2");
        bc.put_string(wellknown::CONTACT, wellknown::AG_TAC);
        let err = sys
            .try_direct_meet(SiteId(0), &AgentName::new(wellknown::REXEC), bc)
            .unwrap_err();
        assert!(matches!(err, TacomaError::SiteDown(_)));
    }

    #[test]
    fn rexec_ships_the_remaining_briefcase() {
        let mut sys = system(3);
        // A script agent that records its arrival in a cabinet at the target.
        let code = r#"
            cab_append arrivals LOG "arrived at [my_site]"
            cab_append arrivals PAYLOAD [bc_peek DATA]
        "#;
        let mut bc = Briefcase::new();
        bc.put_string(wellknown::HOST, "2");
        bc.put_string(wellknown::CONTACT, wellknown::AG_TAC);
        bc.put(wellknown::CODE, Folder::of_str(code));
        bc.put_string("DATA", "precious-cargo");
        bc.put_string(wellknown::TRANSPORT, "rsh");

        sys.inject_meet(SiteId(0), AgentName::new(wellknown::REXEC), bc);
        sys.run_until_quiescent(1_000);

        let cab = sys.place(SiteId(2)).cabinets().get("arrivals").unwrap();
        assert!(
            cab.payload_bytes() > 0,
            "agent must have executed at site 2"
        );
        assert_eq!(sys.stats().remote_meets, 1);
        assert!(sys.net_metrics().total_bytes().get() > 0);
        // HOST/CONTACT/TRANSPORT are consumed, DATA and CODE travel.
        let trace = sys.trace().join("\n");
        assert!(trace.contains("rexec: moving agent to site2"));
    }
}
