//! Tiny agents used by tests, examples and benchmarks across the workspace.

use tacoma_core::prelude::*;

/// Returns its briefcase unchanged, with an `ECHO` marker folder added.
#[derive(Debug, Default)]
pub struct EchoAgent;

impl EchoAgent {
    /// Well-known name.
    pub const NAME: &'static str = "echo";

    /// Creates the agent.
    pub fn new() -> Self {
        EchoAgent
    }
}

impl Agent for EchoAgent {
    fn name(&self) -> AgentName {
        AgentName::new(Self::NAME)
    }
    fn meet(&mut self, ctx: &mut MeetCtx<'_>, mut bc: Briefcase) -> MeetOutcome {
        bc.put_string("ECHO", format!("from {}", ctx.site()));
        Ok(bc)
    }
}

/// Stores every folder it receives into the site-local `sink` cabinet and
/// returns an empty briefcase.  Useful as a delivery endpoint.
#[derive(Debug, Default)]
pub struct SinkAgent;

impl SinkAgent {
    /// Well-known name.
    pub const NAME: &'static str = "sink";
    /// Cabinet the sink stores into.
    pub const CABINET: &'static str = "sink";

    /// Creates the agent.
    pub fn new() -> Self {
        SinkAgent
    }
}

impl Agent for SinkAgent {
    fn name(&self) -> AgentName {
        AgentName::new(Self::NAME)
    }
    fn meet(&mut self, ctx: &mut MeetCtx<'_>, bc: Briefcase) -> MeetOutcome {
        for (name, folder) in bc.iter() {
            for elem in folder.iter() {
                ctx.cabinet(Self::CABINET).append(name, elem.clone());
            }
        }
        Ok(Briefcase::new())
    }
}

/// Counts how many times it has been met, reporting the count in `COUNT`.
#[derive(Debug, Default)]
pub struct CounterAgent {
    count: u64,
}

impl CounterAgent {
    /// Well-known name.
    pub const NAME: &'static str = "counter";

    /// Creates the agent.
    pub fn new() -> Self {
        CounterAgent::default()
    }
}

impl Agent for CounterAgent {
    fn name(&self) -> AgentName {
        AgentName::new(Self::NAME)
    }
    fn meet(&mut self, _ctx: &mut MeetCtx<'_>, mut bc: Briefcase) -> MeetOutcome {
        self.count += 1;
        bc.put_u64("COUNT", self.count);
        Ok(bc)
    }
}

/// Always refuses the meet — used to exercise error paths.
#[derive(Debug, Default)]
pub struct BlackholeAgent;

impl BlackholeAgent {
    /// Well-known name.
    pub const NAME: &'static str = "blackhole";

    /// Creates the agent.
    pub fn new() -> Self {
        BlackholeAgent
    }
}

impl Agent for BlackholeAgent {
    fn name(&self) -> AgentName {
        AgentName::new(Self::NAME)
    }
    fn meet(&mut self, _ctx: &mut MeetCtx<'_>, _bc: Briefcase) -> MeetOutcome {
        Err(TacomaError::Refused("blackhole refuses everything".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacoma_core::TacomaSystem;
    use tacoma_net::{LinkSpec, Topology};

    fn system() -> TacomaSystem {
        let mut sys = TacomaSystem::builder()
            .topology(Topology::full_mesh(2, LinkSpec::default()))
            .seed(1)
            .build();
        sys.register_agent(SiteId(0), Box::new(EchoAgent::new()));
        sys.register_agent(SiteId(0), Box::new(SinkAgent::new()));
        sys.register_agent(SiteId(0), Box::new(CounterAgent::new()));
        sys.register_agent(SiteId(0), Box::new(BlackholeAgent::new()));
        sys
    }

    #[test]
    fn echo_marks_the_briefcase() {
        let mut sys = system();
        let out = sys
            .try_direct_meet(
                SiteId(0),
                &AgentName::new(EchoAgent::NAME),
                Briefcase::new(),
            )
            .unwrap();
        assert_eq!(out.peek_string("ECHO").as_deref(), Some("from site0"));
    }

    #[test]
    fn sink_stores_folders() {
        let mut sys = system();
        let mut bc = Briefcase::new();
        bc.put_string("DATA", "payload");
        sys.try_direct_meet(SiteId(0), &AgentName::new(SinkAgent::NAME), bc)
            .unwrap();
        let cab = sys
            .place(SiteId(0))
            .cabinets()
            .get(SinkAgent::CABINET)
            .unwrap();
        assert!(cab.folder_ref("DATA").is_some());
    }

    #[test]
    fn counter_counts() {
        let mut sys = system();
        for expected in 1..=3 {
            let out = sys
                .try_direct_meet(
                    SiteId(0),
                    &AgentName::new(CounterAgent::NAME),
                    Briefcase::new(),
                )
                .unwrap();
            assert_eq!(out.peek_u64("COUNT"), Some(expected));
        }
    }

    #[test]
    fn blackhole_refuses() {
        let mut sys = system();
        let err = sys
            .try_direct_meet(
                SiteId(0),
                &AgentName::new(BlackholeAgent::NAME),
                Briefcase::new(),
            )
            .unwrap_err();
        assert!(matches!(err, TacomaError::Refused(_)));
    }
}
