//! The `diffusion` agent — flooding bounded by site-local folders — and its
//! unbounded baseline.
//!
//! The paper (§2) uses flooding to motivate site-local folders: "consider a
//! flooding algorithm to deliver a message at all sites in a network.  One
//! implementation would have each agent deliver the message and then create a
//! clone of itself at every adjacent site.  Unfortunately, here the number of
//! agents increases without bound.  If, instead, an agent also records its
//! visit in a site-local folder, then an agent can simply terminate — rather
//! than clone — when it finds itself at a site that has already been visited."
//!
//! [`DiffusionAgent`] implements the bounded version: it delivers the message,
//! records the visit in the site-local `diffusion` cabinet, and clones itself
//! only to neighbours that appear in neither the site-local visited set nor
//! the briefcase's `SITES` folder (the paper's set difference).
//! [`NaiveFloodAgent`] is the baseline that clones to every neighbour with
//! only a hop-count safety valve; experiment E2 compares the two.

use tacoma_core::prelude::*;

/// Cabinet used by the bounded diffusion agent for its visited set and the
/// delivered messages.
pub const DIFFUSION_CABINET: &str = "diffusion";
/// Folder (in the cabinet) recording message ids already seen at this site.
pub const VISITED: &str = "VISITED";
/// Folder (in the cabinet) collecting delivered message payloads.
pub const BULLETIN: &str = "BULLETIN";
/// Briefcase folder carrying the message id.
pub const MSG_ID: &str = "MSG_ID";
/// Briefcase folder carrying the message payload.
pub const MESSAGE: &str = "MESSAGE";
/// Briefcase folder carrying the remaining hop budget (naive agent only).
pub const HOPS: &str = "HOPS";

/// The bounded flooding agent of the paper.
#[derive(Debug, Default)]
pub struct DiffusionAgent;

impl DiffusionAgent {
    /// Creates the agent.
    pub fn new() -> Self {
        DiffusionAgent
    }
}

impl Agent for DiffusionAgent {
    fn name(&self) -> AgentName {
        AgentName::new(wellknown::DIFFUSION)
    }

    fn meet(&mut self, ctx: &mut MeetCtx<'_>, bc: Briefcase) -> MeetOutcome {
        let msg_id = bc
            .peek_string(MSG_ID)
            .ok_or_else(|| TacomaError::missing(MSG_ID))?;
        let payload = bc
            .peek_string(MESSAGE)
            .ok_or_else(|| TacomaError::missing(MESSAGE))?;

        // Terminate instead of cloning when the site has already been visited.
        if ctx
            .cabinet(DIFFUSION_CABINET)
            .folder_contains(VISITED, msg_id.as_bytes())
        {
            let mut out = Briefcase::new();
            out.put_string("STATUS", "duplicate");
            return Ok(out);
        }
        ctx.cabinet(DIFFUSION_CABINET).append_str(VISITED, &msg_id);
        ctx.cabinet(DIFFUSION_CABINET)
            .append_str(BULLETIN, format!("{msg_id}:{payload}"));

        // The set the agent has already covered travels in the SITES folder.
        let here = ctx.site();
        let mut covered: Vec<String> = bc
            .folder(wellknown::SITES)
            .map(|f| f.strings())
            .unwrap_or_default();
        if !covered.contains(&here.0.to_string()) {
            covered.push(here.0.to_string());
        }

        // Clone to every neighbour not in the covered set (the paper's set
        // difference between site-local knowledge and the briefcase SITES).
        let neighbors: Vec<SiteId> = ctx.neighbors().to_vec();
        let mut clones = 0u64;
        for n in neighbors {
            if covered.contains(&n.0.to_string()) || !ctx.site_is_up(n) {
                continue;
            }
            let mut clone_bc = Briefcase::new();
            clone_bc.put_string(MSG_ID, &msg_id);
            clone_bc.put_string(MESSAGE, &payload);
            let sites = clone_bc.folder_mut(wellknown::SITES);
            for s in &covered {
                sites.push_str(s);
            }
            sites.push_str(n.0.to_string());
            ctx.remote_meet(
                n,
                AgentName::new(wellknown::DIFFUSION),
                clone_bc,
                TransportKind::Tcp,
            );
            clones += 1;
        }

        let mut out = Briefcase::new();
        out.put_string("STATUS", "delivered");
        out.put_u64("CLONES", clones);
        Ok(out)
    }
}

/// The unbounded baseline: clones to every neighbour, stopping only when a
/// hop budget runs out.  Without the budget the agent population grows
/// without bound on any cyclic topology — which is exactly the paper's point.
#[derive(Debug, Default)]
pub struct NaiveFloodAgent;

impl NaiveFloodAgent {
    /// Name of the naive flooding agent.
    pub const NAME: &'static str = "naive_flood";

    /// Creates the agent.
    pub fn new() -> Self {
        NaiveFloodAgent
    }
}

impl Agent for NaiveFloodAgent {
    fn name(&self) -> AgentName {
        AgentName::new(Self::NAME)
    }

    fn meet(&mut self, ctx: &mut MeetCtx<'_>, bc: Briefcase) -> MeetOutcome {
        let msg_id = bc
            .peek_string(MSG_ID)
            .ok_or_else(|| TacomaError::missing(MSG_ID))?;
        let payload = bc
            .peek_string(MESSAGE)
            .ok_or_else(|| TacomaError::missing(MESSAGE))?;
        let hops = bc.peek_u64(HOPS).unwrap_or(0);

        // Deliver unconditionally (possibly again and again).
        ctx.cabinet(DIFFUSION_CABINET)
            .append_str(BULLETIN, format!("{msg_id}:{payload}"));

        let mut clones = 0u64;
        if hops > 0 {
            let neighbors: Vec<SiteId> = ctx.neighbors().to_vec();
            for n in neighbors {
                if !ctx.site_is_up(n) {
                    continue;
                }
                let mut clone_bc = Briefcase::new();
                clone_bc.put_string(MSG_ID, &msg_id);
                clone_bc.put_string(MESSAGE, &payload);
                clone_bc.put_u64(HOPS, hops - 1);
                ctx.remote_meet(n, AgentName::new(Self::NAME), clone_bc, TransportKind::Tcp);
                clones += 1;
            }
        }
        let mut out = Briefcase::new();
        out.put_u64("CLONES", clones);
        Ok(out)
    }
}

/// Builds the briefcase that starts a bounded diffusion of `payload`.
pub fn diffusion_briefcase(msg_id: &str, payload: &str) -> Briefcase {
    let mut bc = Briefcase::new();
    bc.put_string(MSG_ID, msg_id);
    bc.put_string(MESSAGE, payload);
    bc
}

/// Builds the briefcase that starts a naive flood with the given hop budget.
pub fn naive_flood_briefcase(msg_id: &str, payload: &str, hops: u64) -> Briefcase {
    let mut bc = diffusion_briefcase(msg_id, payload);
    bc.put_u64(HOPS, hops);
    bc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::standard_agents;
    use tacoma_core::TacomaSystem;
    use tacoma_net::{LinkSpec, Topology};
    use tacoma_util::DetRng;

    fn system(topology: Topology) -> TacomaSystem {
        let mut sys = TacomaSystem::builder()
            .topology(topology)
            .seed(7)
            .with_agents(standard_agents)
            .build();
        for s in 0..sys.site_count() {
            sys.register_agent(SiteId(s), Box::new(NaiveFloodAgent::new()));
        }
        sys
    }

    fn delivered_sites(sys: &TacomaSystem) -> usize {
        (0..sys.site_count())
            .filter(|s| {
                sys.place(SiteId(*s))
                    .cabinets()
                    .get(DIFFUSION_CABINET)
                    .map(|c| c.payload_bytes() > 0)
                    .unwrap_or(false)
            })
            .count()
    }

    #[test]
    fn diffusion_covers_a_ring_and_terminates() {
        let mut sys = system(Topology::ring(8, LinkSpec::default()));
        sys.inject_meet(
            SiteId(0),
            AgentName::new(wellknown::DIFFUSION),
            diffusion_briefcase("m1", "hello everyone"),
        );
        let events = sys.run_until_quiescent(100_000);
        assert!(events < 100_000, "diffusion must terminate");
        assert_eq!(delivered_sites(&sys), 8, "all sites receive the message");
        // Bounded: the number of meets is O(edges), far below the naive blow-up.
        assert!(sys.stats().meets_requested <= 2 * 8 + 2);
    }

    #[test]
    fn diffusion_covers_a_random_connected_graph() {
        let mut rng = DetRng::new(99);
        let topo = Topology::random_connected(20, 10, LinkSpec::default(), &mut rng);
        let mut sys = system(topo);
        sys.inject_meet(
            SiteId(3),
            AgentName::new(wellknown::DIFFUSION),
            diffusion_briefcase("m2", "payload"),
        );
        sys.run_until_quiescent(100_000);
        assert_eq!(delivered_sites(&sys), 20);
    }

    #[test]
    fn duplicate_arrivals_terminate_without_cloning() {
        let mut sys = system(Topology::full_mesh(4, LinkSpec::default()));
        sys.inject_meet(
            SiteId(0),
            AgentName::new(wellknown::DIFFUSION),
            diffusion_briefcase("m3", "x"),
        );
        sys.run_until_quiescent(100_000);
        // Each site delivers exactly once even though clones race in a mesh.
        for s in 0..4 {
            let cab = sys
                .place(SiteId(s))
                .cabinets()
                .get(DIFFUSION_CABINET)
                .unwrap();
            let bulletin = cab.folder_ref(BULLETIN).map(|f| f.len()).unwrap_or(0);
            assert_eq!(bulletin, 1, "site {s} must deliver exactly once");
        }
    }

    #[test]
    fn two_messages_diffuse_independently() {
        let mut sys = system(Topology::ring(5, LinkSpec::default()));
        sys.inject_meet(
            SiteId(0),
            AgentName::new(wellknown::DIFFUSION),
            diffusion_briefcase("a", "first"),
        );
        sys.inject_meet(
            SiteId(2),
            AgentName::new(wellknown::DIFFUSION),
            diffusion_briefcase("b", "second"),
        );
        sys.run_until_quiescent(100_000);
        for s in 0..5 {
            let cab = sys
                .place(SiteId(s))
                .cabinets()
                .get(DIFFUSION_CABINET)
                .unwrap();
            let bulletin = cab.folder_ref(BULLETIN).map(|f| f.len()).unwrap_or(0);
            assert_eq!(bulletin, 2, "site {s} must receive both messages once each");
        }
    }

    #[test]
    fn missing_message_fields_are_rejected() {
        let mut sys = system(Topology::ring(3, LinkSpec::default()));
        let err = sys
            .try_direct_meet(
                SiteId(0),
                &AgentName::new(wellknown::DIFFUSION),
                Briefcase::new(),
            )
            .unwrap_err();
        assert!(matches!(err, TacomaError::MissingFolder(_)));
    }

    #[test]
    fn naive_flood_delivers_duplicates_and_spawns_many_more_agents() {
        let ring = Topology::ring(6, LinkSpec::default());
        let mut bounded = system(ring.clone());
        bounded.inject_meet(
            SiteId(0),
            AgentName::new(wellknown::DIFFUSION),
            diffusion_briefcase("m", "x"),
        );
        bounded.run_until_quiescent(1_000_000);
        let bounded_meets = bounded.stats().meets_requested;

        let mut naive = system(ring);
        naive.inject_meet(
            SiteId(0),
            AgentName::new(NaiveFloodAgent::NAME),
            naive_flood_briefcase("m", "x", 6),
        );
        naive.run_until_quiescent(1_000_000);
        let naive_meets = naive.stats().meets_requested;

        assert!(
            naive_meets > 3 * bounded_meets,
            "naive flooding ({naive_meets} meets) should dwarf bounded diffusion ({bounded_meets})"
        );
        // And some site received the message more than once.
        let duplicated = (0..6).any(|s| {
            naive
                .place(SiteId(s))
                .cabinets()
                .get(DIFFUSION_CABINET)
                .and_then(|c| c.folder_ref(BULLETIN).map(|f| f.len()))
                .unwrap_or(0)
                > 1
        });
        assert!(duplicated, "naive flooding delivers duplicates");
    }

    #[test]
    fn diffusion_skips_dead_neighbours_but_still_covers_reachable_sites() {
        let mut sys = system(Topology::ring(6, LinkSpec::default()));
        sys.net_mut().crash_now(SiteId(3));
        sys.inject_meet(
            SiteId(0),
            AgentName::new(wellknown::DIFFUSION),
            diffusion_briefcase("m", "x"),
        );
        sys.run_until_quiescent(100_000);
        // Site 3 is down; everyone else is reachable around the ring.
        assert_eq!(delivered_sites(&sys), 5);
        assert_eq!(
            sys.stats().send_failures,
            0,
            "dead neighbour is skipped, not tried"
        );
    }
}
