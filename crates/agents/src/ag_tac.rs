//! The `ag_tac` agent: the TacoScript interpreter as an agent.
//!
//! This is the reproduction's equivalent of the prototype's `ag_tcl` (§6):
//! "the most basic of these is ag_tcl, which pops a Tcl procedure from the
//! CODE folder and executes that procedure."  Mobile script agents are
//! therefore nothing more than a briefcase whose `CODE` folder holds
//! TacoScript; any site with an `ag_tac` agent can execute them, which is what
//! lets an agent "move to a destination site having a completely different
//! machine language."
//!
//! The bridge between the script and the kernel is the private `CtxHost`, which
//! implements the interpreter's [`ScriptHost`] trait on top of the running
//! meet's [`MeetCtx`] and briefcase:
//!
//! * `bc_*` commands read and write the agent's briefcase;
//! * `cab_*` commands read and write the site's file cabinets;
//! * `meet X` performs a nested local meet, passing the current briefcase and
//!   merging the folders the callee returns;
//! * `move_to S ?contact?` queues a migration of the briefcase (with the CODE
//!   folder restored) to site `S`;
//! * `send_remote S contact folders...` ships copies of the named folders to
//!   an agent at another site (the courier pattern).

use tacoma_core::prelude::*;
use tacoma_core::Folder;
use tacoma_script::{Interp, InterpConfig, ScriptError, ScriptHost};
use tacoma_util::SiteId as USiteId;

/// Default step budget for one script execution.
pub const DEFAULT_STEP_BUDGET: u64 = 200_000;

/// The interpreter agent.
#[derive(Debug)]
pub struct AgTacAgent {
    config: InterpConfig,
}

impl Default for AgTacAgent {
    fn default() -> Self {
        Self::new()
    }
}

impl AgTacAgent {
    /// Creates the agent with the default step budget.
    pub fn new() -> Self {
        AgTacAgent {
            config: InterpConfig {
                max_steps: DEFAULT_STEP_BUDGET,
                max_depth: 64,
            },
        }
    }

    /// Creates the agent with an explicit step budget (used by the runaway-
    /// agent tests and the electronic-cash motivation of §3).
    pub fn with_step_budget(max_steps: u64) -> Self {
        AgTacAgent {
            config: InterpConfig {
                max_steps,
                max_depth: 64,
            },
        }
    }
}

impl Agent for AgTacAgent {
    fn name(&self) -> AgentName {
        AgentName::new(wellknown::AG_TAC)
    }

    fn meet(&mut self, ctx: &mut MeetCtx<'_>, mut bc: Briefcase) -> MeetOutcome {
        // "Pops a procedure from the CODE folder and executes it."
        let code = bc
            .folder_mut(wellknown::CODE)
            .pop_str()
            .ok_or_else(|| TacomaError::missing(wellknown::CODE))?;
        if bc
            .folder(wellknown::CODE)
            .map(|f| f.is_empty())
            .unwrap_or(false)
        {
            bc.take(wellknown::CODE);
        }
        let outcome = {
            let mut host = CtxHost {
                ctx,
                bc: &mut bc,
                code: code.clone(),
            };
            let mut interp = Interp::with_config(&mut host, self.config);
            interp.run(&code)
        };
        match outcome {
            Ok(result) => {
                if !result.result.is_empty() {
                    bc.folder_mut(wellknown::REPLY).push_str(&result.result);
                }
                Ok(bc)
            }
            Err(ScriptError::BudgetExceeded) => Err(TacomaError::BudgetExceeded(format!(
                "script exceeded {} steps",
                self.config.max_steps
            ))),
            Err(e) => Err(TacomaError::Script(e.to_string())),
        }
    }
}

/// Bridges the interpreter's host interface onto a live meet.
struct CtxHost<'c, 'a> {
    ctx: &'c mut MeetCtx<'a>,
    bc: &'c mut Briefcase,
    /// The script text, restored into migrating copies of the briefcase.
    code: String,
}

impl CtxHost<'_, '_> {
    fn travelling_briefcase(&self) -> Briefcase {
        let mut out = self.bc.clone();
        out.folder_mut(wellknown::CODE).push_str(&self.code);
        out
    }
}

impl ScriptHost for CtxHost<'_, '_> {
    fn bc_put(&mut self, folder: &str, value: &str) {
        self.bc.put(folder, Folder::of_str(value));
    }
    fn bc_push(&mut self, folder: &str, value: &str) {
        self.bc.folder_mut(folder).push_str(value);
    }
    fn bc_pop(&mut self, folder: &str) -> Option<String> {
        self.bc.folder_mut(folder).pop_str()
    }
    fn bc_dequeue(&mut self, folder: &str) -> Option<String> {
        self.bc.folder_mut(folder).dequeue_str()
    }
    fn bc_peek(&mut self, folder: &str) -> Option<String> {
        self.bc.folder(folder).and_then(|f| f.peek_str())
    }
    fn bc_list(&mut self, folder: &str) -> Vec<String> {
        self.bc
            .folder(folder)
            .map(|f| f.strings())
            .unwrap_or_default()
    }
    fn bc_delete(&mut self, folder: &str) {
        self.bc.take(folder);
    }

    fn cab_append(&mut self, cabinet: &str, folder: &str, value: &str) {
        self.ctx.cabinet(cabinet).append_str(folder, value);
    }
    fn cab_contains(&mut self, cabinet: &str, folder: &str, value: &str) -> bool {
        self.ctx
            .cabinet(cabinet)
            .folder_contains(folder, value.as_bytes())
    }
    fn cab_list(&mut self, cabinet: &str, folder: &str) -> Vec<String> {
        self.ctx
            .cabinet(cabinet)
            .folder(folder)
            .map(|f| f.strings())
            .unwrap_or_default()
    }
    fn cab_pop(&mut self, cabinet: &str, folder: &str) -> Option<String> {
        self.ctx
            .cabinet(cabinet)
            .pop(folder)
            .map(|b| String::from_utf8_lossy(&b).into_owned())
    }

    fn meet(&mut self, agent: &str) -> Result<(), String> {
        let request = self.bc.clone();
        match self.ctx.meet_local(&AgentName::new(agent), request) {
            Ok(reply) => {
                for (name, folder) in reply.iter() {
                    self.bc.put(name, folder.clone());
                }
                Ok(())
            }
            Err(e) => Err(e.to_string()),
        }
    }

    fn move_to(&mut self, site: u64, contact: &str) -> Result<(), String> {
        let target = USiteId(site as u32);
        if site >= self.ctx.site_count() as u64 {
            return Err(format!("site {site} does not exist"));
        }
        if !self.ctx.site_is_up(target) {
            return Err(format!("site {site} is down"));
        }
        let travelling = self.travelling_briefcase();
        self.ctx.remote_meet(
            target,
            AgentName::new(contact),
            travelling,
            TransportKind::Tcp,
        );
        Ok(())
    }

    fn send_remote(&mut self, site: u64, contact: &str, folders: &[String]) -> Result<(), String> {
        let target = USiteId(site as u32);
        if site >= self.ctx.site_count() as u64 {
            return Err(format!("site {site} does not exist"));
        }
        if !self.ctx.site_is_up(target) {
            return Err(format!("site {site} is down"));
        }
        let mut out = Briefcase::new();
        for name in folders {
            if name == wellknown::CODE {
                out.folder_mut(wellknown::CODE).push_str(&self.code);
            } else if let Some(folder) = self.bc.folder(name) {
                out.put(name.clone(), folder.clone());
            }
        }
        self.ctx
            .remote_meet(target, AgentName::new(contact), out, TransportKind::Tcp);
        Ok(())
    }

    fn site(&self) -> u64 {
        self.ctx.site().0 as u64
    }
    fn site_count(&self) -> u64 {
        self.ctx.site_count() as u64
    }
    fn neighbors(&self) -> Vec<u64> {
        self.ctx.neighbors().iter().map(|s| s.0 as u64).collect()
    }
    fn random(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.ctx.rng().next_below(bound)
        }
    }
    fn now_micros(&self) -> u64 {
        self.ctx.now().micros()
    }
    fn log(&mut self, message: &str) {
        self.ctx.log(message.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::{script_briefcase, standard_agents};
    use tacoma_core::TacomaSystem;
    use tacoma_net::{LinkSpec, Topology};

    fn system(sites: u32) -> TacomaSystem {
        TacomaSystem::builder()
            .topology(Topology::full_mesh(sites, LinkSpec::default()))
            .seed(11)
            .with_agents(standard_agents)
            .build()
    }

    #[test]
    fn missing_code_is_an_error() {
        let mut sys = system(1);
        let err = sys
            .try_direct_meet(
                SiteId(0),
                &AgentName::new(wellknown::AG_TAC),
                Briefcase::new(),
            )
            .unwrap_err();
        assert!(matches!(err, TacomaError::MissingFolder(_)));
    }

    #[test]
    fn script_reads_and_writes_briefcase_and_cabinets() {
        let mut sys = system(1);
        let code = r#"
            set x [bc_peek INPUT]
            bc_push OUTPUT [expr $x * 2]
            cab_append results LOG "computed [expr $x * 2]"
            return ok
        "#;
        let bc = script_briefcase(code, &[("INPUT", "21")]);
        let reply = sys
            .try_direct_meet(SiteId(0), &AgentName::new(wellknown::AG_TAC), bc)
            .unwrap();
        assert_eq!(reply.peek_string("OUTPUT").as_deref(), Some("42"));
        assert_eq!(reply.peek_string(wellknown::REPLY).as_deref(), Some("ok"));
        let cab = sys.place(SiteId(0)).cabinets().get("results").unwrap();
        assert!(cab.payload_bytes() > 0);
    }

    #[test]
    fn script_error_is_reported() {
        let mut sys = system(1);
        let bc = script_briefcase("this_is_not_a_command", &[]);
        let err = sys
            .try_direct_meet(SiteId(0), &AgentName::new(wellknown::AG_TAC), bc)
            .unwrap_err();
        assert!(matches!(err, TacomaError::Script(_)));
    }

    #[test]
    fn runaway_script_is_stopped_by_the_budget() {
        let mut sys = system(1);
        sys.register_agent(SiteId(0), Box::new(AgTacAgent::with_step_budget(1_000)));
        let bc = script_briefcase("while {1} { set x 1 }", &[]);
        let err = sys
            .try_direct_meet(SiteId(0), &AgentName::new(wellknown::AG_TAC), bc)
            .unwrap_err();
        assert!(matches!(err, TacomaError::BudgetExceeded(_)));
    }

    #[test]
    fn script_meets_rexec_to_migrate_the_paper_way() {
        // The paper's migration idiom: the agent sets HOST and CONTACT and
        // meets rexec, whose CODE folder re-executes at the destination.
        let mut sys = system(3);
        let code = r#"
            set hops [bc_peek HOPS]
            cab_append visits LOG "hop $hops at [my_site]"
            if {$hops > 0} {
                bc_put HOPS [expr $hops - 1]
                bc_put HOST [expr ([my_site] + 1) % [site_count]]
                bc_put CONTACT ag_tac
                bc_push CODE [bc_peek ORIGCODE]
                meet rexec
            }
            return done
        "#;
        // The script carries a copy of itself in ORIGCODE so it can re-arm the
        // CODE folder before meeting rexec (ag_tac pops CODE on execution).
        let mut bc = script_briefcase(code, &[("HOPS", "2")]);
        bc.put_string("ORIGCODE", code);
        sys.inject_meet(SiteId(0), AgentName::new(wellknown::AG_TAC), bc);
        sys.run_until_quiescent(10_000);

        // hops 2 at site0, hop 1 at site1, hop 0 at site2.
        for s in 0..3 {
            let cab = sys.place(SiteId(s)).cabinets().get("visits");
            assert!(cab.is_some(), "site {s} should have a visit record");
        }
        assert_eq!(sys.stats().remote_meets, 2);
        assert_eq!(sys.stats().meets_failed, 0);
    }

    #[test]
    fn move_to_ships_code_and_state() {
        let mut sys = system(2);
        let code = r#"
            if {[my_site] == 0} {
                bc_push TRAIL "left site 0"
                move_to 1
                return moving
            } else {
                cab_append inbox TRAIL [bc_peek TRAIL]
                return arrived
            }
        "#;
        let bc = script_briefcase(code, &[]);
        sys.inject_meet(SiteId(0), AgentName::new(wellknown::AG_TAC), bc);
        sys.run_until_quiescent(1_000);
        let cab = sys.place(SiteId(1)).cabinets().get("inbox").unwrap();
        assert!(cab.payload_bytes() > 0, "the trail should arrive at site 1");
        assert_eq!(sys.stats().meets_failed, 0);
        assert_eq!(sys.stats().remote_meets, 1);
    }

    #[test]
    fn move_to_dead_or_unknown_site_fails_catchably() {
        let mut sys = system(2);
        sys.net_mut().crash_now(SiteId(1));
        let code = r#"
            set failed_dead [catch {move_to 1}]
            set failed_missing [catch {move_to 99}]
            bc_push CHECK "$failed_dead$failed_missing"
            return checked
        "#;
        let reply = sys
            .try_direct_meet(
                SiteId(0),
                &AgentName::new(wellknown::AG_TAC),
                script_briefcase(code, &[]),
            )
            .unwrap();
        assert_eq!(reply.peek_string("CHECK").as_deref(), Some("11"));
    }

    #[test]
    fn nested_meet_merges_reply_folders() {
        // A native helper agent that the script meets locally.
        struct Doubler;
        impl Agent for Doubler {
            fn name(&self) -> AgentName {
                AgentName::new("doubler")
            }
            fn meet(&mut self, _ctx: &mut MeetCtx<'_>, mut bc: Briefcase) -> MeetOutcome {
                let x = bc
                    .peek_string("REQUEST")
                    .and_then(|s| s.parse::<i64>().ok())
                    .unwrap_or(0);
                bc.put_string("REPLY_VALUE", (x * 2).to_string());
                Ok(bc)
            }
        }
        let mut sys = system(1);
        sys.register_agent(SiteId(0), Box::new(Doubler));
        let code = r#"
            bc_put REQUEST 8
            meet doubler
            return [bc_peek REPLY_VALUE]
        "#;
        let reply = sys
            .try_direct_meet(
                SiteId(0),
                &AgentName::new(wellknown::AG_TAC),
                script_briefcase(code, &[]),
            )
            .unwrap();
        assert_eq!(reply.peek_string(wellknown::REPLY).as_deref(), Some("16"));
    }
}
