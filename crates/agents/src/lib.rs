//! The TACOMA system agents.
//!
//! Section 2 of the paper makes the point that "no additional abstractions are
//! required … services for agents — communication, synchronization, and so on —
//! are provided directly by other agents."  This crate implements those
//! service agents:
//!
//! * [`ag_tac::AgTacAgent`] — the interpreter agent (the prototype's
//!   `ag_tcl`): pops a TacoScript procedure from the `CODE` folder and
//!   executes it, bridging the script's briefcase and cabinet operations to
//!   the kernel.
//! * [`rexec::RexecAgent`] — migration: expects `HOST` and `CONTACT` folders
//!   and ships the rest of the briefcase to the named agent at the named site.
//! * [`courier::CourierAgent`] — transfers a folder to a specified agent on a
//!   specified machine, so agents can communicate without meeting.
//! * [`diffusion::DiffusionAgent`] — flooding bounded by site-local visited
//!   folders, plus [`diffusion::NaiveFloodAgent`], the unbounded-cloning
//!   baseline the paper warns about (used by experiment E2).
//! * [`testing`] — tiny agents (echo, sink, blackhole) used across the
//!   workspace's tests and benchmarks.
//!
//! [`standard_agents`] returns the default set every site installs, matching
//! the prototype's description of "a collection of system agents".

#![warn(missing_docs)]

pub mod ag_tac;
pub mod courier;
pub mod diffusion;
pub mod helpers;
pub mod rexec;
pub mod testing;

pub use ag_tac::AgTacAgent;
pub use courier::CourierAgent;
pub use diffusion::{diffusion_briefcase, naive_flood_briefcase, DiffusionAgent, NaiveFloodAgent};
pub use helpers::{parse_site, script_briefcase, site_folder_value, standard_agents};
pub use rexec::RexecAgent;
