//! Conventions and helpers shared by the system agents.

use crate::{AgTacAgent, CourierAgent, DiffusionAgent, RexecAgent};
use tacoma_core::prelude::*;
use tacoma_core::Folder;

/// Parses a site id out of a folder element that may be a little-endian `u64`
/// or a decimal string (optionally of the form `siteN`).
pub fn parse_site(folder: &Folder) -> Option<SiteId> {
    let elem = folder.peek_back()?;
    // Prefer the textual forms ("12", "site12"); fall back to a little-endian
    // u64 only for 8-byte elements that are not readable text.
    if let Ok(s) = std::str::from_utf8(elem) {
        let s = s.trim();
        let digits = s.strip_prefix("site").unwrap_or(s);
        if let Ok(n) = digits.parse::<u32>() {
            return Some(SiteId(n));
        }
    }
    if elem.len() == 8 {
        let arr: [u8; 8] = elem.as_slice().try_into().ok()?;
        let v = u64::from_le_bytes(arr);
        if v <= u32::MAX as u64 {
            return Some(SiteId(v as u32));
        }
    }
    None
}

/// Builds a folder holding a site id as a decimal string (the conventional
/// on-the-wire representation, readable from TacoScript).
pub fn site_folder_value(site: SiteId) -> Folder {
    Folder::of_str(site.0.to_string())
}

/// Builds the briefcase of a script agent: `CODE` holds the TacoScript text
/// and any extra `(folder, value)` string pairs are added alongside.
pub fn script_briefcase(code: &str, extra: &[(&str, &str)]) -> Briefcase {
    let mut bc = Briefcase::new();
    bc.put(wellknown::CODE, Folder::of_str(code));
    for (name, value) in extra {
        bc.folder_mut(name).push_str(value);
    }
    bc
}

/// The default system-agent set installed at every site, mirroring §6's
/// "collection of system agents".
pub fn standard_agents(_site: SiteId) -> Vec<Box<dyn Agent>> {
    vec![
        Box::new(AgTacAgent::new()),
        Box::new(RexecAgent::new()),
        Box::new(CourierAgent::new()),
        Box::new(DiffusionAgent::new()),
    ]
}

/// Reads the transport named in the `TRANSPORT` folder, defaulting to TCP.
pub fn transport_from(bc: &Briefcase) -> TransportKind {
    match bc.peek_string(wellknown::TRANSPORT).as_deref() {
        Some("rsh") => TransportKind::Rsh,
        Some("horus") => TransportKind::Horus,
        _ => TransportKind::Tcp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_site_accepts_multiple_encodings() {
        let mut f = Folder::new();
        f.push_u64(7);
        assert_eq!(parse_site(&f), Some(SiteId(7)));
        assert_eq!(parse_site(&Folder::of_str("12")), Some(SiteId(12)));
        assert_eq!(parse_site(&Folder::of_str("site3")), Some(SiteId(3)));
        assert_eq!(parse_site(&Folder::of_str(" 4 ")), Some(SiteId(4)));
        assert_eq!(parse_site(&Folder::of_str("nonsense")), None);
        assert_eq!(parse_site(&Folder::new()), None);
        assert_eq!(parse_site(&site_folder_value(SiteId(9))), Some(SiteId(9)));
    }

    #[test]
    fn script_briefcase_holds_code_and_extras() {
        let bc = script_briefcase("return 1", &[("HOST", "2"), ("NOTE", "x")]);
        assert_eq!(bc.peek_string(wellknown::CODE).as_deref(), Some("return 1"));
        assert_eq!(bc.peek_string("HOST").as_deref(), Some("2"));
        assert_eq!(bc.len(), 3);
    }

    #[test]
    fn standard_agents_cover_the_wellknown_names() {
        let agents = standard_agents(SiteId(0));
        let names: Vec<String> = agents.iter().map(|a| a.name().0).collect();
        assert!(names.contains(&wellknown::AG_TAC.to_string()));
        assert!(names.contains(&wellknown::REXEC.to_string()));
        assert!(names.contains(&wellknown::COURIER.to_string()));
        assert!(names.contains(&wellknown::DIFFUSION.to_string()));
    }

    #[test]
    fn transport_parsing() {
        let mut bc = Briefcase::new();
        assert_eq!(transport_from(&bc), TransportKind::Tcp);
        bc.put_string(wellknown::TRANSPORT, "rsh");
        assert_eq!(transport_from(&bc), TransportKind::Rsh);
        bc.put_string(wellknown::TRANSPORT, "horus");
        assert_eq!(transport_from(&bc), TransportKind::Horus);
        bc.put_string(wellknown::TRANSPORT, "anything-else");
        assert_eq!(transport_from(&bc), TransportKind::Tcp);
    }
}
