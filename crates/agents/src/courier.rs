//! The `courier` agent: folder transfer between agents on different sites.
//!
//! From the paper (§2): "Given an rexec agent, it is not difficult to program
//! a courier agent, which transfers a folder to a specified agent on a
//! specified machine.  This allows agents to communicate without having to
//! meet (on a common machine)."
//!
//! Conventions: the briefcase handed to the courier carries
//!
//! * `HOST` — the destination site,
//! * `CONTACT` — the agent to deliver to,
//! * `FOLDER` — the *name* of the folder to transfer (one element per folder
//!   if several should travel), and
//! * the named folders themselves.

use crate::helpers::{parse_site, transport_from};
use tacoma_core::prelude::*;

/// Folder naming which folders the courier should carry.
pub const FOLDER: &str = "FOLDER";

/// The courier agent.  Stateless; one instance per site.
#[derive(Debug, Default)]
pub struct CourierAgent;

impl CourierAgent {
    /// Creates the agent.
    pub fn new() -> Self {
        CourierAgent
    }
}

impl Agent for CourierAgent {
    fn name(&self) -> AgentName {
        AgentName::new(wellknown::COURIER)
    }

    fn meet(&mut self, ctx: &mut MeetCtx<'_>, mut bc: Briefcase) -> MeetOutcome {
        let host_folder = bc
            .take(wellknown::HOST)
            .ok_or_else(|| TacomaError::missing(wellknown::HOST))?;
        let host = parse_site(&host_folder)
            .ok_or_else(|| TacomaError::bad_folder(wellknown::HOST, "not a site id"))?;
        let contact = bc
            .take_string(wellknown::CONTACT)
            .ok_or_else(|| TacomaError::missing(wellknown::CONTACT))?;
        let names = bc
            .take(FOLDER)
            .ok_or_else(|| TacomaError::missing(FOLDER))?;
        if !ctx.site_is_up(host) || host.0 >= ctx.site_count() {
            return Err(TacomaError::SiteDown(host));
        }
        let transport = transport_from(&bc);

        let mut parcel = Briefcase::new();
        let mut carried = 0usize;
        for name in names.strings() {
            if let Some(folder) = bc.folder(&name) {
                parcel.put(name, folder.clone());
                carried += 1;
            }
        }
        if carried == 0 {
            return Err(TacomaError::bad_folder(
                FOLDER,
                "none of the named folders exist in the briefcase",
            ));
        }
        ctx.log(format!(
            "courier: delivering {carried} folder(s) to {contact} at {host}"
        ));
        ctx.remote_meet(host, AgentName::new(contact), parcel, transport);

        // The courier hands back the briefcase minus the parcel bookkeeping,
        // so the sender can confirm what was shipped.
        let mut receipt = Briefcase::new();
        receipt.put_u64("DELIVERED", carried as u64);
        Ok(receipt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::standard_agents;
    use tacoma_core::{Folder, TacomaSystem};
    use tacoma_net::{LinkSpec, Topology};

    struct Mailbox;
    impl Agent for Mailbox {
        fn name(&self) -> AgentName {
            AgentName::new("mailbox")
        }
        fn meet(&mut self, ctx: &mut MeetCtx<'_>, bc: Briefcase) -> MeetOutcome {
            for (name, folder) in bc.iter() {
                for elem in folder.iter() {
                    ctx.cabinet("mailbox").append(name, elem.clone());
                }
            }
            Ok(Briefcase::new())
        }
    }

    fn system(sites: u32) -> TacomaSystem {
        let mut sys = TacomaSystem::builder()
            .topology(Topology::full_mesh(sites, LinkSpec::default()))
            .seed(5)
            .with_agents(standard_agents)
            .build();
        for s in 0..sites {
            sys.register_agent(SiteId(s), Box::new(Mailbox));
        }
        sys
    }

    fn courier_briefcase(to: u32, contact: &str, payload: &str) -> Briefcase {
        let mut bc = Briefcase::new();
        bc.put_string(wellknown::HOST, to.to_string());
        bc.put_string(wellknown::CONTACT, contact);
        bc.put(FOLDER, Folder::of_str("NEWS"));
        bc.put_string("NEWS", payload);
        bc
    }

    #[test]
    fn courier_delivers_named_folder() {
        let mut sys = system(3);
        sys.inject_meet(
            SiteId(0),
            AgentName::new(wellknown::COURIER),
            courier_briefcase(2, "mailbox", "storm tonight"),
        );
        sys.run_until_quiescent(1_000);
        let cab = sys.place(SiteId(2)).cabinets().get("mailbox").unwrap();
        assert!(cab.payload_bytes() > 0);
        assert_eq!(sys.stats().meets_failed, 0);
    }

    #[test]
    fn courier_can_carry_multiple_folders() {
        let mut sys = system(2);
        let mut bc = Briefcase::new();
        bc.put_string(wellknown::HOST, "1");
        bc.put_string(wellknown::CONTACT, "mailbox");
        let mut names = Folder::new();
        names.push_str("A");
        names.push_str("B");
        bc.put(FOLDER, names);
        bc.put_string("A", "alpha");
        bc.put_string("B", "beta");
        bc.put_string("C", "should not travel");
        let receipt = sys
            .try_direct_meet(SiteId(0), &AgentName::new(wellknown::COURIER), bc)
            .unwrap();
        assert_eq!(receipt.peek_u64("DELIVERED"), Some(2));
        sys.run_until_quiescent(100);
        let cab = sys.place(SiteId(1)).cabinets().get("mailbox").unwrap();
        assert!(cab.payload_bytes() >= "alpha".len() + "beta".len());
    }

    #[test]
    fn courier_rejects_missing_pieces() {
        let mut sys = system(2);
        let err = sys
            .try_direct_meet(
                SiteId(0),
                &AgentName::new(wellknown::COURIER),
                Briefcase::new(),
            )
            .unwrap_err();
        assert!(matches!(err, TacomaError::MissingFolder(_)));

        // Named folder does not exist in the briefcase.
        let mut bc = Briefcase::new();
        bc.put_string(wellknown::HOST, "1");
        bc.put_string(wellknown::CONTACT, "mailbox");
        bc.put(FOLDER, Folder::of_str("GHOST"));
        let err = sys
            .try_direct_meet(SiteId(0), &AgentName::new(wellknown::COURIER), bc)
            .unwrap_err();
        assert!(matches!(err, TacomaError::BadFolder { .. }));
    }

    #[test]
    fn courier_refuses_dead_destination() {
        let mut sys = system(3);
        sys.net_mut().crash_now(SiteId(2));
        let err = sys
            .try_direct_meet(
                SiteId(0),
                &AgentName::new(wellknown::COURIER),
                courier_briefcase(2, "mailbox", "x"),
            )
            .unwrap_err();
        assert!(matches!(err, TacomaError::SiteDown(_)));
    }
}
