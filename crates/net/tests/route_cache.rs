//! Route-cache invalidation tests: a scripted crash/recover/partition/heal
//! scenario must behave *identically* with the cache on and with the cache
//! disabled (fresh BFS per send).  "Identically" is strict: every surfaced
//! event in the same order, every byte/message counter equal.  The only
//! permitted difference is the routing work itself — that is the point of
//! the cache.

use tacoma_net::{
    Duration, Event, LinkSpec, SendOptions, SimNet, SimTime, Topology, TransportKind,
};
use tacoma_util::{DetRng, SiteId};

/// Drives one scripted run and returns every surfaced event plus the final
/// counters, so two runs can be compared wholesale.
fn run_scenario(cached: bool) -> (Vec<Event>, Vec<u64>, Vec<Event>) {
    let topology = Topology::ring_of_cliques(4, 4, LinkSpec::lan(), LinkSpec::wan());
    let sites = topology.site_count();
    let mut net = SimNet::new(topology);
    net.set_route_cache(cached);

    let mut rng = DetRng::new(0xCAFE);
    let send = |net: &mut SimNet, from: u32, to: u32| {
        let _ = net.send(SendOptions {
            from: SiteId(from),
            to: SiteId(to),
            payload: vec![0xAB; 64],
            kind: 7,
            transport: TransportKind::Tcp,
            custody: false,
        });
    };
    let drain = |net: &mut SimNet| -> Vec<Event> {
        let mut events = Vec::new();
        while let Some(ev) = net.step() {
            events.push(ev);
        }
        events
    };

    let mut events = Vec::new();
    // Phase 1: healthy traffic, random pairs (repeated, so the cache works).
    let pairs: Vec<(u32, u32)> = (0..24)
        .map(|_| {
            (
                rng.next_below(sites as u64) as u32,
                rng.next_below(sites as u64) as u32,
            )
        })
        .collect();
    for &(from, to) in pairs.iter().chain(pairs.iter()) {
        send(&mut net, from, to);
    }
    events.extend(drain(&mut net));

    // Phase 2: crash two sites (one gateway, one member), same traffic.
    net.crash_now(SiteId(0));
    net.crash_now(SiteId(5));
    for &(from, to) in &pairs {
        send(&mut net, from, to);
    }
    events.extend(drain(&mut net));

    // Phase 3: recover, partition cliques {0,1} away from {2,3}, traffic.
    net.recover_now(SiteId(0));
    net.recover_now(SiteId(5));
    let group: Vec<SiteId> = (0..8).map(SiteId).collect();
    net.partition(&group);
    for &(from, to) in &pairs {
        send(&mut net, from, to);
    }
    events.extend(drain(&mut net));

    // Phase 4: heal, one more crash *while* messages are in flight.
    net.heal_partition();
    for &(from, to) in &pairs {
        send(&mut net, from, to);
    }
    net.crash_now(SiteId(9));
    events.extend(drain(&mut net));

    // Phase 5: scheduled failure plan (timed outage) interleaved with timers.
    let plan = tacoma_net::FailurePlan::none().outage(
        SiteId(4),
        net.now() + Duration::from_millis(1),
        Duration::from_millis(5),
    );
    net.apply_failure_plan(&plan);
    net.schedule_timer(SiteId(1), Duration::from_millis(2), 42);
    for &(from, to) in &pairs {
        send(&mut net, from, to);
    }
    let tail = drain(&mut net);

    let counters = vec![
        net.metrics().total_bytes().get(),
        net.metrics().total_messages(),
        net.metrics().total_hops(),
        net.metrics().dropped_messages(),
        net.now().0,
        net.route_epoch(),
    ];
    (events, counters, tail)
}

#[test]
fn cached_and_uncached_runs_are_byte_identical() {
    let (cached_events, cached_counters, cached_tail) = run_scenario(true);
    let (ref_events, ref_counters, ref_tail) = run_scenario(false);
    assert_eq!(
        cached_events.len(),
        ref_events.len(),
        "event counts diverge"
    );
    for (i, (a, b)) in cached_events.iter().zip(&ref_events).enumerate() {
        assert_eq!(a, b, "event {i} diverges between cached and uncached runs");
    }
    assert_eq!(cached_tail, ref_tail, "tail phase diverges");
    assert_eq!(
        cached_counters, ref_counters,
        "metrics diverge (bytes, messages, hops, drops, clock, epoch)"
    );
}

#[test]
fn the_cache_actually_saves_routing_work_in_that_scenario() {
    // Re-run the cached scenario and check the cache earned its keep: the
    // scenario sends each pair set multiple times per epoch.
    let topology = Topology::ring_of_cliques(4, 4, LinkSpec::lan(), LinkSpec::wan());
    let mut net = SimNet::new(topology);
    for round in 0..6 {
        for s in 1..16u32 {
            let _ = net.send(SendOptions {
                from: SiteId(s),
                to: SiteId(0),
                payload: vec![round; 32],
                kind: 1,
                transport: TransportKind::Tcp,
                custody: false,
            });
        }
        while net.step().is_some() {}
    }
    let (queries, bfs) = net.routing_work();
    assert_eq!(queries, 90);
    assert_eq!(bfs, 15, "one BFS per pair, reused across all six rounds");
}

#[test]
fn cache_disabled_reference_still_detours_after_failures() {
    // Sanity-check the reference path exercises the same liveness rules.
    let mut net = SimNet::new(Topology::ring(6, LinkSpec::default()));
    net.set_route_cache(false);
    net.crash_now(SiteId(1));
    net.send(SendOptions {
        from: SiteId(0),
        to: SiteId(2),
        payload: vec![1],
        kind: 1,
        transport: TransportKind::Tcp,
        custody: false,
    })
    .unwrap();
    match net.step().unwrap() {
        Event::Message(m) => assert_eq!(m.hops, 4, "long way around the dead site"),
        other => panic!("unexpected {other:?}"),
    }
    assert!(net.now() > SimTime::ZERO);
}
