//! Property tests for the open-arrival workload generator.
//!
//! The overload experiments (E18/E19) replay generated arrival streams into
//! the deterministic simulator, so the generator itself must be deterministic
//! from its seed — byte-identical traces on every call, independent of how
//! many harness jobs or event shards later consume them — and its statistics
//! must be trustworthy: bounded-Pareto sizes inside their bounds, and the
//! rate curve's exact integral matching what the thinning sampler realises.

use proptest::prelude::*;
use tacoma_net::time::{Duration, SimTime};
use tacoma_net::workload::{OpenWorkload, RateCurve, SizeDist};
use tacoma_util::{DetRng, SiteId};

fn workload(seed: u64, sites: u32, base_hz: f64, weights: Vec<f64>) -> OpenWorkload {
    OpenWorkload {
        sites,
        horizon: Duration::from_secs(5),
        curve: RateCurve::diurnal(base_hz, weights, Duration::from_secs(2)),
        crowds: Vec::new(),
        sizes: SizeDist::default(),
        users: 1_000_000,
        seed,
    }
}

proptest! {
    /// Same seed, same configuration: the rendered event trace is
    /// byte-identical on every call.  This is the generator's half of the
    /// `--jobs`/`--shards` determinism contract — the stream handed to the
    /// simulator never depends on who asks or how often.
    #[test]
    fn same_seed_renders_byte_identical_traces(
        seed in 0u64..1_000_000,
        sites in 1u32..12,
        base_hz_deci in 10u64..600,
    ) {
        let w = workload(seed, sites, base_hz_deci as f64 / 10.0, vec![0.5, 1.0, 1.5]);
        let a = OpenWorkload::render_trace(&w.generate());
        let b = OpenWorkload::render_trace(&w.generate());
        prop_assert_eq!(a.as_bytes(), b.as_bytes());
    }

    /// Arrivals come out sorted by (time, site) with every field in range —
    /// the order the simulator's timer pre-load relies on.
    #[test]
    fn arrivals_are_sorted_and_in_range(
        seed in 0u64..1_000_000,
        sites in 1u32..10,
    ) {
        let w = workload(seed, sites, 20.0, vec![1.0, 2.0]);
        let arrivals = w.generate();
        for pair in arrivals.windows(2) {
            prop_assert!((pair[0].at, pair[0].site) <= (pair[1].at, pair[1].site));
        }
        for a in &arrivals {
            prop_assert!(a.site.0 < sites);
            prop_assert!(a.at.micros() < w.horizon.micros());
            prop_assert!(a.user < w.users);
            prop_assert!(a.bytes >= w.sizes.min_bytes && a.bytes <= w.sizes.max_bytes);
        }
    }

    /// Bounded-Pareto samples respect their bounds for arbitrary shapes and
    /// intervals, including degenerate ones.
    #[test]
    fn bounded_pareto_stays_in_bounds(
        seed in 0u64..1_000_000,
        alpha_milli in 200u64..3_000,
        lo in 1u64..10_000,
        span in 0u64..100_000,
    ) {
        let dist = SizeDist {
            alpha: alpha_milli as f64 / 1000.0,
            min_bytes: lo,
            max_bytes: lo + span,
        };
        let mut rng = DetRng::new(seed);
        for _ in 0..200 {
            let s = dist.sample(&mut rng);
            prop_assert!(s >= dist.min_bytes && s <= dist.max_bytes);
        }
    }

    /// The rate curve's exact integral predicts the realised arrival count:
    /// thinning a Poisson process at the curve keeps the mean, so the count
    /// must land within a generous statistical band of the expectation.
    #[test]
    fn realized_arrivals_match_the_curve_integral(
        seed in 0u64..1_000_000,
        base_hz in 10u64..80,
        w0 in 1u64..4,
        w1 in 0u64..4,
    ) {
        let w = workload(seed, 4, base_hz as f64, vec![w0 as f64, w1 as f64]);
        let expected_per_site = w.curve.expected_arrivals(w.horizon);
        let expected = expected_per_site * 4.0;
        let got = w.generate().len() as f64;
        // ±6 sigma of a Poisson(expected) plus slack for tiny expectations.
        let tolerance = 6.0 * expected.sqrt() + 12.0;
        prop_assert!(
            (got - expected).abs() <= tolerance,
            "expected ~{expected:.0} arrivals, generated {got} (tolerance {tolerance:.0})"
        );
    }

    /// Per-site sub-streams are independent: adding a site never perturbs
    /// the arrivals of existing sites.
    #[test]
    fn adding_a_site_never_perturbs_existing_streams(
        seed in 0u64..1_000_000,
        sites in 1u32..8,
    ) {
        let small = workload(seed, sites, 15.0, vec![1.0]);
        let large = workload(seed, sites + 1, 15.0, vec![1.0]);
        let from_small: Vec<_> = small.generate();
        let from_large: Vec<_> = large
            .generate()
            .into_iter()
            .filter(|a| a.site.0 < sites)
            .collect();
        prop_assert_eq!(from_small, from_large);
    }
}

#[test]
fn flash_crowd_multiplies_only_its_window() {
    use tacoma_net::workload::FlashCrowd;
    let quiet = workload(9, 4, 20.0, vec![1.0]);
    let mut crowded = quiet.clone();
    crowded.crowds = vec![FlashCrowd {
        first_site: SiteId(1),
        sites: 2,
        start: SimTime(1_000_000),
        duration: Duration::from_secs(1),
        multiplier: 10.0,
    }];
    let base = quiet.generate();
    let with_crowd = crowded.generate();
    let count = |arrivals: &[tacoma_net::workload::Arrival], site: u32, lo: u64, hi: u64| {
        arrivals
            .iter()
            .filter(|a| a.site.0 == site && a.at.0 >= lo && a.at.0 < hi)
            .count()
    };
    // Inside the window at a crowd site: roughly 10x the arrivals.
    let burst = count(&with_crowd, 1, 1_000_000, 2_000_000);
    let calm = count(&base, 1, 1_000_000, 2_000_000);
    assert!(
        burst > calm * 4,
        "crowd window must spike ({burst} vs {calm})"
    );
    // Outside the crowd's sites the stream realises the same rate process
    // (thinning at a higher peak resamples, so compare counts, not traces).
    let out_crowd = count(&with_crowd, 0, 0, 5_000_000) as f64;
    let out_base = count(&base, 0, 0, 5_000_000) as f64;
    assert!(
        (out_crowd - out_base).abs() <= 6.0 * out_base.sqrt() + 12.0,
        "non-crowd site rate must be unchanged ({out_crowd} vs {out_base})"
    );
}
