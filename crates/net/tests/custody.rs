//! Integration suite for the store-and-forward custody subsystem: parking,
//! epoch-driven re-delivery, TTL expiry, bounded queues, stable storage
//! across custodian crashes, and message-accounting conservation under churn
//! (every accepted message lands in exactly one terminal bucket).

use tacoma_net::{
    CustodyConfig, Duration, Event, FailurePlan, LinkSpec, NetError, SendOptions, SimNet, SiteId,
    Topology, TransportKind,
};

fn custody_net(topology: Topology, capacity: usize, ttl: Duration) -> SimNet {
    let mut net = SimNet::new(topology);
    net.set_custody(CustodyConfig { capacity, ttl });
    net
}

fn send(net: &mut SimNet, from: u32, to: u32, bytes: usize, custody: bool) -> Result<(), NetError> {
    net.send(SendOptions {
        from: SiteId(from),
        to: SiteId(to),
        payload: vec![0u8; bytes],
        kind: 1,
        transport: TransportKind::Tcp,
        custody,
    })
    .map(|_| ())
}

/// Drains the event queue, returning (delivered, expired) counts.
fn drain(net: &mut SimNet) -> (u64, u64) {
    let (mut delivered, mut expired) = (0, 0);
    while let Some(event) = net.step() {
        match event {
            Event::Message(_) => delivered += 1,
            Event::MessageExpired(_) => expired += 1,
            _ => {}
        }
    }
    (delivered, expired)
}

#[test]
fn partitioned_send_parks_and_delivers_after_heal() {
    let mut net = custody_net(
        Topology::full_mesh(4, LinkSpec::default()),
        8,
        Duration::from_secs(10),
    );
    net.partition(&[SiteId(0), SiteId(1)]);
    send(&mut net, 0, 3, 100, true).expect("custody send is accepted");
    assert_eq!(net.custody_backlog(), 1);
    assert_eq!(net.custody_backlog_at(SiteId(0)), 1, "parked at the sender");
    assert_eq!(net.metrics().custody_parked(), 1);
    assert!(net.metrics().custody_peak_bytes() >= 100);
    assert!(
        net.peek_time().is_some(),
        "a TTL alarm keeps the queue alive"
    );

    net.heal_partition();
    assert_eq!(net.custody_backlog(), 0, "heal flushes the queue");
    let (delivered, expired) = drain(&mut net);
    assert_eq!((delivered, expired), (1, 0));
    assert_eq!(net.metrics().custody_delivered(), 1);
    assert_eq!(net.metrics().custody_stored_bytes(), 0);
}

#[test]
fn without_custody_flag_the_send_still_fails_fast() {
    let mut net = custody_net(
        Topology::full_mesh(3, LinkSpec::default()),
        8,
        Duration::from_secs(10),
    );
    net.partition(&[SiteId(0)]);
    let err = send(&mut net, 0, 2, 10, false).unwrap_err();
    assert_eq!(
        err,
        NetError::Unreachable {
            from: SiteId(0),
            to: SiteId(2)
        }
    );
    // And the custody flag without a store is equally fail-fast.
    let mut plain = SimNet::new(Topology::full_mesh(3, LinkSpec::default()));
    plain.partition(&[SiteId(0)]);
    assert!(send(&mut plain, 0, 2, 10, true).is_err());
}

#[test]
fn ttl_expiry_surfaces_a_terminal_event() {
    let mut net = custody_net(
        Topology::full_mesh(3, LinkSpec::default()),
        8,
        Duration::from_millis(5),
    );
    net.partition(&[SiteId(0)]);
    send(&mut net, 0, 2, 64, true).unwrap();
    let event = net.step().expect("the TTL alarm fires");
    match event {
        Event::MessageExpired(exp) => {
            assert_eq!(exp.from, SiteId(0));
            assert_eq!(exp.to, SiteId(2));
            assert_eq!(exp.expired_at.micros(), 5_000);
        }
        other => panic!("expected expiry, got {other:?}"),
    }
    assert_eq!(net.metrics().custody_expired(), 1);
    assert_eq!(net.custody_backlog(), 0);
    // Healing afterwards delivers nothing: the message is gone for good.
    net.heal_partition();
    assert_eq!(drain(&mut net), (0, 0));
}

#[test]
fn bounded_queue_rejects_overflow() {
    let mut net = custody_net(
        Topology::full_mesh(3, LinkSpec::default()),
        2,
        Duration::from_secs(10),
    );
    net.partition(&[SiteId(0)]);
    send(&mut net, 0, 2, 10, true).unwrap();
    send(&mut net, 0, 2, 10, true).unwrap();
    let err = send(&mut net, 0, 2, 10, true).unwrap_err();
    assert_eq!(err, NetError::CustodyFull { at: SiteId(0) });
    assert_eq!(net.metrics().custody_rejected(), 1);
    assert_eq!(net.custody_backlog(), 2);
    net.heal_partition();
    assert_eq!(drain(&mut net), (2, 0));
}

#[test]
fn message_forwards_to_the_last_reachable_hop() {
    // Chain 0-1-2-3 with the far end down: the message is carried as far as
    // site 2 and parked there, charging bytes for the two hops it travelled.
    let mut topology = Topology::empty(4);
    topology.add_link(SiteId(0), SiteId(1), LinkSpec::default());
    topology.add_link(SiteId(1), SiteId(2), LinkSpec::default());
    topology.add_link(SiteId(2), SiteId(3), LinkSpec::default());
    let mut net = custody_net(topology, 8, Duration::from_secs(10));
    net.crash_now(SiteId(3));
    send(&mut net, 0, 3, 500, true).unwrap();
    assert_eq!(net.custody_backlog_at(SiteId(2)), 1, "parked at site 2");
    assert!(
        net.metrics().total_hops() == 2 && net.metrics().total_bytes().get() > 0,
        "the partial leg charges its hops"
    );
    net.recover_now(SiteId(3));
    let (delivered, expired) = drain(&mut net);
    assert_eq!((delivered, expired), (1, 0));
    assert_eq!(net.metrics().total_hops(), 3, "one more hop to finish");
}

#[test]
fn dead_destination_parks_instead_of_failing() {
    let mut net = custody_net(
        Topology::full_mesh(2, LinkSpec::default()),
        8,
        Duration::from_secs(10),
    );
    net.crash_now(SiteId(1));
    send(&mut net, 0, 1, 32, true).expect("custody absorbs the dead site");
    assert_eq!(net.custody_backlog(), 1);
    net.recover_now(SiteId(1));
    assert_eq!(drain(&mut net), (1, 0));
}

#[test]
fn in_flight_crash_reparks_and_redelivers() {
    let mut net = custody_net(
        Topology::full_mesh(2, LinkSpec::default()),
        8,
        Duration::from_secs(10),
    );
    // The destination suffers an outage that starts while the message is in
    // flight (a 64-byte TCP send takes well over a microsecond) and ends
    // before the TTL.
    net.apply_failure_plan(&FailurePlan::none().outage(
        SiteId(1),
        tacoma_net::SimTime(1),
        Duration::from_millis(100),
    ));
    send(&mut net, 0, 1, 64, true).unwrap();
    assert_eq!(net.step(), Some(Event::SiteCrashed(SiteId(1))));
    // The delivery attempt finds the site dead and re-parks at the origin;
    // the next surfaced event is the recovery, whose epoch bump flushes.
    assert_eq!(net.step(), Some(Event::SiteRecovered(SiteId(1))));
    assert_eq!(
        net.metrics().dropped_messages(),
        0,
        "custody re-parks instead of dropping"
    );
    assert_eq!(net.metrics().custody_parked(), 1);
    assert_eq!(drain(&mut net), (1, 0));
    assert_eq!(net.metrics().custody_delivered(), 1);
    assert_eq!(net.custody_backlog(), 0);
}

#[test]
fn custodian_crash_preserves_the_stable_queue() {
    // Park at sender 0, then crash the custodian itself: the queue survives
    // (stable storage) and flushes once the custodian recovers.
    let mut net = custody_net(
        Topology::full_mesh(3, LinkSpec::default()),
        8,
        Duration::from_secs(10),
    );
    net.partition(&[SiteId(0)]);
    send(&mut net, 0, 2, 48, true).unwrap();
    net.crash_now(SiteId(0));
    net.heal_partition();
    assert_eq!(
        net.custody_backlog_at(SiteId(0)),
        1,
        "a down custodian holds its queue"
    );
    net.recover_now(SiteId(0));
    assert_eq!(drain(&mut net), (1, 0));
}

#[test]
fn conservation_under_partition_and_crash_churn() {
    // Every accepted message must land in exactly one terminal bucket:
    // delivered, dropped (never, with custody), or expired.
    let mut net = custody_net(
        Topology::ring(8, LinkSpec::default()),
        16,
        Duration::from_millis(50),
    );
    let mut accepted: u64 = 0;
    for round in 0..6u32 {
        let group: Vec<SiteId> = (0..4).map(SiteId).collect();
        net.partition(&group);
        for s in 0..8u32 {
            if net.is_up(SiteId(s)) && send(&mut net, s, (s + 4) % 8, 20, true).is_ok() {
                accepted += 1;
            }
        }
        let victim = SiteId(1 + round % 7);
        net.crash_now(victim);
        if round % 2 == 0 {
            net.heal_partition();
        }
        // Let some traffic land mid-churn.
        for _ in 0..5 {
            if net.step().is_none() {
                break;
            }
        }
        net.heal_partition();
        net.recover_now(victim);
    }
    drain(&mut net);
    let m = net.metrics();
    assert_eq!(net.custody_backlog(), 0, "drained runs leave no backlog");
    assert_eq!(m.dropped_messages(), 0, "custody never drops");
    assert_eq!(
        m.total_messages(),
        m.delivered_messages() + m.custody_expired(),
        "conservation: accepted == delivered + expired"
    );
    assert_eq!(m.total_messages(), accepted);
    assert!(
        m.custody_parked() > 0,
        "the churn actually exercised custody"
    );
}

#[test]
fn custody_runs_are_deterministic() {
    let run = || {
        let mut net = custody_net(
            Topology::ring(6, LinkSpec::default()),
            4,
            Duration::from_millis(20),
        );
        net.partition(&[SiteId(0), SiteId(1), SiteId(2)]);
        for s in 0..6u32 {
            let _ = send(&mut net, s, (s + 3) % 6, 30, true);
        }
        net.crash_now(SiteId(4));
        net.heal_partition();
        let (delivered, expired) = drain(&mut net);
        (
            delivered,
            expired,
            net.metrics().total_bytes().get(),
            net.metrics().custody_parked(),
            net.now().micros(),
        )
    };
    assert_eq!(run(), run());
}
