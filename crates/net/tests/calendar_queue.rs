//! Property tests pitting [`CalendarQueue`] against a plain `BinaryHeap`
//! reference model.
//!
//! The simulator's determinism contract hangs on the queue popping the exact
//! total order on `(time, key)` — including FIFO order at equal timestamps,
//! which callers get by assigning keys from a monotone sequence counter.  The
//! tests below replay random interleaved push/pop traces against a model heap
//! and demand identical `(time, key, value)` streams, over random (often
//! degenerate) wheel geometries so bucket wrap, overflow migration, and late
//! pushes all get exercised.

use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tacoma_net::calendar::CalendarQueue;
use tacoma_net::time::SimTime;

/// The reference model: a binary heap over the same `(time, key, value)`
/// triples, ordered the way the simulator needs — `(time, key)` ascending.
#[derive(Default)]
struct ModelHeap {
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
}

impl ModelHeap {
    fn push(&mut self, at: SimTime, key: u64, value: u32) {
        self.heap.push(Reverse((at, key, value)));
    }

    fn pop(&mut self) -> Option<(SimTime, u64, u32)> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    fn peek(&self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|&Reverse((at, key, _))| (at, key))
    }
}

proptest! {
    /// Interleaved pushes and pops agree with the model heap step by step:
    /// same pops, same peeks, same lengths, on an arbitrary small geometry.
    #[test]
    fn interleaved_trace_matches_binary_heap(
        bucket_width in 1u64..900,
        slots in 1usize..48,
        ops in proptest::collection::vec((any::<bool>(), 0u64..6_000), 1..300),
    ) {
        let mut queue = CalendarQueue::with_geometry(bucket_width, slots);
        let mut model = ModelHeap::default();
        let mut seq = 0u64;
        for &(is_pop, time) in &ops {
            if is_pop {
                let got = queue.pop();
                let want = model.pop();
                prop_assert_eq!(got, want);
            } else {
                // Keys are assigned monotonically, exactly as the simulator
                // does — this is what makes (time, key) order equal FIFO
                // order at equal timestamps.
                queue.push(SimTime(time), seq, seq as u32);
                model.push(SimTime(time), seq, seq as u32);
                seq += 1;
            }
            prop_assert_eq!(queue.peek(), model.peek());
            prop_assert_eq!(queue.len(), model.heap.len());
            prop_assert_eq!(queue.is_empty(), model.heap.is_empty());
        }
        // Drain whatever is left and require identical tails.
        loop {
            let got = queue.pop();
            let want = model.pop();
            prop_assert_eq!(got, want);
            if want.is_none() {
                break;
            }
        }
    }

    /// Equal-timestamp events pop in insertion (FIFO) order: drain order is
    /// exactly the push order after a stable sort on time alone.
    #[test]
    fn equal_timestamps_pop_fifo(
        bucket_width in 1u64..300,
        slots in 1usize..16,
        // Few distinct timestamps over many events forces heavy collisions.
        times in proptest::collection::vec(0u64..8, 1..120),
    ) {
        let mut queue = CalendarQueue::with_geometry(bucket_width, slots);
        for (i, &t) in times.iter().enumerate() {
            queue.push(SimTime(t * 1_000), i as u64, i as u32);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().map(|&t| t * 1_000).zip(0..).collect();
        // Stable sort: ties keep insertion order — the FIFO contract.
        expected.sort_by_key(|&(t, _)| t);
        let mut drained = Vec::new();
        while let Some((at, key, value)) = queue.pop() {
            prop_assert_eq!(key as u32, value);
            drained.push((at.micros(), key as usize));
        }
        prop_assert_eq!(drained, expected);
    }

    /// Pushes earlier than an already-popped timestamp (the conservative
    /// engine never emits these, but `SimNet` clients may) still pop first,
    /// in agreement with the model.
    #[test]
    fn late_pushes_agree_with_the_model(
        bucket_width in 1u64..200,
        slots in 1usize..8,
        rounds in proptest::collection::vec((0u64..500, 0u64..500), 1..60),
    ) {
        let mut queue = CalendarQueue::with_geometry(bucket_width, slots);
        let mut model = ModelHeap::default();
        let mut seq = 0u64;
        for &(a, b) in &rounds {
            // Push one "future" event, pop the front, then push an event
            // that may land before the popped time.
            queue.push(SimTime(a + 500), seq, 0);
            model.push(SimTime(a + 500), seq, 0);
            seq += 1;
            prop_assert_eq!(queue.pop(), model.pop());
            queue.push(SimTime(b), seq, 1);
            model.push(SimTime(b), seq, 1);
            seq += 1;
            prop_assert_eq!(queue.peek(), model.peek());
        }
        loop {
            let got = queue.pop();
            let want = model.pop();
            prop_assert_eq!(got, want);
            if want.is_none() {
                break;
            }
        }
    }
}
