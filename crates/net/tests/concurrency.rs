//! Concurrency tests for the sharded engine — the ThreadSanitizer target.
//!
//! CI's nightly `tsan` job runs exactly this test binary with
//! `RUSTFLAGS=-Zsanitizer=thread`, so everything here is written to push the
//! real multi-threaded code paths: windows where several shards execute
//! events concurrently, barrier merges of cross-shard outboxes, and repeated
//! runs on fresh thread scopes.  The assertions double as determinism checks:
//! whatever the interleaving, every run must produce the same `Outcome`.

use tacoma_net::parallel::{run_gossip, run_gossip_reference, GossipConfig};

/// A small-but-real workload: enough cliques that every shard count under
/// test owns several, enough cross-clique traffic that shards exchange
/// messages every window.
fn config(seed: u64) -> GossipConfig {
    GossipConfig {
        cliques: 12,
        clique_size: 6,
        rounds: 24,
        fanout: 2,
        cross_permille: 120,
        payload: 256,
        interval_us: 2_000,
        seed,
    }
}

#[test]
fn sharded_runs_match_the_reference_at_every_shard_count() {
    let reference = run_gossip_reference(config(7));
    assert!(reference.events > 0 && reference.delivered > 0);
    for shards in [1, 2, 3, 4, 8] {
        let outcome = run_gossip(config(7), shards);
        assert_eq!(
            outcome, reference,
            "{shards} shard(s) diverged from the single-threaded reference"
        );
    }
}

#[test]
fn repeated_parallel_runs_are_stable_across_interleavings() {
    // Ten back-to-back 4-shard runs: any data race that perturbs event order
    // shows up as a digest mismatch even when TSan is not compiled in.
    let first = run_gossip(config(21), 4);
    for _ in 0..9 {
        assert_eq!(run_gossip(config(21), 4), first);
    }
}

#[test]
fn concurrent_simulations_do_not_interfere() {
    // Two independent sharded simulations running on overlapping thread
    // pools must not share any mutable state.
    let (a, b) = std::thread::scope(|scope| {
        let a = scope.spawn(|| run_gossip(config(5), 4));
        let b = scope.spawn(|| run_gossip(config(6), 4));
        (a.join().expect("run a"), b.join().expect("run b"))
    });
    assert_eq!(a, run_gossip_reference(config(5)));
    assert_eq!(b, run_gossip_reference(config(6)));
    assert_ne!(a.digest, b.digest, "different seeds must differ");
}

#[test]
fn more_shards_than_cliques_degrade_gracefully() {
    // Shard counts beyond the clique count clamp instead of spawning idle
    // threads with empty site ranges.
    let reference = run_gossip_reference(config(9));
    assert_eq!(run_gossip(config(9), 64), reference);
}
