//! Quick throughput probe for the sharded engine (dev tool, not a test).

use std::time::Instant;
use tacoma_net::parallel::{run_gossip, run_gossip_reference, GossipConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let cliques: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(512);
    let rounds: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let cross: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(100);
    let cfg = GossipConfig {
        cliques,
        clique_size: 8,
        rounds,
        fanout: 2,
        cross_permille: cross,
        payload: 512,
        interval_us: 2_000,
        seed: 7,
    };
    println!("sites = {}", cfg.sites());

    let t0 = Instant::now();
    let reference = run_gossip_reference(cfg);
    let ref_secs = t0.elapsed().as_secs_f64();
    println!(
        "reference heap: {} events in {:.3}s = {:.0} ev/s (digest {:016x})",
        reference.events,
        ref_secs,
        reference.events as f64 / ref_secs,
        reference.digest
    );

    for shards in [1u32, 2, 4, 8] {
        let t0 = Instant::now();
        let out = run_gossip(cfg, shards);
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(out, reference, "shards = {shards}");
        println!(
            "sharded x{shards}: {} events in {:.3}s = {:.0} ev/s  speedup {:.2}x",
            out.events,
            secs,
            out.events as f64 / secs,
            ref_secs / secs
        );
    }
}
