//! Open-arrival workload generation: users as rate processes.
//!
//! The closed workloads of E1–E17 inject a fixed batch and drain to zero;
//! an open system never drains.  This module generates deterministic
//! per-site arrival streams — "millions of users" modeled as rates, never as
//! resident objects — with three realistic ingredients:
//!
//! * **heavy-tailed sizes**: job/mail payloads drawn from a bounded Pareto
//!   ([`tacoma_util::DetRng::bounded_pareto`]), so most arrivals are small
//!   but the tail carries most of the bytes;
//! * **diurnal rate curves**: a piecewise-constant multiplier over a
//!   configurable "day", exact to integrate (no transcendental functions, so
//!   traces are bit-stable everywhere);
//! * **regional flash crowds**: a multiplicative burst over a site range for
//!   a window — the overload E18/E19 drive against the backpressure layer.
//!
//! Generation is a *pure function* of the [`OpenWorkload`] spec: every site's
//! stream comes from its own [`tacoma_util::DetRng::derive`]d sub-stream, so
//! the merged trace is byte-identical regardless of how many harness workers
//! (`--jobs`) or event shards (`--shards`) later consume it.  Arrivals of a
//! non-homogeneous Poisson process are produced by thinning a homogeneous
//! process at the peak rate.

use crate::time::{Duration, SimTime};
use tacoma_util::{DetRng, SiteId};

/// A piecewise-constant diurnal rate multiplier.
///
/// The "day" of length `day` is split into `weights.len()` equal slots; the
/// instantaneous arrival rate at time `t` is `base_hz *
/// weights[slot(t mod day)]`.  Piecewise-constant slots keep the curve's
/// integral exact, which the rate-curve property test exploits.
#[derive(Debug, Clone, PartialEq)]
pub struct RateCurve {
    /// Baseline arrival rate per site, in arrivals per simulated second.
    pub base_hz: f64,
    /// Per-slot multipliers over one day (all must be ≥ 0; empty means a
    /// flat multiplier of 1).
    pub weights: Vec<f64>,
    /// Length of one diurnal cycle.
    pub day: Duration,
}

impl RateCurve {
    /// A flat curve: `base_hz` arrivals per second, no diurnal shape.
    pub fn flat(base_hz: f64) -> Self {
        RateCurve {
            base_hz,
            weights: Vec::new(),
            day: Duration::from_secs(1),
        }
    }

    /// A curve with explicit slot weights over a day of the given length.
    pub fn diurnal(base_hz: f64, weights: Vec<f64>, day: Duration) -> Self {
        assert!(!weights.is_empty(), "diurnal curve needs at least one slot");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "diurnal weights must be finite and non-negative"
        );
        assert!(day.micros() > 0, "diurnal day must be positive");
        RateCurve {
            base_hz,
            weights,
            day,
        }
    }

    /// The multiplier in effect at `t` (1.0 for a flat curve).
    pub fn multiplier_at(&self, t: SimTime) -> f64 {
        if self.weights.is_empty() {
            return 1.0;
        }
        let day_us = self.day.micros();
        let into_day = t.micros() % day_us;
        let slot = (into_day as u128 * self.weights.len() as u128 / day_us as u128) as usize;
        self.weights[slot.min(self.weights.len() - 1)]
    }

    /// The instantaneous rate (arrivals/sec) at `t`.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        self.base_hz * self.multiplier_at(t)
    }

    /// The largest multiplier anywhere on the curve.
    pub fn peak_multiplier(&self) -> f64 {
        if self.weights.is_empty() {
            1.0
        } else {
            self.weights.iter().copied().fold(0.0, f64::max)
        }
    }

    /// Exact integral of the rate over `[0, horizon)`: the expected number of
    /// arrivals for one site (before any flash-crowd boost).
    pub fn expected_arrivals(&self, horizon: Duration) -> f64 {
        if self.weights.is_empty() {
            return self.base_hz * horizon.micros() as f64 / 1e6;
        }
        let day_us = self.day.micros() as f64;
        let slot_us = day_us / self.weights.len() as f64;
        let mut total_us = 0.0;
        let horizon_us = horizon.micros() as f64;
        let full_days = (horizon.micros() / self.day.micros()) as f64;
        let day_weight_us: f64 = self.weights.iter().map(|w| w * slot_us).sum();
        total_us += full_days * day_weight_us;
        // The trailing partial day, slot by slot.
        let mut rem = horizon_us - full_days * day_us;
        for w in &self.weights {
            if rem <= 0.0 {
                break;
            }
            let span = rem.min(slot_us);
            total_us += w * span;
            rem -= span;
        }
        self.base_hz * total_us / 1e6
    }
}

/// A regional flash crowd: a multiplicative rate boost over a contiguous
/// site range for a time window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowd {
    /// First site of the crowded region.
    pub first_site: SiteId,
    /// Number of sites in the region.
    pub sites: u32,
    /// When the crowd starts.
    pub start: SimTime,
    /// How long it lasts.
    pub duration: Duration,
    /// Rate multiplier while active (≥ 1 for a burst; < 1 models brown-outs).
    pub multiplier: f64,
}

impl FlashCrowd {
    /// Whether the crowd covers `site` at time `t`.
    pub fn covers(&self, site: SiteId, t: SimTime) -> bool {
        site >= self.first_site
            && site.0 < self.first_site.0 + self.sites
            && t >= self.start
            && t < self.start + self.duration
    }
}

/// Heavy-tailed payload size distribution: bounded Pareto over
/// `[min_bytes, max_bytes]` with shape `alpha`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeDist {
    /// Pareto shape (1.1–1.5 is the classic heavy-tail regime).
    pub alpha: f64,
    /// Smallest payload, bytes.
    pub min_bytes: u64,
    /// Largest payload, bytes.
    pub max_bytes: u64,
}

impl SizeDist {
    /// Draws one payload size.
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        rng.bounded_pareto(self.alpha, self.min_bytes as f64, self.max_bytes as f64) as u64
    }
}

impl Default for SizeDist {
    fn default() -> Self {
        SizeDist {
            alpha: 1.3,
            min_bytes: 256,
            max_bytes: 64 * 1024,
        }
    }
}

/// One generated arrival: when, where, and how big.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival time.
    pub at: SimTime,
    /// Site the arrival lands on.
    pub site: SiteId,
    /// Heavy-tailed payload size, bytes.
    pub bytes: u64,
    /// Deterministic per-arrival user id (a rate-process stand-in for "one
    /// of millions of users", never a resident object).
    pub user: u64,
}

/// Specification of an open-arrival workload.
#[derive(Debug, Clone)]
pub struct OpenWorkload {
    /// Sites receiving arrivals (`SiteId(0)..SiteId(sites)`).
    pub sites: u32,
    /// Generation horizon: arrivals are produced on `[0, horizon)`.
    pub horizon: Duration,
    /// Diurnal rate curve, per site.
    pub curve: RateCurve,
    /// Regional flash crowds, applied multiplicatively on top of the curve.
    pub crowds: Vec<FlashCrowd>,
    /// Payload size distribution.
    pub sizes: SizeDist,
    /// Size of the modeled user population (user ids are drawn uniformly
    /// from this space; the population itself is never materialized).
    pub users: u64,
    /// Master seed; each site derives an independent sub-stream.
    pub seed: u64,
}

impl OpenWorkload {
    /// The peak instantaneous rate any site can see (curve peak times the
    /// largest crowd multiplier), used as the thinning envelope.
    fn peak_rate(&self) -> f64 {
        let crowd_peak = self
            .crowds
            .iter()
            .map(|c| c.multiplier)
            .fold(1.0_f64, f64::max);
        self.curve.base_hz * self.curve.peak_multiplier() * crowd_peak
    }

    /// The instantaneous rate at `site` and `t`, crowds included.
    pub fn rate_at(&self, site: SiteId, t: SimTime) -> f64 {
        let mut rate = self.curve.rate_at(t);
        for crowd in &self.crowds {
            if crowd.covers(site, t) {
                rate *= crowd.multiplier;
            }
        }
        rate
    }

    /// Generates the merged arrival stream, sorted by `(time, site)`.
    ///
    /// Each site's stream is produced independently from
    /// `DetRng::new(seed).derive(site)` by thinning a homogeneous Poisson
    /// process at the peak rate, so the result is a pure function of the spec
    /// — harness workers and event shards cannot perturb it.
    pub fn generate(&self) -> Vec<Arrival> {
        let master = DetRng::new(self.seed);
        let peak = self.peak_rate();
        let mut all: Vec<Arrival> = Vec::new();
        if peak <= 0.0 {
            return all;
        }
        let mean_gap_us = 1e6 / peak;
        let horizon_us = self.horizon.micros();
        for s in 0..self.sites {
            let site = SiteId(s);
            let mut rng = master.derive(0x4F50_0000 + s as u64);
            let mut t_us = 0.0_f64;
            loop {
                t_us += rng.exponential(mean_gap_us);
                if !t_us.is_finite() || t_us >= horizon_us as f64 {
                    break;
                }
                let at = SimTime(t_us as u64);
                // Thinning: accept with probability rate(t)/peak.
                let accept = self.rate_at(site, at) / peak;
                if rng.chance(accept) {
                    let bytes = self.sizes.sample(&mut rng);
                    let user = rng.next_below(self.users.max(1));
                    all.push(Arrival {
                        at,
                        site,
                        bytes,
                        user,
                    });
                }
            }
        }
        all.sort_by_key(|a| (a.at, a.site));
        all
    }

    /// Renders an arrival stream as one line per arrival
    /// (`micros:site:bytes:user`) — the byte-identity surface the workload
    /// property tests diff across configurations.
    pub fn render_trace(arrivals: &[Arrival]) -> String {
        let mut out = String::new();
        for a in arrivals {
            out.push_str(&format!(
                "{}:{}:{}:{}\n",
                a.at.micros(),
                a.site.0,
                a.bytes,
                a.user
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> OpenWorkload {
        OpenWorkload {
            sites: 4,
            horizon: Duration::from_secs(20),
            curve: RateCurve::diurnal(10.0, vec![0.5, 1.0, 2.0, 1.0], Duration::from_secs(4)),
            crowds: vec![FlashCrowd {
                first_site: SiteId(2),
                sites: 2,
                start: SimTime(5_000_000),
                duration: Duration::from_secs(5),
                multiplier: 4.0,
            }],
            sizes: SizeDist::default(),
            users: 1_000_000,
            seed: 99,
        }
    }

    #[test]
    fn generation_is_deterministic_and_sorted() {
        let a = spec().generate();
        let b = spec().generate();
        assert_eq!(
            OpenWorkload::render_trace(&a),
            OpenWorkload::render_trace(&b)
        );
        assert!(a
            .windows(2)
            .all(|w| (w[0].at, w[0].site) <= (w[1].at, w[1].site)));
        assert!(!a.is_empty());
    }

    #[test]
    fn flash_crowd_boosts_only_its_region_and_window() {
        let arrivals = spec().generate();
        let window = |site: u32, lo_s: u64, hi_s: u64| {
            arrivals
                .iter()
                .filter(|a| {
                    a.site.0 == site
                        && a.at.micros() >= lo_s * 1_000_000
                        && a.at.micros() < hi_s * 1_000_000
                })
                .count()
        };
        // Site 3 is crowded on [5s, 10s); site 0 never is.  Compare the crowd
        // window against the same-length quiet window on each site.
        let crowded = window(3, 5, 10);
        let quiet_same_site = window(3, 12, 17);
        let uncrowded_site = window(0, 5, 10);
        assert!(
            crowded > 2 * quiet_same_site,
            "crowd window ({crowded}) should dwarf the quiet window ({quiet_same_site})"
        );
        assert!(
            crowded > 2 * uncrowded_site,
            "crowded site ({crowded}) should dwarf an uncrowded one ({uncrowded_site})"
        );
    }

    #[test]
    fn expected_arrivals_integrates_partial_days_exactly() {
        // 1 Hz base, weights [2, 0] over a 2 s day: rate is 2 Hz on the first
        // second of each day, 0 on the second.  Over 5 s: 2+0+2+0+2 = 6.
        let curve = RateCurve::diurnal(1.0, vec![2.0, 0.0], Duration::from_secs(2));
        let expected = curve.expected_arrivals(Duration::from_secs(5));
        assert!((expected - 6.0).abs() < 1e-9, "got {expected}");
        // Flat curve: rate * horizon.
        let flat = RateCurve::flat(3.0);
        assert!((flat.expected_arrivals(Duration::from_secs(7)) - 21.0).abs() < 1e-9);
    }

    #[test]
    fn empty_peak_produces_no_arrivals() {
        let mut s = spec();
        s.curve = RateCurve::flat(0.0);
        s.crowds.clear();
        assert!(s.generate().is_empty());
    }
}
