//! A Horus-flavoured process-group layer: membership views and multicast.
//!
//! The TACOMA prototype's third `rexec` implementation ran on Tcl/Horus,
//! using Horus \[vRHB94\] for group communication and fault tolerance.  The
//! fault-tolerance experiments here use this small stand-in: a process group
//! is a named set of sites with a monotonically numbered membership *view*;
//! joins, leaves and failures install new views, and a multicast in view `v`
//! is delivered only to the members of `v` that are still up.
//!
//! This is deliberately far simpler than Horus (no virtual-synchrony message
//! flushing), but it preserves the property the paper relies on: surviving
//! group members agree on who is in the group after a failure, which is what
//! rear guards need in order to decide who relaunches a lost agent.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use tacoma_util::SiteId;

/// Identifier of a process group.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupId(pub String);

impl GroupId {
    /// Creates a group id from anything string-like.
    pub fn new(name: impl Into<String>) -> Self {
        GroupId(name.into())
    }
}

/// Monotonically increasing view number.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ViewId(pub u64);

/// Membership-change events produced by the group layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum GroupEvent {
    /// A new view was installed.
    ViewChange {
        /// The group whose membership changed.
        group: GroupId,
        /// The new view number.
        view: ViewId,
        /// The members of the new view, in ascending order.
        members: Vec<SiteId>,
    },
}

/// A process group: a named membership set with numbered views.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessGroup {
    id: GroupId,
    view: ViewId,
    members: BTreeSet<SiteId>,
}

impl ProcessGroup {
    /// Creates a group with the given initial members (view 1).
    pub fn new(id: GroupId, members: impl IntoIterator<Item = SiteId>) -> Self {
        ProcessGroup {
            id,
            view: ViewId(1),
            members: members.into_iter().collect(),
        }
    }

    /// The group's identifier.
    pub fn id(&self) -> &GroupId {
        &self.id
    }

    /// The current view number.
    pub fn view(&self) -> ViewId {
        self.view
    }

    /// Current members in ascending order.
    pub fn members(&self) -> Vec<SiteId> {
        self.members.iter().copied().collect()
    }

    /// Number of current members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the group has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `site` is a member of the current view.
    pub fn contains(&self, site: SiteId) -> bool {
        self.members.contains(&site)
    }

    /// Adds a member, installing a new view; no-op if already present.
    pub fn join(&mut self, site: SiteId) -> Option<GroupEvent> {
        if self.members.insert(site) {
            Some(self.bump())
        } else {
            None
        }
    }

    /// Removes a member (leave or failure), installing a new view; no-op if absent.
    pub fn remove(&mut self, site: SiteId) -> Option<GroupEvent> {
        if self.members.remove(&site) {
            Some(self.bump())
        } else {
            None
        }
    }

    /// Removes every member for which `alive` is false, installing at most one
    /// new view.  Returns the event if anything changed.
    pub fn reconcile(&mut self, alive: impl Fn(SiteId) -> bool) -> Option<GroupEvent> {
        let before = self.members.len();
        self.members.retain(|&s| alive(s));
        if self.members.len() != before {
            Some(self.bump())
        } else {
            None
        }
    }

    /// The delivery set of a multicast sent from `sender` in the current view:
    /// every member except the sender.  (Whether the recipients are still up
    /// at delivery time is the simulator's business.)
    pub fn multicast_targets(&self, sender: SiteId) -> Vec<SiteId> {
        self.members
            .iter()
            .copied()
            .filter(|&m| m != sender)
            .collect()
    }

    /// The lowest-numbered member, conventionally the group coordinator.
    pub fn coordinator(&self) -> Option<SiteId> {
        self.members.iter().next().copied()
    }

    fn bump(&mut self) -> GroupEvent {
        self.view = ViewId(self.view.0 + 1);
        GroupEvent::ViewChange {
            group: self.id.clone(),
            view: self.view,
            members: self.members(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group() -> ProcessGroup {
        ProcessGroup::new(GroupId::new("guards"), [SiteId(0), SiteId(1), SiteId(2)])
    }

    #[test]
    fn initial_view() {
        let g = group();
        assert_eq!(g.view(), ViewId(1));
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
        assert!(g.contains(SiteId(1)));
        assert_eq!(g.coordinator(), Some(SiteId(0)));
        assert_eq!(g.id(), &GroupId::new("guards"));
    }

    #[test]
    fn join_and_remove_bump_views() {
        let mut g = group();
        let ev = g.join(SiteId(5)).unwrap();
        match ev {
            GroupEvent::ViewChange {
                view, ref members, ..
            } => {
                assert_eq!(view, ViewId(2));
                assert_eq!(members.len(), 4);
            }
        }
        assert!(g.join(SiteId(5)).is_none(), "duplicate join is a no-op");
        let ev = g.remove(SiteId(0)).unwrap();
        match ev {
            GroupEvent::ViewChange {
                view, ref members, ..
            } => {
                assert_eq!(view, ViewId(3));
                assert!(!members.contains(&SiteId(0)));
            }
        }
        assert!(g.remove(SiteId(0)).is_none());
        assert_eq!(g.coordinator(), Some(SiteId(1)));
    }

    #[test]
    fn reconcile_removes_dead_members_once() {
        let mut g = group();
        let ev = g.reconcile(|s| s != SiteId(1) && s != SiteId(2));
        assert!(ev.is_some());
        assert_eq!(g.members(), vec![SiteId(0)]);
        assert_eq!(
            g.view(),
            ViewId(2),
            "one view change for the whole reconcile"
        );
        assert!(g.reconcile(|_| true).is_none());
    }

    #[test]
    fn multicast_excludes_sender() {
        let g = group();
        assert_eq!(g.multicast_targets(SiteId(1)), vec![SiteId(0), SiteId(2)]);
        assert_eq!(g.multicast_targets(SiteId(9)).len(), 3);
    }

    #[test]
    fn empty_group_behaves() {
        let mut g = ProcessGroup::new(GroupId::new("empty"), []);
        assert!(g.is_empty());
        assert_eq!(g.coordinator(), None);
        assert!(g.reconcile(|_| false).is_none());
    }
}
