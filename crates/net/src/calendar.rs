//! A hierarchical calendar queue: the event queue behind [`crate::sim::SimNet`].
//!
//! A discrete-event simulator spends most of its time in its priority queue.
//! A single `BinaryHeap` costs `O(log n)` per operation over an array that at
//! 4096+ sites no longer fits in cache, and — worse for us — the heap's
//! internal order is not stable, so FIFO tie-breaking at equal timestamps has
//! to be bolted on with a sequence number anyway.  The calendar queue
//! ([Brown 1988]'s structure, here in the two-level "near wheel + overflow"
//! form) gets amortised `O(1)` inserts and pops by hashing events on their
//! timestamp into an array of time buckets:
//!
//! * a **near wheel** of `slots` buckets, each `bucket_width` microseconds
//!   wide, covering the window `[base, base + slots × width)` of imminent
//!   simulated time.  Each bucket is a tiny binary heap ordered by
//!   `(time, key)`, so a bucket rarely holds more than a handful of events
//!   and stays resident in L1;
//! * an **overflow heap** for events scheduled beyond the wheel's horizon.
//!   Whenever the wheel's base advances, overflow events whose time has come
//!   into the window migrate into their bucket (each event migrates at most
//!   once).
//!
//! Pop order is the total order on `(time, key)`.  Callers hand every event a
//! unique, monotonically assigned key, which makes ties at equal timestamps
//! pop in FIFO order — the determinism contract the simulator's reports are
//! built on.  The key type is generic so the serial simulator can use its
//! global sequence number while the sharded engine
//! ([`crate::parallel`]) uses shard-invariant `(origin site, origin seq)`
//! pairs.
//!
//! [Brown 1988]: "Calendar Queues: A Fast O(1) Priority Queue Implementation
//! for the Simulation Event Set Problem", CACM 31(10).

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Default bucket width: 512 µs spans the LAN-latency scale, so consecutive
/// deliveries land in neighbouring buckets instead of piling into one.
const DEFAULT_BUCKET_WIDTH_US: u64 = 512;

/// Default wheel size: 128 buckets × 512 µs ≈ a 65 ms window, wide enough to
/// keep WAN-latency deliveries (40 ms) on the wheel; only long timers and
/// failure-plan events take the overflow detour.
const DEFAULT_SLOTS: usize = 128;

/// One queued event.  Ordering ignores the value entirely: the total order is
/// `(time, key)`, and keys are unique by contract.
#[derive(Debug, Clone)]
struct Entry<K, V> {
    at: SimTime,
    key: K,
    value: V,
}

impl<K: Ord, V> PartialEq for Entry<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key
    }
}
impl<K: Ord, V> Eq for Entry<K, V> {}
impl<K: Ord, V> PartialOrd for Entry<K, V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<K: Ord, V> Ord for Entry<K, V> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, &self.key).cmp(&(other.at, &other.key))
    }
}

/// A two-level calendar queue ordered by `(time, key)`.
///
/// Keys must be unique across live entries; the caller assigns them (the
/// simulator uses a monotone sequence number, so equal-time events pop in
/// insertion order).
#[derive(Debug, Clone)]
pub struct CalendarQueue<K, V> {
    /// The near wheel: slot `b % slots.len()` holds exactly the events whose
    /// bucket number `b = time / bucket_width` lies in
    /// `[base_bucket, base_bucket + slots.len())`.
    slots: Vec<BinaryHeap<Reverse<Entry<K, V>>>>,
    /// Events beyond the wheel horizon (bucket number ≥ `base_bucket + slots`).
    overflow: BinaryHeap<Reverse<Entry<K, V>>>,
    /// Lowest bucket number the wheel currently represents.
    base_bucket: u64,
    bucket_width: u64,
    len: usize,
    /// `(time, key)` of the minimum entry, maintained on every mutation so
    /// `peek` is `O(1)` and needs only `&self`.
    front: Option<(SimTime, K)>,
}

impl<K: Ord + Copy, V> CalendarQueue<K, V> {
    /// An empty queue with the default geometry.
    pub fn new() -> Self {
        Self::with_geometry(DEFAULT_BUCKET_WIDTH_US, DEFAULT_SLOTS)
    }

    /// An empty queue with `slots` buckets of `bucket_width_us` microseconds.
    /// Exposed so tests can force tiny wheels and exercise wrap/migration.
    pub fn with_geometry(bucket_width_us: u64, slots: usize) -> Self {
        let bucket_width = bucket_width_us.max(1);
        let slots = slots.max(1);
        CalendarQueue {
            slots: (0..slots).map(|_| BinaryHeap::new()).collect(),
            overflow: BinaryHeap::new(),
            base_bucket: 0,
            bucket_width,
            len: 0,
            front: None,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `(time, key)` of the next event to pop, without popping it.
    pub fn peek(&self) -> Option<(SimTime, K)> {
        self.front
    }

    /// Bucket number of a timestamp (saturating, so `SimTime(u64::MAX)`
    /// alarms are representable).
    fn bucket_of(&self, at: SimTime) -> u64 {
        at.micros() / self.bucket_width
    }

    /// End of the wheel window as a bucket number (saturating).
    fn horizon(&self) -> u64 {
        self.base_bucket.saturating_add(self.slots.len() as u64)
    }

    /// Inserts an event.  `key` must be unique among live entries; events
    /// earlier than an already-popped timestamp are accepted (they pop next).
    pub fn push(&mut self, at: SimTime, key: K, value: V) {
        if self.front.is_none_or(|(ft, fk)| (at, key) < (ft, fk)) {
            self.front = Some((at, key));
        }
        let entry = Reverse(Entry { at, key, value });
        // Late events (bucket before the base) go into the base slot: the
        // scan starts there and bucket heaps are (time, key)-ordered, so
        // they still pop first.
        let bucket = self.bucket_of(at).max(self.base_bucket);
        if bucket < self.horizon() {
            let slot = (bucket % self.slots.len() as u64) as usize;
            self.slots[slot].push(entry);
        } else {
            self.overflow.push(entry);
        }
        self.len += 1;
    }

    /// Removes and returns the minimum event as `(time, key, value)`.
    pub fn pop(&mut self) -> Option<(SimTime, K, V)> {
        if self.len == 0 {
            return None;
        }
        let bucket = self.settle();
        let slot = (bucket % self.slots.len() as u64) as usize;
        let Reverse(entry) = self.slots[slot].pop().expect("settle found this slot");
        self.len -= 1;
        self.front = self.compute_front();
        Some((entry.at, entry.key, entry.value))
    }

    /// Advances the wheel base to the first non-empty bucket, migrating
    /// overflow events that the move brings into the window, and returns that
    /// bucket number.  Requires `len > 0`.
    fn settle(&mut self) -> u64 {
        loop {
            let n = self.slots.len() as u64;
            let mut first = None;
            for i in 0..n {
                let b = self.base_bucket.saturating_add(i);
                if !self.slots[(b % n) as usize].is_empty() {
                    first = Some(b);
                    break;
                }
            }
            // Invariant: every overflow entry's bucket is ≥ the horizon at
            // the time it was pushed or last migrated, hence strictly beyond
            // any in-window bucket — so an in-window hit is the global front.
            if let Some(b) = first {
                self.advance_to(b);
                return b;
            }
            // Wheel empty: jump the base to the overflow's first bucket and
            // let migration refill the wheel.
            let Reverse(next) = self.overflow.peek().expect("len > 0, wheel empty");
            let b = self.bucket_of(next.at);
            self.advance_to(b);
        }
    }

    /// Moves the base forward to `bucket` (never backward) and migrates every
    /// overflow event that now falls inside the window onto the wheel.
    fn advance_to(&mut self, bucket: u64) {
        if bucket > self.base_bucket {
            self.base_bucket = bucket;
        }
        let n = self.slots.len() as u64;
        while let Some(Reverse(e)) = self.overflow.peek() {
            let b = self.bucket_of(e.at);
            if b >= self.horizon() {
                break;
            }
            let Reverse(e) = self.overflow.pop().expect("just peeked");
            self.slots[(b % n) as usize].push(Reverse(e));
        }
    }

    /// Recomputes the cached front after a pop.
    fn compute_front(&mut self) -> Option<(SimTime, K)> {
        if self.len == 0 {
            return None;
        }
        let bucket = self.settle();
        let slot = (bucket % self.slots.len() as u64) as usize;
        self.slots[slot].peek().map(|Reverse(e)| (e.at, e.key))
    }
}

impl<K: Ord + Copy, V> Default for CalendarQueue<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut CalendarQueue<u64, &'static str>) -> Vec<(u64, u64, &'static str)> {
        let mut out = Vec::new();
        while let Some((at, key, v)) = q.pop() {
            out.push((at.micros(), key, v));
        }
        out
    }

    #[test]
    fn pops_in_time_order_across_wheel_and_overflow() {
        let mut q = CalendarQueue::with_geometry(10, 4); // 40 µs window
        q.push(SimTime(500), 0, "overflow");
        q.push(SimTime(5), 1, "wheel");
        q.push(SimTime(35), 2, "wheel-edge");
        q.push(SimTime(100_000), 3, "far");
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek(), Some((SimTime(5), 1)));
        assert_eq!(
            drain(&mut q),
            vec![
                (5, 1, "wheel"),
                (35, 2, "wheel-edge"),
                (500, 0, "overflow"),
                (100_000, 3, "far"),
            ]
        );
        assert!(q.is_empty());
        assert_eq!(q.peek(), None);
    }

    #[test]
    fn equal_times_pop_in_key_order() {
        let mut q = CalendarQueue::with_geometry(64, 8);
        // Push keys out of order at the same instant: pop order must follow
        // the keys (the simulator's FIFO sequence numbers), not push order.
        q.push(SimTime(1_000), 2, "c");
        q.push(SimTime(1_000), 0, "a");
        q.push(SimTime(1_000), 1, "b");
        assert_eq!(
            drain(&mut q),
            vec![(1_000, 0, "a"), (1_000, 1, "b"), (1_000, 2, "c")]
        );
    }

    #[test]
    fn interleaved_push_pop_with_late_events() {
        let mut q = CalendarQueue::with_geometry(10, 4);
        q.push(SimTime(100), 0, "x");
        assert_eq!(q.pop().map(|(t, k, _)| (t, k)), Some((SimTime(100), 0)));
        // A push earlier than the last pop still surfaces (and first).
        q.push(SimTime(50), 1, "late");
        q.push(SimTime(120), 2, "next");
        assert_eq!(q.peek(), Some((SimTime(50), 1)));
        assert_eq!(drain(&mut q), vec![(50, 1, "late"), (120, 2, "next")]);
    }

    #[test]
    fn saturated_far_future_alarms_survive() {
        let mut q = CalendarQueue::with_geometry(512, 16);
        q.push(SimTime(u64::MAX), 7, "doomsday");
        q.push(SimTime(1), 8, "now");
        assert_eq!(q.pop().map(|(_, k, _)| k), Some(8));
        assert_eq!(
            q.pop().map(|(t, k, _)| (t, k)),
            Some((SimTime(u64::MAX), 7))
        );
    }

    #[test]
    fn single_slot_wheel_degenerates_gracefully() {
        let mut q = CalendarQueue::with_geometry(1, 1);
        for key in 0..64u64 {
            q.push(SimTime(1_000 - key), key, "v");
        }
        let popped = drain(&mut q);
        let mut times: Vec<u64> = popped.iter().map(|&(t, _, _)| t).collect();
        let sorted = {
            let mut s = times.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(times, sorted);
        times.dedup();
        assert_eq!(times.len(), 64);
    }
}
