//! Network accounting: bytes and messages moved, per link and in total.
//!
//! These counters are the primary measured quantity of experiment E1
//! (bandwidth conservation, §1 of the paper) and contribute the overhead
//! columns of E2 (diffusion), E6 (exchange protocol), E7 (scheduling) and E9
//! (rear guards).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tacoma_util::{ByteCount, MetricValue, SiteId, Summary};

/// Byte and message counters for a whole simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NetMetrics {
    total_bytes: ByteCount,
    total_messages: u64,
    total_hops: u64,
    dropped_messages: u64,
    delivered_messages: u64,
    custody_parked: u64,
    custody_delivered: u64,
    custody_expired: u64,
    custody_rejected: u64,
    custody_stored_bytes: u64,
    custody_peak_bytes: u64,
    admitted_meets: u64,
    shed_meets: u64,
    janitor_sweeps: u64,
    janitor_shed: u64,
    admission_queue_peak: u64,
    admission_waits: Summary,
    per_link_bytes: BTreeMap<(SiteId, SiteId), ByteCount>,
    per_site_sent: BTreeMap<SiteId, u64>,
    per_site_received: BTreeMap<SiteId, u64>,
}

impl NetMetrics {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message traversing one hop of `bytes` bytes.
    pub fn record_hop(&mut self, from: SiteId, to: SiteId, bytes: u64) {
        self.total_bytes.add_bytes(bytes);
        self.total_hops += 1;
        let key = if from <= to { (from, to) } else { (to, from) };
        self.per_link_bytes.entry(key).or_default().add_bytes(bytes);
    }

    /// Records a message accepted for sending at `from`.
    pub fn record_send(&mut self, from: SiteId) {
        self.total_messages += 1;
        *self.per_site_sent.entry(from).or_default() += 1;
    }

    /// Records a message delivered at `to`.
    pub fn record_delivery(&mut self, to: SiteId) {
        self.delivered_messages += 1;
        *self.per_site_received.entry(to).or_default() += 1;
    }

    /// Records a message dropped in flight (dead destination, partition, ...).
    pub fn record_drop(&mut self) {
        self.dropped_messages += 1;
    }

    /// Records a message parked in custody, charging `bytes` of storage
    /// occupancy at the custodian.
    pub fn record_custody_park(&mut self, bytes: u64) {
        self.custody_parked += 1;
        self.custody_stored_bytes += bytes;
        self.custody_peak_bytes = self.custody_peak_bytes.max(self.custody_stored_bytes);
    }

    /// Releases `bytes` of custody storage (re-delivery attempt or expiry
    /// removed a parked message).
    pub fn record_custody_unpark(&mut self, bytes: u64) {
        self.custody_stored_bytes = self.custody_stored_bytes.saturating_sub(bytes);
    }

    /// Records a custodied message finally delivered to its destination.
    pub fn record_custody_delivery(&mut self) {
        self.custody_delivered += 1;
    }

    /// Records a custodied message expiring undelivered (TTL elapsed or the
    /// custody queue overflowed on a re-park).
    pub fn record_custody_expiry(&mut self) {
        self.custody_expired += 1;
    }

    /// Records a send that asked for custody but was rejected because the
    /// custodian's queue was full.
    pub fn record_custody_rejection(&mut self) {
        self.custody_rejected += 1;
    }

    /// Records a meet admitted through a bounded admission queue, with the
    /// time it waited in the queue before service started (milliseconds).
    pub fn record_admission(&mut self, wait_ms: f64, queue_depth: u64) {
        self.admitted_meets += 1;
        self.admission_waits.add(wait_ms);
        self.admission_queue_peak = self.admission_queue_peak.max(queue_depth);
    }

    /// Records a meet shed at admission: the queue was full (or the site
    /// died with the meet still queued), so the meet terminated in the
    /// `Shed` bucket instead of ever being dispatched.
    pub fn record_shed(&mut self) {
        self.shed_meets += 1;
    }

    /// Records one janitor sweep that shed `swept` queue entries past their
    /// admission deadline.  Swept entries are shed, so they also count in
    /// [`NetMetrics::shed_meets`].
    pub fn record_janitor_sweep(&mut self, swept: u64) {
        self.janitor_sweeps += 1;
        self.janitor_shed += swept;
        self.shed_meets += swept;
    }

    /// Meets admitted through a bounded admission queue.
    pub fn admitted_meets(&self) -> u64 {
        self.admitted_meets
    }

    /// Meets shed at admission (queue overflow, janitor deadline, or a crash
    /// that destroyed a non-empty queue).
    pub fn shed_meets(&self) -> u64 {
        self.shed_meets
    }

    /// Janitor sweeps performed.
    pub fn janitor_sweeps(&self) -> u64 {
        self.janitor_sweeps
    }

    /// Queue entries the janitor shed for overstaying the admission deadline.
    pub fn janitor_shed(&self) -> u64 {
        self.janitor_shed
    }

    /// Deepest admission queue observed at any site.
    pub fn admission_queue_peak(&self) -> u64 {
        self.admission_queue_peak
    }

    /// The admission-wait distribution (milliseconds queued before service).
    pub fn admission_waits(&self) -> &Summary {
        &self.admission_waits
    }

    /// Shed fraction of everything that reached an admission queue:
    /// `shed / (admitted + shed)`, 0 when no admission traffic was recorded.
    pub fn shed_rate(&self) -> f64 {
        let total = self.admitted_meets + self.shed_meets;
        if total == 0 {
            0.0
        } else {
            self.shed_meets as f64 / total as f64
        }
    }

    /// Total bytes moved across all links (counted per hop).
    pub fn total_bytes(&self) -> ByteCount {
        self.total_bytes
    }

    /// Total messages accepted for sending.
    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }

    /// Total link hops traversed.
    pub fn total_hops(&self) -> u64 {
        self.total_hops
    }

    /// Messages dropped before delivery.
    pub fn dropped_messages(&self) -> u64 {
        self.dropped_messages
    }

    /// Messages delivered at their destination (all sites).
    pub fn delivered_messages(&self) -> u64 {
        self.delivered_messages
    }

    /// Messages ever parked in a custody queue (re-parks after an in-flight
    /// crash count again).
    pub fn custody_parked(&self) -> u64 {
        self.custody_parked
    }

    /// Custodied messages that eventually reached their destination.
    pub fn custody_delivered(&self) -> u64 {
        self.custody_delivered
    }

    /// Custodied messages that expired undelivered.
    pub fn custody_expired(&self) -> u64 {
        self.custody_expired
    }

    /// Custody requests rejected because the custodian's queue was full.
    pub fn custody_rejected(&self) -> u64 {
        self.custody_rejected
    }

    /// Bytes currently occupying custody storage across all sites.
    pub fn custody_stored_bytes(&self) -> u64 {
        self.custody_stored_bytes
    }

    /// Peak custody storage occupancy observed during the run.
    pub fn custody_peak_bytes(&self) -> u64 {
        self.custody_peak_bytes
    }

    /// Bytes moved over a particular link (orientation-insensitive).
    pub fn link_bytes(&self, a: SiteId, b: SiteId) -> ByteCount {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.per_link_bytes.get(&key).copied().unwrap_or_default()
    }

    /// Messages sent from a site.
    pub fn sent_by(&self, site: SiteId) -> u64 {
        self.per_site_sent.get(&site).copied().unwrap_or(0)
    }

    /// Messages delivered at a site.
    pub fn received_by(&self, site: SiteId) -> u64 {
        self.per_site_received.get(&site).copied().unwrap_or(0)
    }

    /// The busiest link and its byte count, if any traffic has flowed.
    pub fn busiest_link(&self) -> Option<((SiteId, SiteId), ByteCount)> {
        self.per_link_bytes
            .iter()
            .max_by_key(|(_, bytes)| bytes.get())
            .map(|(&link, &bytes)| (link, bytes))
    }

    /// Resets all counters to zero (used between experiment phases).
    pub fn reset(&mut self) {
        *self = NetMetrics::default();
    }

    /// Exports the aggregate counters as typed metric key/value pairs, in a
    /// stable order.
    ///
    /// This is the hook for attaching system-level counters to a custom
    /// bench report: `tacoma_bench::Report::append_metrics` takes this
    /// output directly.  The stock harness derives its reports from table
    /// cells only, so `net.*` keys appear in a report only when a caller
    /// wires them in explicitly.
    pub fn export(&self) -> Vec<(String, MetricValue)> {
        vec![
            (
                "net.total_bytes".into(),
                MetricValue::Count(self.total_bytes.get()),
            ),
            (
                "net.total_messages".into(),
                MetricValue::Count(self.total_messages),
            ),
            ("net.total_hops".into(), MetricValue::Count(self.total_hops)),
            (
                "net.dropped_messages".into(),
                MetricValue::Count(self.dropped_messages),
            ),
            (
                "net.delivered_messages".into(),
                MetricValue::Count(self.delivered_messages),
            ),
            (
                "net.custody_parked".into(),
                MetricValue::Count(self.custody_parked),
            ),
            (
                "net.custody_delivered".into(),
                MetricValue::Count(self.custody_delivered),
            ),
            (
                "net.custody_expired".into(),
                MetricValue::Count(self.custody_expired),
            ),
            (
                "net.custody_rejected".into(),
                MetricValue::Count(self.custody_rejected),
            ),
            (
                "net.custody_peak_bytes".into(),
                MetricValue::Count(self.custody_peak_bytes),
            ),
            (
                "net.admitted_meets".into(),
                MetricValue::Count(self.admitted_meets),
            ),
            ("net.shed_meets".into(), MetricValue::Count(self.shed_meets)),
            ("net.shed_rate".into(), MetricValue::Float(self.shed_rate())),
            (
                "net.wait_p99_ms".into(),
                MetricValue::Float(self.admission_waits.percentile(99.0)),
            ),
            (
                "net.wait_p999_ms".into(),
                MetricValue::Float(self.admission_waits.percentile(99.9)),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = NetMetrics::new();
        m.record_send(SiteId(0));
        m.record_hop(SiteId(0), SiteId(1), 100);
        m.record_hop(SiteId(1), SiteId(2), 100);
        m.record_delivery(SiteId(2));
        assert_eq!(m.total_messages(), 1);
        assert_eq!(m.total_hops(), 2);
        assert_eq!(m.total_bytes().get(), 200);
        assert_eq!(m.sent_by(SiteId(0)), 1);
        assert_eq!(m.received_by(SiteId(2)), 1);
        assert_eq!(m.received_by(SiteId(1)), 0);
    }

    #[test]
    fn link_bytes_symmetric() {
        let mut m = NetMetrics::new();
        m.record_hop(SiteId(3), SiteId(1), 50);
        m.record_hop(SiteId(1), SiteId(3), 25);
        assert_eq!(m.link_bytes(SiteId(1), SiteId(3)).get(), 75);
        assert_eq!(m.link_bytes(SiteId(3), SiteId(1)).get(), 75);
        assert_eq!(m.link_bytes(SiteId(0), SiteId(1)).get(), 0);
    }

    #[test]
    fn busiest_link_and_reset() {
        let mut m = NetMetrics::new();
        assert!(m.busiest_link().is_none());
        m.record_hop(SiteId(0), SiteId(1), 10);
        m.record_hop(SiteId(1), SiteId(2), 99);
        let (link, bytes) = m.busiest_link().unwrap();
        assert_eq!(link, (SiteId(1), SiteId(2)));
        assert_eq!(bytes.get(), 99);
        m.record_drop();
        assert_eq!(m.dropped_messages(), 1);
        m.reset();
        assert_eq!(m.total_bytes().get(), 0);
        assert_eq!(m.dropped_messages(), 0);
    }

    #[test]
    fn export_is_typed_and_stably_ordered() {
        let mut m = NetMetrics::new();
        m.record_send(SiteId(0));
        m.record_hop(SiteId(0), SiteId(1), 64);
        m.record_drop();
        let exported = m.export();
        let keys: Vec<&str> = exported.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "net.total_bytes",
                "net.total_messages",
                "net.total_hops",
                "net.dropped_messages",
                "net.delivered_messages",
                "net.custody_parked",
                "net.custody_delivered",
                "net.custody_expired",
                "net.custody_rejected",
                "net.custody_peak_bytes",
                "net.admitted_meets",
                "net.shed_meets",
                "net.shed_rate",
                "net.wait_p99_ms",
                "net.wait_p999_ms",
            ]
        );
        assert_eq!(exported[0].1, MetricValue::Count(64));
        assert_eq!(exported[3].1, MetricValue::Count(1));
    }

    #[test]
    fn admission_counters_track_sheds_waits_and_rate() {
        let mut m = NetMetrics::new();
        assert_eq!(m.shed_rate(), 0.0, "no traffic, no rate");
        m.record_admission(1.0, 3);
        m.record_admission(9.0, 7);
        m.record_shed();
        assert_eq!(m.admitted_meets(), 2);
        assert_eq!(m.shed_meets(), 1);
        assert_eq!(m.admission_queue_peak(), 7);
        assert!((m.shed_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.admission_waits().count(), 2);
        m.record_janitor_sweep(4);
        assert_eq!(m.janitor_sweeps(), 1);
        assert_eq!(m.janitor_shed(), 4);
        assert_eq!(m.shed_meets(), 5, "janitor sheds count as sheds");
        let exported = m.export();
        let shed = exported
            .iter()
            .find(|(k, _)| k == "net.shed_meets")
            .unwrap();
        assert_eq!(shed.1, MetricValue::Count(5));
        m.reset();
        assert_eq!(m.admitted_meets(), 0);
        assert_eq!(m.admission_waits().count(), 0);
    }

    #[test]
    fn custody_counters_track_occupancy_and_peak() {
        let mut m = NetMetrics::new();
        m.record_custody_park(100);
        m.record_custody_park(50);
        assert_eq!(m.custody_parked(), 2);
        assert_eq!(m.custody_stored_bytes(), 150);
        assert_eq!(m.custody_peak_bytes(), 150);
        m.record_custody_unpark(100);
        m.record_custody_delivery();
        assert_eq!(m.custody_stored_bytes(), 50);
        assert_eq!(m.custody_peak_bytes(), 150, "peak is sticky");
        m.record_custody_unpark(50);
        m.record_custody_expiry();
        m.record_custody_rejection();
        assert_eq!(m.custody_delivered(), 1);
        assert_eq!(m.custody_expired(), 1);
        assert_eq!(m.custody_rejected(), 1);
        assert_eq!(m.custody_stored_bytes(), 0);
        m.reset();
        assert_eq!(m.custody_peak_bytes(), 0);
    }
}
