//! The discrete-event simulator core: message delivery, timers, failures.
//!
//! [`SimNet`] owns a priority queue of pending events ordered by simulated
//! time (ties broken by insertion order, so runs are deterministic).  The
//! TACOMA kernel (`tacoma-core`'s `TacomaSystem`) drives the simulation by
//! calling [`SimNet::send`] / [`SimNet::schedule_timer`] and repeatedly
//! popping events with [`SimNet::step`].
//!
//! Failure semantics follow the paper's §5 model: when a site crashes, agents
//! resident there vanish (that is enforced by the core layer), messages in
//! flight *to* the site are dropped, and established transport streams through
//! it are torn down.  Messages are routed over the shortest path of live
//! sites, so a crash can also make two live sites temporarily unreachable on
//! sparse topologies.

use crate::calendar::CalendarQueue;
use crate::custody::{CustodyConfig, CustodyStore, Parked};
use crate::failure::{FailureAction, FailurePlan};
use crate::metrics::NetMetrics;
use crate::routing::Router;
use crate::shard::ShardPlan;
use crate::time::{Duration, SimTime};
use crate::topology::Topology;
use crate::transport::{Transport, TransportKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use tacoma_util::SiteId;

/// A partition installed by [`SimNet::partition`]: one membership mask per
/// call, `O(V)` to store instead of the `O(V²)` blocked-pair set it replaces.
/// Communication between two sites is blocked when any active partition puts
/// them on different sides of its boundary.
#[derive(Debug, Clone)]
struct PartitionMask {
    in_group: Vec<bool>,
}

impl PartitionMask {
    fn new(sites: u32, group: &BTreeSet<SiteId>) -> Self {
        let mut in_group = vec![false; sites as usize];
        for site in group {
            if let Some(slot) = in_group.get_mut(site.index()) {
                *slot = true;
            }
        }
        PartitionMask { in_group }
    }

    fn contains(&self, site: SiteId) -> bool {
        self.in_group.get(site.index()).copied().unwrap_or(false)
    }

    fn splits(&self, a: SiteId, b: SiteId) -> bool {
        self.contains(a) != self.contains(b)
    }
}

/// The one partition-blocking rule, shared by [`SimNet::is_blocked`] and the
/// routing closure in [`SimNet::send`] (a free function so the send path can
/// borrow `partitions` alone while the router is borrowed mutably).
fn partition_blocked(partitions: &[PartitionMask], a: SiteId, b: SiteId) -> bool {
    partitions.iter().any(|mask| mask.splits(a, b))
}

/// Identifier of a message accepted by [`SimNet::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MessageId(pub u64);

/// Errors returned by the simulator's send/schedule operations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetError {
    /// The source site is down.
    SourceDown(SiteId),
    /// The destination site is down.
    DestinationDown(SiteId),
    /// No live path exists between source and destination.
    Unreachable {
        /// Sending site.
        from: SiteId,
        /// Intended destination.
        to: SiteId,
    },
    /// A site id was outside the topology.
    UnknownSite(SiteId),
    /// Custody was requested but the custodian's bounded queue was full.
    CustodyFull {
        /// The site whose custody queue overflowed.
        at: SiteId,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::SourceDown(s) => write!(f, "source {s} is down"),
            NetError::DestinationDown(s) => write!(f, "destination {s} is down"),
            NetError::Unreachable { from, to } => write!(f, "no live path from {from} to {to}"),
            NetError::UnknownSite(s) => write!(f, "unknown site {s}"),
            NetError::CustodyFull { at } => write!(f, "custody queue at {at} is full"),
        }
    }
}

impl std::error::Error for NetError {}

/// Parameters of a single message send.
#[derive(Debug, Clone)]
pub struct SendOptions {
    /// Sending site.
    pub from: SiteId,
    /// Destination site.
    pub to: SiteId,
    /// Application payload carried to the destination.
    pub payload: Vec<u8>,
    /// Application-defined message kind (the core layer uses this to tell
    /// meet requests, meet replies and control traffic apart).
    pub kind: u16,
    /// Transport personality to charge overhead with.
    pub transport: TransportKind,
    /// Opt into store-and-forward: when the simulator has a custody store
    /// installed ([`SimNet::set_custody`]) and no live path exists, the
    /// message is parked at a custodian instead of failing fast, and is
    /// re-attempted on every routing-epoch bump until it delivers or its TTL
    /// expires.  Without a custody store this flag is ignored (fail fast).
    pub custody: bool,
}

/// A message delivered to its destination site.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveredMessage {
    /// The id assigned at send time.
    pub id: MessageId,
    /// Original sender.
    pub from: SiteId,
    /// Destination (the site the event is delivered at).
    pub to: SiteId,
    /// Application payload.
    pub payload: Vec<u8>,
    /// Application-defined message kind.
    pub kind: u16,
    /// When the message was sent.
    pub sent_at: SimTime,
    /// Number of link hops the message traversed.
    pub hops: u32,
}

/// A custodied message that expired undelivered — the terminal outcome the
/// core layer maps to its `meets_expired` counter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExpiredMessage {
    /// The id assigned at send time.
    pub id: MessageId,
    /// Original sender.
    pub from: SiteId,
    /// Intended destination.
    pub to: SiteId,
    /// Application-defined message kind.
    pub kind: u16,
    /// When the message was originally sent.
    pub sent_at: SimTime,
    /// When it expired (TTL elapsed, or an overflowing re-park).
    pub expired_at: SimTime,
}

/// An event surfaced to the driver of the simulation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// A message arrived at its destination.
    Message(DeliveredMessage),
    /// A custodied message expired before it could be delivered.
    MessageExpired(ExpiredMessage),
    /// A timer scheduled with [`SimNet::schedule_timer`] fired.
    Timer {
        /// Site the timer belongs to.
        site: SiteId,
        /// Caller-chosen key identifying the timer.
        key: u64,
    },
    /// A site crashed (from the failure plan or an explicit call).
    SiteCrashed(SiteId),
    /// A site recovered.
    SiteRecovered(SiteId),
}

/// Custody bookkeeping carried alongside an in-flight delivery so the message
/// can be re-parked (instead of dropped) if its destination dies mid-flight.
#[derive(Debug, Clone, Copy)]
struct CustodyTag {
    expires_at: SimTime,
    transport: TransportKind,
    /// Whether the message was ever parked — distinguishes a first-attempt
    /// custody send (not counted as a custody delivery) from a re-delivery.
    was_parked: bool,
}

/// Internal queued event payload.
#[derive(Debug, Clone)]
enum Pending {
    Deliver {
        msg: DeliveredMessage,
        custody: Option<CustodyTag>,
    },
    Timer {
        site: SiteId,
        key: u64,
    },
    Failure {
        site: SiteId,
        action: FailureAction,
    },
    /// TTL alarm for a parked message; a no-op if the message has already
    /// left custody (delivered or re-parked bookkeeping keeps the invariant
    /// that every parked message has a live alarm).
    CustodyExpire {
        site: SiteId,
        id: MessageId,
    },
}

impl Pending {
    /// The site an event fires *at* — the key the sharded queue partitions
    /// on.  Deliveries fire at their destination; timers, failures and
    /// custody alarms at their own site.
    fn site(&self) -> SiteId {
        match self {
            Pending::Deliver { msg, .. } => msg.to,
            Pending::Timer { site, .. } => *site,
            Pending::Failure { site, .. } => *site,
            Pending::CustodyExpire { site, .. } => *site,
        }
    }
}

/// The deterministic discrete-event network simulator.
#[derive(Debug)]
pub struct SimNet {
    router: Router,
    up: Vec<bool>,
    clock: SimTime,
    /// One calendar queue per shard of the shard plan (a single queue by
    /// default).  Events are keyed by the global sequence number, so popping
    /// the argmin `(time, seq)` across shards reproduces exactly the order a
    /// single global queue would produce — sharding the queue can never
    /// change a simulation result, which is what lets CI gate `--shards N`
    /// against `--shards 1` byte-for-byte.
    queues: Vec<CalendarQueue<u64, Pending>>,
    /// Site → shard map plus the cross-shard lookahead.
    plan: ShardPlan,
    seq: u64,
    next_msg_id: u64,
    transport: Transport,
    metrics: NetMetrics,
    partitions: Vec<PartitionMask>,
    /// Routing epoch: bumped by every failure, recovery, partition, heal and
    /// topology edit.  The router's cache keys its entries on this, so
    /// liveness changes invalidate routes with one integer increment instead
    /// of per-send state cloning.
    epoch: u64,
    /// Scratch buffer the current send's path is copied into, so the hop
    /// loop does not hold a borrow of the router (and allocates nothing
    /// after warm-up).
    route_buf: Vec<SiteId>,
    /// Store-and-forward custody queues, when enabled via
    /// [`SimNet::set_custody`].  Parked messages live on stable storage (a
    /// custodian crash preserves them) and are re-attempted on every routing
    /// epoch bump.
    custody: Option<CustodyStore>,
}

impl SimNet {
    /// Creates a simulator over `topology` with every site up.
    pub fn new(topology: Topology) -> Self {
        let sites = topology.site_count() as usize;
        let plan = ShardPlan::new(&topology, 1);
        SimNet {
            router: Router::new(topology),
            up: vec![true; sites],
            clock: SimTime::ZERO,
            queues: vec![CalendarQueue::new()],
            plan,
            seq: 0,
            next_msg_id: 1,
            transport: Transport::new(),
            metrics: NetMetrics::new(),
            partitions: Vec::new(),
            epoch: 0,
            route_buf: Vec::new(),
            custody: None,
        }
    }

    /// Re-partitions the event queue into `shards` per-shard calendar
    /// queues, clique-aligned on ring-of-cliques topologies (see
    /// [`ShardPlan`]).  Already-queued events are redistributed with their
    /// original `(time, seq)` keys, so calling this at any point — even
    /// mid-run — cannot change the order in which events pop.
    pub fn set_shards(&mut self, shards: u32) {
        self.plan = ShardPlan::new(self.router.topology(), shards);
        let mut pending: Vec<(SimTime, u64, Pending)> = Vec::new();
        for queue in &mut self.queues {
            while let Some(entry) = queue.pop() {
                pending.push(entry);
            }
        }
        self.queues = (0..self.plan.shards())
            .map(|_| CalendarQueue::new())
            .collect();
        for (at, seq, ev) in pending {
            let shard = self.plan.shard_of(ev.site()) as usize;
            self.queues[shard].push(at, seq, ev);
        }
    }

    /// Number of event-queue shards (1 unless [`SimNet::set_shards`] raised it).
    pub fn shard_count(&self) -> u32 {
        self.plan.shards()
    }

    /// The conservative lookahead of the current shard plan: the minimum
    /// latency of any link crossing a shard boundary.
    pub fn shard_lookahead(&self) -> Duration {
        self.plan.lookahead()
    }

    /// Installs a custody store: sends whose [`SendOptions::custody`] flag is
    /// set are parked instead of failing fast when no live path exists.
    /// Replaces (and empties) any previous store.
    pub fn set_custody(&mut self, config: CustodyConfig) {
        self.custody = Some(CustodyStore::new(self.site_count(), config));
    }

    /// Whether a custody store is installed.
    pub fn custody_enabled(&self) -> bool {
        self.custody.is_some()
    }

    /// The active custody configuration, if a store is installed.
    pub fn custody_config(&self) -> Option<CustodyConfig> {
        self.custody.as_ref().map(CustodyStore::config)
    }

    /// Messages currently parked across all custody queues.
    pub fn custody_backlog(&self) -> usize {
        self.custody.as_ref().map_or(0, CustodyStore::total_len)
    }

    /// Messages currently parked at one site's custody queue.
    pub fn custody_backlog_at(&self, site: SiteId) -> usize {
        self.custody.as_ref().map_or(0, |s| s.len(site))
    }

    /// Reachability of every site from `from` over live sites and unblocked
    /// edges (index = site id).  This is the membership-style information the
    /// core layer hands to agents so rear guards can tell "unreachable, a
    /// custodied message is pending" from "dead, relaunch".
    pub fn reachable_mask(&self, from: SiteId) -> Vec<bool> {
        let up = &self.up;
        let partitions = &self.partitions;
        self.router.reachable_mask(
            from,
            |s| up.get(s.index()).copied().unwrap_or(false),
            |a, b| partition_blocked(partitions, a, b),
        )
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of sites in the topology.
    pub fn site_count(&self) -> u32 {
        self.router.topology().site_count()
    }

    /// Whether `site` is currently up.
    pub fn is_up(&self, site: SiteId) -> bool {
        self.up.get(site.index()).copied().unwrap_or(false)
    }

    /// The routing oracle (topology + shortest paths + route cache).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// The current routing epoch.  Every crash, recovery, partition, heal
    /// and topology edit increments it; cached routes from older epochs are
    /// never consulted.
    pub fn route_epoch(&self) -> u64 {
        self.epoch
    }

    /// Enables or disables the route cache (on by default).  The disabled
    /// mode recomputes a BFS per send — the reference path scale experiments
    /// and invalidation tests compare the cached fast path against.
    pub fn set_route_cache(&mut self, enabled: bool) {
        self.router.set_cache_enabled(enabled);
    }

    /// Routing work performed so far, as `(route_queries, bfs_runs)`.
    /// `route_queries - bfs_runs` is the work the cache saved.
    pub fn routing_work(&self) -> (u64, u64) {
        (self.router.route_queries(), self.router.bfs_runs())
    }

    /// Edits the topology in place, rebuilding the router's adjacency and
    /// invalidating every cached route.
    pub fn edit_topology(&mut self, edit: impl FnOnce(&mut Topology)) {
        self.router.edit_topology(edit);
        self.epoch += 1;
        // Link changes can change which links cross shard boundaries;
        // re-plan at the same shard count so the lookahead stays honest.
        self.set_shards(self.plan.shards());
        self.flush_custody();
    }

    /// Accumulated byte/message counters.
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }

    /// Mutable access to the counters, for layers above the simulator that
    /// account their own terminal outcomes here (the kernel's admission
    /// queues record sheds and waits so one export carries the whole story).
    pub fn metrics_mut(&mut self) -> &mut NetMetrics {
        &mut self.metrics
    }

    /// Resets the byte/message counters and the routing-work counters (the
    /// clock keeps running and cached routes stay valid).
    pub fn reset_metrics(&mut self) {
        self.metrics.reset();
        self.router.reset_route_stats();
    }

    /// Schedules every event of a failure plan.
    pub fn apply_failure_plan(&mut self, plan: &FailurePlan) {
        for ev in plan.events() {
            self.push(
                ev.at,
                Pending::Failure {
                    site: ev.site,
                    action: ev.action,
                },
            );
        }
    }

    /// Crashes a site immediately.
    pub fn crash_now(&mut self, site: SiteId) {
        self.apply_failure(site, FailureAction::Crash);
    }

    /// Recovers a site immediately.
    pub fn recover_now(&mut self, site: SiteId) {
        self.apply_failure(site, FailureAction::Recover);
    }

    /// Installs a partition: messages between the listed group and all other
    /// sites are blocked until [`SimNet::heal_partition`] is called.
    ///
    /// Stored as an `O(V)` membership mask — not the `O(V²)` pair set the
    /// first implementation materialised — and tested per edge at routing
    /// time, so routes stay *within* a side of the partition when a live
    /// in-side path exists.
    pub fn partition(&mut self, group: &[SiteId]) {
        let group: BTreeSet<SiteId> = group.iter().copied().collect();
        self.partitions
            .push(PartitionMask::new(self.site_count(), &group));
        self.epoch += 1;
        self.flush_custody();
    }

    /// Removes every partition-induced block.
    pub fn heal_partition(&mut self) {
        if !self.partitions.is_empty() {
            self.partitions.clear();
            self.epoch += 1;
            self.flush_custody();
        }
    }

    /// Whether direct communication between two sites is blocked by a partition.
    pub fn is_blocked(&self, a: SiteId, b: SiteId) -> bool {
        partition_blocked(&self.partitions, a, b)
    }

    /// Schedules a timer on `site` to fire after `delay`, tagged with `key`.
    pub fn schedule_timer(&mut self, site: SiteId, delay: Duration, key: u64) {
        let at = self.clock + delay;
        self.push(at, Pending::Timer { site, key });
    }

    /// Sends a message, charging latency, bandwidth and transport overhead on
    /// every hop of the shortest live path from `from` to `to`.
    ///
    /// Local sends (`from == to`) are delivered after a fixed small kernel
    /// overhead without touching the network counters.
    ///
    /// When [`SendOptions::custody`] is set and a custody store is installed,
    /// an unreachable or dead destination parks the message instead of
    /// failing: it rides out the outage at a custodian and is re-attempted on
    /// every routing-epoch bump until delivery or TTL expiry.
    pub fn send(&mut self, opts: SendOptions) -> Result<MessageId, NetError> {
        let SendOptions {
            from,
            to,
            payload,
            kind,
            transport,
            custody,
        } = opts;
        let sites = self.site_count();
        if from.0 >= sites {
            return Err(NetError::UnknownSite(from));
        }
        if to.0 >= sites {
            return Err(NetError::UnknownSite(to));
        }
        if !self.is_up(from) {
            return Err(NetError::SourceDown(from));
        }
        let custody_active = custody && self.custody.is_some();
        if !self.is_up(to) && !custody_active {
            return Err(NetError::DestinationDown(to));
        }

        let id = MessageId(self.next_msg_id);
        self.next_msg_id += 1;

        if from == to && self.is_up(to) {
            // Local delivery: a small constant kernel cost, no network bytes.
            let msg = DeliveredMessage {
                id,
                from,
                to,
                payload,
                kind,
                sent_at: self.clock,
                hops: 0,
            };
            self.metrics.record_send(from);
            let at = self.clock + Duration::from_micros(10);
            self.push(at, Pending::Deliver { msg, custody: None });
            return Ok(id);
        }

        // Route over live, unpartitioned sites.  Liveness and partition state
        // are *borrowed* (the clones the first implementation made per send
        // were the scale bottleneck); the router answers from its cache
        // whenever the epoch has not moved since the pair was last routed.
        let up = &self.up;
        let partitions = &self.partitions;
        let alive = |s: SiteId| up.get(s.index()).copied().unwrap_or(false);
        let blocked = |a: SiteId, b: SiteId| partition_blocked(partitions, a, b);
        let path = if self.is_up(to) {
            self.router.route(from, to, self.epoch, alive, blocked)
        } else {
            None
        };
        let Some(path) = path else {
            if custody_active {
                return self.park_new(id, from, to, payload, kind, transport);
            }
            return Err(NetError::Unreachable { from, to });
        };
        self.route_buf.clear();
        self.route_buf.extend_from_slice(path);

        let payload_len = payload.len() as u64;
        let overhead = self.transport.overhead(transport, from, to);
        let wire_bytes = payload_len + overhead.extra_bytes;
        let delay = overhead.setup_latency + self.charge_route_hops(wire_bytes);
        self.metrics.record_send(from);

        let msg = DeliveredMessage {
            id,
            from,
            to,
            payload,
            kind,
            sent_at: self.clock,
            hops: (self.route_buf.len() - 1) as u32,
        };
        let tag = custody_active.then(|| CustodyTag {
            expires_at: self.clock + self.custody.as_ref().expect("custody_active").config().ttl,
            transport,
            was_parked: false,
        });
        let at = self.clock + delay;
        self.push(at, Pending::Deliver { msg, custody: tag });
        Ok(id)
    }

    /// Charges byte counters for every hop of `route_buf` and returns the
    /// accumulated transfer time.
    fn charge_route_hops(&mut self, wire_bytes: u64) -> Duration {
        let mut delay = Duration::ZERO;
        for hop in self.route_buf.windows(2) {
            let (a, b) = (hop[0], hop[1]);
            let spec = self
                .router
                .topology()
                .link(a, b)
                .copied()
                .unwrap_or_default();
            delay += spec.transfer_time(wire_bytes);
            self.metrics.record_hop(a, b, wire_bytes);
        }
        delay
    }

    /// Parks a freshly accepted message whose destination is currently
    /// unreachable.  The custodian is the furthest site toward the
    /// destination still reachable along the static (topology-only) shortest
    /// path — "store and *forward*" — falling back to the sender.  The
    /// partial leg charges bytes; delivery latency is charged on the final
    /// leg when the message is re-attempted.
    fn park_new(
        &mut self,
        id: MessageId,
        from: SiteId,
        to: SiteId,
        payload: Vec<u8>,
        kind: u16,
        transport: TransportKind,
    ) -> Result<MessageId, NetError> {
        // Walk the static path while hops are live and unblocked.
        self.route_buf.clear();
        self.route_buf.push(from);
        if let Some(static_path) = self.router.shortest_path(from, to, |_| true) {
            for hop in static_path.windows(2) {
                let (a, b) = (hop[0], hop[1]);
                if !self.is_up(b) || self.is_blocked(a, b) {
                    break;
                }
                self.route_buf.push(b);
            }
        }
        let custodian = *self.route_buf.last().expect("starts with sender");
        let store = self.custody.as_ref().expect("checked by caller");
        if store.is_full(custodian) {
            self.metrics.record_custody_rejection();
            return Err(NetError::CustodyFull { at: custodian });
        }
        let expires_at = self.clock + store.config().ttl;
        let hops = (self.route_buf.len() - 1) as u32;
        if hops > 0 {
            let overhead = self.transport.overhead(transport, from, custodian);
            let wire_bytes = payload.len() as u64 + overhead.extra_bytes;
            self.charge_route_hops(wire_bytes);
        }
        self.metrics.record_send(from);
        self.metrics.record_custody_park(payload.len() as u64);
        let parked = Parked {
            msg: DeliveredMessage {
                id,
                from,
                to,
                payload,
                kind,
                sent_at: self.clock,
                hops,
            },
            transport,
            expires_at,
        };
        self.custody
            .as_mut()
            .expect("checked by caller")
            .push(custodian, parked)
            .expect("capacity checked above");
        self.push(
            expires_at,
            Pending::CustodyExpire {
                site: custodian,
                id,
            },
        );
        Ok(id)
    }

    /// Re-parks a custodied message whose destination died while it was in
    /// flight.  Returns a terminal expiry event when the TTL has already
    /// elapsed or the origin's custody queue is full.
    fn repark(&mut self, msg: DeliveredMessage, tag: CustodyTag) -> Option<Event> {
        let expired = ExpiredMessage {
            id: msg.id,
            from: msg.from,
            to: msg.to,
            kind: msg.kind,
            sent_at: msg.sent_at,
            expired_at: self.clock,
        };
        if self.clock >= tag.expires_at {
            self.metrics.record_custody_expiry();
            return Some(Event::MessageExpired(expired));
        }
        let custodian = msg.from;
        let store = self.custody.as_mut().expect("checked by caller");
        if store.is_full(custodian) {
            self.metrics.record_custody_expiry();
            return Some(Event::MessageExpired(expired));
        }
        let bytes = msg.payload.len() as u64;
        let id = msg.id;
        store
            .push(
                custodian,
                Parked {
                    msg,
                    transport: tag.transport,
                    expires_at: tag.expires_at,
                },
            )
            .expect("capacity checked above");
        self.metrics.record_custody_park(bytes);
        // The original TTL alarm may have been consumed as a no-op while the
        // message was in flight; arm a fresh one (duplicates are no-ops).
        self.push(
            tag.expires_at,
            Pending::CustodyExpire {
                site: custodian,
                id,
            },
        );
        None
    }

    /// Re-attempts every custodied delivery.  Called on each routing-epoch
    /// bump, so re-delivery work is O(parked messages) per liveness change
    /// rather than a per-tick scan.  Custodians that are currently down are
    /// skipped (their stable queues survive and flush on recovery).
    fn flush_custody(&mut self) {
        if self.custody.is_none() {
            return;
        }
        for site in 0..self.site_count() {
            let custodian = SiteId(site);
            if !self.is_up(custodian) || self.custody_backlog_at(custodian) == 0 {
                continue;
            }
            let mut queue = self
                .custody
                .as_mut()
                .expect("checked above")
                .take_queue(custodian);
            let mut stuck = std::collections::VecDeque::new();
            while let Some(parked) = queue.pop_front() {
                if let Some(parked) = self.try_redeliver(custodian, parked) {
                    stuck.push_back(parked);
                }
            }
            self.custody
                .as_mut()
                .expect("checked above")
                .restore_queue(custodian, stuck);
        }
    }

    /// Attempts to route one parked message onward.  Returns the message when
    /// it must stay parked; `None` when a delivery was scheduled.
    fn try_redeliver(&mut self, custodian: SiteId, parked: Parked) -> Option<Parked> {
        let to = parked.msg.to;
        if !self.is_up(to) {
            return Some(parked);
        }
        let up = &self.up;
        let partitions = &self.partitions;
        let alive = |s: SiteId| up.get(s.index()).copied().unwrap_or(false);
        let blocked = |a: SiteId, b: SiteId| partition_blocked(partitions, a, b);
        let Some(path) = self.router.route(custodian, to, self.epoch, alive, blocked) else {
            return Some(parked);
        };
        self.route_buf.clear();
        self.route_buf.extend_from_slice(path);

        let Parked {
            mut msg,
            transport,
            expires_at,
        } = parked;
        self.metrics.record_custody_unpark(msg.payload.len() as u64);
        let overhead = self.transport.overhead(transport, custodian, to);
        let wire_bytes = msg.payload.len() as u64 + overhead.extra_bytes;
        let delay = overhead.setup_latency + self.charge_route_hops(wire_bytes);
        msg.hops += (self.route_buf.len() - 1) as u32;
        let at = self.clock + delay;
        self.push(
            at,
            Pending::Deliver {
                msg,
                custody: Some(CustodyTag {
                    expires_at,
                    transport,
                    was_parked: true,
                }),
            },
        );
        None
    }

    /// Advances to the next event and returns it, or `None` if the queue is
    /// empty.  Dropped deliveries (dead destination) are consumed internally
    /// and do not surface.
    pub fn step(&mut self) -> Option<Event> {
        loop {
            let (at, _, pending) = self.pop_next()?;
            debug_assert!(at >= self.clock, "time must not go backwards");
            self.clock = self.clock.max(at);
            match pending {
                Pending::Deliver { msg, custody } => {
                    if self.is_up(msg.to) {
                        if custody.is_some_and(|tag| tag.was_parked) {
                            self.metrics.record_custody_delivery();
                        }
                        self.metrics.record_delivery(msg.to);
                        return Some(Event::Message(msg));
                    }
                    if let Some(tag) = custody {
                        if self.custody.is_some() {
                            // The destination died while the message was in
                            // flight: back into custody at the origin instead
                            // of dropping (terminal expiry if over TTL/full).
                            if let Some(event) = self.repark(msg, tag) {
                                return Some(event);
                            }
                            continue;
                        }
                    }
                    self.metrics.record_drop();
                    // Keep looping: the drop is not surfaced.
                }
                Pending::CustodyExpire { site, id } => {
                    let taken = self
                        .custody
                        .as_mut()
                        .and_then(|store| store.remove(site, id));
                    if let Some(parked) = taken {
                        self.metrics
                            .record_custody_unpark(parked.msg.payload.len() as u64);
                        self.metrics.record_custody_expiry();
                        return Some(Event::MessageExpired(ExpiredMessage {
                            id: parked.msg.id,
                            from: parked.msg.from,
                            to: parked.msg.to,
                            kind: parked.msg.kind,
                            sent_at: parked.msg.sent_at,
                            expired_at: self.clock,
                        }));
                    }
                    // Already delivered or re-parked elsewhere: a no-op.
                }
                Pending::Timer { site, key } => {
                    if self.is_up(site) {
                        return Some(Event::Timer { site, key });
                    }
                    // Timers on dead sites are silently discarded.
                }
                Pending::Failure { site, action } => {
                    let changed = self.apply_failure(site, action);
                    if changed {
                        return Some(match action {
                            FailureAction::Crash => Event::SiteCrashed(site),
                            FailureAction::Recover => Event::SiteRecovered(site),
                        });
                    }
                }
            }
        }
    }

    /// Pops the globally next event: the argmin of `(time, seq)` across the
    /// per-shard queues.  Sequence numbers are globally unique, so this is a
    /// total order and the pop sequence is independent of the shard count.
    fn pop_next(&mut self) -> Option<(SimTime, u64, Pending)> {
        let shard = self
            .queues
            .iter()
            .enumerate()
            .filter_map(|(i, q)| q.peek().map(|front| (front, i)))
            .min()?
            .1;
        self.queues[shard].pop()
    }

    /// The time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queues
            .iter()
            .filter_map(CalendarQueue::peek)
            .min()
            .map(|(at, _)| at)
    }

    /// Whether any events are pending.
    pub fn has_pending(&self) -> bool {
        self.queues.iter().any(|q| !q.is_empty())
    }

    /// Number of pending events (messages in flight, timers, failures).
    pub fn pending_count(&self) -> usize {
        self.queues.iter().map(CalendarQueue::len).sum()
    }

    fn apply_failure(&mut self, site: SiteId, action: FailureAction) -> bool {
        let Some(slot) = self.up.get_mut(site.index()) else {
            return false;
        };
        let changed = match action {
            FailureAction::Crash => {
                if !*slot {
                    return false;
                }
                *slot = false;
                self.transport.drop_streams_of(site);
                true
            }
            FailureAction::Recover => {
                if *slot {
                    return false;
                }
                *slot = true;
                true
            }
        };
        if changed {
            // Liveness changed: invalidate every cached route and re-attempt
            // custodied deliveries (a recovery may have opened a path).
            self.epoch += 1;
            self.flush_custody();
        }
        changed
    }

    fn push(&mut self, at: SimTime, pending: Pending) {
        let seq = self.seq;
        self.seq += 1;
        let shard = self.plan.shard_of(pending.site()) as usize;
        self.queues[shard].push(at, seq, pending);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkSpec;

    fn mesh(n: u32) -> SimNet {
        SimNet::new(Topology::full_mesh(n, LinkSpec::default()))
    }

    fn send_simple(net: &mut SimNet, from: u32, to: u32, bytes: usize) -> MessageId {
        net.send(SendOptions {
            from: SiteId(from),
            to: SiteId(to),
            payload: vec![0u8; bytes],
            kind: 1,
            transport: TransportKind::Tcp,
            custody: false,
        })
        .expect("send should succeed")
    }

    #[test]
    fn message_is_delivered_in_order_of_time() {
        let mut net = mesh(3);
        let id1 = send_simple(&mut net, 0, 1, 10);
        let id2 = send_simple(&mut net, 0, 2, 10_000_000); // much larger, arrives later
        let ev1 = net.step().unwrap();
        match ev1 {
            Event::Message(m) => assert_eq!(m.id, id1),
            other => panic!("expected message, got {other:?}"),
        }
        let ev2 = net.step().unwrap();
        match ev2 {
            Event::Message(m) => {
                assert_eq!(m.id, id2);
                assert_eq!(m.hops, 1);
            }
            other => panic!("expected message, got {other:?}"),
        }
        assert!(net.step().is_none());
        assert!(net.now() > SimTime::ZERO);
    }

    #[test]
    fn local_send_has_no_network_bytes() {
        let mut net = mesh(2);
        send_simple(&mut net, 1, 1, 500);
        let ev = net.step().unwrap();
        assert!(matches!(ev, Event::Message(ref m) if m.hops == 0));
        assert_eq!(net.metrics().total_bytes().get(), 0);
        assert_eq!(net.metrics().total_messages(), 1);
    }

    #[test]
    fn bytes_charged_per_hop_on_ring() {
        let mut net = SimNet::new(Topology::ring(4, LinkSpec::default()));
        // 0 -> 2 is two hops on a 4-ring.
        send_simple(&mut net, 0, 2, 1000);
        let ev = net.step().unwrap();
        match ev {
            Event::Message(m) => assert_eq!(m.hops, 2),
            other => panic!("unexpected {other:?}"),
        }
        // Wire bytes = payload + tcp first-contact overhead (128), charged twice.
        assert_eq!(net.metrics().total_bytes().get(), 2 * (1000 + 128));
        assert_eq!(net.metrics().total_hops(), 2);
    }

    #[test]
    fn send_to_dead_site_fails_fast() {
        let mut net = mesh(3);
        net.crash_now(SiteId(2));
        let err = net
            .send(SendOptions {
                from: SiteId(0),
                to: SiteId(2),
                payload: vec![],
                kind: 0,
                transport: TransportKind::Tcp,
                custody: false,
            })
            .unwrap_err();
        assert_eq!(err, NetError::DestinationDown(SiteId(2)));
        let err = net
            .send(SendOptions {
                from: SiteId(2),
                to: SiteId(0),
                payload: vec![],
                kind: 0,
                transport: TransportKind::Tcp,
                custody: false,
            })
            .unwrap_err();
        assert_eq!(err, NetError::SourceDown(SiteId(2)));
    }

    #[test]
    fn unknown_site_rejected() {
        let mut net = mesh(2);
        let err = net
            .send(SendOptions {
                from: SiteId(0),
                to: SiteId(9),
                payload: vec![],
                kind: 0,
                transport: TransportKind::Tcp,
                custody: false,
            })
            .unwrap_err();
        assert_eq!(err, NetError::UnknownSite(SiteId(9)));
    }

    #[test]
    fn message_in_flight_to_crashing_site_is_dropped() {
        let mut net = mesh(2);
        send_simple(&mut net, 0, 1, 100);
        net.crash_now(SiteId(1));
        assert!(net.step().is_none(), "delivery should be swallowed");
        assert_eq!(net.metrics().dropped_messages(), 1);
    }

    #[test]
    fn scheduled_failure_plan_surfaces_events() {
        let mut net = mesh(2);
        let plan =
            FailurePlan::none().outage(SiteId(1), SimTime(1_000), Duration::from_micros(500));
        net.apply_failure_plan(&plan);
        assert_eq!(net.step(), Some(Event::SiteCrashed(SiteId(1))));
        assert!(!net.is_up(SiteId(1)));
        assert_eq!(net.step(), Some(Event::SiteRecovered(SiteId(1))));
        assert!(net.is_up(SiteId(1)));
        assert_eq!(net.now(), SimTime(1_500));
    }

    #[test]
    fn duplicate_crash_is_idempotent() {
        let mut net = mesh(2);
        let plan = FailurePlan::none()
            .crash(SiteId(1), SimTime(10))
            .crash(SiteId(1), SimTime(20));
        net.apply_failure_plan(&plan);
        assert_eq!(net.step(), Some(Event::SiteCrashed(SiteId(1))));
        assert!(net.step().is_none(), "second crash is a no-op");
    }

    #[test]
    fn timers_fire_in_order_and_die_with_site() {
        let mut net = mesh(2);
        net.schedule_timer(SiteId(0), Duration::from_millis(5), 7);
        net.schedule_timer(SiteId(1), Duration::from_millis(1), 9);
        net.schedule_timer(SiteId(1), Duration::from_millis(10), 11);
        assert_eq!(
            net.step(),
            Some(Event::Timer {
                site: SiteId(1),
                key: 9
            })
        );
        assert_eq!(
            net.step(),
            Some(Event::Timer {
                site: SiteId(0),
                key: 7
            })
        );
        net.crash_now(SiteId(1));
        assert!(net.step().is_none(), "timer on dead site is discarded");
    }

    #[test]
    fn routing_detours_around_crashed_site() {
        let mut net = SimNet::new(Topology::ring(5, LinkSpec::default()));
        net.crash_now(SiteId(1));
        send_simple(&mut net, 0, 2, 10);
        match net.step().unwrap() {
            Event::Message(m) => assert_eq!(m.hops, 3, "must detour the long way"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sparse_topology_can_become_unreachable() {
        let mut net = SimNet::new(Topology::star(4, LinkSpec::default()));
        net.crash_now(SiteId(0)); // hub down
        let err = net
            .send(SendOptions {
                from: SiteId(1),
                to: SiteId(2),
                payload: vec![],
                kind: 0,
                transport: TransportKind::Tcp,
                custody: false,
            })
            .unwrap_err();
        assert_eq!(
            err,
            NetError::Unreachable {
                from: SiteId(1),
                to: SiteId(2)
            }
        );
    }

    #[test]
    fn partition_blocks_and_heals() {
        let mut net = mesh(4);
        net.partition(&[SiteId(0), SiteId(1)]);
        assert!(net.is_blocked(SiteId(0), SiteId(2)));
        assert!(!net.is_blocked(SiteId(0), SiteId(1)));
        let err = net
            .send(SendOptions {
                from: SiteId(0),
                to: SiteId(3),
                payload: vec![],
                kind: 0,
                transport: TransportKind::Tcp,
                custody: false,
            })
            .unwrap_err();
        assert_eq!(
            err,
            NetError::Unreachable {
                from: SiteId(0),
                to: SiteId(3)
            }
        );
        // Inside the partition traffic still flows.
        assert!(net
            .send(SendOptions {
                from: SiteId(0),
                to: SiteId(1),
                payload: vec![],
                kind: 0,
                transport: TransportKind::Tcp,
                custody: false,
            })
            .is_ok());
        net.heal_partition();
        assert!(net
            .send(SendOptions {
                from: SiteId(0),
                to: SiteId(3),
                payload: vec![],
                kind: 0,
                transport: TransportKind::Tcp,
                custody: false,
            })
            .is_ok());
    }

    #[test]
    fn route_epoch_bumps_on_liveness_and_partition_changes() {
        let mut net = mesh(4);
        assert_eq!(net.route_epoch(), 0);
        net.crash_now(SiteId(1));
        assert_eq!(net.route_epoch(), 1);
        net.crash_now(SiteId(1)); // idempotent: no state change, no bump
        assert_eq!(net.route_epoch(), 1);
        net.recover_now(SiteId(1));
        assert_eq!(net.route_epoch(), 2);
        net.partition(&[SiteId(0), SiteId(1)]);
        assert_eq!(net.route_epoch(), 3);
        net.heal_partition();
        assert_eq!(net.route_epoch(), 4);
        net.heal_partition(); // nothing to heal, no bump
        assert_eq!(net.route_epoch(), 4);
        net.edit_topology(|t| t.remove_link(SiteId(0), SiteId(1)));
        assert_eq!(net.route_epoch(), 5);
    }

    #[test]
    fn repeated_sends_hit_the_route_cache() {
        let mut net = SimNet::new(Topology::ring(8, LinkSpec::default()));
        for _ in 0..10 {
            send_simple(&mut net, 0, 4, 16);
        }
        let (queries, bfs) = net.routing_work();
        assert_eq!(queries, 10);
        assert_eq!(bfs, 1, "one BFS must serve all ten sends");
        // A crash invalidates: the next send recomputes, once.
        net.crash_now(SiteId(1));
        send_simple(&mut net, 0, 4, 16);
        send_simple(&mut net, 0, 4, 16);
        assert_eq!(net.routing_work(), (12, 2));
    }

    #[test]
    fn uncached_mode_recomputes_every_send() {
        let mut net = SimNet::new(Topology::ring(8, LinkSpec::default()));
        net.set_route_cache(false);
        for _ in 0..5 {
            send_simple(&mut net, 0, 3, 16);
        }
        assert_eq!(net.routing_work(), (5, 5));
    }

    #[test]
    fn partitioned_route_stays_inside_the_group_when_a_path_exists() {
        // Chain 0-1-2-3 plus a shortcut through 4.  Partition {0,1,2,3}:
        // the shortcut is severed but the in-group chain still routes.
        let mut t = Topology::empty(5);
        t.add_link(SiteId(0), SiteId(1), LinkSpec::default());
        t.add_link(SiteId(1), SiteId(2), LinkSpec::default());
        t.add_link(SiteId(2), SiteId(3), LinkSpec::default());
        t.add_link(SiteId(0), SiteId(4), LinkSpec::default());
        t.add_link(SiteId(4), SiteId(3), LinkSpec::default());
        let mut net = SimNet::new(t);
        send_simple(&mut net, 0, 3, 8);
        match net.step().unwrap() {
            Event::Message(m) => assert_eq!(m.hops, 2, "shortcut via 4"),
            other => panic!("unexpected {other:?}"),
        }
        net.partition(&[SiteId(0), SiteId(1), SiteId(2), SiteId(3)]);
        send_simple(&mut net, 0, 3, 8);
        match net.step().unwrap() {
            Event::Message(m) => assert_eq!(m.hops, 3, "must detour inside the group"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rsh_transport_is_slower_than_tcp() {
        let mut net_rsh = mesh(2);
        let mut net_tcp = mesh(2);
        net_rsh
            .send(SendOptions {
                from: SiteId(0),
                to: SiteId(1),
                payload: vec![0; 100],
                kind: 0,
                transport: TransportKind::Rsh,
                custody: false,
            })
            .unwrap();
        net_tcp
            .send(SendOptions {
                from: SiteId(0),
                to: SiteId(1),
                payload: vec![0; 100],
                kind: 0,
                transport: TransportKind::Tcp,
                custody: false,
            })
            .unwrap();
        net_rsh.step();
        net_tcp.step();
        assert!(net_rsh.now() > net_tcp.now());
    }

    #[test]
    fn peek_and_pending_counts() {
        let mut net = mesh(2);
        assert!(!net.has_pending());
        assert!(net.peek_time().is_none());
        send_simple(&mut net, 0, 1, 1);
        net.schedule_timer(SiteId(0), Duration::from_secs(1), 1);
        assert_eq!(net.pending_count(), 2);
        assert!(net.peek_time().unwrap() < SimTime(1_000_000));
    }
}
