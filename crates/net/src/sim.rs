//! The discrete-event simulator core: message delivery, timers, failures.
//!
//! [`SimNet`] owns a priority queue of pending events ordered by simulated
//! time (ties broken by insertion order, so runs are deterministic).  The
//! TACOMA kernel ([`tacoma-core`]'s `TacomaSystem`) drives the simulation by
//! calling [`SimNet::send`] / [`SimNet::schedule_timer`] and repeatedly
//! popping events with [`SimNet::step`].
//!
//! Failure semantics follow the paper's §5 model: when a site crashes, agents
//! resident there vanish (that is enforced by the core layer), messages in
//! flight *to* the site are dropped, and established transport streams through
//! it are torn down.  Messages are routed over the shortest path of live
//! sites, so a crash can also make two live sites temporarily unreachable on
//! sparse topologies.

use crate::failure::{FailureAction, FailurePlan};
use crate::metrics::NetMetrics;
use crate::routing::Router;
use crate::time::{Duration, SimTime};
use crate::topology::Topology;
use crate::transport::{Transport, TransportKind};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};
use tacoma_util::SiteId;

/// Identifier of a message accepted by [`SimNet::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MessageId(pub u64);

/// Errors returned by the simulator's send/schedule operations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetError {
    /// The source site is down.
    SourceDown(SiteId),
    /// The destination site is down.
    DestinationDown(SiteId),
    /// No live path exists between source and destination.
    Unreachable {
        /// Sending site.
        from: SiteId,
        /// Intended destination.
        to: SiteId,
    },
    /// A site id was outside the topology.
    UnknownSite(SiteId),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::SourceDown(s) => write!(f, "source {s} is down"),
            NetError::DestinationDown(s) => write!(f, "destination {s} is down"),
            NetError::Unreachable { from, to } => write!(f, "no live path from {from} to {to}"),
            NetError::UnknownSite(s) => write!(f, "unknown site {s}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Parameters of a single message send.
#[derive(Debug, Clone)]
pub struct SendOptions {
    /// Sending site.
    pub from: SiteId,
    /// Destination site.
    pub to: SiteId,
    /// Application payload carried to the destination.
    pub payload: Vec<u8>,
    /// Application-defined message kind (the core layer uses this to tell
    /// meet requests, meet replies and control traffic apart).
    pub kind: u16,
    /// Transport personality to charge overhead with.
    pub transport: TransportKind,
}

/// A message delivered to its destination site.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveredMessage {
    /// The id assigned at send time.
    pub id: MessageId,
    /// Original sender.
    pub from: SiteId,
    /// Destination (the site the event is delivered at).
    pub to: SiteId,
    /// Application payload.
    pub payload: Vec<u8>,
    /// Application-defined message kind.
    pub kind: u16,
    /// When the message was sent.
    pub sent_at: SimTime,
    /// Number of link hops the message traversed.
    pub hops: u32,
}

/// An event surfaced to the driver of the simulation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// A message arrived at its destination.
    Message(DeliveredMessage),
    /// A timer scheduled with [`SimNet::schedule_timer`] fired.
    Timer {
        /// Site the timer belongs to.
        site: SiteId,
        /// Caller-chosen key identifying the timer.
        key: u64,
    },
    /// A site crashed (from the failure plan or an explicit call).
    SiteCrashed(SiteId),
    /// A site recovered.
    SiteRecovered(SiteId),
}

/// Internal queued event payload.
#[derive(Debug, Clone)]
enum Pending {
    Deliver(DeliveredMessage),
    Timer { site: SiteId, key: u64 },
    Failure { site: SiteId, action: FailureAction },
}

/// Heap entry ordered by (time, sequence number).
#[derive(Debug, Clone)]
struct QueuedEvent {
    at: SimTime,
    seq: u64,
    pending: Pending,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The deterministic discrete-event network simulator.
#[derive(Debug)]
pub struct SimNet {
    router: Router,
    up: Vec<bool>,
    clock: SimTime,
    queue: BinaryHeap<Reverse<QueuedEvent>>,
    seq: u64,
    next_msg_id: u64,
    transport: Transport,
    metrics: NetMetrics,
    blocked_pairs: BTreeSet<(SiteId, SiteId)>,
}

impl SimNet {
    /// Creates a simulator over `topology` with every site up.
    pub fn new(topology: Topology) -> Self {
        let sites = topology.site_count() as usize;
        SimNet {
            router: Router::new(topology),
            up: vec![true; sites],
            clock: SimTime::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
            next_msg_id: 1,
            transport: Transport::new(),
            metrics: NetMetrics::new(),
            blocked_pairs: BTreeSet::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of sites in the topology.
    pub fn site_count(&self) -> u32 {
        self.router.topology().site_count()
    }

    /// Whether `site` is currently up.
    pub fn is_up(&self, site: SiteId) -> bool {
        self.up.get(site.index()).copied().unwrap_or(false)
    }

    /// The routing oracle (topology + shortest paths).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Accumulated byte/message counters.
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }

    /// Resets the byte/message counters (the clock keeps running).
    pub fn reset_metrics(&mut self) {
        self.metrics.reset();
    }

    /// Schedules every event of a failure plan.
    pub fn apply_failure_plan(&mut self, plan: &FailurePlan) {
        for ev in plan.events() {
            self.push(
                ev.at,
                Pending::Failure {
                    site: ev.site,
                    action: ev.action,
                },
            );
        }
    }

    /// Crashes a site immediately.
    pub fn crash_now(&mut self, site: SiteId) {
        self.apply_failure(site, FailureAction::Crash);
    }

    /// Recovers a site immediately.
    pub fn recover_now(&mut self, site: SiteId) {
        self.apply_failure(site, FailureAction::Recover);
    }

    /// Installs a partition: messages between the listed group and all other
    /// sites are blocked until [`SimNet::heal_partition`] is called.
    pub fn partition(&mut self, group: &[SiteId]) {
        let group: BTreeSet<SiteId> = group.iter().copied().collect();
        for a in self.router.topology().sites() {
            for b in self.router.topology().sites() {
                if a < b && group.contains(&a) != group.contains(&b) {
                    self.blocked_pairs.insert((a, b));
                }
            }
        }
    }

    /// Removes every partition-induced block.
    pub fn heal_partition(&mut self) {
        self.blocked_pairs.clear();
    }

    /// Whether direct communication between two sites is blocked by a partition.
    pub fn is_blocked(&self, a: SiteId, b: SiteId) -> bool {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.blocked_pairs.contains(&key)
    }

    /// Schedules a timer on `site` to fire after `delay`, tagged with `key`.
    pub fn schedule_timer(&mut self, site: SiteId, delay: Duration, key: u64) {
        let at = self.clock + delay;
        self.push(at, Pending::Timer { site, key });
    }

    /// Sends a message, charging latency, bandwidth and transport overhead on
    /// every hop of the shortest live path from `from` to `to`.
    ///
    /// Local sends (`from == to`) are delivered after a fixed small kernel
    /// overhead without touching the network counters.
    pub fn send(&mut self, opts: SendOptions) -> Result<MessageId, NetError> {
        let SendOptions {
            from,
            to,
            payload,
            kind,
            transport,
        } = opts;
        let sites = self.site_count();
        if from.0 >= sites {
            return Err(NetError::UnknownSite(from));
        }
        if to.0 >= sites {
            return Err(NetError::UnknownSite(to));
        }
        if !self.is_up(from) {
            return Err(NetError::SourceDown(from));
        }
        if !self.is_up(to) {
            return Err(NetError::DestinationDown(to));
        }

        let id = MessageId(self.next_msg_id);
        self.next_msg_id += 1;

        if from == to {
            // Local delivery: a small constant kernel cost, no network bytes.
            let msg = DeliveredMessage {
                id,
                from,
                to,
                payload,
                kind,
                sent_at: self.clock,
                hops: 0,
            };
            self.metrics.record_send(from);
            let at = self.clock + Duration::from_micros(10);
            self.push(at, Pending::Deliver(msg));
            return Ok(id);
        }

        // Route over live, unpartitioned sites.
        let blocked = self.blocked_pairs.clone();
        let up = self.up.clone();
        let alive = |s: SiteId| up.get(s.index()).copied().unwrap_or(false);
        let path = self
            .router
            .shortest_path(from, to, alive)
            .filter(|p| {
                p.windows(2)
                    .all(|w| !blocked.contains(&Self::pair(w[0], w[1])))
            })
            .ok_or(NetError::Unreachable { from, to })?;

        let payload_len = payload.len() as u64;
        let overhead = self.transport.overhead(transport, from, to);
        let mut delay = overhead.setup_latency;
        let wire_bytes = payload_len + overhead.extra_bytes;
        for hop in path.windows(2) {
            let (a, b) = (hop[0], hop[1]);
            let spec = self
                .router
                .topology()
                .link(a, b)
                .copied()
                .unwrap_or_default();
            delay += spec.transfer_time(wire_bytes);
            self.metrics.record_hop(a, b, wire_bytes);
        }
        self.metrics.record_send(from);

        let msg = DeliveredMessage {
            id,
            from,
            to,
            payload,
            kind,
            sent_at: self.clock,
            hops: (path.len() - 1) as u32,
        };
        let at = self.clock + delay;
        self.push(at, Pending::Deliver(msg));
        Ok(id)
    }

    /// Advances to the next event and returns it, or `None` if the queue is
    /// empty.  Dropped deliveries (dead destination) are consumed internally
    /// and do not surface.
    pub fn step(&mut self) -> Option<Event> {
        loop {
            let Reverse(ev) = self.queue.pop()?;
            debug_assert!(ev.at >= self.clock, "time must not go backwards");
            self.clock = self.clock.max(ev.at);
            match ev.pending {
                Pending::Deliver(msg) => {
                    if self.is_up(msg.to) {
                        self.metrics.record_delivery(msg.to);
                        return Some(Event::Message(msg));
                    }
                    self.metrics.record_drop();
                    // Keep looping: the drop is not surfaced.
                }
                Pending::Timer { site, key } => {
                    if self.is_up(site) {
                        return Some(Event::Timer { site, key });
                    }
                    // Timers on dead sites are silently discarded.
                }
                Pending::Failure { site, action } => {
                    let changed = self.apply_failure(site, action);
                    if changed {
                        return Some(match action {
                            FailureAction::Crash => Event::SiteCrashed(site),
                            FailureAction::Recover => Event::SiteRecovered(site),
                        });
                    }
                }
            }
        }
    }

    /// The time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse(ev)| ev.at)
    }

    /// Whether any events are pending.
    pub fn has_pending(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Number of pending events (messages in flight, timers, failures).
    pub fn pending_count(&self) -> usize {
        self.queue.len()
    }

    fn apply_failure(&mut self, site: SiteId, action: FailureAction) -> bool {
        let Some(slot) = self.up.get_mut(site.index()) else {
            return false;
        };
        match action {
            FailureAction::Crash => {
                if !*slot {
                    return false;
                }
                *slot = false;
                self.transport.drop_streams_of(site);
                true
            }
            FailureAction::Recover => {
                if *slot {
                    return false;
                }
                *slot = true;
                true
            }
        }
    }

    fn push(&mut self, at: SimTime, pending: Pending) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(QueuedEvent { at, seq, pending }));
    }

    fn pair(a: SiteId, b: SiteId) -> (SiteId, SiteId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkSpec;

    fn mesh(n: u32) -> SimNet {
        SimNet::new(Topology::full_mesh(n, LinkSpec::default()))
    }

    fn send_simple(net: &mut SimNet, from: u32, to: u32, bytes: usize) -> MessageId {
        net.send(SendOptions {
            from: SiteId(from),
            to: SiteId(to),
            payload: vec![0u8; bytes],
            kind: 1,
            transport: TransportKind::Tcp,
        })
        .expect("send should succeed")
    }

    #[test]
    fn message_is_delivered_in_order_of_time() {
        let mut net = mesh(3);
        let id1 = send_simple(&mut net, 0, 1, 10);
        let id2 = send_simple(&mut net, 0, 2, 10_000_000); // much larger, arrives later
        let ev1 = net.step().unwrap();
        match ev1 {
            Event::Message(m) => assert_eq!(m.id, id1),
            other => panic!("expected message, got {other:?}"),
        }
        let ev2 = net.step().unwrap();
        match ev2 {
            Event::Message(m) => {
                assert_eq!(m.id, id2);
                assert_eq!(m.hops, 1);
            }
            other => panic!("expected message, got {other:?}"),
        }
        assert!(net.step().is_none());
        assert!(net.now() > SimTime::ZERO);
    }

    #[test]
    fn local_send_has_no_network_bytes() {
        let mut net = mesh(2);
        send_simple(&mut net, 1, 1, 500);
        let ev = net.step().unwrap();
        assert!(matches!(ev, Event::Message(ref m) if m.hops == 0));
        assert_eq!(net.metrics().total_bytes().get(), 0);
        assert_eq!(net.metrics().total_messages(), 1);
    }

    #[test]
    fn bytes_charged_per_hop_on_ring() {
        let mut net = SimNet::new(Topology::ring(4, LinkSpec::default()));
        // 0 -> 2 is two hops on a 4-ring.
        send_simple(&mut net, 0, 2, 1000);
        let ev = net.step().unwrap();
        match ev {
            Event::Message(m) => assert_eq!(m.hops, 2),
            other => panic!("unexpected {other:?}"),
        }
        // Wire bytes = payload + tcp first-contact overhead (128), charged twice.
        assert_eq!(net.metrics().total_bytes().get(), 2 * (1000 + 128));
        assert_eq!(net.metrics().total_hops(), 2);
    }

    #[test]
    fn send_to_dead_site_fails_fast() {
        let mut net = mesh(3);
        net.crash_now(SiteId(2));
        let err = net
            .send(SendOptions {
                from: SiteId(0),
                to: SiteId(2),
                payload: vec![],
                kind: 0,
                transport: TransportKind::Tcp,
            })
            .unwrap_err();
        assert_eq!(err, NetError::DestinationDown(SiteId(2)));
        let err = net
            .send(SendOptions {
                from: SiteId(2),
                to: SiteId(0),
                payload: vec![],
                kind: 0,
                transport: TransportKind::Tcp,
            })
            .unwrap_err();
        assert_eq!(err, NetError::SourceDown(SiteId(2)));
    }

    #[test]
    fn unknown_site_rejected() {
        let mut net = mesh(2);
        let err = net
            .send(SendOptions {
                from: SiteId(0),
                to: SiteId(9),
                payload: vec![],
                kind: 0,
                transport: TransportKind::Tcp,
            })
            .unwrap_err();
        assert_eq!(err, NetError::UnknownSite(SiteId(9)));
    }

    #[test]
    fn message_in_flight_to_crashing_site_is_dropped() {
        let mut net = mesh(2);
        send_simple(&mut net, 0, 1, 100);
        net.crash_now(SiteId(1));
        assert!(net.step().is_none(), "delivery should be swallowed");
        assert_eq!(net.metrics().dropped_messages(), 1);
    }

    #[test]
    fn scheduled_failure_plan_surfaces_events() {
        let mut net = mesh(2);
        let plan =
            FailurePlan::none().outage(SiteId(1), SimTime(1_000), Duration::from_micros(500));
        net.apply_failure_plan(&plan);
        assert_eq!(net.step(), Some(Event::SiteCrashed(SiteId(1))));
        assert!(!net.is_up(SiteId(1)));
        assert_eq!(net.step(), Some(Event::SiteRecovered(SiteId(1))));
        assert!(net.is_up(SiteId(1)));
        assert_eq!(net.now(), SimTime(1_500));
    }

    #[test]
    fn duplicate_crash_is_idempotent() {
        let mut net = mesh(2);
        let plan = FailurePlan::none()
            .crash(SiteId(1), SimTime(10))
            .crash(SiteId(1), SimTime(20));
        net.apply_failure_plan(&plan);
        assert_eq!(net.step(), Some(Event::SiteCrashed(SiteId(1))));
        assert!(net.step().is_none(), "second crash is a no-op");
    }

    #[test]
    fn timers_fire_in_order_and_die_with_site() {
        let mut net = mesh(2);
        net.schedule_timer(SiteId(0), Duration::from_millis(5), 7);
        net.schedule_timer(SiteId(1), Duration::from_millis(1), 9);
        net.schedule_timer(SiteId(1), Duration::from_millis(10), 11);
        assert_eq!(
            net.step(),
            Some(Event::Timer {
                site: SiteId(1),
                key: 9
            })
        );
        assert_eq!(
            net.step(),
            Some(Event::Timer {
                site: SiteId(0),
                key: 7
            })
        );
        net.crash_now(SiteId(1));
        assert!(net.step().is_none(), "timer on dead site is discarded");
    }

    #[test]
    fn routing_detours_around_crashed_site() {
        let mut net = SimNet::new(Topology::ring(5, LinkSpec::default()));
        net.crash_now(SiteId(1));
        send_simple(&mut net, 0, 2, 10);
        match net.step().unwrap() {
            Event::Message(m) => assert_eq!(m.hops, 3, "must detour the long way"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sparse_topology_can_become_unreachable() {
        let mut net = SimNet::new(Topology::star(4, LinkSpec::default()));
        net.crash_now(SiteId(0)); // hub down
        let err = net
            .send(SendOptions {
                from: SiteId(1),
                to: SiteId(2),
                payload: vec![],
                kind: 0,
                transport: TransportKind::Tcp,
            })
            .unwrap_err();
        assert_eq!(
            err,
            NetError::Unreachable {
                from: SiteId(1),
                to: SiteId(2)
            }
        );
    }

    #[test]
    fn partition_blocks_and_heals() {
        let mut net = mesh(4);
        net.partition(&[SiteId(0), SiteId(1)]);
        assert!(net.is_blocked(SiteId(0), SiteId(2)));
        assert!(!net.is_blocked(SiteId(0), SiteId(1)));
        let err = net
            .send(SendOptions {
                from: SiteId(0),
                to: SiteId(3),
                payload: vec![],
                kind: 0,
                transport: TransportKind::Tcp,
            })
            .unwrap_err();
        assert_eq!(
            err,
            NetError::Unreachable {
                from: SiteId(0),
                to: SiteId(3)
            }
        );
        // Inside the partition traffic still flows.
        assert!(net
            .send(SendOptions {
                from: SiteId(0),
                to: SiteId(1),
                payload: vec![],
                kind: 0,
                transport: TransportKind::Tcp,
            })
            .is_ok());
        net.heal_partition();
        assert!(net
            .send(SendOptions {
                from: SiteId(0),
                to: SiteId(3),
                payload: vec![],
                kind: 0,
                transport: TransportKind::Tcp,
            })
            .is_ok());
    }

    #[test]
    fn rsh_transport_is_slower_than_tcp() {
        let mut net_rsh = mesh(2);
        let mut net_tcp = mesh(2);
        net_rsh
            .send(SendOptions {
                from: SiteId(0),
                to: SiteId(1),
                payload: vec![0; 100],
                kind: 0,
                transport: TransportKind::Rsh,
            })
            .unwrap();
        net_tcp
            .send(SendOptions {
                from: SiteId(0),
                to: SiteId(1),
                payload: vec![0; 100],
                kind: 0,
                transport: TransportKind::Tcp,
            })
            .unwrap();
        net_rsh.step();
        net_tcp.step();
        assert!(net_rsh.now() > net_tcp.now());
    }

    #[test]
    fn peek_and_pending_counts() {
        let mut net = mesh(2);
        assert!(!net.has_pending());
        assert!(net.peek_time().is_none());
        send_simple(&mut net, 0, 1, 1);
        net.schedule_timer(SiteId(0), Duration::from_secs(1), 1);
        assert_eq!(net.pending_count(), 2);
        assert!(net.peek_time().unwrap() < SimTime(1_000_000));
    }
}
