//! Shard planning: carving a topology into per-shard event domains.
//!
//! The sharded simulator cores (the serial argmin merge inside
//! [`crate::sim::SimNet`] and the conservatively-synchronized parallel engine
//! in [`crate::parallel`]) both need the same two pieces of information:
//!
//! * **which shard owns which site** — every event fires *at* a site
//!   (a delivery at its destination, a timer/failure/custody alarm at its
//!   site), so a site→shard map partitions the event queue;
//! * **the lookahead** — the minimum latency of any link that crosses a
//!   shard boundary.  A cross-shard send made at time `t` cannot arrive
//!   before `t + lookahead`, so every shard may safely execute all events in
//!   the window `[w, w + lookahead)` without hearing from its peers.
//!
//! On the ring-of-cliques shape the plan aligns shard boundaries with clique
//! boundaries (cliques are contiguous site ranges), so the only cross-shard
//! links are the WAN gateway links and the lookahead is the WAN latency —
//! tens of milliseconds of safe parallel slack.  Any other shape falls back
//! to contiguous site blocks, which stays correct (the lookahead shrinks to
//! the cheapest severed link) but parallelizes less.

use crate::time::Duration;
use crate::topology::Topology;
use tacoma_util::SiteId;

/// Lookahead to report when no link crosses a shard boundary (one shard, or
/// disconnected shards): any positive window works, so use a generous one.
const UNCOUPLED_LOOKAHEAD: Duration = Duration(1_000_000);

/// A partition of a topology's sites into shards, plus the conservative
/// synchronization window that partition supports.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    shard_of: Vec<u16>,
    shards: u32,
    lookahead: Duration,
}

impl ShardPlan {
    /// Plans `shards` shards over `topology`.  The count is clamped to
    /// `1..=site_count` (and to `u16` range); clique-shaped topologies get
    /// clique-aligned shards, everything else contiguous site blocks.
    pub fn new(topology: &Topology, shards: u32) -> Self {
        let sites = topology.site_count();
        let shards = shards.clamp(1, sites.max(1)).min(u16::MAX as u32);
        let shard_of: Vec<u16> = match topology.clique_size() {
            Some(cs) if cs > 0 => {
                let cliques = sites.div_ceil(cs).max(1);
                let shards = shards.min(cliques);
                (0..sites)
                    .map(|s| {
                        let clique = (s / cs).min(cliques - 1);
                        ((clique as u64 * shards as u64) / cliques as u64) as u16
                    })
                    .collect()
            }
            _ => (0..sites)
                .map(|s| ((s as u64 * shards as u64) / sites.max(1) as u64) as u16)
                .collect(),
        };
        let shards = shard_of.last().map_or(1, |&last| last as u32 + 1);
        let lookahead = topology
            .links()
            .filter(|&(a, b, _)| shard_of[a.index()] != shard_of[b.index()])
            .map(|(_, _, spec)| spec.latency)
            .min()
            .unwrap_or(UNCOUPLED_LOOKAHEAD);
        ShardPlan {
            shard_of,
            shards,
            lookahead,
        }
    }

    /// Number of shards actually planned (≤ the requested count).
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard owning `site`.  Out-of-range sites map to shard 0, so the
    /// plan is total over any `SiteId` the simulator can be handed.
    pub fn shard_of(&self, site: SiteId) -> u16 {
        self.shard_of.get(site.index()).copied().unwrap_or(0)
    }

    /// The conservative window: no event executed in one shard can schedule
    /// an event in another shard sooner than this far in the future.
    pub fn lookahead(&self) -> Duration {
        self.lookahead
    }

    /// The sites of shard `shard`, in ascending id order.  Both planners
    /// assign contiguous, monotone ranges, so concatenating shard 0..n
    /// enumerates all sites in global order — the property the parallel
    /// engine's digest fold relies on.
    pub fn sites_of(&self, shard: u16) -> Vec<SiteId> {
        self.shard_of
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == shard)
            .map(|(i, _)| SiteId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkSpec;

    #[test]
    fn clique_aligned_plan_has_wan_lookahead() {
        let t = Topology::ring_of_cliques(8, 4, LinkSpec::lan(), LinkSpec::wan());
        let plan = ShardPlan::new(&t, 4);
        assert_eq!(plan.shards(), 4);
        // Two whole cliques per shard: sites 0..8 in shard 0, 8..16 in 1, ...
        for s in 0..32u32 {
            assert_eq!(plan.shard_of(SiteId(s)), (s / 8) as u16, "site {s}");
        }
        // The only severed links are WAN gateway links.
        assert_eq!(plan.lookahead(), LinkSpec::wan().latency);
    }

    #[test]
    fn more_shards_than_cliques_clamps_to_cliques() {
        let t = Topology::ring_of_cliques(2, 16, LinkSpec::lan(), LinkSpec::wan());
        let plan = ShardPlan::new(&t, 8);
        assert_eq!(plan.shards(), 2);
        assert_eq!(plan.shard_of(SiteId(15)), 0);
        assert_eq!(plan.shard_of(SiteId(16)), 1);
    }

    #[test]
    fn generic_topology_falls_back_to_contiguous_blocks() {
        let t = Topology::ring(10, LinkSpec::default());
        let plan = ShardPlan::new(&t, 2);
        assert_eq!(plan.shards(), 2);
        assert_eq!(plan.shard_of(SiteId(4)), 0);
        assert_eq!(plan.shard_of(SiteId(5)), 1);
        // The ring's links all share one spec, so severed links carry it.
        assert_eq!(plan.lookahead(), LinkSpec::default().latency);
        assert_eq!(plan.sites_of(1).len(), 5);
    }

    #[test]
    fn single_shard_plan_is_total_and_uncoupled() {
        let t = Topology::full_mesh(5, LinkSpec::lan());
        let plan = ShardPlan::new(&t, 1);
        assert_eq!(plan.shards(), 1);
        assert_eq!(plan.shard_of(SiteId(3)), 0);
        assert_eq!(plan.shard_of(SiteId(999)), 0, "total over any id");
        assert!(plan.lookahead() > LinkSpec::wan().latency);
        assert_eq!(plan.sites_of(0).len(), 5);
    }

    #[test]
    fn shard_ranges_concatenate_to_global_site_order() {
        let t = Topology::ring_of_cliques(6, 3, LinkSpec::lan(), LinkSpec::wan());
        let plan = ShardPlan::new(&t, 4);
        let mut all = Vec::new();
        for shard in 0..plan.shards() as u16 {
            all.extend(plan.sites_of(shard));
        }
        assert_eq!(all, (0..18).map(SiteId).collect::<Vec<_>>());
    }
}
