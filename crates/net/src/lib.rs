//! Deterministic discrete-event network simulator for the TACOMA reproduction.
//!
//! The TACOMA paper (§6) ran on a small testbed of UNIX workstations connected
//! by `rsh`, Tcl/TCP streams, and the Horus group-communication system.  None
//! of the paper's claims depend on absolute hardware speeds; they are about
//! *bytes moved*, *numbers of agents and messages*, and *which computations
//! survive site failures*.  This crate therefore substitutes the testbed with
//! a deterministic discrete-event simulation that measures exactly those
//! quantities and is reproducible from a seed.
//!
//! The simulator provides:
//!
//! * [`topology::Topology`] — sites and links with latency and bandwidth,
//!   plus builders for the standard shapes used by the experiments (ring,
//!   star, grid, full mesh, random connected graphs).
//! * [`sim::SimNet`] — the event queue: message delivery with per-hop latency
//!   and bandwidth charging, timers, scheduled site crashes/recoveries and
//!   network partitions.
//! * [`transport`] — the three transport personalities of the prototype
//!   (`rsh`-like per-message setup, persistent TCP-like streams, Horus-like
//!   group multicast), which differ only in how connection setup overhead is
//!   charged.
//! * [`group::ProcessGroup`] — a small Horus-flavoured process-group layer
//!   (membership views and ordered multicast) used by the fault-tolerance
//!   experiments.
//! * [`metrics::NetMetrics`] — byte and message accounting, the raw material
//!   of the bandwidth-conservation experiment (E1).
//! * [`custody`] — DTN-style store-and-forward custody queues: sends that opt
//!   in are parked across partitions and outages instead of failing fast,
//!   re-attempted on every routing-epoch bump, and expire terminally on TTL
//!   (experiments E13/E14).
//! * [`calendar::CalendarQueue`] — the hierarchical calendar queue behind
//!   every event queue: amortised `O(1)` push/pop over `(time, key)` with
//!   FIFO order at equal timestamps via monotone keys.
//! * [`shard::ShardPlan`] — clique-aligned assignment of sites to event
//!   shards, plus the conservative lookahead (the minimum cross-shard link
//!   latency) that bounds how far shards may run ahead of each other.
//! * [`parallel`] — the sharded discrete-event engine (experiment E17): one
//!   calendar queue per clique shard, windowed conservative synchronization,
//!   and byte-identical outcomes at any shard count.
//! * [`workload`] — open-arrival workload generation (experiments E18/E19):
//!   deterministic per-site arrival streams with heavy-tailed bounded-Pareto
//!   sizes, diurnal rate curves and regional flash crowds; users are modeled
//!   as rate processes, not resident objects.

#![warn(missing_docs)]

pub mod calendar;
pub mod custody;
pub mod failure;
pub mod group;
pub mod metrics;
pub mod parallel;
pub mod routing;
pub mod shard;
pub mod sim;
pub mod time;
pub mod topology;
pub mod transport;
pub mod workload;

pub use calendar::CalendarQueue;
pub use custody::CustodyConfig;
pub use failure::FailurePlan;
pub use group::{GroupEvent, GroupId, ProcessGroup, ViewId};
pub use metrics::NetMetrics;
pub use routing::Router;
pub use shard::ShardPlan;
pub use sim::{DeliveredMessage, Event, ExpiredMessage, MessageId, NetError, SendOptions, SimNet};
pub use time::{Duration, SimTime};
pub use topology::{LinkSpec, Topology, TopologyKind};
pub use transport::{Transport, TransportKind};
pub use workload::{Arrival, FlashCrowd, OpenWorkload, RateCurve, SizeDist};

pub use tacoma_util::SiteId;
