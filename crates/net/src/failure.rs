//! Failure plans: scheduled site crashes and recoveries.
//!
//! Section 5 of the paper assumes "sites in a computer network will fail" and
//! proposes rear-guard agents so a computation survives.  The fault-tolerance
//! experiments (E9) drive the simulator with failure plans built here: either
//! explicit scripted crash/recover events or randomized plans drawn from a
//! seeded generator (crash probability per site per interval, bounded
//! downtime).

use crate::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};
use tacoma_util::{DetRng, SiteId};

/// What happens to a site at a scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureAction {
    /// The site crashes: resident agents vanish, in-flight messages to it drop.
    Crash,
    /// The site recovers with empty volatile state (file cabinets may have
    /// been snapshotted by the core layer; that is the core layer's business).
    Recover,
}

/// One scheduled failure event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureEvent {
    /// When the action takes effect.
    pub at: SimTime,
    /// Which site is affected.
    pub site: SiteId,
    /// Crash or recover.
    pub action: FailureAction,
}

/// An ordered list of scheduled crash/recover events.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FailurePlan {
    events: Vec<FailureEvent>,
}

impl FailurePlan {
    /// An empty plan (no failures).
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds a crash of `site` at time `at`.
    pub fn crash(mut self, site: SiteId, at: SimTime) -> Self {
        self.events.push(FailureEvent {
            at,
            site,
            action: FailureAction::Crash,
        });
        self
    }

    /// Adds a recovery of `site` at time `at`.
    pub fn recover(mut self, site: SiteId, at: SimTime) -> Self {
        self.events.push(FailureEvent {
            at,
            site,
            action: FailureAction::Recover,
        });
        self
    }

    /// Adds a crash at `at` followed by a recovery after `downtime`.
    pub fn outage(self, site: SiteId, at: SimTime, downtime: Duration) -> Self {
        self.crash(site, at).recover(site, at + downtime)
    }

    /// Builds a randomized plan: each site other than those in `spare` crashes
    /// independently with probability `crash_prob`, at a uniformly random time
    /// in `[0, horizon)`, and recovers after a uniformly random downtime in
    /// `[min_down, max_down]`.
    pub fn random(
        rng: &mut DetRng,
        sites: u32,
        spare: &[SiteId],
        crash_prob: f64,
        horizon: Duration,
        min_down: Duration,
        max_down: Duration,
    ) -> Self {
        let mut plan = FailurePlan::none();
        for s in 0..sites {
            let site = SiteId(s);
            if spare.contains(&site) || !rng.chance(crash_prob) {
                continue;
            }
            let at = SimTime(rng.next_below(horizon.micros().max(1)));
            let down = Duration(
                rng.range_u64(min_down.micros(), max_down.micros().max(min_down.micros())),
            );
            plan = plan.outage(site, at, down);
        }
        plan
    }

    /// The scheduled events, sorted by time (stable for equal times).
    pub fn events(&self) -> Vec<FailureEvent> {
        let mut evs = self.events.clone();
        evs.sort_by_key(|e| e.at);
        evs
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The set of sites that crash at least once under this plan.
    pub fn crashed_sites(&self) -> Vec<SiteId> {
        let mut sites: Vec<SiteId> = self
            .events
            .iter()
            .filter(|e| e.action == FailureAction::Crash)
            .map(|e| e.site)
            .collect();
        sites.sort_unstable();
        sites.dedup();
        sites
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_sorting() {
        let plan = FailurePlan::none()
            .crash(SiteId(2), SimTime(500))
            .recover(SiteId(2), SimTime(900))
            .crash(SiteId(1), SimTime(100));
        assert_eq!(plan.len(), 3);
        let evs = plan.events();
        assert_eq!(evs[0].site, SiteId(1));
        assert_eq!(evs[1].at, SimTime(500));
        assert_eq!(plan.crashed_sites(), vec![SiteId(1), SiteId(2)]);
    }

    #[test]
    fn outage_produces_pair() {
        let plan =
            FailurePlan::none().outage(SiteId(3), SimTime(1_000), Duration::from_micros(250));
        let evs = plan.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].action, FailureAction::Crash);
        assert_eq!(evs[1].action, FailureAction::Recover);
        assert_eq!(evs[1].at, SimTime(1_250));
    }

    #[test]
    fn random_plan_respects_spares_and_probability() {
        let mut rng = DetRng::new(9);
        let plan = FailurePlan::random(
            &mut rng,
            20,
            &[SiteId(0)],
            1.0,
            Duration::from_secs(10),
            Duration::from_millis(10),
            Duration::from_millis(50),
        );
        // Every non-spare site crashes exactly once with p=1.
        assert_eq!(plan.crashed_sites().len(), 19);
        assert!(!plan.crashed_sites().contains(&SiteId(0)));

        let mut rng = DetRng::new(9);
        let quiet = FailurePlan::random(
            &mut rng,
            20,
            &[],
            0.0,
            Duration::from_secs(10),
            Duration::from_millis(10),
            Duration::from_millis(50),
        );
        assert!(quiet.is_empty());
    }

    #[test]
    fn random_plan_is_deterministic_per_seed() {
        let mk = || {
            let mut rng = DetRng::new(1234);
            FailurePlan::random(
                &mut rng,
                10,
                &[],
                0.5,
                Duration::from_secs(5),
                Duration::from_millis(1),
                Duration::from_millis(100),
            )
        };
        assert_eq!(mk().events(), mk().events());
    }
}
