//! Store-and-forward custody queues: the delayed-but-delivered half of the
//! paper's partition story.
//!
//! The paper motivates mobile agents precisely for unreliable, partition-prone
//! WANs (StormCast's far-north sites, §6), yet a fail-fast simulator turns
//! every partition into an immediate `NetError::Unreachable`.  When a
//! [`crate::sim::SendOptions`] opts into custody and the simulator has a
//! custody store installed ([`crate::sim::SimNet::set_custody`]), a send with
//! no live path is instead *parked* at a custodian site — the sender, or the
//! furthest site toward the destination the message can still reach — and
//! re-attempted whenever the routing epoch bumps (crash, recovery, partition,
//! heal, topology edit).  This mirrors DTN-style custody transfer: bounded
//! per-site queues, a TTL after which the message expires terminally, and
//! stable storage (a custodian crash does not lose parked messages, just like
//! flushed cabinets survive site crashes).
//!
//! The store itself is deliberately dumb — bounded FIFO queues plus removal
//! by id — so every delivery/expiry decision stays inside the simulator's
//! deterministic event loop.

use crate::sim::DeliveredMessage;
use crate::time::{Duration, SimTime};
use crate::transport::TransportKind;
use std::collections::VecDeque;
use tacoma_util::SiteId;

/// Configuration of the custody subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CustodyConfig {
    /// Maximum number of messages parked at any one site.  A send that would
    /// overflow the custodian's queue fails fast with
    /// [`crate::sim::NetError::CustodyFull`].
    pub capacity: usize,
    /// Lifetime of a custodied message, measured from its original send.  A
    /// message still undelivered when the TTL elapses surfaces as a terminal
    /// [`crate::sim::Event::MessageExpired`].
    pub ttl: Duration,
}

impl Default for CustodyConfig {
    fn default() -> Self {
        CustodyConfig {
            capacity: 64,
            ttl: Duration::from_secs(30),
        }
    }
}

/// One message held in custody: the (eventual) delivery plus what the
/// simulator needs to retry or expire it.
#[derive(Debug, Clone)]
pub(crate) struct Parked {
    /// The message as it will eventually be delivered (`hops` accumulates
    /// across partial legs).
    pub msg: DeliveredMessage,
    /// Transport personality to charge re-delivery with.
    pub transport: TransportKind,
    /// Instant the message expires (original send time + TTL).
    pub expires_at: SimTime,
}

/// Per-site bounded custody queues.
///
/// Parked messages live on *stable storage*: a custodian crash neither drops
/// nor reorders its queue — delivery attempts simply skip custodians that are
/// down and resume on their recovery epoch bump.
#[derive(Debug)]
pub(crate) struct CustodyStore {
    config: CustodyConfig,
    queues: Vec<VecDeque<Parked>>,
}

impl CustodyStore {
    /// Creates an empty store for `sites` sites.
    pub fn new(sites: u32, config: CustodyConfig) -> Self {
        CustodyStore {
            config,
            queues: (0..sites).map(|_| VecDeque::new()).collect(),
        }
    }

    /// The configuration the store was created with.
    pub fn config(&self) -> CustodyConfig {
        self.config
    }

    /// Messages currently parked at `site`.
    pub fn len(&self, site: SiteId) -> usize {
        self.queues.get(site.index()).map_or(0, VecDeque::len)
    }

    /// Messages currently parked across all sites.
    pub fn total_len(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Whether `site`'s queue is at capacity.
    pub fn is_full(&self, site: SiteId) -> bool {
        self.len(site) >= self.config.capacity
    }

    /// Parks a message at `site`.  When the queue is full the message is
    /// handed back in `Err` — the caller owns the rejection.
    pub fn push(&mut self, site: SiteId, parked: Parked) -> Result<(), Parked> {
        let Some(queue) = self.queues.get_mut(site.index()) else {
            return Err(parked);
        };
        if queue.len() >= self.config.capacity {
            return Err(parked);
        }
        queue.push_back(parked);
        Ok(())
    }

    /// Removes the message with `id` from `site`'s queue, if still parked.
    pub fn remove(&mut self, site: SiteId, id: crate::sim::MessageId) -> Option<Parked> {
        let queue = self.queues.get_mut(site.index())?;
        let pos = queue.iter().position(|p| p.msg.id == id)?;
        queue.remove(pos)
    }

    /// Takes `site`'s whole queue out for a re-delivery sweep; pair with
    /// [`CustodyStore::restore_queue`].
    pub fn take_queue(&mut self, site: SiteId) -> VecDeque<Parked> {
        self.queues
            .get_mut(site.index())
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Puts the still-stuck remainder of a sweep back (FIFO order preserved).
    pub fn restore_queue(&mut self, site: SiteId, queue: VecDeque<Parked>) {
        if let Some(slot) = self.queues.get_mut(site.index()) {
            debug_assert!(slot.is_empty(), "restore must follow take");
            *slot = queue;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::MessageId;

    fn parked(id: u64) -> Parked {
        Parked {
            msg: DeliveredMessage {
                id: MessageId(id),
                from: SiteId(0),
                to: SiteId(1),
                payload: vec![0; 10],
                kind: 1,
                sent_at: SimTime::ZERO,
                hops: 0,
            },
            transport: TransportKind::Tcp,
            expires_at: SimTime(1_000),
        }
    }

    #[test]
    fn queues_are_bounded_and_fifo() {
        let mut store = CustodyStore::new(
            2,
            CustodyConfig {
                capacity: 2,
                ttl: Duration::from_millis(1),
            },
        );
        assert!(store.push(SiteId(0), parked(1)).is_ok());
        assert!(store.push(SiteId(0), parked(2)).is_ok());
        assert!(store.is_full(SiteId(0)));
        assert!(store.push(SiteId(0), parked(3)).is_err(), "over capacity");
        assert_eq!(store.len(SiteId(0)), 2);
        assert_eq!(store.total_len(), 2);
        let queue = store.take_queue(SiteId(0));
        let ids: Vec<u64> = queue.iter().map(|p| p.msg.id.0).collect();
        assert_eq!(ids, [1, 2], "FIFO order");
        store.restore_queue(SiteId(0), queue);
        assert_eq!(store.len(SiteId(0)), 2);
    }

    #[test]
    fn remove_by_id_hits_once() {
        let mut store = CustodyStore::new(1, CustodyConfig::default());
        store.push(SiteId(0), parked(7)).unwrap();
        assert!(store.remove(SiteId(0), MessageId(9)).is_none());
        assert!(store.remove(SiteId(0), MessageId(7)).is_some());
        assert!(store.remove(SiteId(0), MessageId(7)).is_none());
        assert_eq!(store.total_len(), 0);
    }

    #[test]
    fn out_of_range_sites_are_rejected() {
        let mut store = CustodyStore::new(1, CustodyConfig::default());
        assert!(store.push(SiteId(5), parked(1)).is_err());
        assert_eq!(store.len(SiteId(5)), 0);
        assert!(!store.is_full(SiteId(5)));
    }
}
