//! Transport personalities.
//!
//! The TACOMA prototype (§6) had three implementations of the `rexec`
//! mechanism: one spawning a remote Tcl interpreter with UNIX `rsh`, one
//! using persistent Tcl/TCP channels, and one in progress on top of the Horus
//! group-communication system.  For the purposes of the paper's claims the
//! difference between them is *where connection-setup overhead is paid*:
//!
//! * [`TransportKind::Rsh`] pays a large setup cost on **every** message
//!   (a fresh remote shell and interpreter per migration);
//! * [`TransportKind::Tcp`] pays a handshake the **first** time a pair of
//!   sites talks and a small framing overhead afterwards;
//! * [`TransportKind::Horus`] pays a moderate per-message cost but supports
//!   multicast to a process group in a single logical send.
//!
//! The migration-cost experiment (E3) sweeps these personalities.

use crate::time::Duration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use tacoma_util::SiteId;

/// Which transport personality a message is sent over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum TransportKind {
    /// Spawn-per-message, like `rsh` starting a remote interpreter.
    Rsh,
    /// Persistent per-pair streams, like Tcl/TCP channels.
    #[default]
    Tcp,
    /// Group-communication flavoured transport (Horus).
    Horus,
}

impl TransportKind {
    /// All personalities, in the order the experiments report them.
    pub const ALL: [TransportKind; 3] =
        [TransportKind::Rsh, TransportKind::Tcp, TransportKind::Horus];

    /// Human-readable label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            TransportKind::Rsh => "rsh",
            TransportKind::Tcp => "tcp",
            TransportKind::Horus => "horus",
        }
    }
}

/// Per-transport connection state and overhead accounting.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Transport {
    /// Pairs of sites with an established TCP-like stream.
    established: BTreeSet<(SiteId, SiteId)>,
}

/// Overhead charged to one message by its transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportOverhead {
    /// Extra latency added before the first hop.
    pub setup_latency: Duration,
    /// Extra bytes added to the payload on every hop (headers, spawn command).
    pub extra_bytes: u64,
}

impl Transport {
    /// Creates a transport with no established connections.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes the overhead for a message from `from` to `to` over `kind`,
    /// updating connection state (TCP streams become established).
    pub fn overhead(&mut self, kind: TransportKind, from: SiteId, to: SiteId) -> TransportOverhead {
        match kind {
            TransportKind::Rsh => TransportOverhead {
                // Spawning a remote shell and a fresh interpreter is expensive.
                setup_latency: Duration::from_millis(250),
                extra_bytes: 512,
            },
            TransportKind::Tcp => {
                let key = Self::pair(from, to);
                if self.established.insert(key) {
                    TransportOverhead {
                        // Three-way handshake on first contact.
                        setup_latency: Duration::from_millis(6),
                        extra_bytes: 128,
                    }
                } else {
                    TransportOverhead {
                        setup_latency: Duration::ZERO,
                        extra_bytes: 64,
                    }
                }
            }
            TransportKind::Horus => TransportOverhead {
                // Group communication stack: moderate fixed cost, larger
                // header carrying view and ordering metadata.
                setup_latency: Duration::from_millis(1),
                extra_bytes: 200,
            },
        }
    }

    /// Whether a TCP-like stream between the two sites is already established.
    pub fn is_established(&self, a: SiteId, b: SiteId) -> bool {
        self.established.contains(&Self::pair(a, b))
    }

    /// Drops every established stream touching `site` (used on site crash).
    pub fn drop_streams_of(&mut self, site: SiteId) {
        self.established.retain(|&(a, b)| a != site && b != site);
    }

    /// Number of currently established streams.
    pub fn established_count(&self) -> usize {
        self.established.len()
    }

    fn pair(a: SiteId, b: SiteId) -> (SiteId, SiteId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rsh_pays_every_time() {
        let mut t = Transport::new();
        let a = t.overhead(TransportKind::Rsh, SiteId(0), SiteId(1));
        let b = t.overhead(TransportKind::Rsh, SiteId(0), SiteId(1));
        assert_eq!(a, b);
        assert!(a.setup_latency > Duration::from_millis(100));
    }

    #[test]
    fn tcp_pays_setup_once_per_pair() {
        let mut t = Transport::new();
        let first = t.overhead(TransportKind::Tcp, SiteId(0), SiteId(1));
        let second = t.overhead(TransportKind::Tcp, SiteId(1), SiteId(0));
        assert!(first.setup_latency > Duration::ZERO);
        assert_eq!(second.setup_latency, Duration::ZERO);
        assert!(t.is_established(SiteId(0), SiteId(1)));
        // A different pair pays again.
        let other = t.overhead(TransportKind::Tcp, SiteId(0), SiteId(2));
        assert!(other.setup_latency > Duration::ZERO);
        assert_eq!(t.established_count(), 2);
    }

    #[test]
    fn crash_drops_streams() {
        let mut t = Transport::new();
        t.overhead(TransportKind::Tcp, SiteId(0), SiteId(1));
        t.overhead(TransportKind::Tcp, SiteId(1), SiteId(2));
        t.overhead(TransportKind::Tcp, SiteId(2), SiteId(3));
        t.drop_streams_of(SiteId(1));
        assert!(!t.is_established(SiteId(0), SiteId(1)));
        assert!(!t.is_established(SiteId(1), SiteId(2)));
        assert!(t.is_established(SiteId(2), SiteId(3)));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(TransportKind::Rsh.label(), "rsh");
        assert_eq!(TransportKind::Tcp.label(), "tcp");
        assert_eq!(TransportKind::Horus.label(), "horus");
        assert_eq!(TransportKind::ALL.len(), 3);
        assert_eq!(TransportKind::default(), TransportKind::Tcp);
    }

    #[test]
    fn horus_has_larger_headers_than_tcp_steady_state() {
        let mut t = Transport::new();
        t.overhead(TransportKind::Tcp, SiteId(0), SiteId(1));
        let tcp = t.overhead(TransportKind::Tcp, SiteId(0), SiteId(1));
        let horus = t.overhead(TransportKind::Horus, SiteId(0), SiteId(1));
        assert!(horus.extra_bytes > tcp.extra_bytes);
    }
}
