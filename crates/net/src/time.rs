//! Simulated time.
//!
//! The simulator runs on virtual time measured in microseconds.  All latency
//! and bandwidth parameters in [`crate::topology`] are expressed in these
//! units, so experiment results are deterministic and independent of the host
//! machine.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds since the start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(pub u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Raw microsecond value.
    pub fn micros(self) -> u64 {
        self.0
    }

    /// The time expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The time expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration elapsed since an earlier instant (saturating).
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Builds a duration from microseconds.
    pub fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    /// Builds a duration from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }

    /// Builds a duration from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000)
    }

    /// Builds a duration from fractional seconds, rounding to microseconds.
    pub fn from_secs_f64(s: f64) -> Self {
        Duration((s.max(0.0) * 1_000_000.0).round() as u64)
    }

    /// Raw microsecond value.
    pub fn micros(self) -> u64 {
        self.0
    }

    /// The duration expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiplies the duration by an integer factor (saturating).
    pub fn times(self, factor: u64) -> Duration {
        Duration(self.0.saturating_mul(factor))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(Duration::from_millis(3).micros(), 3_000);
        assert_eq!(Duration::from_secs(2).micros(), 2_000_000);
        assert_eq!(Duration::from_secs_f64(0.5).micros(), 500_000);
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
        assert_eq!(SimTime(1_500).as_millis_f64(), 1.5);
        assert_eq!(SimTime(2_000_000).as_secs_f64(), 2.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + Duration::from_millis(10);
        assert_eq!(t, SimTime(10_000));
        let mut t2 = t;
        t2 += Duration::from_micros(5);
        assert_eq!(t2 - t, Duration(5));
        assert_eq!(t.since(t2), Duration::ZERO, "since saturates");
        assert_eq!(Duration(3).times(4), Duration(12));
        let mut d = Duration(1);
        d += Duration(2);
        assert_eq!(d + Duration(3), Duration(6));
    }

    #[test]
    fn saturating_behaviour() {
        let huge = SimTime(u64::MAX);
        assert_eq!(huge + Duration(10), SimTime(u64::MAX));
        assert_eq!(Duration(u64::MAX).times(2), Duration(u64::MAX));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Duration(500).to_string(), "500µs");
        assert_eq!(Duration(2_500).to_string(), "2.500ms");
        assert_eq!(Duration(1_500_000).to_string(), "1.500s");
        assert_eq!(SimTime(1_000).to_string(), "t=1.000ms");
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert!(Duration(1) < Duration(2));
    }
}
