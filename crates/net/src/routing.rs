//! Shortest-path routing over a topology.
//!
//! The paper's agents migrate between arbitrary sites; when the topology is
//! not a full mesh the simulator routes a message over the shortest live path
//! (fewest hops, BFS) and charges every hop's latency, serialization time and
//! byte counters.  §4 of the paper remarks that broker state dissemination
//! "seems to be equivalent to routing in a wide-area network"; the routing
//! table built here is also reused by the scheduling crate for that purpose.

use crate::topology::Topology;
use std::collections::{BTreeMap, VecDeque};
use tacoma_util::SiteId;

/// A routing oracle that answers shortest-path queries over a topology,
/// honouring a per-site liveness mask.
#[derive(Debug, Clone)]
pub struct Router {
    topology: Topology,
}

impl Router {
    /// Creates a router for the given topology.
    pub fn new(topology: Topology) -> Self {
        Router { topology }
    }

    /// Read access to the underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable access, for dynamic link changes (partitions heal, links die).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// The shortest path from `src` to `dst` visiting only sites for which
    /// `alive` returns true (the endpoints must also be alive).  Returns the
    /// full path including both endpoints, or `None` if unreachable.
    pub fn shortest_path(
        &self,
        src: SiteId,
        dst: SiteId,
        alive: impl Fn(SiteId) -> bool,
    ) -> Option<Vec<SiteId>> {
        if !alive(src) || !alive(dst) {
            return None;
        }
        if src == dst {
            return Some(vec![src]);
        }
        let mut prev: BTreeMap<SiteId, SiteId> = BTreeMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(src);
        prev.insert(src, src);
        while let Some(cur) = queue.pop_front() {
            for n in self.topology.neighbors(cur) {
                if !alive(n) || prev.contains_key(&n) {
                    continue;
                }
                prev.insert(n, cur);
                if n == dst {
                    // Reconstruct.
                    let mut path = vec![dst];
                    let mut at = dst;
                    while at != src {
                        at = prev[&at];
                        path.push(at);
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(n);
            }
        }
        None
    }

    /// Number of hops on the shortest live path, or `None` if unreachable.
    pub fn hop_count(
        &self,
        src: SiteId,
        dst: SiteId,
        alive: impl Fn(SiteId) -> bool,
    ) -> Option<usize> {
        self.shortest_path(src, dst, alive)
            .map(|p| p.len().saturating_sub(1))
    }

    /// All sites reachable from `src` over live sites (including `src`).
    pub fn reachable_from(&self, src: SiteId, alive: impl Fn(SiteId) -> bool) -> Vec<SiteId> {
        if !alive(src) {
            return Vec::new();
        }
        let mut seen = BTreeMap::new();
        let mut queue = VecDeque::new();
        seen.insert(src, ());
        queue.push_back(src);
        while let Some(cur) = queue.pop_front() {
            for n in self.topology.neighbors(cur) {
                if alive(n) && seen.insert(n, ()).is_none() {
                    queue.push_back(n);
                }
            }
        }
        seen.into_keys().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkSpec;

    fn all_alive(_: SiteId) -> bool {
        true
    }

    #[test]
    fn path_on_ring() {
        let r = Router::new(Topology::ring(6, LinkSpec::default()));
        let p = r.shortest_path(SiteId(0), SiteId(2), all_alive).unwrap();
        assert_eq!(p, vec![SiteId(0), SiteId(1), SiteId(2)]);
        assert_eq!(r.hop_count(SiteId(0), SiteId(3), all_alive), Some(3));
        assert_eq!(r.hop_count(SiteId(0), SiteId(0), all_alive), Some(0));
    }

    #[test]
    fn path_avoids_dead_sites() {
        let r = Router::new(Topology::ring(6, LinkSpec::default()));
        // Kill site 1: 0 -> 2 must go the long way around.
        let alive = |s: SiteId| s != SiteId(1);
        let p = r.shortest_path(SiteId(0), SiteId(2), alive).unwrap();
        assert_eq!(
            p,
            vec![SiteId(0), SiteId(5), SiteId(4), SiteId(3), SiteId(2)]
        );
    }

    #[test]
    fn unreachable_when_cut() {
        let mut t = Topology::empty(4);
        t.add_link(SiteId(0), SiteId(1), LinkSpec::default());
        t.add_link(SiteId(2), SiteId(3), LinkSpec::default());
        let r = Router::new(t);
        assert!(r.shortest_path(SiteId(0), SiteId(3), all_alive).is_none());
        assert_eq!(
            r.reachable_from(SiteId(0), all_alive),
            vec![SiteId(0), SiteId(1)]
        );
    }

    #[test]
    fn dead_endpoint_is_unreachable() {
        let r = Router::new(Topology::full_mesh(3, LinkSpec::default()));
        let alive = |s: SiteId| s != SiteId(2);
        assert!(r.shortest_path(SiteId(0), SiteId(2), alive).is_none());
        assert!(r.shortest_path(SiteId(2), SiteId(0), alive).is_none());
        assert!(r.reachable_from(SiteId(2), alive).is_empty());
    }

    #[test]
    fn full_mesh_is_single_hop() {
        let r = Router::new(Topology::full_mesh(5, LinkSpec::default()));
        for dst in 1..5 {
            assert_eq!(r.hop_count(SiteId(0), SiteId(dst), all_alive), Some(1));
        }
    }
}
