//! Shortest-path routing over a topology, with a cached fast path.
//!
//! The paper's agents migrate between arbitrary sites; when the topology is
//! not a full mesh the simulator routes a message over the shortest live path
//! (fewest hops, BFS) and charges every hop's latency, serialization time and
//! byte counters.  §4 of the paper remarks that broker state dissemination
//! "seems to be equivalent to routing in a wide-area network"; the routing
//! table built here is also reused by the scheduling crate for that purpose.
//!
//! # The fast path
//!
//! Recomputing a BFS on every send caps topology size, exactly as
//! per-destination flooding would cap a real WAN.  [`Router`] therefore keeps
//! an **epoch-invalidated route cache**: [`Router::route`] answers a
//! `(from, to)` query from the cache whenever the cached entry was computed
//! at the caller's current *epoch*, and recomputes (and re-caches) it
//! otherwise.  The epoch is owned by the caller — [`crate::sim::SimNet`]
//! bumps it on every site crash, recovery, partition, heal and topology
//! edit — so invalidation is a single integer compare per query and stale
//! entries are never consulted.  Negative results (unreachable pairs) are
//! cached too; they are exactly as expensive to recompute as positive ones.
//!
//! The BFS itself runs over a precomputed adjacency list with reusable
//! scratch buffers, so even a cache miss allocates nothing beyond the path
//! it returns.  [`Router::route_queries`] and [`Router::bfs_runs`] count the
//! routing work performed; the scale experiments (E11/E12) report both to
//! show the cache's effect, and the cache can be disabled entirely with
//! [`Router::set_cache_enabled`] to provide the uncached reference path the
//! invalidation tests compare against.

use crate::topology::Topology;
use std::collections::{HashMap, VecDeque};
use tacoma_util::SiteId;

/// Sentinel in the BFS predecessor array meaning "not visited yet".
const UNVISITED: u32 = u32::MAX;

/// One cached routing answer: the path (or proven unreachability) that was
/// valid at `epoch`.
#[derive(Debug, Clone)]
struct CacheEntry {
    epoch: u64,
    path: Option<Vec<SiteId>>,
}

/// A routing oracle that answers shortest-path queries over a topology,
/// honouring a per-site liveness mask and a per-edge partition predicate.
#[derive(Debug, Clone)]
pub struct Router {
    topology: Topology,
    /// Precomputed adjacency (ascending neighbour order, matching
    /// `Topology::neighbors`), rebuilt on topology edits.
    adj: Vec<Vec<SiteId>>,
    /// `(from, to)` → cached path, validated against the caller's epoch.
    cache: HashMap<(SiteId, SiteId), CacheEntry>,
    cache_enabled: bool,
    route_queries: u64,
    bfs_runs: u64,
    /// Scratch: predecessor per site (`UNVISITED` when not reached).
    prev: Vec<u32>,
    /// Scratch: BFS frontier.
    frontier: VecDeque<SiteId>,
    /// Owner for the borrow `route` returns when the cache is disabled (the
    /// BFS still allocates each returned path; only the scratch buffers are
    /// reused).
    uncached: Option<Vec<SiteId>>,
}

impl Router {
    /// Creates a router for the given topology.
    pub fn new(topology: Topology) -> Self {
        let adj = build_adjacency(&topology);
        let sites = topology.site_count() as usize;
        Router {
            topology,
            adj,
            cache: HashMap::new(),
            cache_enabled: true,
            route_queries: 0,
            bfs_runs: 0,
            prev: vec![UNVISITED; sites],
            frontier: VecDeque::new(),
            uncached: None,
        }
    }

    /// Read access to the underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Edits the topology in place (links die, partitions become permanent),
    /// then rebuilds the adjacency list and drops every cached route.
    ///
    /// Callers that hold a routing epoch (the simulator) must bump it too;
    /// [`crate::sim::SimNet::edit_topology`] does both.
    pub fn edit_topology(&mut self, edit: impl FnOnce(&mut Topology)) {
        edit(&mut self.topology);
        self.adj = build_adjacency(&self.topology);
        self.cache.clear();
    }

    /// Enables or disables the route cache.  Disabling it recomputes a BFS
    /// on every [`Router::route`] call — the reference path the invalidation
    /// tests compare the cached path against, byte for byte.
    pub fn set_cache_enabled(&mut self, enabled: bool) {
        if !enabled {
            self.cache.clear();
        }
        self.cache_enabled = enabled;
    }

    /// Whether the route cache is in use.
    pub fn cache_enabled(&self) -> bool {
        self.cache_enabled
    }

    /// Number of routing queries answered (cache hits and misses alike).
    pub fn route_queries(&self) -> u64 {
        self.route_queries
    }

    /// Number of BFS computations actually performed.  With the cache on,
    /// this is the routing *work*; `route_queries - bfs_runs` is the work
    /// the cache saved.
    pub fn bfs_runs(&self) -> u64 {
        self.bfs_runs
    }

    /// Resets the routing-work counters (the cache itself is kept).
    pub fn reset_route_stats(&mut self) {
        self.route_queries = 0;
        self.bfs_runs = 0;
    }

    /// The shortest live path from `from` to `to` at `epoch`, avoiding dead
    /// sites and blocked (partitioned) edges.  Answers from the cache when a
    /// cached entry carries the same epoch; otherwise runs a BFS and caches
    /// the result under `epoch`.  Returns `None` when unreachable.
    ///
    /// Correctness contract: `alive` and `blocked` must be functions of the
    /// state identified by `epoch` — the caller bumps the epoch whenever
    /// either changes, which is what makes cached answers safe to reuse.
    pub fn route(
        &mut self,
        from: SiteId,
        to: SiteId,
        epoch: u64,
        alive: impl Fn(SiteId) -> bool,
        blocked: impl Fn(SiteId, SiteId) -> bool,
    ) -> Option<&[SiteId]> {
        self.route_queries += 1;
        if self.cache_enabled {
            let fresh = self
                .cache
                .get(&(from, to))
                .is_some_and(|entry| entry.epoch == epoch);
            if !fresh {
                // Stale or absent: recompute, then fill the slot through one
                // entry lookup.  (The freshness probe above must stay a
                // separate `get` — holding its borrow across the `&mut self`
                // BFS call is exactly what the borrow checker forbids.)
                let path = self.bfs(from, to, &alive, &blocked);
                let slot = self
                    .cache
                    .entry((from, to))
                    .or_insert_with(|| CacheEntry { epoch, path: None });
                slot.epoch = epoch;
                slot.path = path;
                return slot.path.as_deref();
            }
            self.cache[&(from, to)].path.as_deref()
        } else {
            self.uncached = self.bfs(from, to, &alive, &blocked);
            self.uncached.as_deref()
        }
    }

    /// The BFS over live sites and unblocked edges, using the reusable
    /// scratch buffers.  Increments `bfs_runs`.
    fn bfs(
        &mut self,
        from: SiteId,
        to: SiteId,
        alive: &impl Fn(SiteId) -> bool,
        blocked: &impl Fn(SiteId, SiteId) -> bool,
    ) -> Option<Vec<SiteId>> {
        self.bfs_runs += 1;
        if !alive(from) || !alive(to) {
            return None;
        }
        if from == to {
            return Some(vec![from]);
        }
        self.prev.clear();
        self.prev.resize(self.adj.len(), UNVISITED);
        self.frontier.clear();
        self.prev[from.index()] = from.0;
        self.frontier.push_back(from);
        while let Some(cur) = self.frontier.pop_front() {
            for &n in &self.adj[cur.index()] {
                if self.prev[n.index()] != UNVISITED || !alive(n) || blocked(cur, n) {
                    continue;
                }
                self.prev[n.index()] = cur.0;
                if n == to {
                    let mut path = vec![to];
                    let mut at = to;
                    while at != from {
                        at = SiteId(self.prev[at.index()]);
                        path.push(at);
                    }
                    path.reverse();
                    return Some(path);
                }
                self.frontier.push_back(n);
            }
        }
        None
    }

    /// The shortest path from `src` to `dst` visiting only sites for which
    /// `alive` returns true (the endpoints must also be alive).  Returns the
    /// full path including both endpoints, or `None` if unreachable.
    ///
    /// This is the uncached, allocation-per-call reference API; the
    /// simulator's hot path goes through [`Router::route`] instead.
    pub fn shortest_path(
        &self,
        src: SiteId,
        dst: SiteId,
        alive: impl Fn(SiteId) -> bool,
    ) -> Option<Vec<SiteId>> {
        if !alive(src) || !alive(dst) {
            return None;
        }
        if src == dst {
            return Some(vec![src]);
        }
        let mut prev = vec![UNVISITED; self.adj.len()];
        let mut queue = VecDeque::new();
        prev[src.index()] = src.0;
        queue.push_back(src);
        while let Some(cur) = queue.pop_front() {
            for &n in &self.adj[cur.index()] {
                if prev[n.index()] != UNVISITED || !alive(n) {
                    continue;
                }
                prev[n.index()] = cur.0;
                if n == dst {
                    let mut path = vec![dst];
                    let mut at = dst;
                    while at != src {
                        at = SiteId(prev[at.index()]);
                        path.push(at);
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(n);
            }
        }
        None
    }

    /// Number of hops on the shortest live path, or `None` if unreachable.
    pub fn hop_count(
        &self,
        src: SiteId,
        dst: SiteId,
        alive: impl Fn(SiteId) -> bool,
    ) -> Option<usize> {
        self.shortest_path(src, dst, alive)
            .map(|p| p.len().saturating_sub(1))
    }

    /// All sites reachable from `src` over live sites (including `src`),
    /// in ascending order.
    pub fn reachable_from(&self, src: SiteId, alive: impl Fn(SiteId) -> bool) -> Vec<SiteId> {
        if !alive(src) {
            return Vec::new();
        }
        let mut seen = vec![false; self.adj.len()];
        let mut queue = VecDeque::new();
        seen[src.index()] = true;
        queue.push_back(src);
        while let Some(cur) = queue.pop_front() {
            for &n in &self.adj[cur.index()] {
                if alive(n) && !seen[n.index()] {
                    seen[n.index()] = true;
                    queue.push_back(n);
                }
            }
        }
        seen.iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(i, _)| SiteId(i as u32))
            .collect()
    }

    /// Reachability of every site from `src` over live sites and unblocked
    /// edges, as a boolean mask (index = site id).  `src` itself is reachable
    /// when alive.  Used by the custody layer to tell "site ahead unreachable
    /// (message parked, wait)" from "site ahead dead (relaunch)".
    pub fn reachable_mask(
        &self,
        src: SiteId,
        alive: impl Fn(SiteId) -> bool,
        blocked: impl Fn(SiteId, SiteId) -> bool,
    ) -> Vec<bool> {
        let mut seen = vec![false; self.adj.len()];
        if src.index() >= seen.len() || !alive(src) {
            return seen;
        }
        let mut queue = VecDeque::new();
        seen[src.index()] = true;
        queue.push_back(src);
        while let Some(cur) = queue.pop_front() {
            for &n in &self.adj[cur.index()] {
                if !seen[n.index()] && alive(n) && !blocked(cur, n) {
                    seen[n.index()] = true;
                    queue.push_back(n);
                }
            }
        }
        seen
    }
}

fn build_adjacency(topology: &Topology) -> Vec<Vec<SiteId>> {
    let mut adj: Vec<Vec<SiteId>> = vec![Vec::new(); topology.site_count() as usize];
    for (a, b, _) in topology.links() {
        adj[a.index()].push(b);
        adj[b.index()].push(a);
    }
    for neighbours in &mut adj {
        neighbours.sort_unstable();
    }
    adj
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkSpec;

    fn all_alive(_: SiteId) -> bool {
        true
    }

    fn unblocked(_: SiteId, _: SiteId) -> bool {
        false
    }

    #[test]
    fn path_on_ring() {
        let r = Router::new(Topology::ring(6, LinkSpec::default()));
        let p = r.shortest_path(SiteId(0), SiteId(2), all_alive).unwrap();
        assert_eq!(p, vec![SiteId(0), SiteId(1), SiteId(2)]);
        assert_eq!(r.hop_count(SiteId(0), SiteId(3), all_alive), Some(3));
        assert_eq!(r.hop_count(SiteId(0), SiteId(0), all_alive), Some(0));
    }

    #[test]
    fn path_avoids_dead_sites() {
        let r = Router::new(Topology::ring(6, LinkSpec::default()));
        // Kill site 1: 0 -> 2 must go the long way around.
        let alive = |s: SiteId| s != SiteId(1);
        let p = r.shortest_path(SiteId(0), SiteId(2), alive).unwrap();
        assert_eq!(
            p,
            vec![SiteId(0), SiteId(5), SiteId(4), SiteId(3), SiteId(2)]
        );
    }

    #[test]
    fn unreachable_when_cut() {
        let mut t = Topology::empty(4);
        t.add_link(SiteId(0), SiteId(1), LinkSpec::default());
        t.add_link(SiteId(2), SiteId(3), LinkSpec::default());
        let r = Router::new(t);
        assert!(r.shortest_path(SiteId(0), SiteId(3), all_alive).is_none());
        assert_eq!(
            r.reachable_from(SiteId(0), all_alive),
            vec![SiteId(0), SiteId(1)]
        );
    }

    #[test]
    fn dead_endpoint_is_unreachable() {
        let r = Router::new(Topology::full_mesh(3, LinkSpec::default()));
        let alive = |s: SiteId| s != SiteId(2);
        assert!(r.shortest_path(SiteId(0), SiteId(2), alive).is_none());
        assert!(r.shortest_path(SiteId(2), SiteId(0), alive).is_none());
        assert!(r.reachable_from(SiteId(2), alive).is_empty());
    }

    #[test]
    fn reachable_mask_honours_liveness_and_blocks() {
        let r = Router::new(Topology::ring(4, LinkSpec::default()));
        let mask = r.reachable_mask(SiteId(0), all_alive, unblocked);
        assert_eq!(mask, vec![true; 4]);
        // Block both edges of site 2: it becomes unreachable, the rest stay.
        let blocked = |a: SiteId, b: SiteId| a == SiteId(2) || b == SiteId(2);
        let mask = r.reachable_mask(SiteId(0), all_alive, blocked);
        assert_eq!(mask, vec![true, true, false, true]);
        // A dead source reaches nothing.
        let mask = r.reachable_mask(SiteId(0), |s| s != SiteId(0), unblocked);
        assert_eq!(mask, vec![false; 4]);
    }

    #[test]
    fn full_mesh_is_single_hop() {
        let r = Router::new(Topology::full_mesh(5, LinkSpec::default()));
        for dst in 1..5 {
            assert_eq!(r.hop_count(SiteId(0), SiteId(dst), all_alive), Some(1));
        }
    }

    #[test]
    fn cached_route_matches_the_reference_path() {
        let mut r = Router::new(Topology::ring(8, LinkSpec::default()));
        for dst in 0..8 {
            let cached = r
                .route(SiteId(0), SiteId(dst), 0, all_alive, unblocked)
                .map(<[SiteId]>::to_vec);
            let reference = r.shortest_path(SiteId(0), SiteId(dst), all_alive);
            assert_eq!(cached, reference, "0 -> {dst}");
        }
    }

    #[test]
    fn cache_hits_do_not_recompute_until_the_epoch_bumps() {
        let mut r = Router::new(Topology::ring(6, LinkSpec::default()));
        for _ in 0..5 {
            r.route(SiteId(0), SiteId(3), 0, all_alive, unblocked);
        }
        assert_eq!(r.route_queries(), 5);
        assert_eq!(r.bfs_runs(), 1, "one computation serves five queries");
        // A new epoch invalidates the entry; the next query recomputes.
        r.route(SiteId(0), SiteId(3), 1, all_alive, unblocked);
        assert_eq!(r.bfs_runs(), 2);
        // And is itself cached again.
        r.route(SiteId(0), SiteId(3), 1, all_alive, unblocked);
        assert_eq!(r.bfs_runs(), 2);
    }

    #[test]
    fn stale_cache_entries_are_never_served() {
        let mut r = Router::new(Topology::ring(5, LinkSpec::default()));
        let p = r
            .route(SiteId(0), SiteId(2), 0, all_alive, unblocked)
            .unwrap()
            .to_vec();
        assert_eq!(p, vec![SiteId(0), SiteId(1), SiteId(2)]);
        // Site 1 dies and the caller bumps the epoch: the detour is found.
        let alive = |s: SiteId| s != SiteId(1);
        let p = r
            .route(SiteId(0), SiteId(2), 1, alive, unblocked)
            .unwrap()
            .to_vec();
        assert_eq!(p, vec![SiteId(0), SiteId(4), SiteId(3), SiteId(2)]);
    }

    #[test]
    fn unreachable_answers_are_cached_too() {
        let mut r = Router::new(Topology::star(4, LinkSpec::default()));
        let alive = |s: SiteId| s != SiteId(0); // hub down
        for _ in 0..4 {
            assert!(r.route(SiteId(1), SiteId(2), 7, alive, unblocked).is_none());
        }
        assert_eq!(r.bfs_runs(), 1, "negative result must be cached");
    }

    #[test]
    fn blocked_edges_are_avoided_not_just_rejected() {
        // 0-1-2-3 chain inside the group, plus a shortcut through outside
        // site 4 (0-4, 4-3).  With the 4-edges blocked the route must take
        // the longer in-group path instead of failing.
        let mut t = Topology::empty(5);
        t.add_link(SiteId(0), SiteId(1), LinkSpec::default());
        t.add_link(SiteId(1), SiteId(2), LinkSpec::default());
        t.add_link(SiteId(2), SiteId(3), LinkSpec::default());
        t.add_link(SiteId(0), SiteId(4), LinkSpec::default());
        t.add_link(SiteId(4), SiteId(3), LinkSpec::default());
        let mut r = Router::new(t);
        let blocked = |a: SiteId, b: SiteId| a == SiteId(4) || b == SiteId(4);
        let p = r
            .route(SiteId(0), SiteId(3), 0, all_alive, blocked)
            .unwrap()
            .to_vec();
        assert_eq!(p, vec![SiteId(0), SiteId(1), SiteId(2), SiteId(3)]);
        // Unblocked, the shortcut wins.
        let p = r
            .route(SiteId(0), SiteId(3), 1, all_alive, unblocked)
            .unwrap()
            .to_vec();
        assert_eq!(p, vec![SiteId(0), SiteId(4), SiteId(3)]);
    }

    #[test]
    fn disabling_the_cache_recomputes_every_query() {
        let mut r = Router::new(Topology::ring(6, LinkSpec::default()));
        r.set_cache_enabled(false);
        assert!(!r.cache_enabled());
        for _ in 0..3 {
            r.route(SiteId(0), SiteId(3), 0, all_alive, unblocked);
        }
        assert_eq!(r.route_queries(), 3);
        assert_eq!(r.bfs_runs(), 3);
        r.reset_route_stats();
        assert_eq!((r.route_queries(), r.bfs_runs()), (0, 0));
    }

    #[test]
    fn topology_edits_rebuild_adjacency_and_drop_the_cache() {
        let mut r = Router::new(Topology::ring(4, LinkSpec::default()));
        let p = r
            .route(SiteId(0), SiteId(2), 0, all_alive, unblocked)
            .unwrap()
            .to_vec();
        assert_eq!(p.len(), 3);
        // Add a chord 0-2; even at the SAME epoch the cache was dropped, so
        // the new single-hop path is found.
        r.edit_topology(|t| t.add_link(SiteId(0), SiteId(2), LinkSpec::default()));
        let p = r
            .route(SiteId(0), SiteId(2), 0, all_alive, unblocked)
            .unwrap()
            .to_vec();
        assert_eq!(p, vec![SiteId(0), SiteId(2)]);
    }
}
