//! Conservatively-synchronized parallel simulation over sharded event queues.
//!
//! [`crate::sim::SimNet`] shards its event *queue* but still executes events
//! one at a time, because the TACOMA kernel above it mutates global state
//! (router cache, metrics, agent tables) on every event.  This module is the
//! other half of the refactor: a discrete-event engine whose per-site state
//! is owned by the shard that runs it, so shards genuinely execute in
//! parallel and only rendezvous when simulated traffic crosses a shard
//! boundary.
//!
//! The synchronization scheme is classic conservative windowing (CMB-style
//! lookahead, the same family dtn7-style node-per-task runtimes land in):
//!
//! 1. all shards agree on the global minimum next-event time `w`;
//! 2. every shard executes its local events in `[w, w + lookahead)` — the
//!    lookahead is the minimum latency of any cross-shard link
//!    ([`crate::shard::ShardPlan::lookahead`]), so no send made during the
//!    window can *arrive* inside it;
//! 3. at the barrier, cross-shard sends are exchanged and the loop repeats.
//!
//! Determinism does not depend on scheduling luck: every event carries a
//! shard-count-invariant key `(origin site, origin sequence)`, queues pop in
//! `(time, key)` order, and outboxes are merged in shard order at the
//! barrier.  Two runs with different `--shards` values therefore execute the
//! exact same event set with the same per-site order, and the per-site
//! digests fold to the same value — a property the concurrency tests (and
//! CI's ThreadSanitizer job) hold the engine to.

use crate::calendar::CalendarQueue;
use crate::shard::ShardPlan;
use crate::time::{Duration, SimTime};
use crate::topology::{LinkSpec, Topology};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::thread;
use tacoma_util::{DetRng, SiteId};

/// Shard-count-invariant event key: the site that created the event and that
/// site's private sequence counter.  Unique per live event, totally ordered,
/// and — unlike [`crate::sim::SimNet`]'s global sequence — independent of
/// how many shards the simulation runs on.
pub type EventKey = (u32, u64);

/// An event as it sits in a shard's queue: where it fires, and what it is.
#[derive(Debug, Clone)]
enum Fire {
    /// A message hop arriving at a site (delivered if the site is the
    /// destination, forwarded otherwise).
    Hop {
        /// Final destination.
        dst: SiteId,
        /// Payload size charged per hop.
        bytes: u32,
        /// Opaque payload word the receiving actor folds into its state.
        tag: u64,
    },
    /// A timer the site scheduled on itself.
    Timer {
        /// Caller-chosen timer key.
        key: u64,
    },
}

/// A queued event: fires at `site` at time `at`.
#[derive(Debug, Clone)]
struct Scheduled {
    at: SimTime,
    key: EventKey,
    site: SiteId,
    fire: Fire,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.key).cmp(&(other.at, other.key))
    }
}

/// What a site does when events fire on it.  Implementations own all their
/// mutable state (the engine gives each site exclusive access), emit effects
/// through [`Effects`], and summarize their final state as a digest.
pub trait SiteActor: Send {
    /// Called once at `t = 0`, before any event fires.
    fn on_start(&mut self, fx: &mut Effects);
    /// A timer scheduled by this site fired.
    fn on_timer(&mut self, key: u64, fx: &mut Effects);
    /// A message addressed to this site arrived.
    fn on_message(&mut self, bytes: u32, tag: u64, fx: &mut Effects);
    /// A commutative-free summary of the final state; the engine folds the
    /// digests in global site order, so the fold is shard-count-invariant.
    fn digest(&self) -> u64;
}

/// Effect buffer handed to actor callbacks: sends and timers are recorded
/// here and applied by the engine after the callback returns (which keeps
/// the actor borrow and the queue borrow disjoint).
#[derive(Debug, Default)]
pub struct Effects {
    now: SimTime,
    site: SiteId,
    sends: Vec<(SiteId, u32, u64)>,
    timers: Vec<(Duration, u64)>,
}

impl Effects {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The site this callback runs on.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Sends `bytes` payload bytes to `to`, carrying `tag`.
    pub fn send(&mut self, to: SiteId, bytes: u32, tag: u64) {
        self.sends.push((to, bytes, tag));
    }

    /// Schedules a timer on this site after `delay`, tagged `key`.
    pub fn timer(&mut self, delay: Duration, key: u64) {
        self.timers.push((delay, key));
    }
}

/// Aggregate outcome of a run.  Every field is a pure function of the
/// simulated event set, so it must be byte-identical across shard counts —
/// `digest` is the witness the experiment tables print.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outcome {
    /// Events executed (hops + timer fires).
    pub events: u64,
    /// Messages that reached their destination.
    pub delivered: u64,
    /// Link hops traversed.
    pub hops: u64,
    /// Payload bytes × hops charged to links.
    pub bytes: u64,
    /// Timer fires.
    pub timers: u64,
    /// Fold of per-site state digests, in global site order.
    pub digest: u64,
    /// Simulated time of the last event.
    pub end: SimTime,
}

/// Per-shard mutable state: contiguous site range, the sites' actors and
/// sequence counters, the shard's calendar queue and counters.
struct Shard<A> {
    /// First site id owned by this shard (sites are contiguous).
    base: u32,
    actors: Vec<A>,
    seqs: Vec<u64>,
    queue: CalendarQueue<EventKey, (SiteId, Fire)>,
    clock: SimTime,
    events: u64,
    delivered: u64,
    hops: u64,
    bytes: u64,
    timers: u64,
    /// Scratch effect buffer, reused across events.
    fx: Effects,
}

/// The parallel engine: a ring-of-cliques world, a shard plan over it, and
/// one shard of actors (with its own calendar queue) per plan shard.
pub struct ParallelSim<A: SiteActor> {
    topology: Topology,
    links: LinkModel,
    plan: ShardPlan,
    shards: Vec<Shard<A>>,
}

impl<A: SiteActor> ParallelSim<A> {
    /// Builds an engine over `topology` split into `shards` shards, with one
    /// actor per site produced by `make_actor` (called in site order).
    pub fn new(topology: Topology, shards: u32, mut make_actor: impl FnMut(SiteId) -> A) -> Self {
        let plan = ShardPlan::new(&topology, shards);
        let shards = (0..plan.shards() as u16)
            .map(|shard| {
                let sites = plan.sites_of(shard);
                let base = sites.first().map_or(0, |s| s.0);
                Shard {
                    base,
                    actors: sites.iter().map(|&s| make_actor(s)).collect(),
                    seqs: vec![0; sites.len()],
                    // A wider wheel than the serial simulator's default:
                    // scale workloads arm whole agendas of timers up front,
                    // and a 2-second window keeps them on the wheel instead
                    // of churning through the overflow heap.
                    queue: CalendarQueue::with_geometry(1_024, 2_048),
                    clock: SimTime::ZERO,
                    events: 0,
                    delivered: 0,
                    hops: 0,
                    bytes: 0,
                    timers: 0,
                    fx: Effects::default(),
                }
            })
            .collect();
        let links = LinkModel::of(&topology);
        ParallelSim {
            topology,
            links,
            plan,
            shards,
        }
    }

    /// Runs every site's `on_start`, then executes windows until quiescent,
    /// and folds the outcome.
    pub fn run(&mut self) -> Outcome {
        let lookahead = self.plan.lookahead();
        // on_start: serial per shard, site order — cheap and deterministic.
        let mut outboxes: Vec<Vec<Scheduled>> = Vec::new();
        for shard in &mut self.shards {
            let mut outbox = Vec::new();
            for i in 0..shard.actors.len() {
                let site = SiteId(shard.base + i as u32);
                shard.fx.now = SimTime::ZERO;
                shard.fx.site = site;
                shard.actors[i].on_start(&mut shard.fx);
                apply_effects(
                    shard,
                    i,
                    &self.topology,
                    self.links,
                    &self.plan,
                    &mut outbox,
                );
            }
            outboxes.push(outbox);
        }
        self.merge(outboxes);

        while let Some(window) = self
            .shards
            .iter()
            .filter_map(|s| s.queue.peek().map(|(at, _)| at))
            .min()
        {
            let until = window + lookahead;
            let outboxes = self.run_window(until);
            self.merge(outboxes);
        }

        let mut outcome = Outcome {
            events: 0,
            delivered: 0,
            hops: 0,
            bytes: 0,
            timers: 0,
            digest: 0x9e37_79b9_7f4a_7c15,
            end: SimTime::ZERO,
        };
        for shard in &self.shards {
            outcome.events += shard.events;
            outcome.delivered += shard.delivered;
            outcome.hops += shard.hops;
            outcome.bytes += shard.bytes;
            outcome.timers += shard.timers;
            outcome.end = outcome.end.max(shard.clock);
            for actor in &shard.actors {
                outcome.digest = mix(outcome.digest ^ actor.digest());
            }
        }
        outcome
    }

    /// Executes one window on every shard — in parallel when there is more
    /// than one — and returns the per-shard outboxes.
    fn run_window(&mut self, until: SimTime) -> Vec<Vec<Scheduled>> {
        let topology = &self.topology;
        let links = self.links;
        let plan = &self.plan;
        if self.shards.len() == 1 {
            return vec![run_shard_window(
                &mut self.shards[0],
                topology,
                links,
                plan,
                until,
            )];
        }
        thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .map(|shard| {
                    scope.spawn(move || run_shard_window(shard, topology, links, plan, until))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        })
    }

    /// Applies the barrier exchange: outboxes are drained in shard order, so
    /// the destination queues receive identical contents regardless of how
    /// the window's threads were scheduled.
    fn merge(&mut self, outboxes: Vec<Vec<Scheduled>>) {
        for outbox in outboxes {
            for ev in outbox {
                let shard = self.plan.shard_of(ev.site) as usize;
                self.shards[shard]
                    .queue
                    .push(ev.at, ev.key, (ev.site, ev.fire));
            }
        }
    }
}

/// O(1) link-spec resolver.  The generic `Topology` stores links in a
/// `BTreeMap`, and a per-hop tree lookup would dwarf the queue work this
/// module exists to optimize; on the clique shape every link is either
/// intra-clique or a gateway link, so two cached specs answer every query.
#[derive(Debug, Clone, Copy)]
enum LinkModel {
    /// Ring-of-cliques: `cs` sites per clique, one spec per link class.
    Clique {
        cs: u32,
        intra: LinkSpec,
        inter: LinkSpec,
    },
    /// Any other shape: consult the topology's link table per hop.
    Table,
}

impl LinkModel {
    fn of(topology: &Topology) -> Self {
        match topology.clique_size() {
            Some(cs) if cs > 0 => {
                let intra = if cs > 1 {
                    topology.link(SiteId(0), SiteId(1)).copied()
                } else {
                    None
                };
                let inter = topology.link(SiteId(0), SiteId(cs)).copied().or(intra);
                LinkModel::Clique {
                    cs,
                    intra: intra.or(inter).unwrap_or_default(),
                    inter: inter.unwrap_or_default(),
                }
            }
            _ => LinkModel::Table,
        }
    }

    fn spec(&self, topology: &Topology, a: SiteId, b: SiteId) -> LinkSpec {
        match *self {
            LinkModel::Clique { cs, intra, inter } => {
                if a.0 / cs == b.0 / cs {
                    intra
                } else {
                    inter
                }
            }
            LinkModel::Table => topology.link(a, b).copied().unwrap_or_default(),
        }
    }
}

/// Digest mixer (splitmix64 finalizer).
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Executes one shard's events in `[clock, until)`, queueing cross-shard
/// traffic into the returned outbox.
fn run_shard_window<A: SiteActor>(
    shard: &mut Shard<A>,
    topology: &Topology,
    links: LinkModel,
    plan: &ShardPlan,
    until: SimTime,
) -> Vec<Scheduled> {
    let mut outbox = Vec::new();
    let own_shard = plan.shard_of(SiteId(shard.base));
    while let Some((at, _)) = shard.queue.peek() {
        if at >= until {
            break;
        }
        let (at, key, (site, fire)) = shard.queue.pop().expect("peeked");
        shard.clock = shard.clock.max(at);
        shard.events += 1;
        let idx = (site.0 - shard.base) as usize;
        match fire {
            Fire::Hop { dst, bytes, tag } => {
                if site == dst {
                    shard.delivered += 1;
                    shard.fx.now = at;
                    shard.fx.site = site;
                    shard.actors[idx].on_message(bytes, tag, &mut shard.fx);
                    apply_effects(shard, idx, topology, links, plan, &mut outbox);
                } else {
                    // Forward one hop along the clique route, keeping the
                    // original key: the message stays one live event.
                    let next = next_hop(topology, site, dst);
                    let spec = links.spec(topology, site, next);
                    shard.hops += 1;
                    shard.bytes += bytes as u64;
                    let arrive = at + spec.transfer_time(bytes as u64);
                    let ev = Scheduled {
                        at: arrive,
                        key,
                        site: next,
                        fire: Fire::Hop { dst, bytes, tag },
                    };
                    if plan.shard_of(next) == own_shard {
                        shard.queue.push(ev.at, ev.key, (ev.site, ev.fire));
                    } else {
                        debug_assert!(
                            arrive >= until,
                            "cross-shard hop inside the window violates lookahead"
                        );
                        outbox.push(ev);
                    }
                }
            }
            Fire::Timer { key } => {
                shard.timers += 1;
                shard.fx.now = at;
                shard.fx.site = site;
                shard.actors[idx].on_timer(key, &mut shard.fx);
                apply_effects(shard, idx, topology, links, plan, &mut outbox);
            }
        }
    }
    outbox
}

/// Drains the shard's effect buffer: assigns origin keys, routes first hops,
/// and enqueues locally or into the outbox.
fn apply_effects<A: SiteActor>(
    shard: &mut Shard<A>,
    idx: usize,
    topology: &Topology,
    links: LinkModel,
    plan: &ShardPlan,
    outbox: &mut Vec<Scheduled>,
) {
    let site = SiteId(shard.base + idx as u32);
    let own_shard = plan.shard_of(site);
    let now = shard.fx.now;
    for (to, bytes, tag) in std::mem::take(&mut shard.fx.sends) {
        let key = (site.0, shard.seqs[idx]);
        shard.seqs[idx] += 1;
        let (next, arrive) = if to == site {
            // Local loopback: a small constant kernel cost.
            (site, now + Duration::from_micros(10))
        } else {
            let next = next_hop(topology, site, to);
            let spec = links.spec(topology, site, next);
            shard.hops += 1;
            shard.bytes += bytes as u64;
            (next, now + spec.transfer_time(bytes as u64))
        };
        let ev = Scheduled {
            at: arrive,
            key,
            site: next,
            fire: Fire::Hop {
                dst: to,
                bytes,
                tag,
            },
        };
        if plan.shard_of(next) == own_shard {
            shard.queue.push(ev.at, ev.key, (ev.site, ev.fire));
        } else {
            outbox.push(ev);
        }
    }
    for (delay, key) in std::mem::take(&mut shard.fx.timers) {
        let seq = shard.seqs[idx];
        shard.seqs[idx] += 1;
        shard
            .queue
            .push(now + delay, (site.0, seq), (site, Fire::Timer { key }));
    }
}

/// Deterministic next hop on a ring-of-cliques topology: intra-clique hops
/// are direct (cliques are fully meshed), cross-clique traffic funnels
/// through its clique gateway and rides the gateway ring the short way
/// (ties break toward ascending clique numbers).
fn next_hop(topology: &Topology, from: SiteId, to: SiteId) -> SiteId {
    let Some(cs) = topology.clique_size().filter(|&cs| cs > 0) else {
        return to;
    };
    let cliques = topology.site_count().div_ceil(cs).max(1);
    let cf = from.0 / cs;
    let ct = to.0 / cs;
    if cf == ct {
        return to;
    }
    let gateway = |c: u32| SiteId(c * cs);
    if from != gateway(cf) {
        return gateway(cf);
    }
    let forward = (ct + cliques - cf) % cliques;
    let backward = (cf + cliques - ct) % cliques;
    let next_clique = if forward <= backward {
        (cf + 1) % cliques
    } else {
        (cf + cliques - 1) % cliques
    };
    gateway(next_clique)
}

/// Runs the same event set through a single global `BinaryHeap` with no
/// windowing — the pre-refactor engine shape.  E17 uses this as its
/// throughput baseline: identical semantics and digests, different queue.
pub fn run_reference<A: SiteActor>(topology: &Topology, mut actors: Vec<A>) -> Outcome {
    let links = LinkModel::of(topology);
    let mut queue: BinaryHeap<Reverse<Scheduled>> = BinaryHeap::new();
    let mut seqs = vec![0u64; actors.len()];
    let mut fx = Effects::default();
    let mut outcome = Outcome {
        events: 0,
        delivered: 0,
        hops: 0,
        bytes: 0,
        timers: 0,
        digest: 0x9e37_79b9_7f4a_7c15,
        end: SimTime::ZERO,
    };
    let emit = |fx: &mut Effects,
                seqs: &mut Vec<u64>,
                queue: &mut BinaryHeap<Reverse<Scheduled>>,
                hops: &mut u64,
                bytes_total: &mut u64| {
        let site = fx.site;
        let now = fx.now;
        for (to, bytes, tag) in std::mem::take(&mut fx.sends) {
            let key = (site.0, seqs[site.index()]);
            seqs[site.index()] += 1;
            let (next, arrive) = if to == site {
                (site, now + Duration::from_micros(10))
            } else {
                let next = next_hop(topology, site, to);
                let spec = links.spec(topology, site, next);
                *hops += 1;
                *bytes_total += bytes as u64;
                (next, now + spec.transfer_time(bytes as u64))
            };
            queue.push(Reverse(Scheduled {
                at: arrive,
                key,
                site: next,
                fire: Fire::Hop {
                    dst: to,
                    bytes,
                    tag,
                },
            }));
        }
        for (delay, key) in std::mem::take(&mut fx.timers) {
            let seq = seqs[site.index()];
            seqs[site.index()] += 1;
            queue.push(Reverse(Scheduled {
                at: now + delay,
                key: (site.0, seq),
                site,
                fire: Fire::Timer { key },
            }));
        }
    };
    for (i, actor) in actors.iter_mut().enumerate() {
        fx.now = SimTime::ZERO;
        fx.site = SiteId(i as u32);
        actor.on_start(&mut fx);
        emit(
            &mut fx,
            &mut seqs,
            &mut queue,
            &mut outcome.hops,
            &mut outcome.bytes,
        );
    }
    while let Some(Reverse(Scheduled {
        at,
        key,
        site,
        fire,
    })) = queue.pop()
    {
        outcome.events += 1;
        outcome.end = outcome.end.max(at);
        match fire {
            Fire::Hop { dst, bytes, tag } => {
                if site == dst {
                    outcome.delivered += 1;
                    fx.now = at;
                    fx.site = site;
                    actors[site.index()].on_message(bytes, tag, &mut fx);
                    emit(
                        &mut fx,
                        &mut seqs,
                        &mut queue,
                        &mut outcome.hops,
                        &mut outcome.bytes,
                    );
                } else {
                    let next = next_hop(topology, site, dst);
                    let spec = links.spec(topology, site, next);
                    outcome.hops += 1;
                    outcome.bytes += bytes as u64;
                    queue.push(Reverse(Scheduled {
                        at: at + spec.transfer_time(bytes as u64),
                        key,
                        site: next,
                        fire: Fire::Hop { dst, bytes, tag },
                    }));
                }
            }
            Fire::Timer { key } => {
                outcome.timers += 1;
                fx.now = at;
                fx.site = site;
                actors[site.index()].on_timer(key, &mut fx);
                emit(
                    &mut fx,
                    &mut seqs,
                    &mut queue,
                    &mut outcome.hops,
                    &mut outcome.bytes,
                );
            }
        }
    }
    for actor in &actors {
        outcome.digest = mix(outcome.digest ^ actor.digest());
    }
    outcome
}

/// Parameters of the gossip workload E17 drives through the engine: every
/// site runs `rounds` fanout rounds of mostly-local gossip with a trickle of
/// cross-clique traffic, the mix that exercises both the intra-shard fast
/// path and the barrier exchange.
#[derive(Debug, Clone, Copy)]
pub struct GossipConfig {
    /// Cliques in the ring.
    pub cliques: u32,
    /// Sites per clique.
    pub clique_size: u32,
    /// Gossip rounds per site.
    pub rounds: u32,
    /// Messages sent per round per site.
    pub fanout: u32,
    /// Per-mille of sends aimed at a random site in another clique.
    pub cross_permille: u32,
    /// Payload bytes per message.
    pub payload: u32,
    /// Microseconds between a site's rounds (jittered per site).
    pub interval_us: u64,
    /// Master seed; per-site streams are derived from it.
    pub seed: u64,
}

impl GossipConfig {
    /// Total sites.
    pub fn sites(&self) -> u32 {
        self.cliques * self.clique_size
    }

    /// The ring-of-cliques topology this workload runs on.
    pub fn topology(&self) -> Topology {
        Topology::ring_of_cliques(
            self.cliques,
            self.clique_size,
            LinkSpec::lan(),
            LinkSpec::wan(),
        )
    }
}

/// Per-site state of the gossip workload.
#[derive(Debug)]
pub struct GossipActor {
    site: SiteId,
    cfg: GossipConfig,
    rng: DetRng,
    round: u32,
    state: u64,
}

impl GossipActor {
    /// Builds the actor for `site`, deriving its RNG stream from the master
    /// seed — shard assignment never touches the stream.
    pub fn new(site: SiteId, cfg: GossipConfig) -> Self {
        GossipActor {
            site,
            cfg,
            rng: DetRng::new(cfg.seed).derive(site.0 as u64),
            round: 0,
            state: mix(cfg.seed ^ site.0 as u64),
        }
    }

    /// A random peer in this site's clique (never itself), or `None` when
    /// the clique has one site.
    fn local_peer(&mut self) -> Option<SiteId> {
        let cs = self.cfg.clique_size;
        if cs <= 1 {
            return None;
        }
        let base = (self.site.0 / cs) * cs;
        let mut pick = base + self.rng.next_below(cs as u64) as u32;
        if pick == self.site.0 {
            pick = base + (pick - base + 1) % cs;
        }
        Some(SiteId(pick))
    }

    /// A random site in a random *other* clique, or `None` with one clique.
    fn remote_peer(&mut self) -> Option<SiteId> {
        if self.cfg.cliques <= 1 {
            return None;
        }
        let own = self.site.0 / self.cfg.clique_size;
        let mut clique = self.rng.next_below(self.cfg.cliques as u64) as u32;
        if clique == own {
            clique = (clique + 1) % self.cfg.cliques;
        }
        let member = self.rng.next_below(self.cfg.clique_size as u64) as u32;
        Some(SiteId(clique * self.cfg.clique_size + member))
    }
}

impl SiteActor for GossipActor {
    fn on_start(&mut self, fx: &mut Effects) {
        // Every round's alarm is armed up front, spread over the horizon:
        // a standing agenda of sites × rounds timers keeps the event queue
        // under realistic pressure for the whole run.
        for round in 0..self.cfg.rounds {
            let jitter = self.rng.next_below(self.cfg.interval_us.max(1));
            let at = self.cfg.interval_us * round as u64 + jitter;
            fx.timer(Duration::from_micros(at), round as u64);
        }
    }

    fn on_timer(&mut self, key: u64, fx: &mut Effects) {
        self.round += 1;
        self.state = mix(self.state ^ key.wrapping_mul(0xa076_1d64_78bd_642f));
        for _ in 0..self.cfg.fanout {
            let cross = self.rng.next_below(1000) < self.cfg.cross_permille as u64;
            let target = if cross {
                self.remote_peer().or_else(|| self.local_peer())
            } else {
                self.local_peer().or_else(|| self.remote_peer())
            };
            let Some(target) = target else { continue };
            let tag = self.rng.next_u64();
            self.state = mix(self.state ^ tag);
            fx.send(target, self.cfg.payload, tag);
        }
    }

    fn on_message(&mut self, bytes: u32, tag: u64, fx: &mut Effects) {
        let _ = fx;
        self.state = mix(self.state ^ tag ^ (bytes as u64).rotate_left(17));
    }

    fn digest(&self) -> u64 {
        mix(self.state ^ ((self.round as u64) << 32) ^ self.site.0 as u64)
    }
}

/// Runs the gossip workload on `shards` shards and returns the outcome.
pub fn run_gossip(cfg: GossipConfig, shards: u32) -> Outcome {
    let mut sim = ParallelSim::new(cfg.topology(), shards, |site| GossipActor::new(site, cfg));
    sim.run()
}

/// Runs the gossip workload through the single-global-heap reference engine.
pub fn run_gossip_reference(cfg: GossipConfig) -> Outcome {
    let topology = cfg.topology();
    let actors = (0..cfg.sites())
        .map(|s| GossipActor::new(SiteId(s), cfg))
        .collect();
    run_reference(&topology, actors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> GossipConfig {
        GossipConfig {
            cliques: 8,
            clique_size: 4,
            rounds: 6,
            fanout: 2,
            cross_permille: 200,
            payload: 256,
            interval_us: 3_000,
            seed: 42,
        }
    }

    #[test]
    fn next_hop_routes_intra_clique_directly() {
        let t = Topology::ring_of_cliques(4, 4, LinkSpec::lan(), LinkSpec::wan());
        assert_eq!(next_hop(&t, SiteId(1), SiteId(3)), SiteId(3));
    }

    #[test]
    fn next_hop_funnels_through_gateways_the_short_way() {
        let t = Topology::ring_of_cliques(6, 4, LinkSpec::lan(), LinkSpec::wan());
        // Non-gateway to another clique: first to the local gateway.
        assert_eq!(next_hop(&t, SiteId(1), SiteId(9)), SiteId(0));
        // Gateway rides the ring forward (clique 0 → 2 is 2 forward, 4 back).
        assert_eq!(next_hop(&t, SiteId(0), SiteId(9)), SiteId(4));
        // ... and backward when shorter (clique 0 → 5 is 1 backward).
        assert_eq!(next_hop(&t, SiteId(0), SiteId(21)), SiteId(20));
        // Arriving gateway hands over to the clique member.
        assert_eq!(next_hop(&t, SiteId(8), SiteId(9)), SiteId(9));
    }

    #[test]
    fn hop_by_hop_route_terminates_at_destination() {
        let t = Topology::ring_of_cliques(6, 4, LinkSpec::lan(), LinkSpec::wan());
        let mut at = SiteId(1);
        let dst = SiteId(18);
        let mut hops = 0;
        while at != dst {
            let next = next_hop(&t, at, dst);
            assert!(t.has_link(at, next), "{at} -> {next} must be a link");
            at = next;
            hops += 1;
            assert!(hops < 32, "route must terminate");
        }
    }

    #[test]
    fn outcome_is_invariant_across_shard_counts() {
        let cfg = small_cfg();
        let one = run_gossip(cfg, 1);
        assert!(one.events > 0 && one.delivered > 0 && one.hops > 0);
        for shards in [2, 4, 8] {
            assert_eq!(run_gossip(cfg, shards), one, "shards = {shards}");
        }
    }

    #[test]
    fn reference_engine_agrees_with_sharded_engine() {
        let cfg = small_cfg();
        assert_eq!(run_gossip_reference(cfg), run_gossip(cfg, 4));
    }

    #[test]
    fn different_seeds_give_different_digests() {
        let a = run_gossip(small_cfg(), 2);
        let b = run_gossip(
            GossipConfig {
                seed: 43,
                ..small_cfg()
            },
            2,
        );
        assert_ne!(a.digest, b.digest);
    }
}
