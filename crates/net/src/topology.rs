//! Network topologies: sites and the links between them.
//!
//! The diffusion experiment (E2) and the scheduling experiment (E7) sweep
//! over topology shapes, so the builders here cover the standard shapes:
//! ring, star, 2-D grid, full mesh, and random connected graphs.  Each link
//! carries a latency and a bandwidth; message transfer time over a link is
//! `latency + size / bandwidth`.

use crate::time::Duration;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use tacoma_util::{DetRng, SiteId};

/// Parameters of a single (bidirectional) link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// One-way propagation latency.
    pub latency: Duration,
    /// Bandwidth in bytes per simulated second.
    pub bandwidth_bytes_per_sec: u64,
}

impl Default for LinkSpec {
    fn default() -> Self {
        // A 1995-flavoured campus LAN: 2 ms latency, 10 Mbit/s ≈ 1.25 MB/s.
        LinkSpec {
            latency: Duration::from_millis(2),
            bandwidth_bytes_per_sec: 1_250_000,
        }
    }
}

impl LinkSpec {
    /// A LAN-class link (sub-millisecond latency, 100 Mbit/s).
    pub fn lan() -> Self {
        LinkSpec {
            latency: Duration::from_micros(500),
            bandwidth_bytes_per_sec: 12_500_000,
        }
    }

    /// A WAN-class link (tens of milliseconds latency, 1.5 Mbit/s T1-ish).
    pub fn wan() -> Self {
        LinkSpec {
            latency: Duration::from_millis(40),
            bandwidth_bytes_per_sec: 190_000,
        }
    }

    /// Time to push `bytes` over this link, including propagation latency.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        let bw = self.bandwidth_bytes_per_sec.max(1);
        let serialization_us = bytes.saturating_mul(1_000_000) / bw;
        self.latency + Duration::from_micros(serialization_us)
    }
}

/// The shape of a generated topology, recorded for experiment reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologyKind {
    /// Every site connected to every other site.
    FullMesh,
    /// Sites in a cycle.
    Ring,
    /// One hub site connected to all others.
    Star,
    /// A rows × cols grid with 4-neighbour links.
    Grid,
    /// A random connected graph.
    Random,
    /// Cliques of sites joined in a ring by gateway links (the scale
    /// experiments' stand-in for LAN clusters on a WAN backbone).
    RingOfCliques,
    /// A hand-built topology.
    Custom,
}

/// A set of sites and the links between them.
///
/// Links are bidirectional and stored once per unordered pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    kind: TopologyKind,
    sites: u32,
    links: BTreeMap<(SiteId, SiteId), LinkSpec>,
    /// For [`TopologyKind::RingOfCliques`]: the number of sites per clique.
    /// The shard planner ([`crate::shard::ShardPlan`]) uses this to align
    /// shard boundaries with clique boundaries, so the only cross-shard links
    /// are the high-latency gateway links that give the scheduler its
    /// lookahead.
    clique_size: Option<u32>,
}

impl Topology {
    /// Creates an empty custom topology with `sites` sites and no links.
    pub fn empty(sites: u32) -> Self {
        Topology {
            kind: TopologyKind::Custom,
            sites,
            links: BTreeMap::new(),
            clique_size: None,
        }
    }

    /// Full mesh over `sites` sites.
    pub fn full_mesh(sites: u32, spec: LinkSpec) -> Self {
        let mut t = Topology::empty(sites);
        t.kind = TopologyKind::FullMesh;
        for a in 0..sites {
            for b in (a + 1)..sites {
                t.add_link(SiteId(a), SiteId(b), spec);
            }
        }
        t
    }

    /// Ring over `sites` sites.
    pub fn ring(sites: u32, spec: LinkSpec) -> Self {
        let mut t = Topology::empty(sites);
        t.kind = TopologyKind::Ring;
        if sites >= 2 {
            for a in 0..sites {
                t.add_link(SiteId(a), SiteId((a + 1) % sites), spec);
            }
        }
        t
    }

    /// Star with `SiteId(0)` as the hub.
    pub fn star(sites: u32, spec: LinkSpec) -> Self {
        let mut t = Topology::empty(sites);
        t.kind = TopologyKind::Star;
        for a in 1..sites {
            t.add_link(SiteId(0), SiteId(a), spec);
        }
        t
    }

    /// `rows × cols` grid with 4-neighbour connectivity.
    pub fn grid(rows: u32, cols: u32, spec: LinkSpec) -> Self {
        let mut t = Topology::empty(rows * cols);
        t.kind = TopologyKind::Grid;
        let id = |r: u32, c: u32| SiteId(r * cols + c);
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    t.add_link(id(r, c), id(r, c + 1), spec);
                }
                if r + 1 < rows {
                    t.add_link(id(r, c), id(r + 1, c), spec);
                }
            }
        }
        t
    }

    /// `cliques` fully-meshed clusters of `clique_size` sites each, joined
    /// in a ring: site 0 of clique `c` (the *gateway*) links to the gateway
    /// of clique `c + 1`.  Intra-clique links use `intra` (typically LAN),
    /// gateway links use `inter` (typically WAN).
    ///
    /// This is the scale-experiment shape (E11/E12): clique-local traffic is
    /// one hop, cross-clique traffic rides the gateway ring, and the longest
    /// route grows with the clique count — a campus-LANs-on-a-WAN picture at
    /// sizes the paper's testbed could only gesture at.
    pub fn ring_of_cliques(
        cliques: u32,
        clique_size: u32,
        intra: LinkSpec,
        inter: LinkSpec,
    ) -> Self {
        let mut t = Topology::empty(cliques * clique_size);
        t.kind = TopologyKind::RingOfCliques;
        t.clique_size = (clique_size > 0).then_some(clique_size);
        let gateway = |c: u32| SiteId(c * clique_size);
        for c in 0..cliques {
            let base = c * clique_size;
            for a in 0..clique_size {
                for b in (a + 1)..clique_size {
                    t.add_link(SiteId(base + a), SiteId(base + b), intra);
                }
            }
        }
        if cliques >= 2 && clique_size >= 1 {
            for c in 0..cliques {
                let next = (c + 1) % cliques;
                if gateway(c) != gateway(next) && !t.has_link(gateway(c), gateway(next)) {
                    t.add_link(gateway(c), gateway(next), inter);
                }
            }
        }
        t
    }

    /// A random connected graph with roughly `extra_edges` edges beyond a
    /// spanning tree, generated deterministically from `rng`.
    pub fn random_connected(
        sites: u32,
        extra_edges: u32,
        spec: LinkSpec,
        rng: &mut DetRng,
    ) -> Self {
        let mut t = Topology::empty(sites);
        t.kind = TopologyKind::Random;
        if sites == 0 {
            return t;
        }
        // Random spanning tree: connect each new site to a random earlier one.
        let mut order: Vec<u32> = (0..sites).collect();
        rng.shuffle(&mut order);
        for i in 1..sites as usize {
            let parent = order[rng.index(i)];
            t.add_link(SiteId(order[i]), SiteId(parent), spec);
        }
        // Extra edges between random distinct pairs.
        let mut added = 0;
        let mut attempts = 0;
        while added < extra_edges && attempts < extra_edges * 20 && sites >= 2 {
            attempts += 1;
            let a = SiteId(rng.next_below(sites as u64) as u32);
            let b = SiteId(rng.next_below(sites as u64) as u32);
            if a != b && !t.has_link(a, b) {
                t.add_link(a, b, spec);
                added += 1;
            }
        }
        t
    }

    /// Number of sites.
    pub fn site_count(&self) -> u32 {
        self.sites
    }

    /// Iterator over all site ids.
    pub fn sites(&self) -> impl Iterator<Item = SiteId> + '_ {
        (0..self.sites).map(SiteId)
    }

    /// The shape this topology was built with.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Sites per clique, when this is a [`TopologyKind::RingOfCliques`]
    /// shape.  `None` for every other shape (shard planning then falls back
    /// to contiguous site blocks).
    pub fn clique_size(&self) -> Option<u32> {
        self.clique_size
    }

    /// Number of (bidirectional) links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Adds (or replaces) the link between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if either site id is out of range or if `a == b`.
    pub fn add_link(&mut self, a: SiteId, b: SiteId, spec: LinkSpec) {
        assert!(a != b, "no self links");
        assert!(a.0 < self.sites && b.0 < self.sites, "site out of range");
        self.links.insert(Self::key(a, b), spec);
    }

    /// Removes the link between `a` and `b`, if present.
    pub fn remove_link(&mut self, a: SiteId, b: SiteId) {
        self.links.remove(&Self::key(a, b));
    }

    /// Returns the link between `a` and `b`, if any.
    pub fn link(&self, a: SiteId, b: SiteId) -> Option<&LinkSpec> {
        self.links.get(&Self::key(a, b))
    }

    /// Whether `a` and `b` are directly connected.
    pub fn has_link(&self, a: SiteId, b: SiteId) -> bool {
        self.links.contains_key(&Self::key(a, b))
    }

    /// All neighbours of `site`, in ascending order.
    pub fn neighbors(&self, site: SiteId) -> Vec<SiteId> {
        let mut out = Vec::new();
        for &(a, b) in self.links.keys() {
            if a == site {
                out.push(b);
            } else if b == site {
                out.push(a);
            }
        }
        out.sort_unstable();
        out
    }

    /// Iterator over all links as `(a, b, spec)` with `a < b`.
    pub fn links(&self) -> impl Iterator<Item = (SiteId, SiteId, &LinkSpec)> + '_ {
        self.links.iter().map(|(&(a, b), spec)| (a, b, spec))
    }

    /// Whether the topology is connected (ignoring site up/down status).
    pub fn is_connected(&self) -> bool {
        if self.sites == 0 {
            return true;
        }
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::new();
        seen.insert(SiteId(0));
        queue.push_back(SiteId(0));
        while let Some(s) = queue.pop_front() {
            for n in self.neighbors(s) {
                if seen.insert(n) {
                    queue.push_back(n);
                }
            }
        }
        seen.len() as u32 == self.sites
    }

    fn key(a: SiteId, b: SiteId) -> (SiteId, SiteId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_mesh_links() {
        let t = Topology::full_mesh(4, LinkSpec::default());
        assert_eq!(t.site_count(), 4);
        assert_eq!(t.link_count(), 6);
        assert!(t.is_connected());
        assert_eq!(t.kind(), TopologyKind::FullMesh);
        assert_eq!(
            t.neighbors(SiteId(0)),
            vec![SiteId(1), SiteId(2), SiteId(3)]
        );
    }

    #[test]
    fn ring_links() {
        let t = Topology::ring(5, LinkSpec::default());
        assert_eq!(t.link_count(), 5);
        assert!(t.is_connected());
        assert_eq!(t.neighbors(SiteId(0)), vec![SiteId(1), SiteId(4)]);
    }

    #[test]
    fn tiny_rings_do_not_panic() {
        assert_eq!(Topology::ring(0, LinkSpec::default()).link_count(), 0);
        assert_eq!(Topology::ring(1, LinkSpec::default()).link_count(), 0);
        // A 2-ring collapses to a single link rather than a duplicate pair.
        assert_eq!(Topology::ring(2, LinkSpec::default()).link_count(), 1);
    }

    #[test]
    fn star_links() {
        let t = Topology::star(6, LinkSpec::default());
        assert_eq!(t.link_count(), 5);
        assert_eq!(t.neighbors(SiteId(0)).len(), 5);
        assert_eq!(t.neighbors(SiteId(3)), vec![SiteId(0)]);
        assert!(t.is_connected());
    }

    #[test]
    fn grid_links() {
        let t = Topology::grid(3, 4, LinkSpec::default());
        assert_eq!(t.site_count(), 12);
        // 3*3 horizontal per row? rows*(cols-1) + cols*(rows-1) = 3*3 + 4*2 = 17
        assert_eq!(t.link_count(), 17);
        assert!(t.is_connected());
        // Corner has 2 neighbours, interior has 4.
        assert_eq!(t.neighbors(SiteId(0)).len(), 2);
        assert_eq!(t.neighbors(SiteId(5)).len(), 4);
    }

    #[test]
    fn ring_of_cliques_links_and_connectivity() {
        let t = Topology::ring_of_cliques(4, 3, LinkSpec::lan(), LinkSpec::wan());
        assert_eq!(t.site_count(), 12);
        assert_eq!(t.kind(), TopologyKind::RingOfCliques);
        // 4 cliques × C(3,2) intra links + 4 gateway links.
        assert_eq!(t.link_count(), 4 * 3 + 4);
        assert!(t.is_connected());
        // Gateways carry the WAN spec, clique members the LAN spec.
        assert_eq!(t.link(SiteId(0), SiteId(3)), Some(&LinkSpec::wan()));
        assert_eq!(t.link(SiteId(0), SiteId(1)), Some(&LinkSpec::lan()));
        // A non-gateway member only sees its own clique.
        assert_eq!(t.neighbors(SiteId(4)), vec![SiteId(3), SiteId(5)]);
        // The clique geometry is recorded for the shard planner.
        assert_eq!(t.clique_size(), Some(3));
        assert_eq!(Topology::ring(4, LinkSpec::default()).clique_size(), None);
    }

    #[test]
    fn degenerate_ring_of_cliques_shapes_hold_together() {
        // Two cliques: one gateway link, not a duplicate pair.
        let t = Topology::ring_of_cliques(2, 2, LinkSpec::default(), LinkSpec::default());
        assert_eq!(t.link_count(), 2 + 1);
        assert!(t.is_connected());
        // One clique: no gateway ring at all.
        let t = Topology::ring_of_cliques(1, 4, LinkSpec::default(), LinkSpec::default());
        assert_eq!(t.link_count(), 6);
        assert!(t.is_connected());
        // Clique size 1 collapses to a plain ring of gateways.
        let t = Topology::ring_of_cliques(5, 1, LinkSpec::default(), LinkSpec::wan());
        assert_eq!(t.link_count(), 5);
        assert!(t.is_connected());
    }

    #[test]
    fn random_is_connected() {
        let mut rng = DetRng::new(42);
        for sites in [1u32, 2, 5, 16, 40] {
            let t = Topology::random_connected(sites, sites / 2, LinkSpec::default(), &mut rng);
            assert!(
                t.is_connected(),
                "random topology with {sites} sites must be connected"
            );
            assert!(t.link_count() >= sites.saturating_sub(1) as usize);
        }
    }

    #[test]
    fn link_lookup_is_symmetric() {
        let mut t = Topology::empty(3);
        t.add_link(SiteId(2), SiteId(1), LinkSpec::lan());
        assert!(t.has_link(SiteId(1), SiteId(2)));
        assert!(t.has_link(SiteId(2), SiteId(1)));
        assert!(t.link(SiteId(1), SiteId(2)).is_some());
        t.remove_link(SiteId(1), SiteId(2));
        assert!(!t.has_link(SiteId(2), SiteId(1)));
    }

    #[test]
    fn disconnected_topology_detected() {
        let mut t = Topology::empty(4);
        t.add_link(SiteId(0), SiteId(1), LinkSpec::default());
        t.add_link(SiteId(2), SiteId(3), LinkSpec::default());
        assert!(!t.is_connected());
    }

    #[test]
    #[should_panic(expected = "no self links")]
    fn self_link_panics() {
        let mut t = Topology::empty(2);
        t.add_link(SiteId(1), SiteId(1), LinkSpec::default());
    }

    #[test]
    fn transfer_time_includes_serialization() {
        let spec = LinkSpec {
            latency: Duration::from_millis(1),
            bandwidth_bytes_per_sec: 1_000_000,
        };
        // 1 MB over 1 MB/s = 1 s + 1 ms latency.
        let t = spec.transfer_time(1_000_000);
        assert_eq!(t, Duration::from_micros(1_001_000));
        // Zero bytes still pays latency.
        assert_eq!(spec.transfer_time(0), Duration::from_millis(1));
    }

    #[test]
    fn wan_is_slower_than_lan() {
        assert!(LinkSpec::wan().transfer_time(10_000) > LinkSpec::lan().transfer_time(10_000));
    }
}
