//! The fault-tolerance experiment driver (E9).
//!
//! Launches a fleet of itinerary-following travellers over a network with a
//! randomized crash schedule and measures how many computations complete with
//! and without rear guards, how much duplicate work relaunching causes, and
//! what the guards cost in extra messages and bytes.

use crate::rear_guard::{
    traveller_briefcase, MissionControlAgent, TravellerAgent, COMPLETED, MISSION_CABINET,
    TRAVELLER, VISITS_CABINET,
};
use tacoma_core::prelude::*;
use tacoma_core::TacomaSystem;
use tacoma_net::{CustodyConfig, FailurePlan, LinkSpec, Topology};
use tacoma_util::DetRng;

/// The shape of the itinerary each traveller follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItineraryShape {
    /// Visit distinct sites in a chain.
    Chain,
    /// Visit sites in a chain and then revisit the first half (a cycle).
    Cycle,
}

/// Parameters of one fault-tolerance run.
#[derive(Debug, Clone)]
pub struct FtConfig {
    /// Number of sites in the (full-mesh) network; site 0 is the origin and
    /// never crashes.
    pub sites: u32,
    /// Length of each traveller's itinerary.
    pub itinerary_len: usize,
    /// Shape of the itinerary.
    pub shape: ItineraryShape,
    /// Number of travellers launched.
    pub travellers: u32,
    /// Probability that each non-origin site suffers one outage during the run.
    pub crash_prob: f64,
    /// Window (milliseconds from the start) in which outages begin.  Keep it
    /// comparable to the travellers' journey time so failures actually
    /// intersect the computations being protected.
    pub crash_window_ms: u64,
    /// Outage duration range (milliseconds).
    pub downtime_ms: (u64, u64),
    /// Whether rear guards are installed.
    pub guarded: bool,
    /// Whether store-and-forward custody is enabled: meets to crashed or
    /// unreachable sites park and deliver on recovery instead of failing
    /// fast, and rear guards wait out custody-pending hops.
    pub custody: bool,
    /// Event-queue shards for the network simulator (`1` = single queue;
    /// any value produces byte-identical results).
    pub sim_shards: u32,
    /// Random seed.
    pub seed: u64,
}

impl Default for FtConfig {
    fn default() -> Self {
        FtConfig {
            sites: 8,
            itinerary_len: 6,
            shape: ItineraryShape::Chain,
            travellers: 20,
            crash_prob: 0.2,
            crash_window_ms: 20,
            downtime_ms: (200, 1_500),
            guarded: true,
            custody: false,
            sim_shards: 1,
            seed: 99,
        }
    }
}

/// What one fault-tolerance run measured.
#[derive(Debug, Clone)]
pub struct FtResult {
    /// Whether rear guards were enabled.
    pub guarded: bool,
    /// Travellers launched.
    pub launched: u32,
    /// Travellers whose completion reached mission control.
    pub completed: u32,
    /// Fraction completed.
    pub completion_rate: f64,
    /// Site-visits performed more than once (relaunch duplicates).
    pub duplicate_visits: u64,
    /// Total meets requested (guard overhead shows up here).
    pub meets: u64,
    /// Total bytes moved over the network.
    pub network_bytes: u64,
    /// Site crashes that actually occurred during the run.
    pub crashes: u64,
    /// Meets that completed successfully.
    pub meets_completed: u64,
    /// Meets that failed at dispatch.
    pub meets_failed: u64,
    /// Sends that failed fast (dead/unreachable destination, full custody queue).
    pub send_failures: u64,
    /// Custodied meets that expired undelivered.
    pub meets_expired: u64,
    /// Messages dropped in flight (zero when custody is enabled).
    pub dropped_messages: u64,
    /// Messages still parked in custody when the run was measured.
    pub custody_backlog: u64,
}

/// Runs one fault-tolerance experiment.
pub fn run_itinerary_experiment(config: &FtConfig) -> FtResult {
    let mut builder = TacomaSystem::builder()
        .topology(Topology::full_mesh(config.sites, LinkSpec::default()))
        .seed(config.seed)
        .shards(config.sim_shards)
        .with_agents(|_| vec![Box::new(TravellerAgent::new()) as Box<dyn Agent>]);
    if config.custody {
        builder = builder.custody(CustodyConfig::default());
    }
    let mut sys = builder.build();
    sys.register_agent(SiteId(0), Box::new(MissionControlAgent::new()));

    // Failure schedule: non-origin sites may suffer one outage each, starting
    // inside the crash window so the outages overlap the travellers' journeys.
    let mut fail_rng = DetRng::new(config.seed ^ 0xFA11);
    let plan = FailurePlan::random(
        &mut fail_rng,
        config.sites,
        &[SiteId(0)],
        config.crash_prob,
        Duration::from_millis(config.crash_window_ms.max(1)),
        Duration::from_millis(config.downtime_ms.0),
        Duration::from_millis(config.downtime_ms.1),
    );
    let crashes = plan.crashed_sites().len() as u64;
    sys.apply_failure_plan(&plan);

    // Launch the travellers with itineraries drawn from the non-origin sites.
    let mut itin_rng = DetRng::new(config.seed ^ 0x17E4);
    for t in 0..config.travellers {
        let mut pool: Vec<SiteId> = (1..config.sites).map(SiteId).collect();
        itin_rng.shuffle(&mut pool);
        let mut itinerary: Vec<SiteId> = pool
            .into_iter()
            .take(config.itinerary_len.min(config.sites as usize - 1))
            .collect();
        if config.shape == ItineraryShape::Cycle {
            let revisit: Vec<SiteId> = itinerary
                .iter()
                .copied()
                .take(itinerary.len() / 2)
                .collect();
            itinerary.extend(revisit);
        }
        let job = format!("job-{t}");
        sys.inject_meet(
            SiteId(0),
            AgentName::new(TRAVELLER),
            traveller_briefcase(&job, SiteId(0), &itinerary, config.guarded),
        );
    }

    sys.run_for(Duration::from_secs(40));
    if config.custody {
        // Drain the custody TTL alarms so every meet reaches a terminal
        // bucket (delivered or expired) before accounting is read.
        sys.run_until_quiescent(5_000_000);
    }

    let completed = sys
        .place(SiteId(0))
        .cabinets()
        .get(MISSION_CABINET)
        .and_then(|c| c.folder_ref(COMPLETED).map(|f| f.len() as u32))
        .unwrap_or(0);
    let duplicate_visits: u64 = (0..config.sites)
        .map(|s| {
            sys.place(SiteId(s))
                .cabinets()
                .get(VISITS_CABINET)
                .and_then(|c| c.folder_ref("DUPLICATES").map(|f| f.len() as u64))
                .unwrap_or(0)
        })
        .sum();

    let stats = sys.stats();
    FtResult {
        guarded: config.guarded,
        launched: config.travellers,
        completed,
        completion_rate: completed as f64 / config.travellers.max(1) as f64,
        duplicate_visits,
        meets: stats.meets_requested,
        network_bytes: sys.net_metrics().total_bytes().get(),
        crashes,
        meets_completed: stats.meets_completed,
        meets_failed: stats.meets_failed,
        send_failures: stats.send_failures,
        meets_expired: stats.meets_expired,
        dropped_messages: sys.net_metrics().dropped_messages(),
        custody_backlog: sys.net().custody_backlog() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_failures_everyone_completes_either_way() {
        for guarded in [false, true] {
            let result = run_itinerary_experiment(&FtConfig {
                crash_prob: 0.0,
                guarded,
                travellers: 10,
                ..Default::default()
            });
            assert_eq!(result.completed, 10, "guarded={guarded}");
            assert_eq!(result.crashes, 0);
        }
    }

    #[test]
    fn guards_cost_messages_but_nothing_else_when_no_failures() {
        let base = FtConfig {
            crash_prob: 0.0,
            travellers: 10,
            ..Default::default()
        };
        let unguarded = run_itinerary_experiment(&FtConfig {
            guarded: false,
            ..base
        });
        let guarded = run_itinerary_experiment(&FtConfig {
            guarded: true,
            ..base
        });
        assert!(
            guarded.meets > unguarded.meets,
            "guard installs/retires cost meets"
        );
        assert_eq!(guarded.completed, unguarded.completed);
    }

    #[test]
    fn guards_improve_completion_under_failures() {
        let base = FtConfig {
            sites: 10,
            itinerary_len: 7,
            travellers: 25,
            crash_prob: 0.5,
            crash_window_ms: 15,
            downtime_ms: (500, 3_000),
            seed: 2024,
            ..Default::default()
        };
        let unguarded = run_itinerary_experiment(&FtConfig {
            guarded: false,
            ..base
        });
        let guarded = run_itinerary_experiment(&FtConfig {
            guarded: true,
            ..base
        });
        assert!(
            guarded.crashes > 0,
            "the schedule must actually crash sites"
        );
        assert!(
            guarded.completion_rate > unguarded.completion_rate,
            "guarded {} should beat unguarded {}",
            guarded.completion_rate,
            unguarded.completion_rate
        );
        assert!(
            guarded.completion_rate >= 0.8,
            "guards should recover most computations"
        );
    }

    #[test]
    fn cyclic_itineraries_complete() {
        let result = run_itinerary_experiment(&FtConfig {
            shape: ItineraryShape::Cycle,
            crash_prob: 0.1,
            travellers: 10,
            ..Default::default()
        });
        assert!(result.completed >= 8);
    }

    #[test]
    fn custody_conserves_every_meet_under_crash_churn() {
        let result = run_itinerary_experiment(&FtConfig {
            sites: 10,
            itinerary_len: 7,
            travellers: 25,
            crash_prob: 0.5,
            crash_window_ms: 15,
            downtime_ms: (500, 3_000),
            guarded: true,
            custody: true,
            seed: 2026,
            ..Default::default()
        });
        assert!(result.crashes > 0, "the schedule must actually crash sites");
        assert_eq!(result.dropped_messages, 0, "custody never drops in flight");
        assert_eq!(result.custody_backlog, 0, "the drained run left no backlog");
        // Conservation: every requested meet landed in exactly one terminal
        // bucket.
        assert_eq!(
            result.meets,
            result.meets_completed
                + result.meets_failed
                + result.send_failures
                + result.meets_expired
        );
    }

    #[test]
    fn custody_beats_fail_fast_on_completions_under_churn() {
        let base = FtConfig {
            sites: 10,
            itinerary_len: 7,
            travellers: 25,
            crash_prob: 0.5,
            crash_window_ms: 15,
            downtime_ms: (500, 3_000),
            guarded: false,
            seed: 2027,
            ..Default::default()
        };
        let fail_fast = run_itinerary_experiment(&base);
        let custody = run_itinerary_experiment(&FtConfig {
            custody: true,
            ..base
        });
        assert!(
            custody.completed > fail_fast.completed,
            "delayed-but-delivered must beat fail-fast ({} vs {})",
            custody.completed,
            fail_fast.completed
        );
    }

    #[test]
    fn results_are_deterministic() {
        let cfg = FtConfig::default();
        let a = run_itinerary_experiment(&cfg);
        let b = run_itinerary_experiment(&cfg);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.meets, b.meets);
        assert_eq!(a.network_bytes, b.network_bytes);
    }
}
