//! Fault tolerance for agent computations: rear guards (paper §5).
//!
//! "The solutions we have studied involve leaving a *rear guard* agent behind
//! whenever execution moves from one site to another.  This rear guard is
//! responsible for (i) launching a new agent should a failure cause an agent
//! to vanish and (ii) terminating itself when its function is no longer
//! necessary."  The paper also notes the details are complex because
//! itineraries may be cyclic and agents may clone and fan out.
//!
//! This crate implements that protocol for itinerary-following agents:
//!
//! * [`rear_guard::TravellerAgent`] walks an itinerary of sites, doing work at
//!   each (recording a visit).  With guards enabled it installs a
//!   [`rear_guard::RearGuardAgent`] at each site before moving on, retires the
//!   guard it left at the previous site once it has arrived safely, and
//!   reports completion to mission control at the origin.
//! * [`rear_guard::RearGuardAgent`] holds a relaunch snapshot (briefcase with
//!   the remaining itinerary).  If it is not retired within a timeout — the
//!   sign that the onward agent vanished in a site failure — it relaunches the
//!   traveller at the next live site, up to a bounded number of attempts.
//! * Cyclic itineraries and duplicate relaunches are tolerated because visits
//!   are recorded idempotently in site-local cabinets (the same mechanism the
//!   diffusion agent uses); duplicated work is *measured*, not hidden
//!   (experiment E9 reports it).
//!
//! ## Failure-detection assumption
//!
//! Guards learn whether a site is currently up from the kernel
//! (`MeetCtx::site_is_up`), standing in for the membership views a
//! Horus-style group layer provides (the prototype's third implementation ran
//! on Tcl/Horus for exactly this reason).  The timeout-based relaunch logic
//! does not depend on that oracle being perfect: a lost retire message or a
//! late traveller simply causes a (measured) duplicate relaunch.
//!
//! [`experiment::run_itinerary_experiment`] drives whole fleets of travellers
//! over randomized failure schedules for experiment E9.
//!
//! The same guard idea protects *resident* services too:
//! [`broker_guard::BrokerGuardAgent`] watches a federated scheduling broker
//! and, when its site stays dead, has the co-located broker adopt the
//! orphaned provider shard and rehomes its monitors (experiment E16).

#![warn(missing_docs)]

pub mod broker_guard;
pub mod experiment;
pub mod rear_guard;

pub use broker_guard::{broker_guard_name, BrokerGuardAgent};
pub use experiment::{run_itinerary_experiment, FtConfig, FtResult, ItineraryShape};
pub use rear_guard::{guard_name, MissionControlAgent, RearGuardAgent, TravellerAgent};
