//! The traveller / rear-guard / mission-control agent trio.
//!
//! Briefcase conventions for the traveller:
//!
//! * `JOB` — the computation's id (guards are named `guard-<job>`);
//! * `ITINERARY` — remaining sites to visit, as decimal strings (a queue);
//! * `ORIGIN` — site to report completion to;
//! * `GUARDED` — present (any value) if rear guards should be installed;
//! * `PREV` — the site whose guard should be retired on safe arrival.
//!
//! The guard holds the relaunch briefcase and retires on a `RETIRE` meet.

use tacoma_core::prelude::*;
use tacoma_core::Folder;

/// Folder carrying the computation id.
pub const JOB: &str = "JOB";
/// Folder present when rear guards should be used.
pub const GUARDED: &str = "GUARDED";
/// Folder holding the trail of sites with still-active guards (a queue).
pub const GUARD_TRAIL: &str = "GUARD_TRAIL";
/// Folder holding how many trailing guards to keep alive (default 2).
pub const GUARD_DEPTH: &str = "GUARD_DEPTH";
/// Folder marking a retire request to a guard.
pub const RETIRE: &str = "RETIRE";
/// Cabinet where travellers record visits.
pub const VISITS_CABINET: &str = "ft_visits";
/// Folder (per job) recording visits at a site.
pub const VISITED: &str = "VISITED";
/// Cabinet at the origin where completions are recorded.
pub const MISSION_CABINET: &str = "mission_control";
/// Folder recording completed jobs at the origin.
pub const COMPLETED: &str = "COMPLETED";
/// Well-known name of the mission-control agent.
pub const MISSION_CONTROL: &str = "mission_control";
/// Well-known name of the traveller agent.
pub const TRAVELLER: &str = "traveller";

/// How long a guard waits for its retire before assuming the onward agent
/// vanished, expressed in check periods.
const PATIENCE_PERIODS: u64 = 3;

/// The name under which the rear guard for `job` registers at a site.
pub fn guard_name(job: &str) -> AgentName {
    AgentName::new(format!("guard-{job}"))
}

/// The itinerary-walking agent whose computation the guards protect.
#[derive(Debug, Default)]
pub struct TravellerAgent;

impl TravellerAgent {
    /// Creates the agent (stateless: all state travels in the briefcase).
    pub fn new() -> Self {
        TravellerAgent
    }
}

impl Agent for TravellerAgent {
    fn name(&self) -> AgentName {
        AgentName::new(TRAVELLER)
    }

    fn meet(&mut self, ctx: &mut MeetCtx<'_>, mut bc: Briefcase) -> MeetOutcome {
        let job = bc
            .peek_string(JOB)
            .ok_or_else(|| TacomaError::missing(JOB))?;
        let origin = bc
            .peek_string(wellknown::ORIGIN)
            .and_then(|s| s.parse::<u32>().ok())
            .map(SiteId)
            .ok_or_else(|| TacomaError::missing(wellknown::ORIGIN))?;
        let guarded = bc.contains(GUARDED);
        let here = ctx.site();

        // Do the site's work exactly once per job (idempotent under relaunch,
        // which also makes cyclic itineraries safe).
        let visit_marker = format!("{job}@{here}");
        let already = ctx
            .cabinet(VISITS_CABINET)
            .folder_contains(VISITED, visit_marker.as_bytes());
        if !already {
            ctx.cabinet(VISITS_CABINET)
                .append_str(VISITED, &visit_marker);
        } else {
            ctx.cabinet(VISITS_CABINET)
                .append_str("DUPLICATES", &visit_marker);
        }

        // Where next?
        let next = bc
            .folder_mut(wellknown::ITINERARY)
            .dequeue_str()
            .and_then(|s| s.parse::<u32>().ok())
            .map(SiteId);
        match next {
            None => {
                // Finished: retire every guard still on the trail and report
                // to mission control.
                if let Some(trail) = bc.folder(GUARD_TRAIL) {
                    for elem in trail.strings() {
                        if let Ok(site) = elem.parse::<u32>() {
                            let mut retire = Briefcase::new();
                            retire.put_string(RETIRE, "finished");
                            ctx.remote_meet(
                                SiteId(site),
                                guard_name(&job),
                                retire,
                                TransportKind::Tcp,
                            );
                        }
                    }
                }
                let mut report = Briefcase::new();
                report.put_string(JOB, &job);
                report.put_string("FINISHED_AT", here.0.to_string());
                ctx.remote_meet(
                    origin,
                    AgentName::new(MISSION_CONTROL),
                    report,
                    TransportKind::Tcp,
                );
                Ok(Briefcase::new())
            }
            Some(next_site) => {
                if guarded {
                    // Leave a rear guard holding a relaunch copy for the rest
                    // of the journey (starting at `next_site`).  The relaunch
                    // copy's itinerary has next_site back at its front because
                    // `bc`'s itinerary already had it dequeued.
                    let mut relaunch = bc.clone();
                    let mut itin = Folder::new();
                    itin.enqueue(next_site.0.to_string().into_bytes());
                    if let Some(rest) = bc.folder(wellknown::ITINERARY) {
                        for elem in rest.iter() {
                            itin.enqueue(elem.clone());
                        }
                    }
                    relaunch.put(wellknown::ITINERARY, itin);
                    ctx.spawn_agent(Box::new(RearGuardAgent::new(
                        job.clone(),
                        relaunch,
                        Duration::from_millis(400),
                    )));
                    // Keep a chain of the last `GUARD_DEPTH` guards alive (a
                    // single guard is itself a single point of failure — the
                    // paper notes the details are complex; the chain depth is
                    // the knob ablation A3 sweeps).  Older guards are retired.
                    let depth = bc
                        .peek_string(GUARD_DEPTH)
                        .and_then(|s| s.parse::<usize>().ok())
                        .unwrap_or(2)
                        .max(1);
                    bc.folder_mut(GUARD_TRAIL)
                        .enqueue(here.0.to_string().into_bytes());
                    while bc.folder(GUARD_TRAIL).map(|f| f.len()).unwrap_or(0) > depth {
                        if let Some(old) = bc.folder_mut(GUARD_TRAIL).dequeue_str() {
                            if let Ok(site) = old.parse::<u32>() {
                                let mut retire = Briefcase::new();
                                retire.put_string(RETIRE, "superseded");
                                ctx.remote_meet(
                                    SiteId(site),
                                    guard_name(&job),
                                    retire,
                                    TransportKind::Tcp,
                                );
                            }
                        }
                    }
                }
                // Move on.  If the next site is down right now, the guards (or
                // nobody, in the unguarded case) will deal with it.
                ctx.remote_meet(next_site, AgentName::new(TRAVELLER), bc, TransportKind::Tcp);
                Ok(Briefcase::new())
            }
        }
    }
}

/// The rear guard left behind at a site.
pub struct RearGuardAgent {
    job: String,
    relaunch: Briefcase,
    period: Duration,
    periods_waited: u64,
    relaunches: u64,
    max_relaunches: u64,
    retired: bool,
    started: bool,
}

impl RearGuardAgent {
    /// Creates a guard protecting `job`, holding `relaunch` as the snapshot to
    /// re-launch from, checking every `period`.
    pub fn new(job: String, relaunch: Briefcase, period: Duration) -> Self {
        RearGuardAgent {
            job,
            relaunch,
            period,
            periods_waited: 0,
            relaunches: 0,
            max_relaunches: 2,
            retired: false,
            started: false,
        }
    }

    fn schedule_check(&self, ctx: &mut MeetCtx<'_>) {
        ctx.schedule(guard_name(&self.job), 0, self.period, Briefcase::new());
    }

    fn relaunch_target(&self, ctx: &MeetCtx<'_>) -> Option<(SiteId, Briefcase)> {
        // Skip dead sites at the front of the remaining itinerary.
        let mut bc = self.relaunch.clone();
        loop {
            let next = bc
                .folder_mut(wellknown::ITINERARY)
                .dequeue_str()
                .and_then(|s| s.parse::<u32>().ok())
                .map(SiteId)?;
            if ctx.site_is_up(next) {
                // Put it back: the traveller dequeues it itself on arrival…
                // actually the traveller expects to *be at* the first site of
                // the snapshot, so we deliver to `next` with the rest of the
                // itinerary following it.
                return Some((next, bc));
            }
            // Dead: try the site after it.
        }
    }
}

impl Agent for RearGuardAgent {
    fn name(&self) -> AgentName {
        guard_name(&self.job)
    }

    fn on_install(&mut self, ctx: &mut MeetCtx<'_>) {
        if !self.started {
            self.started = true;
            self.schedule_check(ctx);
        }
    }

    fn meet(&mut self, ctx: &mut MeetCtx<'_>, bc: Briefcase) -> MeetOutcome {
        if bc.contains(RETIRE) {
            // (ii) terminate itself when its function is no longer necessary.
            self.retired = true;
            ctx.unregister_agent(guard_name(&self.job));
            return Ok(Briefcase::new());
        }
        if !bc.contains(wellknown::TIMER) {
            return Ok(Briefcase::new());
        }
        if self.retired {
            ctx.unregister_agent(guard_name(&self.job));
            return Ok(Briefcase::new());
        }
        self.periods_waited += 1;
        if self.periods_waited < PATIENCE_PERIODS {
            self.schedule_check(ctx);
            return Ok(Briefcase::new());
        }
        // (i) launch a new agent: the onward copy has not confirmed arrival
        // within the patience window, so assume it vanished in a failure.
        if self.relaunches >= self.max_relaunches {
            ctx.unregister_agent(guard_name(&self.job));
            return Ok(Briefcase::new());
        }
        match self.relaunch_target(ctx) {
            Some((site, snapshot)) => {
                if ctx.custody_enabled() && !ctx.site_is_reachable(site) {
                    // The site ahead is up but unreachable (partition): the
                    // onward copy is parked in custody and will be delivered
                    // when the network heals.  Relaunching now would fork the
                    // computation for no benefit — keep waiting instead.
                    self.periods_waited = 0;
                    ctx.log(format!(
                        "rear guard for {} waiting: {site} unreachable, custody pending",
                        self.job
                    ));
                    self.schedule_check(ctx);
                    return Ok(Briefcase::new());
                }
                self.relaunches += 1;
                self.periods_waited = 0;
                ctx.log(format!(
                    "rear guard for {} relaunching at {site} (attempt {})",
                    self.job, self.relaunches
                ));
                let mut bc = snapshot;
                // Put this guard on the relaunched copy's trail so the copy
                // eventually retires it (on trail overflow or completion).
                bc.folder_mut(GUARD_TRAIL)
                    .enqueue(ctx.site().0.to_string().into_bytes());
                ctx.remote_meet(site, AgentName::new(TRAVELLER), bc, TransportKind::Tcp);
                self.schedule_check(ctx);
            }
            None => {
                // Nothing left to relaunch onto; retire.
                ctx.unregister_agent(guard_name(&self.job));
            }
        }
        Ok(Briefcase::new())
    }
}

/// The agent at the origin site that records completed computations.
#[derive(Debug, Default)]
pub struct MissionControlAgent;

impl MissionControlAgent {
    /// Creates the agent.
    pub fn new() -> Self {
        MissionControlAgent
    }
}

impl Agent for MissionControlAgent {
    fn name(&self) -> AgentName {
        AgentName::new(MISSION_CONTROL)
    }

    fn meet(&mut self, ctx: &mut MeetCtx<'_>, bc: Briefcase) -> MeetOutcome {
        if let Some(job) = bc.peek_string(JOB) {
            if !ctx
                .cabinet(MISSION_CABINET)
                .folder_contains(COMPLETED, job.as_bytes())
            {
                ctx.cabinet(MISSION_CABINET).append_str(COMPLETED, &job);
            }
        }
        Ok(Briefcase::new())
    }
}

/// Builds the starting briefcase for a traveller.
pub fn traveller_briefcase(
    job: &str,
    origin: SiteId,
    itinerary: &[SiteId],
    guarded: bool,
) -> Briefcase {
    let mut bc = Briefcase::new();
    bc.put_string(JOB, job);
    bc.put_string(wellknown::ORIGIN, origin.0.to_string());
    let mut itin = Folder::new();
    for site in itinerary {
        itin.enqueue(site.0.to_string().into_bytes());
    }
    bc.put(wellknown::ITINERARY, itin);
    if guarded {
        bc.put_string(GUARDED, "yes");
    }
    bc
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacoma_core::TacomaSystem;
    use tacoma_net::{Duration as NetDuration, FailurePlan, LinkSpec, SimTime, Topology};

    fn system(sites: u32) -> TacomaSystem {
        let mut sys = TacomaSystem::builder()
            .topology(Topology::full_mesh(sites, LinkSpec::default()))
            .seed(13)
            .with_agents(|_| vec![Box::new(TravellerAgent::new()) as Box<dyn Agent>])
            .build();
        sys.register_agent(SiteId(0), Box::new(MissionControlAgent::new()));
        sys
    }

    fn completed(sys: &TacomaSystem, job: &str) -> bool {
        sys.place(SiteId(0))
            .cabinets()
            .get(MISSION_CABINET)
            .and_then(|c| c.folder_ref(COMPLETED))
            .map(|f| f.strings().iter().any(|s| s == job))
            .unwrap_or(false)
    }

    fn visits(sys: &TacomaSystem, job: &str) -> usize {
        (0..sys.site_count())
            .filter(|s| {
                sys.place(SiteId(*s))
                    .cabinets()
                    .get(VISITS_CABINET)
                    .and_then(|c| c.folder_ref(VISITED))
                    .map(|f| {
                        f.strings()
                            .iter()
                            .any(|v| v.starts_with(&format!("{job}@")))
                    })
                    .unwrap_or(false)
            })
            .count()
    }

    #[test]
    fn unguarded_itinerary_completes_without_failures() {
        let mut sys = system(5);
        let itinerary: Vec<SiteId> = (1..5).map(SiteId).collect();
        sys.inject_meet(
            SiteId(0),
            AgentName::new(TRAVELLER),
            traveller_briefcase("job-a", SiteId(0), &itinerary, false),
        );
        sys.run_for(NetDuration::from_secs(10));
        assert!(completed(&sys, "job-a"));
        assert_eq!(visits(&sys, "job-a"), 5, "origin plus four itinerary sites");
        assert_eq!(sys.stats().meets_failed, 0);
    }

    #[test]
    fn guarded_itinerary_completes_and_guards_retire() {
        let mut sys = system(5);
        let itinerary: Vec<SiteId> = (1..5).map(SiteId).collect();
        sys.inject_meet(
            SiteId(0),
            AgentName::new(TRAVELLER),
            traveller_briefcase("job-b", SiteId(0), &itinerary, true),
        );
        sys.run_for(NetDuration::from_secs(20));
        assert!(completed(&sys, "job-b"));
        // Every guard retired: no guard-<job> agent remains registered anywhere.
        for s in 0..5 {
            assert!(
                !sys.place(SiteId(s)).has_agent(&guard_name("job-b")),
                "guard at site {s} should have retired"
            );
        }
    }

    #[test]
    fn unguarded_computation_dies_with_a_site_failure() {
        let mut sys = system(5);
        let itinerary: Vec<SiteId> = (1..5).map(SiteId).collect();
        // Site 2 goes down before the traveller reaches it and stays down a while.
        let plan = FailurePlan::none().outage(
            SiteId(2),
            SimTime::ZERO + NetDuration::from_micros(1),
            NetDuration::from_secs(5),
        );
        sys.apply_failure_plan(&plan);
        sys.inject_meet(
            SiteId(0),
            AgentName::new(TRAVELLER),
            traveller_briefcase("job-c", SiteId(0), &itinerary, false),
        );
        sys.run_for(NetDuration::from_secs(20));
        assert!(
            !completed(&sys, "job-c"),
            "without guards the computation is lost"
        );
    }

    #[test]
    fn rear_guard_relaunches_past_a_failed_site() {
        let mut sys = system(5);
        let itinerary: Vec<SiteId> = (1..5).map(SiteId).collect();
        let plan = FailurePlan::none().outage(
            SiteId(2),
            SimTime::ZERO + NetDuration::from_micros(1),
            NetDuration::from_secs(60),
        );
        sys.apply_failure_plan(&plan);
        sys.inject_meet(
            SiteId(0),
            AgentName::new(TRAVELLER),
            traveller_briefcase("job-d", SiteId(0), &itinerary, true),
        );
        sys.run_for(NetDuration::from_secs(30));
        assert!(
            completed(&sys, "job-d"),
            "the guard must relaunch the computation around the dead site"
        );
        // The dead site was skipped, the rest were visited.
        assert!(visits(&sys, "job-d") >= 4);
    }

    #[test]
    fn guard_waits_out_a_partition_when_custody_is_enabled() {
        use tacoma_net::CustodyConfig;
        // The origin is partitioned away from everyone else, so the
        // traveller's very first hop (0 -> 1) is parked in custody.  Its rear
        // guard sees site 1 *up but unreachable* and waits instead of
        // relaunching, so after the heal the computation completes with zero
        // duplicate visits (no forks).
        let mut sys = TacomaSystem::builder()
            .topology(Topology::full_mesh(5, LinkSpec::default()))
            .seed(13)
            .custody(CustodyConfig::default())
            .with_agents(|_| vec![Box::new(TravellerAgent::new()) as Box<dyn Agent>])
            .build();
        sys.register_agent(SiteId(0), Box::new(MissionControlAgent::new()));
        sys.net_mut().partition(&[SiteId(0)]);
        let itinerary: Vec<SiteId> = (1..5).map(SiteId).collect();
        sys.inject_meet(
            SiteId(0),
            AgentName::new(TRAVELLER),
            traveller_briefcase("job-p", SiteId(0), &itinerary, true),
        );
        // Long enough for several guard patience windows to elapse.
        sys.run_for(NetDuration::from_secs(5));
        assert!(!completed(&sys, "job-p"), "stuck behind the partition");
        assert_eq!(sys.stats().send_failures, 0, "custody absorbed the hop");
        assert!(
            sys.trace()
                .iter()
                .any(|line| line.contains("custody pending")),
            "a guard must have logged the custody wait"
        );
        sys.net_mut().heal_partition();
        sys.run_for(NetDuration::from_secs(20));
        assert!(completed(&sys, "job-p"), "delivered after the heal");
        assert_eq!(visits(&sys, "job-p"), 5);
        let duplicates: u64 = (0..5)
            .map(|s| {
                sys.place(SiteId(s))
                    .cabinets()
                    .get(VISITS_CABINET)
                    .and_then(|c| c.folder_ref("DUPLICATES").map(|f| f.len() as u64))
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(duplicates, 0, "waiting guards must not fork the traveller");
    }

    #[test]
    fn cyclic_itinerary_is_handled() {
        let mut sys = system(4);
        // Visit 1, 2, 1, 3: revisiting site 1 must not confuse the guards.
        let itinerary = vec![SiteId(1), SiteId(2), SiteId(1), SiteId(3)];
        sys.inject_meet(
            SiteId(0),
            AgentName::new(TRAVELLER),
            traveller_briefcase("job-e", SiteId(0), &itinerary, true),
        );
        sys.run_for(NetDuration::from_secs(20));
        assert!(completed(&sys, "job-e"));
    }

    #[test]
    fn mission_control_records_each_job_once() {
        let mut sys = system(3);
        for _ in 0..2 {
            let mut bc = Briefcase::new();
            bc.put_string(JOB, "dup-job");
            sys.inject_meet(SiteId(0), AgentName::new(MISSION_CONTROL), bc);
        }
        sys.run_until_quiescent(100);
        let cab = sys
            .place(SiteId(0))
            .cabinets()
            .get(MISSION_CABINET)
            .unwrap();
        assert_eq!(cab.folder_ref(COMPLETED).unwrap().len(), 1);
    }
}
