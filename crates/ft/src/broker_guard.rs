//! Failover guards for federated brokers.
//!
//! The rear guards of §5 protect a *travelling* computation; a
//! [`BrokerGuardAgent`] applies the same idea to a *resident* one.  It lives
//! at a peer broker's site, watches the primary broker's site through the
//! kernel's membership view, and — once the primary has stayed dead for a
//! patience window — performs the takeover the scheduling layer needs so the
//! crashed broker's provider shard is **re-adopted instead of orphaned**:
//!
//! 1. a local [`wellknown::ADOPT`] meet tells the co-located broker it now
//!    answers for the orphaned shard;
//! 2. a [`wellknown::REHOME`] meet to every orphaned provider site re-points
//!    that site's monitor at the adopting broker, so load reports (and with
//!    them, placements) resume flowing within one monitor period.
//!
//! Like a rear guard, the broker guard is conservative: a primary that is up
//! resets the patience counter, and a recovered primary re-arms the guard so
//! a *second* crash is caught too.  The guard never hands the shard back —
//! a recovered broker simply starts empty and forwards jobs via digests
//! until (if ever) operators rehome the monitors again.

use tacoma_core::prelude::*;

/// The name under which the guard watching `site` registers.
pub fn broker_guard_name(watched: SiteId) -> AgentName {
    AgentName::new(format!("{}-{}", wellknown::BROKER_GUARD, watched.0))
}

/// A failover guard for one federated broker.
pub struct BrokerGuardAgent {
    watched: SiteId,
    shard: u32,
    providers: Vec<SiteId>,
    period: Duration,
    patience: u64,
    checks_down: u64,
    adopted: bool,
    adoptions: u64,
    /// Providers that were down or unreachable when the takeover fired;
    /// their REHOME is retried on later checks so a provider that was
    /// briefly out at the takeover instant is not stranded on the dead
    /// primary forever.
    pending_rehomes: Vec<SiteId>,
}

impl BrokerGuardAgent {
    /// Creates a guard (to be installed at the adopting broker's site)
    /// watching the broker at `watched`, which owns `shard` and its
    /// `providers`.  The takeover fires after the watched site has been seen
    /// down on `patience` consecutive checks, `period` apart.
    pub fn new(
        watched: SiteId,
        shard: u32,
        providers: Vec<SiteId>,
        period: Duration,
        patience: u64,
    ) -> Self {
        BrokerGuardAgent {
            watched,
            shard,
            providers,
            period,
            patience: patience.max(1),
            checks_down: 0,
            adopted: false,
            adoptions: 0,
            pending_rehomes: Vec::new(),
        }
    }

    /// How many takeovers this guard has performed.
    pub fn adoptions(&self) -> u64 {
        self.adoptions
    }

    fn schedule_check(&self, ctx: &mut MeetCtx<'_>) {
        ctx.schedule(
            broker_guard_name(self.watched),
            0,
            self.period,
            Briefcase::new(),
        );
    }

    fn take_over(&mut self, ctx: &mut MeetCtx<'_>) {
        self.adopted = true;
        self.adoptions += 1;
        ctx.log(format!(
            "broker guard at {} adopting shard {} from dead {}",
            ctx.site(),
            self.shard,
            self.watched
        ));
        // Tell the co-located broker it answers for the orphaned shard now.
        let mut adopt = Briefcase::new();
        adopt.put_string(wellknown::ADOPT, self.shard.to_string());
        if ctx
            .meet_local(&AgentName::new(wellknown::BROKER), adopt)
            .is_err()
        {
            ctx.log(format!(
                "broker guard at {}: no local broker to adopt shard {}",
                ctx.site(),
                self.shard
            ));
        }
        // Re-point every orphaned provider's monitor at this site.  A
        // provider that is itself down (or unreachable without custody) at
        // this instant would silently miss a fire-and-forget REHOME, so it
        // goes on the retry list instead.
        let providers = self.providers.clone();
        for provider in providers {
            if ctx.site_is_up(provider) && ctx.site_is_reachable(provider) {
                Self::send_rehome(ctx, provider);
            } else {
                self.pending_rehomes.push(provider);
            }
        }
    }

    fn send_rehome(ctx: &mut MeetCtx<'_>, provider: SiteId) {
        let mut rehome = Briefcase::new();
        rehome.put_string(wellknown::REHOME, ctx.site().0.to_string());
        ctx.remote_meet(
            provider,
            AgentName::new(wellknown::MONITOR),
            rehome,
            TransportKind::Tcp,
        );
    }

    /// Retries REHOMEs that could not be delivered at takeover time, once
    /// their provider is back.
    fn retry_pending_rehomes(&mut self, ctx: &mut MeetCtx<'_>) {
        let mut still_pending = Vec::new();
        for provider in std::mem::take(&mut self.pending_rehomes) {
            if ctx.site_is_up(provider) && ctx.site_is_reachable(provider) {
                Self::send_rehome(ctx, provider);
            } else {
                still_pending.push(provider);
            }
        }
        self.pending_rehomes = still_pending;
    }
}

impl Agent for BrokerGuardAgent {
    fn name(&self) -> AgentName {
        broker_guard_name(self.watched)
    }

    fn on_install(&mut self, ctx: &mut MeetCtx<'_>) {
        self.schedule_check(ctx);
    }

    fn meet(&mut self, ctx: &mut MeetCtx<'_>, bc: Briefcase) -> MeetOutcome {
        if !bc.contains(wellknown::TIMER) {
            return Ok(Briefcase::new());
        }
        if ctx.site_is_up(self.watched) {
            // Alive (or back): reset the window and re-arm for a next crash.
            // Providers never rehomed report to the recovered primary again,
            // so the retry list is moot.
            self.checks_down = 0;
            self.adopted = false;
            self.pending_rehomes.clear();
        } else {
            self.checks_down += 1;
            if self.checks_down >= self.patience && !self.adopted {
                self.take_over(ctx);
            } else if self.adopted {
                self.retry_pending_rehomes(ctx);
            }
        }
        self.schedule_check(ctx);
        Ok(Briefcase::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacoma_core::TacomaSystem;
    use tacoma_net::{FailurePlan, LinkSpec, SimTime, Topology};

    /// Minimal stand-ins for the scheduling layer: a broker that records
    /// adoptions and a monitor that records rehomes, both into cabinets the
    /// test can read back.
    struct RecordingBroker;
    impl Agent for RecordingBroker {
        fn name(&self) -> AgentName {
            AgentName::new(wellknown::BROKER)
        }
        fn meet(&mut self, ctx: &mut MeetCtx<'_>, bc: Briefcase) -> MeetOutcome {
            if let Some(shard) = bc.peek_string(wellknown::ADOPT) {
                ctx.cabinet("takeovers").append_str("ADOPTED", &shard);
            }
            Ok(Briefcase::new())
        }
    }
    struct RecordingMonitor;
    impl Agent for RecordingMonitor {
        fn name(&self) -> AgentName {
            AgentName::new(wellknown::MONITOR)
        }
        fn meet(&mut self, ctx: &mut MeetCtx<'_>, bc: Briefcase) -> MeetOutcome {
            if let Some(to) = bc.peek_string(wellknown::REHOME) {
                ctx.cabinet("rehomes").append_str("TO", &to);
            }
            Ok(Briefcase::new())
        }
    }

    /// Site 0: primary (watched).  Site 1: backup hosting the guard and the
    /// recording broker.  Sites 2, 3: providers with recording monitors.
    /// The recorders install through a factory so a crashed-and-recovered
    /// provider comes back able to receive its REHOME, as real monitors
    /// deployed via `SystemBuilder` factories would.
    fn guarded_system() -> TacomaSystem {
        let mut sys = TacomaSystem::builder()
            .topology(Topology::full_mesh(4, LinkSpec::default()))
            .seed(21)
            .with_agents(|site| match site.0 {
                1 => vec![Box::new(RecordingBroker) as Box<dyn Agent>],
                2 | 3 => vec![Box::new(RecordingMonitor) as Box<dyn Agent>],
                _ => Vec::new(),
            })
            .build();
        sys.register_agent(
            SiteId(1),
            Box::new(BrokerGuardAgent::new(
                SiteId(0),
                0,
                vec![SiteId(2), SiteId(3)],
                Duration::from_millis(100),
                3,
            )),
        );
        sys
    }

    fn adoptions(sys: &TacomaSystem) -> usize {
        sys.place(SiteId(1))
            .cabinets()
            .get("takeovers")
            .and_then(|c| c.folder_ref("ADOPTED").map(|f| f.len()))
            .unwrap_or(0)
    }

    fn rehomes(sys: &TacomaSystem, site: u32) -> Vec<String> {
        sys.place(SiteId(site))
            .cabinets()
            .get("rehomes")
            .and_then(|c| c.folder_ref("TO").map(|f| f.strings()))
            .unwrap_or_default()
    }

    #[test]
    fn no_takeover_while_the_primary_lives() {
        let mut sys = guarded_system();
        sys.run_until(SimTime::ZERO + Duration::from_secs(2));
        assert_eq!(adoptions(&sys), 0);
        assert!(rehomes(&sys, 2).is_empty());
    }

    #[test]
    fn sustained_death_triggers_exactly_one_takeover() {
        let mut sys = guarded_system();
        sys.net_mut().crash_now(SiteId(0));
        sys.run_until(SimTime::ZERO + Duration::from_secs(2));
        assert_eq!(adoptions(&sys), 1, "one adoption, not one per check");
        // Every provider was rehomed to the guard's site.
        assert_eq!(rehomes(&sys, 2), vec!["1".to_string()]);
        assert_eq!(rehomes(&sys, 3), vec!["1".to_string()]);
    }

    #[test]
    fn a_blip_shorter_than_the_patience_window_is_tolerated() {
        let mut sys = guarded_system();
        // Down for ~2 checks, then back: no takeover.
        let plan = FailurePlan::none().outage(
            SiteId(0),
            SimTime::ZERO + Duration::from_millis(50),
            Duration::from_millis(220),
        );
        sys.apply_failure_plan(&plan);
        sys.run_until(SimTime::ZERO + Duration::from_secs(2));
        assert_eq!(adoptions(&sys), 0);
    }

    #[test]
    fn a_provider_down_at_takeover_is_rehomed_when_it_returns() {
        let mut sys = guarded_system();
        // Provider 3 is down across the takeover window and comes back later.
        let plan = FailurePlan::none().outage(
            SiteId(3),
            SimTime::ZERO + Duration::from_millis(10),
            Duration::from_millis(900),
        );
        sys.apply_failure_plan(&plan);
        sys.net_mut().crash_now(SiteId(0));
        // Takeover fires at ~300 ms while provider 3 is still down.
        sys.run_until(SimTime::ZERO + Duration::from_millis(700));
        assert_eq!(adoptions(&sys), 1);
        assert_eq!(rehomes(&sys, 2), vec!["1".to_string()]);
        assert!(
            rehomes(&sys, 3).is_empty(),
            "no REHOME can land while the provider is down"
        );
        // Once provider 3 recovers the guard retries and the REHOME lands.
        sys.run_until(SimTime::ZERO + Duration::from_secs(2));
        assert_eq!(
            rehomes(&sys, 3),
            vec!["1".to_string()],
            "the pending REHOME must be delivered exactly once after recovery"
        );
    }

    #[test]
    fn a_recovered_then_recrashed_primary_is_adopted_again() {
        let mut sys = guarded_system();
        let plan = FailurePlan::none()
            .outage(
                SiteId(0),
                SimTime::ZERO + Duration::from_millis(50),
                Duration::from_millis(800),
            )
            .outage(
                SiteId(0),
                SimTime::ZERO + Duration::from_millis(2_000),
                Duration::from_millis(800),
            );
        sys.apply_failure_plan(&plan);
        sys.run_until(SimTime::ZERO + Duration::from_secs(4));
        assert_eq!(adoptions(&sys), 2, "the guard re-arms after a recovery");
    }
}
