//! Argument parsing for the `harness` binary.
//!
//! Hand-rolled (the workspace vendors no CLI crate) but strict: unknown
//! flags are an error, not a silent no-op, so a typo like `--qiuck` fails
//! loudly instead of quietly running the full suite.

use std::path::PathBuf;

/// Usage text printed by `--help` and on parse errors.
pub const USAGE: &str = "\
usage: harness [OPTIONS]

Runs the TACOMA experiment suite (E1-E20 + ablations) and prints one table
per experiment. All experiments are deterministic per seed.

options:
  --quick              fast smoke configuration (default is the full sweep)
  --jobs <n>           worker threads for the parallel runner (default: 1)
  --shards <n>         event-queue shards inside each simulation (default: 1);
                       any value produces byte-identical reports — CI diffs
                       --shards 1 against --shards 4 to enforce it
  --filter <ids>       comma-separated experiment ids to run, e.g. E1,E7,A3
  --json <path>        write a machine-readable report set to <path>
  --compare <path>     diff this run against a baseline report; exit 1 on
                       any metric drifting past its tolerance
  --list               list experiment ids and exit
  --help               show this help and exit
";

/// Parsed harness options.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HarnessArgs {
    /// Run the quick configurations.
    pub quick: bool,
    /// Worker threads (0 means "not given", treated as 1).
    pub jobs: usize,
    /// Event-queue shards per simulation (0 means "not given", treated as 1).
    pub shards: u32,
    /// Experiment ids to run; empty means all.
    pub filter: Vec<String>,
    /// Where to write the JSON report set, if anywhere.
    pub json: Option<PathBuf>,
    /// Baseline report to compare against, if any.
    pub compare: Option<PathBuf>,
    /// Print the experiment list and exit.
    pub list: bool,
    /// Print usage and exit.
    pub help: bool,
}

impl HarnessArgs {
    /// Parses raw arguments (without the program name).
    ///
    /// Both `--flag value` and `--flag=value` spellings are accepted.
    pub fn parse<I, S>(raw: I) -> Result<HarnessArgs, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        fn take_value(
            flag: &str,
            inline: &Option<String>,
            iter: &mut impl Iterator<Item = String>,
        ) -> Result<String, String> {
            if let Some(v) = inline {
                return Ok(v.clone());
            }
            match iter.next() {
                // A following flag is a missing value, not a value: otherwise
                // `--json --quick` would eat `--quick` as the output path and
                // silently run the full suite (use `--json=--odd` to force a
                // value that starts with dashes).
                Some(v) if !v.starts_with("--") => Ok(v),
                Some(v) => Err(format!("{flag} requires a value, found flag '{v}'")),
                None => Err(format!("{flag} requires a value")),
            }
        }

        let mut args = HarnessArgs::default();
        let mut iter = raw.into_iter().map(Into::into);
        while let Some(arg) = iter.next() {
            let (flag, inline_value) = match arg.split_once('=') {
                Some((f, v)) => (f.to_string(), Some(v.to_string())),
                None => (arg.clone(), None),
            };
            match flag.as_str() {
                "--quick" => args.quick = true,
                "--list" => args.list = true,
                "--help" | "-h" => args.help = true,
                "--jobs" => {
                    let v = take_value(&flag, &inline_value, &mut iter)?;
                    args.jobs =
                        v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                            format!("--jobs expects a positive integer, got '{v}'")
                        })?;
                }
                "--shards" => {
                    let v = take_value(&flag, &inline_value, &mut iter)?;
                    args.shards =
                        v.parse::<u32>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                            format!("--shards expects a positive integer, got '{v}'")
                        })?;
                }
                "--filter" => {
                    let v = take_value(&flag, &inline_value, &mut iter)?;
                    args.filter.extend(
                        v.split(',')
                            .map(str::trim)
                            .filter(|s| !s.is_empty())
                            .map(str::to_string),
                    );
                    if args.filter.is_empty() {
                        return Err(
                            "--filter expects a comma-separated list of experiment ids".into()
                        );
                    }
                }
                "--json" => {
                    args.json = Some(PathBuf::from(take_value(&flag, &inline_value, &mut iter)?))
                }
                "--compare" => {
                    args.compare = Some(PathBuf::from(take_value(&flag, &inline_value, &mut iter)?))
                }
                other => {
                    return Err(format!("unknown flag '{other}' (see --help)"));
                }
            }
            // A flag that takes no value must not have been given one inline.
            if matches!(flag.as_str(), "--quick" | "--list" | "--help" | "-h")
                && inline_value.is_some()
            {
                return Err(format!("{flag} takes no value"));
            }
        }
        Ok(args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_full_sequential_run() {
        let args = HarnessArgs::parse(Vec::<String>::new()).unwrap();
        assert_eq!(args, HarnessArgs::default());
        assert!(!args.quick);
        assert!(args.filter.is_empty());
    }

    #[test]
    fn parses_every_flag_in_both_spellings() {
        let args = HarnessArgs::parse([
            "--quick",
            "--jobs",
            "8",
            "--shards=4",
            "--filter=E1,E7",
            "--json",
            "out.json",
            "--compare=BENCH_baseline.json",
        ])
        .unwrap();
        assert!(args.quick);
        assert_eq!(args.jobs, 8);
        assert_eq!(args.shards, 4);
        assert_eq!(args.filter, ["E1", "E7"]);
        assert_eq!(args.json.as_deref(), Some(std::path::Path::new("out.json")));
        assert_eq!(
            args.compare.as_deref(),
            Some(std::path::Path::new("BENCH_baseline.json"))
        );
    }

    #[test]
    fn rejects_typos_instead_of_ignoring_them() {
        let err = HarnessArgs::parse(["--qiuck"]).unwrap_err();
        assert!(err.contains("--qiuck"), "got: {err}");
        assert!(
            HarnessArgs::parse(["quick"]).is_err(),
            "bare words are rejected too"
        );
    }

    #[test]
    fn rejects_missing_or_bad_values() {
        assert!(HarnessArgs::parse(["--jobs"])
            .unwrap_err()
            .contains("requires a value"));
        assert!(HarnessArgs::parse(["--jobs", "zero"])
            .unwrap_err()
            .contains("positive integer"));
        assert!(HarnessArgs::parse(["--jobs=0"])
            .unwrap_err()
            .contains("positive integer"));
        assert!(HarnessArgs::parse(["--shards"])
            .unwrap_err()
            .contains("requires a value"));
        assert!(HarnessArgs::parse(["--shards=0"])
            .unwrap_err()
            .contains("positive integer"));
        assert!(HarnessArgs::parse(["--filter="])
            .unwrap_err()
            .contains("comma-separated"));
        assert!(HarnessArgs::parse(["--quick=yes"])
            .unwrap_err()
            .contains("takes no value"));
    }

    #[test]
    fn a_following_flag_is_not_a_value() {
        let err = HarnessArgs::parse(["--json", "--quick"]).unwrap_err();
        assert!(err.contains("requires a value"), "got: {err}");
        // The inline spelling can still force a dashed value.
        let args = HarnessArgs::parse(["--json=--odd", "--quick"]).unwrap();
        assert!(args.quick);
        assert_eq!(args.json.as_deref(), Some(std::path::Path::new("--odd")));
    }

    #[test]
    fn filter_accumulates_across_repeats() {
        let args = HarnessArgs::parse(["--filter", "E1", "--filter", "E2, E3"]).unwrap();
        assert_eq!(args.filter, ["E1", "E2", "E3"]);
    }
}
