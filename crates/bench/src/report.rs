//! Machine-readable experiment reports.
//!
//! A [`Report`] is the structured twin of a rendered [`Table`]: one per
//! experiment job, carrying the experiment id, the run mode, the primary
//! seed, and every table cell as a typed metric.  A [`ReportSet`] is what
//! `harness --json <path>` writes and what the `--compare` regression gate
//! reads back (see [`crate::baseline`]).
//!
//! Serialization is hand-rolled through [`tacoma_util::json`] because the
//! vendored serde is a no-op shim.  The JSON writer is deterministic and the
//! measured wall-clock time is deliberately **excluded** from it: the same
//! seed must produce byte-identical report files whether the runner used one
//! worker or eight, so reports stay diffable and the gate stays exact.
//! Wall-clock durations are printed in the harness run summary instead.

use crate::table::Table;
use std::fmt;
use std::path::Path;
use tacoma_util::{Json, MetricValue};

/// Version tag written into every report file; bump on layout changes.
pub const SCHEMA_VERSION: u64 = 1;

/// The structured result of one experiment job.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id, e.g. `"E1"` or `"A3"`.
    pub id: String,
    /// Human-readable experiment title (the table's title line).
    pub title: String,
    /// The primary seed the experiment derives its determinism from.
    pub seed: u64,
    /// Every table cell as a typed metric, keyed `r{row}.{column}`.
    pub metrics: Vec<(String, MetricValue)>,
    /// Measured wall-clock milliseconds for the job.  Never serialized —
    /// see the module docs — and ignored by `PartialEq`.
    pub wall_ms: f64,
}

impl PartialEq for Report {
    fn eq(&self, other: &Report) -> bool {
        self.id == other.id
            && self.title == other.title
            && self.seed == other.seed
            && self.metrics == other.metrics
    }
}

impl Report {
    /// Builds a report from a rendered table.
    pub fn from_table(id: &str, seed: u64, table: &Table, wall_ms: f64) -> Report {
        Report {
            id: id.to_string(),
            title: table.title.clone(),
            seed,
            metrics: table.metrics(),
            wall_ms,
        }
    }

    /// Looks up a metric by key.
    pub fn metric(&self, key: &str) -> Option<&MetricValue> {
        self.metrics.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Appends extra typed metrics (e.g. `NetMetrics::export()` from a live
    /// system) after the table-derived ones, keeping key order deterministic.
    pub fn append_metrics(&mut self, extra: impl IntoIterator<Item = (String, MetricValue)>) {
        self.metrics.extend(extra);
    }

    fn to_json(&self) -> Json {
        let mut metrics = Json::object();
        for (key, value) in &self.metrics {
            metrics.set(key.clone(), value.to_json());
        }
        let mut obj = Json::object();
        obj.set("id", Json::Str(self.id.clone()));
        obj.set("title", Json::Str(self.title.clone()));
        obj.set("seed", Json::Uint(self.seed));
        obj.set("metrics", metrics);
        obj
    }

    fn from_json(json: &Json) -> Result<Report, ReportError> {
        let id = json
            .get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| ReportError::new("report missing string 'id'"))?
            .to_string();
        let title = json
            .get("title")
            .and_then(Json::as_str)
            .ok_or_else(|| ReportError::new(format!("report {id}: missing string 'title'")))?
            .to_string();
        let seed = json
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or_else(|| ReportError::new(format!("report {id}: missing integer 'seed'")))?;
        let pairs = json
            .get("metrics")
            .and_then(Json::as_object)
            .ok_or_else(|| ReportError::new(format!("report {id}: missing object 'metrics'")))?;
        let mut metrics = Vec::with_capacity(pairs.len());
        for (key, value) in pairs {
            let value = MetricValue::from_json(value).ok_or_else(|| {
                ReportError::new(format!(
                    "report {id}: metric '{key}' has a non-scalar value"
                ))
            })?;
            metrics.push((key.clone(), value));
        }
        Ok(Report {
            id,
            title,
            seed,
            metrics,
            wall_ms: 0.0,
        })
    }
}

/// A whole harness run: mode plus one report per executed job.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportSet {
    /// `"quick"` or `"full"`; compared runs must agree on it.
    pub mode: String,
    /// One report per job, in registry order (deterministic).
    pub reports: Vec<Report>,
}

impl ReportSet {
    /// Builds a set from per-job reports.
    pub fn new(quick: bool, reports: Vec<Report>) -> ReportSet {
        ReportSet {
            mode: if quick { "quick" } else { "full" }.to_string(),
            reports,
        }
    }

    /// Finds a report by experiment id.
    pub fn report(&self, id: &str) -> Option<&Report> {
        self.reports.iter().find(|r| r.id == id)
    }

    /// A copy containing only the reports whose id is in `ids`, preserving
    /// order.  The harness uses this to narrow a baseline to the experiments
    /// a `--filter` actually ran, so `--filter E1 --compare` gates E1 alone
    /// instead of reporting every skipped experiment as missing.
    pub fn restrict_to(&self, ids: &[&str]) -> ReportSet {
        ReportSet {
            mode: self.mode.clone(),
            reports: self
                .reports
                .iter()
                .filter(|r| ids.contains(&r.id.as_str()))
                .cloned()
                .collect(),
        }
    }

    /// Serializes the set to deterministic pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        let mut obj = Json::object();
        obj.set("schema", Json::Uint(SCHEMA_VERSION));
        obj.set("suite", Json::Str("tacoma_bench".into()));
        obj.set("mode", Json::Str(self.mode.clone()));
        obj.set(
            "reports",
            Json::Array(self.reports.iter().map(Report::to_json).collect()),
        );
        obj.to_pretty()
    }

    /// Parses a report set back from JSON text.
    pub fn from_json_str(text: &str) -> Result<ReportSet, ReportError> {
        let doc = Json::parse(text).map_err(|e| ReportError::new(e.to_string()))?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or_else(|| ReportError::new("missing integer 'schema'"))?;
        if schema != SCHEMA_VERSION {
            return Err(ReportError::new(format!(
                "unsupported schema version {schema} (this binary reads {SCHEMA_VERSION})"
            )));
        }
        let mode = doc
            .get("mode")
            .and_then(Json::as_str)
            .ok_or_else(|| ReportError::new("missing string 'mode'"))?
            .to_string();
        let reports = doc
            .get("reports")
            .and_then(Json::as_array)
            .ok_or_else(|| ReportError::new("missing array 'reports'"))?
            .iter()
            .map(Report::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ReportSet { mode, reports })
    }

    /// Writes the set to `path` as JSON.
    pub fn save(&self, path: &Path) -> Result<(), ReportError> {
        std::fs::write(path, self.to_json_string())
            .map_err(|e| ReportError::new(format!("writing {}: {e}", path.display())))
    }

    /// Reads a set from a JSON file at `path`.
    pub fn load(path: &Path) -> Result<ReportSet, ReportError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ReportError::new(format!("reading {}: {e}", path.display())))?;
        ReportSet::from_json_str(&text)
    }
}

/// A report serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportError(String);

impl ReportError {
    fn new(message: impl Into<String>) -> ReportError {
        ReportError(message.into())
    }
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "report error: {}", self.0)
    }
}

impl std::error::Error for ReportError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> ReportSet {
        let mut table = Table::new(
            "E1 — demo",
            "claim",
            &["sites", "agent bytes", "saving", "ok"],
        );
        table.row(vec![
            "8".into(),
            "36540".into(),
            "15.3×".into(),
            "true".into(),
        ]);
        table.row(vec!["16".into(), "9.5".into(), "2×".into(), "false".into()]);
        let r1 = Report::from_table("E1", 7, &table, 12.5);
        let mut empty = Table::new("E4 — empty", "claim", &["n"]);
        empty.row(vec!["0".into()]);
        let r2 = Report::from_table("E4", 0, &empty, 0.1);
        ReportSet::new(true, vec![r1, r2])
    }

    #[test]
    fn json_round_trip_preserves_everything_but_wall_clock() {
        let set = sample_set();
        let text = set.to_json_string();
        let parsed = ReportSet::from_json_str(&text).unwrap();
        // PartialEq on Report ignores wall_ms by design.
        assert_eq!(parsed, set);
        assert_eq!(
            parsed.reports[0].wall_ms, 0.0,
            "wall clock is not persisted"
        );
        // A second serialization of the parsed set is byte-identical.
        assert_eq!(parsed.to_json_string(), text);
    }

    #[test]
    fn serialized_form_never_contains_wall_clock() {
        let text = sample_set().to_json_string();
        assert!(
            !text.contains("wall"),
            "wall-clock leaked into the report:\n{text}"
        );
    }

    #[test]
    fn metric_lookup_and_typing_survive_the_trip() {
        let text = sample_set().to_json_string();
        let parsed = ReportSet::from_json_str(&text).unwrap();
        let report = parsed.report("E1").unwrap();
        assert_eq!(
            report.metric("r0.agent_bytes"),
            Some(&MetricValue::Count(36540))
        );
        assert_eq!(
            report.metric("r1.agent_bytes"),
            Some(&MetricValue::Float(9.5))
        );
        assert_eq!(
            report.metric("r0.saving"),
            Some(&MetricValue::Text("15.3×".into()))
        );
        assert_eq!(report.metric("r0.ok"), Some(&MetricValue::Flag(true)));
        assert_eq!(report.metric("missing"), None);
    }

    #[test]
    fn restrict_to_keeps_only_named_reports_and_the_mode() {
        let set = sample_set();
        let narrowed = set.restrict_to(&["E4"]);
        assert_eq!(narrowed.mode, set.mode);
        assert_eq!(narrowed.reports.len(), 1);
        assert_eq!(narrowed.reports[0].id, "E4");
        assert!(set.restrict_to(&["nope"]).reports.is_empty());
    }

    #[test]
    fn net_metrics_export_flows_into_a_report() {
        use tacoma_net::NetMetrics;
        use tacoma_util::SiteId;
        let mut net = NetMetrics::new();
        net.record_send(SiteId(0));
        net.record_hop(SiteId(0), SiteId(1), 512);
        let mut set = sample_set();
        set.reports[0].append_metrics(net.export());
        let parsed = ReportSet::from_json_str(&set.to_json_string()).unwrap();
        let report = parsed.report("E1").unwrap();
        assert_eq!(
            report.metric("net.total_bytes"),
            Some(&MetricValue::Count(512))
        );
        assert_eq!(
            report.metric("net.total_messages"),
            Some(&MetricValue::Count(1))
        );
    }

    #[test]
    fn rejects_wrong_schema_and_malformed_documents() {
        assert!(ReportSet::from_json_str("{}").is_err());
        assert!(ReportSet::from_json_str("not json").is_err());
        let wrong = r#"{"schema": 999, "mode": "quick", "reports": []}"#;
        let err = ReportSet::from_json_str(wrong).unwrap_err();
        assert!(err.to_string().contains("schema"), "got: {err}");
    }
}
