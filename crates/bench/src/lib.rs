//! Experiment drivers for the TACOMA reproduction.
//!
//! The paper (a HotOS position paper) contains no numbered tables or figures;
//! DESIGN.md §3 defines experiments E1–E10, one per measurable claim in the
//! text.  Each `eN_*` function here runs one experiment and returns a
//! [`Table`]; the `harness` binary prints them all (this is the artifact that
//! stands in for "regenerating the paper's tables"), and the Criterion
//! benches in `benches/` time the same code paths.

#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use experiments::*;
pub use table::Table;
