//! Experiment drivers for the TACOMA reproduction.
//!
//! The paper (a HotOS position paper) contains no numbered tables or figures;
//! DESIGN.md defines experiments E1–E20, one per measurable claim in the
//! text (plus the E11/E12 scale experiments the ROADMAP's north star asks
//! for, the E13/E14 custody experiments, the E15/E16 broker-federation
//! experiments, the E17 sharded event-core sweep, and the E20 cost-aware
//! placement comparison).  Each `eN_*` function here runs one experiment and returns a
//! [`Table`]; the `harness` binary prints them all (this is the artifact that
//! stands in for "regenerating the paper's tables"), and the Criterion
//! benches in `benches/` time the same code paths.
//!
//! Around the drivers sits the measurement backbone added for CI:
//!
//! * [`runner`] — a registry of experiment jobs plus a std-only
//!   work-stealing executor (each job owns its seeded simulation, so
//!   parallelism never changes a measured number);
//! * [`report`] — the structured, JSON-serializable twin of each table;
//! * [`baseline`] — the `--compare` regression gate that diffs a run
//!   against the committed `BENCH_baseline.json` with per-metric tolerances;
//! * [`args`] — the strict harness CLI parser.

#![warn(missing_docs)]

pub mod args;
pub mod baseline;
pub mod experiments;
pub mod report;
pub mod runner;
pub mod table;

pub use args::HarnessArgs;
pub use baseline::{compare, CompareConfig, CompareOutcome};
pub use experiments::*;
pub use report::{Report, ReportSet};
pub use runner::{registry, run_jobs, select, JobResult, JobSpec, RunOpts};
pub use table::Table;
