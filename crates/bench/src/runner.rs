//! The parallel experiment runner.
//!
//! Every experiment (E1–E19) and ablation (A3/A4; A1/A2 are reserved ids,
//! see [`RESERVED_IDS`]) is registered here as an independent [`JobSpec`].
//! Each job builds and drives its own seeded `SimNet`/`TacomaSystem`, so jobs
//! share no mutable state and the worker count cannot perturb any measured
//! number — only wall-clock time.  That is what lets `--jobs 8` produce a
//! byte-identical report to `--jobs 1`.
//!
//! The executor is a std-only work-stealing pool: worker threads steal the
//! next unclaimed job index from a shared atomic injector until the queue is
//! drained, and results land in per-job slots so the output order is always
//! registry order regardless of completion order.

use crate::report::Report;
use crate::table::Table;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Per-run knobs every experiment driver receives.
///
/// `shards` selects how many event-queue shards each driver's simulations
/// partition their pending events into.  It is a layout knob, never a
/// semantic one: every shard count must produce byte-identical tables and
/// reports, which CI enforces by diffing `--shards 1` against `--shards 4`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOpts {
    /// Run the quick (smoke) configuration instead of the full sweep.
    pub quick: bool,
    /// Event-queue shards per simulation (≥ 1).
    pub shards: u32,
}

impl RunOpts {
    /// Options for a quick or full run with the default single shard.
    pub fn new(quick: bool) -> Self {
        RunOpts { quick, shards: 1 }
    }

    /// Replaces the shard count.
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.shards = shards.max(1);
        self
    }
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts::new(false)
    }
}

/// One schedulable experiment: id, primary seed, and the driver function.
#[derive(Debug, Clone, Copy)]
pub struct JobSpec {
    /// Stable experiment id (`"E1"` … `"E10"`, `"A3"`, `"A4"`).
    pub id: &'static str,
    /// One-line summary shown by `--list`.
    pub summary: &'static str,
    /// The primary seed the driver hard-codes; recorded in the report.
    pub seed: u64,
    /// The driver, parameterized by the run options.
    pub run: fn(RunOpts) -> Table,
}

/// Ablation ids reserved in DESIGN.md but not yet implemented; `--filter`
/// recognises them and says so instead of reporting a typo.
pub const RESERVED_IDS: &[&str] = &["A1", "A2"];

fn e8_job(opts: RunOpts) -> Table {
    crate::e8_protected(if opts.quick { 20 } else { 100 })
}

/// The full job registry, in presentation order.
pub fn registry() -> Vec<JobSpec> {
    vec![
        JobSpec {
            id: "E1",
            summary: "bandwidth conservation (filter at the data)",
            seed: 7,
            run: crate::e1_bandwidth,
        },
        JobSpec {
            id: "E2",
            summary: "diffusion bounded by site-local folders",
            seed: 2,
            run: crate::e2_diffusion,
        },
        JobSpec {
            id: "E3",
            summary: "meet and rexec migration cost",
            seed: 3,
            run: crate::e3_meet_rexec,
        },
        JobSpec {
            id: "E4",
            summary: "folders move cheap, cabinets access cheap",
            seed: 0,
            run: crate::e4_folders,
        },
        JobSpec {
            id: "E5",
            summary: "validation agent foils double spending",
            seed: 55,
            run: crate::e5_cash,
        },
        JobSpec {
            id: "E6",
            summary: "audits instead of transactions",
            seed: 66,
            run: crate::e6_exchange,
        },
        JobSpec {
            id: "E7",
            summary: "brokers schedule by load and capacity",
            seed: 77,
            run: crate::e7_scheduling,
        },
        JobSpec {
            id: "E8",
            summary: "protected agents reachable only via broker",
            seed: 88,
            run: e8_job,
        },
        JobSpec {
            id: "E9",
            summary: "rear guards survive site failures",
            seed: 909,
            run: crate::e9_rear_guard,
        },
        JobSpec {
            id: "E10",
            summary: "StormCast and AgentMail applications",
            seed: 1995,
            run: crate::e10_apps,
        },
        JobSpec {
            id: "E11",
            summary: "routing fast path at scale (ring of cliques)",
            seed: 1111,
            run: crate::e11_scale,
        },
        JobSpec {
            id: "E12",
            summary: "partition churn and route-cache invalidation",
            seed: 1212,
            run: crate::e12_churn,
        },
        JobSpec {
            id: "E13",
            summary: "store-and-forward custody across partitions",
            seed: 1313,
            run: crate::e13_custody,
        },
        JobSpec {
            id: "E14",
            summary: "custody conservation under crash churn",
            seed: 1414,
            run: crate::e14_custody_churn,
        },
        JobSpec {
            id: "E15",
            summary: "federated broker scheduling at 1024 sites",
            seed: 1515,
            run: crate::e15_federation,
        },
        JobSpec {
            id: "E16",
            summary: "broker crash and failover under job churn",
            seed: 1616,
            run: crate::e16_failover,
        },
        JobSpec {
            id: "E17",
            summary: "sharded event core scale sweep (calendar vs heap)",
            seed: 7,
            run: crate::e17_shard_sweep,
        },
        JobSpec {
            id: "E18",
            summary: "open-arrival overload: backpressure and load shedding",
            seed: 1818,
            run: crate::e18_overload,
        },
        JobSpec {
            id: "E19",
            summary: "regional flash crowd vs federated admission control",
            seed: 1919,
            run: crate::e19_flash_crowd,
        },
        JobSpec {
            id: "E20",
            summary: "cost-aware placement of a heterogeneous script fleet",
            seed: 2020,
            run: crate::e20_cost_placement,
        },
        JobSpec {
            id: "A3",
            summary: "ablation: rear-guard chain depth",
            seed: 31_001,
            run: crate::ablation_guard_depth,
        },
        JobSpec {
            id: "A4",
            summary: "ablation: load-report dissemination period",
            seed: 404,
            run: crate::ablation_report_period,
        },
    ]
}

/// Selects registry jobs by id (case-insensitive), preserving registry order.
///
/// Unknown ids are an error; reserved-but-unimplemented ablation ids get a
/// dedicated message so a typo is distinguishable from a roadmap gap.
pub fn select(ids: &[String]) -> Result<Vec<JobSpec>, String> {
    let all = registry();
    if ids.is_empty() {
        return Ok(all);
    }
    let mut wanted: Vec<String> = Vec::new();
    for id in ids {
        let canon = id.to_ascii_uppercase();
        if RESERVED_IDS.contains(&canon.as_str()) {
            return Err(format!(
                "experiment {canon} is a reserved ablation slot and is not implemented yet"
            ));
        }
        if !all.iter().any(|s| s.id == canon) {
            let known: Vec<&str> = all.iter().map(|s| s.id).collect();
            return Err(format!(
                "unknown experiment id '{id}' (known: {}; reserved: {})",
                known.join(", "),
                RESERVED_IDS.join(", ")
            ));
        }
        if !wanted.contains(&canon) {
            wanted.push(canon);
        }
    }
    Ok(all
        .into_iter()
        .filter(|s| wanted.iter().any(|w| w == s.id))
        .collect())
}

/// One finished job: the rendered table plus its structured report.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The experiment id, copied from the spec.
    pub id: &'static str,
    /// The human-readable table the harness prints.
    pub table: Table,
    /// The structured report `--json` serializes.
    pub report: Report,
}

/// Runs `specs` on `workers` threads and returns results in registry order.
///
/// `workers` is clamped to `1..=specs.len()`; with one worker this degrades
/// to a plain sequential loop over the same code path, which is what makes
/// the sequential-vs-parallel determinism test meaningful.
pub fn run_jobs(specs: &[JobSpec], opts: RunOpts, workers: usize) -> Vec<JobResult> {
    let workers = workers.clamp(1, specs.len().max(1));
    let injector = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<JobResult>>> = specs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = injector.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = specs.get(i) else { break };
                let started = Instant::now();
                let table = (spec.run)(opts);
                let wall_ms = started.elapsed().as_secs_f64() * 1_000.0;
                let report = Report::from_table(spec.id, spec.seed, &table, wall_ms);
                *slots[i].lock().unwrap() = Some(JobResult {
                    id: spec.id,
                    table,
                    report,
                });
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every claimed job stores a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ReportSet;

    /// Cheap subset used by the determinism tests (the full quick suite is
    /// exercised end-to-end by `tests/harness_gate.rs`).
    fn cheap_ids() -> Vec<String> {
        // E13/E14/E16 ride along so the custody and broker-failover
        // experiments are explicitly covered by the jobs-1-vs-jobs-8
        // byte-identical check (E15 is covered by the CI determinism job;
        // its 1024-site rows are too heavy for a unit test to run twice).
        ["E4", "E5", "E8", "E13", "E14", "E16"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    #[test]
    fn registry_ids_are_unique_and_cover_e1_to_a4() {
        let specs = registry();
        assert_eq!(specs.len(), 22);
        let mut ids: Vec<&str> = specs.iter().map(|s| s.id).collect();
        assert_eq!(ids.first(), Some(&"E1"));
        assert_eq!(ids.last(), Some(&"A4"));
        assert!(ids.contains(&"E11") && ids.contains(&"E12"));
        assert!(ids.contains(&"E13") && ids.contains(&"E14"));
        assert!(ids.contains(&"E15") && ids.contains(&"E16"));
        assert!(ids.contains(&"E17"));
        assert!(ids.contains(&"E18") && ids.contains(&"E19"));
        assert!(ids.contains(&"E20"));
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 22, "duplicate experiment ids in the registry");
    }

    #[test]
    fn select_filters_case_insensitively_and_rejects_unknowns() {
        let picked = select(&["e8".into(), "E4".into(), "e8".into()]).unwrap();
        let ids: Vec<&str> = picked.iter().map(|s| s.id).collect();
        assert_eq!(ids, ["E4", "E8"], "registry order, deduplicated");
        assert!(select(&["E99".into()])
            .unwrap_err()
            .contains("unknown experiment id"));
        assert!(select(&["a1".into()]).unwrap_err().contains("reserved"));
        assert_eq!(select(&[]).unwrap().len(), 22);
    }

    #[test]
    fn parallel_and_sequential_runs_serialize_byte_identically() {
        let specs = select(&cheap_ids()).unwrap();
        let sequential = run_jobs(&specs, RunOpts::new(true), 1);
        let parallel = run_jobs(&specs, RunOpts::new(true), 8);
        let a = ReportSet::new(true, sequential.iter().map(|r| r.report.clone()).collect());
        let b = ReportSet::new(true, parallel.iter().map(|r| r.report.clone()).collect());
        assert_eq!(a.to_json_string(), b.to_json_string());
        // The printed tables agree too, not just the reports.
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(s.table.render(), p.table.render());
        }
    }

    #[test]
    fn sharded_and_single_queue_runs_serialize_byte_identically() {
        // The shard-count determinism contract, at unit-test scale: the same
        // experiments must produce byte-identical reports and tables with one
        // event queue and with four shards (CI repeats this over the whole
        // quick suite via `--shards 4`).
        let specs = select(&cheap_ids()).unwrap();
        let single = run_jobs(&specs, RunOpts::new(true), 2);
        let sharded = run_jobs(&specs, RunOpts::new(true).with_shards(4), 2);
        let a = ReportSet::new(true, single.iter().map(|r| r.report.clone()).collect());
        let b = ReportSet::new(true, sharded.iter().map(|r| r.report.clone()).collect());
        assert_eq!(a.to_json_string(), b.to_json_string());
        for (s, p) in single.iter().zip(&sharded) {
            assert_eq!(s.table.render(), p.table.render());
        }
    }

    #[test]
    fn results_come_back_in_registry_order_even_with_many_workers() {
        let specs = select(&cheap_ids()).unwrap();
        let results = run_jobs(&specs, RunOpts::new(true), specs.len() * 4);
        let ids: Vec<&str> = results.iter().map(|r| r.id).collect();
        assert_eq!(ids, ["E4", "E5", "E8", "E13", "E14", "E16"]);
        assert!(results.iter().all(|r| !r.report.metrics.is_empty()));
        assert!(results.iter().all(|r| r.report.wall_ms >= 0.0));
    }
}
