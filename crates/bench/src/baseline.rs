//! The `--compare` regression gate: diff a fresh run against a committed
//! baseline report, metric by metric, with per-metric tolerances.
//!
//! The simulator is deterministic, so on an unchanged tree every metric
//! matches its baseline exactly; tolerances exist to absorb *intentional*
//! small drift (e.g. a payload-size tweak) without forcing a baseline
//! refresh for every PR.  Numeric metrics pass while within their tolerance
//! of the baseline value — drift in *either* direction beyond it fails,
//! because in a deterministic harness unexplained improvement is as
//! suspicious as regression.  Text and flag metrics must match exactly.
//!
//! The default tolerance is [`DEFAULT_TOLERANCE`]; wall-clock time is never
//! compared because it is never serialized (see [`crate::report`]).

use crate::report::ReportSet;
use std::fmt;
use tacoma_util::{MetricValue, Tolerance};

/// Default relative tolerance applied to every numeric metric: 2%.
pub const DEFAULT_TOLERANCE: Tolerance = Tolerance {
    rel: 0.02,
    abs: 0.0,
};

/// Tolerance configuration: a default plus longest-prefix overrides.
///
/// Override keys are matched against `"{experiment}.{metric}"`, e.g.
/// `"E7."` loosens everything in E7 while `"E7.r0.makespan_ms"` pins one
/// cell.  The longest matching prefix wins.
#[derive(Debug, Clone, Default)]
pub struct CompareConfig {
    overrides: Vec<(String, Tolerance)>,
}

impl CompareConfig {
    /// The stock configuration: [`DEFAULT_TOLERANCE`] everywhere.
    pub fn new() -> CompareConfig {
        CompareConfig::default()
    }

    /// Adds a prefix override (builder style).
    pub fn with_override(mut self, prefix: impl Into<String>, tol: Tolerance) -> CompareConfig {
        self.overrides.push((prefix.into(), tol));
        self
    }

    /// The tolerance in force for `experiment_id.metric_key`.
    pub fn tolerance_for(&self, experiment_id: &str, metric_key: &str) -> Tolerance {
        // Prefixes match on `.`-segment boundaries, so an "E1" override
        // covers E1's metrics but never leaks onto E10's.
        fn matches(prefix: &str, full: &str) -> bool {
            match full.strip_prefix(prefix) {
                Some(rest) => rest.is_empty() || rest.starts_with('.') || prefix.ends_with('.'),
                None => false,
            }
        }
        let full = format!("{experiment_id}.{metric_key}");
        self.overrides
            .iter()
            .filter(|(prefix, _)| matches(prefix, &full))
            .max_by_key(|(prefix, _)| prefix.len())
            .map(|(_, tol)| *tol)
            .unwrap_or(DEFAULT_TOLERANCE)
    }
}

/// One comparison failure or notable difference.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Experiment id the finding belongs to (empty for set-level findings).
    pub experiment: String,
    /// Metric key, when the finding is about one metric.
    pub metric: String,
    /// Human-readable description.
    pub detail: String,
    /// Whether this finding fails the gate (additions are informational).
    pub fatal: bool,
}

impl Finding {
    fn fatal(experiment: &str, metric: &str, detail: String) -> Finding {
        Finding {
            experiment: experiment.to_string(),
            metric: metric.to_string(),
            detail,
            fatal: true,
        }
    }

    fn info(experiment: &str, metric: &str, detail: String) -> Finding {
        Finding {
            experiment: experiment.to_string(),
            metric: metric.to_string(),
            detail,
            fatal: false,
        }
    }
}

/// The outcome of comparing a run against a baseline.
#[derive(Debug, Clone, Default)]
pub struct CompareOutcome {
    /// Every difference found, fatal and informational.
    pub findings: Vec<Finding>,
    /// Metrics compared (for the summary line).
    pub metrics_checked: usize,
}

impl CompareOutcome {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        !self.findings.iter().any(|f| f.fatal)
    }

    /// Fatal findings only.
    pub fn failures(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.fatal)
    }
}

impl fmt::Display for CompareOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fatal = self.failures().count();
        if self.passed() {
            write!(
                f,
                "PASS: {} metric(s) within tolerance of the baseline",
                self.metrics_checked
            )?;
        } else {
            write!(
                f,
                "FAIL: {} regression(s) across {} compared metric(s)",
                fatal, self.metrics_checked
            )?;
        }
        for finding in &self.findings {
            let tag = if finding.fatal { "regression" } else { "note" };
            let place = if finding.metric.is_empty() {
                finding.experiment.clone()
            } else {
                format!("{}.{}", finding.experiment, finding.metric)
            };
            write!(f, "\n  [{tag}] {place}: {}", finding.detail)?;
        }
        Ok(())
    }
}

/// Compares `current` against `baseline` under `config`.
pub fn compare(
    baseline: &ReportSet,
    current: &ReportSet,
    config: &CompareConfig,
) -> CompareOutcome {
    let mut outcome = CompareOutcome::default();
    if baseline.mode != current.mode {
        outcome.findings.push(Finding::fatal(
            "",
            "",
            format!(
                "mode mismatch: baseline is a '{}' run, current is '{}' — compare like with like",
                baseline.mode, current.mode
            ),
        ));
        return outcome;
    }
    for base_report in &baseline.reports {
        let id = base_report.id.as_str();
        let Some(cur_report) = current.report(id) else {
            outcome.findings.push(Finding::fatal(
                id,
                "",
                "experiment present in baseline but missing from this run".into(),
            ));
            continue;
        };
        if base_report.seed != cur_report.seed {
            outcome.findings.push(Finding::fatal(
                id,
                "",
                format!(
                    "seed changed ({} -> {}); refresh the baseline",
                    base_report.seed, cur_report.seed
                ),
            ));
        }
        for (key, base_value) in &base_report.metrics {
            let Some(cur_value) = cur_report.metric(key) else {
                outcome.findings.push(Finding::fatal(
                    id,
                    key,
                    format!("metric missing from this run (baseline: {base_value})"),
                ));
                continue;
            };
            outcome.metrics_checked += 1;
            let tol = config.tolerance_for(id, key);
            if !cur_value.within(base_value, tol) {
                outcome.findings.push(Finding::fatal(
                    id,
                    key,
                    describe_drift(base_value, cur_value, tol),
                ));
            }
        }
        for (key, cur_value) in &cur_report.metrics {
            if base_report.metric(key).is_none() {
                outcome.findings.push(Finding::info(
                    id,
                    key,
                    format!("new metric not in baseline (value: {cur_value})"),
                ));
            }
        }
    }
    for cur_report in &current.reports {
        if baseline.report(&cur_report.id).is_none() {
            outcome.findings.push(Finding::info(
                &cur_report.id,
                "",
                "new experiment not in baseline — refresh it to start tracking".into(),
            ));
        }
    }
    outcome
}

fn describe_drift(base: &MetricValue, cur: &MetricValue, tol: Tolerance) -> String {
    match (base.as_number(), cur.as_number()) {
        (Some(b), Some(c)) if b != 0.0 => {
            let pct = (c - b) / b * 100.0;
            format!(
                "{b} -> {c} ({pct:+.2}%, tolerance rel {:.1}% abs {})",
                tol.rel * 100.0,
                tol.abs
            )
        }
        _ => format!("baseline {base} != current {cur}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Report;

    fn set_with(id: &str, metrics: Vec<(&str, MetricValue)>) -> ReportSet {
        ReportSet::new(
            true,
            vec![Report {
                id: id.to_string(),
                title: format!("{id} — test"),
                seed: 1,
                metrics: metrics
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
                wall_ms: 0.0,
            }],
        )
    }

    #[test]
    fn identical_runs_pass() {
        let base = set_with("E1", vec![("r0.bytes", MetricValue::Count(1000))]);
        let outcome = compare(&base, &base.clone(), &CompareConfig::new());
        assert!(outcome.passed(), "{outcome}");
        assert_eq!(outcome.metrics_checked, 1);
    }

    #[test]
    fn drift_at_tolerance_passes_and_past_it_fails() {
        let base = set_with("E1", vec![("r0.bytes", MetricValue::Count(1000))]);
        // 2% default tolerance: 1020 is on the boundary, 1021 is past it.
        let at = set_with("E1", vec![("r0.bytes", MetricValue::Count(1020))]);
        assert!(compare(&base, &at, &CompareConfig::new()).passed());
        let past = set_with("E1", vec![("r0.bytes", MetricValue::Count(1021))]);
        let outcome = compare(&base, &past, &CompareConfig::new());
        assert!(!outcome.passed());
        assert_eq!(outcome.failures().count(), 1);
        assert!(outcome.to_string().contains("FAIL"), "{outcome}");
    }

    #[test]
    fn improvement_beyond_tolerance_also_fails() {
        // Deterministic harness: unexplained drift downward is a red flag too.
        let base = set_with("E1", vec![("r0.bytes", MetricValue::Count(1000))]);
        let better = set_with("E1", vec![("r0.bytes", MetricValue::Count(900))]);
        assert!(!compare(&base, &better, &CompareConfig::new()).passed());
    }

    #[test]
    fn longest_prefix_override_wins() {
        let base = set_with(
            "E7",
            vec![
                ("r0.makespan_ms", MetricValue::Float(100.0)),
                ("r0.wait_ms", MetricValue::Float(100.0)),
            ],
        );
        let cur = set_with(
            "E7",
            vec![
                ("r0.makespan_ms", MetricValue::Float(109.0)),
                ("r0.wait_ms", MetricValue::Float(109.0)),
            ],
        );
        let config = CompareConfig::new()
            .with_override("E7.", Tolerance::rel(0.20))
            .with_override("E7.r0.wait_ms", Tolerance::rel(0.01));
        let outcome = compare(&base, &cur, &config);
        let failed: Vec<&str> = outcome.failures().map(|f| f.metric.as_str()).collect();
        assert_eq!(failed, ["r0.wait_ms"], "{outcome}");
    }

    #[test]
    fn experiment_override_does_not_leak_onto_longer_ids() {
        let config = CompareConfig::new().with_override("E1", Tolerance::rel(0.50));
        assert_eq!(config.tolerance_for("E1", "r0.bytes"), Tolerance::rel(0.50));
        assert_eq!(
            config.tolerance_for("E10", "r0.bytes"),
            DEFAULT_TOLERANCE,
            "an E1 override must not cover E10"
        );
        // Dotted spellings keep working, including exact full-key pins.
        let dotted = CompareConfig::new().with_override("E1.r0.bytes", Tolerance::rel(0.10));
        assert_eq!(dotted.tolerance_for("E1", "r0.bytes"), Tolerance::rel(0.10));
        assert_eq!(
            dotted.tolerance_for("E1", "r0.bytes_total"),
            DEFAULT_TOLERANCE
        );
    }

    #[test]
    fn missing_experiment_or_metric_fails_but_additions_inform() {
        let base = set_with("E1", vec![("r0.bytes", MetricValue::Count(1))]);
        let empty = ReportSet::new(true, Vec::new());
        assert!(!compare(&base, &empty, &CompareConfig::new()).passed());

        let fewer = set_with("E1", vec![]);
        assert!(!compare(&base, &fewer, &CompareConfig::new()).passed());

        let more = set_with(
            "E1",
            vec![
                ("r0.bytes", MetricValue::Count(1)),
                ("r0.extra", MetricValue::Count(9)),
            ],
        );
        let outcome = compare(&base, &more, &CompareConfig::new());
        assert!(outcome.passed(), "additions are informational: {outcome}");
        assert_eq!(outcome.findings.len(), 1);
        assert!(!outcome.findings[0].fatal);
    }

    #[test]
    fn mode_mismatch_is_fatal_up_front() {
        let base = set_with("E1", vec![("r0.bytes", MetricValue::Count(1))]);
        let mut full = base.clone();
        full.mode = "full".into();
        let outcome = compare(&base, &full, &CompareConfig::new());
        assert!(!outcome.passed());
        assert!(outcome.to_string().contains("mode mismatch"));
    }

    #[test]
    fn text_metric_change_is_a_regression() {
        let base = set_with("E1", vec![("r0.saving", MetricValue::Text("15.3×".into()))]);
        let cur = set_with("E1", vec![("r0.saving", MetricValue::Text("14.9×".into()))]);
        assert!(!compare(&base, &cur, &CompareConfig::new()).passed());
    }
}
