//! The experiment harness: regenerates every table of the reproduction and
//! doubles as the CI regression gate.
//!
//! ```sh
//! cargo run -p tacoma_bench --bin harness --release               # full run
//! cargo run -p tacoma_bench --bin harness --release -- --quick    # smoke run
//! harness --quick --jobs 8 --json report.json                     # parallel + report
//! harness --quick --compare BENCH_baseline.json                   # regression gate
//! ```
//!
//! Exit codes: 0 on success, 1 when `--compare` finds a regression, 2 on a
//! usage error (unknown flag, bad value, unknown experiment id).

use std::process::ExitCode;
use tacoma_bench::{args::USAGE, baseline, runner, HarnessArgs, ReportSet};

fn main() -> ExitCode {
    let args = match HarnessArgs::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("harness: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.list {
        println!("experiments:");
        for spec in runner::registry() {
            println!("  {:<4} seed {:<6} {}", spec.id, spec.seed, spec.summary);
        }
        println!(
            "  reserved (not implemented): {}",
            runner::RESERVED_IDS.join(", ")
        );
        return ExitCode::SUCCESS;
    }

    let specs = match runner::select(&args.filter) {
        Ok(specs) => specs,
        Err(message) => {
            eprintln!("harness: {message}");
            return ExitCode::from(2);
        }
    };
    let workers = args.jobs.max(1);
    let opts = runner::RunOpts::new(args.quick).with_shards(args.shards.max(1));
    println!(
        "# TACOMA reproduction — experiment harness ({} mode, {} job(s), {} worker(s), {} shard(s))",
        if args.quick { "quick" } else { "full" },
        specs.len(),
        workers.min(specs.len().max(1)),
        opts.shards,
    );
    println!();

    let started = std::time::Instant::now();
    let results = runner::run_jobs(&specs, opts, workers);
    let total_wall_ms = started.elapsed().as_secs_f64() * 1_000.0;

    for result in &results {
        print!("{}", result.table.render());
    }
    println!("## run summary (wall clock; not part of the report)");
    for result in &results {
        println!("  {:<4} {:>10.1} ms", result.id, result.report.wall_ms);
    }
    println!(
        "  total {:>9.1} ms across {} worker(s)",
        total_wall_ms,
        workers.min(specs.len().max(1))
    );
    // Wall-clock notes (E17's events/sec and speedups) live outside the
    // deterministic report; CI lifts this section into the job summary.
    if results.iter().any(|r| !r.table.notes.is_empty()) {
        println!();
        println!("## shard speedup (wall clock; not part of the report)");
        for result in &results {
            for note in &result.table.notes {
                println!("  {:<4} {note}", result.id);
            }
        }
    }

    let set = ReportSet::new(
        args.quick,
        results.iter().map(|r| r.report.clone()).collect(),
    );
    if let Some(path) = &args.json {
        if let Err(e) = set.save(path) {
            eprintln!("harness: {e}");
            return ExitCode::from(2);
        }
        println!("  report written to {}", path.display());
    }

    if let Some(path) = &args.compare {
        let mut baseline_set = match ReportSet::load(path) {
            Ok(set) => set,
            Err(e) => {
                eprintln!("harness: {e}");
                return ExitCode::from(2);
            }
        };
        println!();
        println!("## compare vs {}", path.display());
        if !args.filter.is_empty() {
            // Gate only what actually ran, so `--filter E1 --compare` checks
            // E1 instead of flagging every skipped experiment as missing.
            let ran: Vec<&str> = specs.iter().map(|s| s.id).collect();
            baseline_set = baseline_set.restrict_to(&ran);
            println!("(narrowed to filtered experiment(s): {})", ran.join(", "));
        }
        let outcome = baseline::compare(&baseline_set, &set, &baseline::CompareConfig::new());
        println!("{outcome}");
        if !outcome.passed() {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
