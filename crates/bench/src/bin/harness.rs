//! The experiment harness: regenerates every table of the reproduction.
//!
//! Run with `cargo run -p tacoma_bench --bin harness --release` (add `--
//! --quick` for a fast smoke run).  The output of this binary is the source of
//! the numbers recorded in EXPERIMENTS.md.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("# TACOMA reproduction — experiment harness ({})", if quick { "quick" } else { "full" });
    println!();
    for table in tacoma_bench::all_experiments(quick) {
        print!("{}", table.render());
    }
}
