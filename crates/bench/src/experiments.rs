//! The E1–E20 experiment drivers and the design-choice ablations.

use crate::runner::RunOpts;
use crate::table::Table;
use tacoma_agents::testing::SinkAgent;
use tacoma_agents::{
    diffusion_briefcase, naive_flood_briefcase, standard_agents, AgTacAgent, NaiveFloodAgent,
};
use tacoma_apps::{run_mail_experiment, run_stormcast, MailConfig, StormcastConfig, StormcastPlan};
use tacoma_cash::{AuditCourt, ExchangeConfig, ExchangeProtocol, Mint, PartyBehavior};
use tacoma_core::prelude::*;
use tacoma_core::{codec, Folder, TacomaSystem};
use tacoma_ft::{run_itinerary_experiment, BrokerGuardAgent, FtConfig};
use tacoma_net::{CustodyConfig, FailurePlan, LinkSpec, SimTime, Topology};
use tacoma_sched::federation::{
    build_federation, drive_federation, install_sources, run_federation_experiment,
    FederationConfig, FederationResult,
};
use tacoma_sched::protected::{secret_agent_name, AdmissionPolicy, REQUESTER};
use tacoma_sched::{
    run_scheduling_experiment, LoadReport, PlacementPolicy, ProtectedBrokerAgent, ReportDb,
    SchedulingConfig,
};
use tacoma_util::{DetRng, SiteId as USiteId};

// ---------------------------------------------------------------------------
// E1 — bandwidth conservation: filter at the data vs ship raw data
// ---------------------------------------------------------------------------

/// A data-holding site's server agent for the client-server plan: ships its
/// whole dataset to the sink at the origin.
struct RawServer;
impl Agent for RawServer {
    fn name(&self) -> AgentName {
        AgentName::new("raw_server")
    }
    fn meet(&mut self, ctx: &mut MeetCtx<'_>, bc: Briefcase) -> MeetOutcome {
        let origin = bc
            .peek_string(wellknown::ORIGIN)
            .and_then(|s| s.parse::<u32>().ok())
            .unwrap_or(0);
        let records: Vec<String> = ctx
            .cabinet("dataset")
            .folder("RECORDS")
            .map(|f| f.strings())
            .unwrap_or_default();
        let mut out = Briefcase::new();
        let folder = out.folder_mut("RAW");
        for r in records {
            folder.push_str(r);
        }
        ctx.remote_meet(
            USiteId(origin),
            AgentName::new(SinkAgent::NAME),
            out,
            TransportKind::Tcp,
        );
        Ok(Briefcase::new())
    }
}

/// The itinerant filtering agent for the agent plan: keeps only matching
/// records and carries them onward.
struct FilterCollector;
impl Agent for FilterCollector {
    fn name(&self) -> AgentName {
        AgentName::new("filter_collector")
    }
    fn meet(&mut self, ctx: &mut MeetCtx<'_>, mut bc: Briefcase) -> MeetOutcome {
        let records: Vec<String> = ctx
            .cabinet("dataset")
            .folder("RECORDS")
            .map(|f| f.strings())
            .unwrap_or_default();
        for r in records.into_iter().filter(|r| r.starts_with("match")) {
            bc.folder_mut("MATCHES").push_str(r);
        }
        let next = bc
            .folder_mut(wellknown::ITINERARY)
            .dequeue_str()
            .and_then(|s| s.parse::<u32>().ok());
        match next {
            Some(site) => ctx.remote_meet(
                USiteId(site),
                AgentName::new("filter_collector"),
                bc,
                TransportKind::Tcp,
            ),
            None => {
                let origin = bc
                    .peek_string(wellknown::ORIGIN)
                    .and_then(|s| s.parse::<u32>().ok())
                    .unwrap_or(0);
                ctx.remote_meet(
                    USiteId(origin),
                    AgentName::new(SinkAgent::NAME),
                    bc,
                    TransportKind::Tcp,
                );
            }
        }
        Ok(Briefcase::new())
    }
}

fn e1_run(
    sites: u32,
    records_per_site: u32,
    selectivity: f64,
    agent_plan: bool,
    seed: u64,
    shards: u32,
) -> (u64, f64) {
    let mut sys = TacomaSystem::builder()
        .topology(Topology::star(sites + 1, LinkSpec::wan()))
        .seed(seed)
        .shards(shards)
        .build();
    sys.register_agent(USiteId(0), Box::new(SinkAgent::new()));
    let mut rng = DetRng::new(seed ^ 0xE1);
    for s in 1..=sites {
        sys.register_agent(USiteId(s), Box::new(RawServer));
        sys.register_agent(USiteId(s), Box::new(FilterCollector));
        let cab = sys.place_mut(USiteId(s)).cabinets_mut().cabinet("dataset");
        for i in 0..records_per_site {
            let tag = if rng.chance(selectivity) {
                "match"
            } else {
                "other"
            };
            // 64-byte fixed-width records keep byte accounting interpretable.
            cab.append_str("RECORDS", format!("{tag},{s:>4},{i:>8},{:>44}", "payload"));
        }
    }
    sys.reset_net_metrics();
    if agent_plan {
        let mut bc = Briefcase::new();
        bc.put_string(wellknown::ORIGIN, "0");
        let itin = bc.folder_mut(wellknown::ITINERARY);
        for s in 2..=sites {
            itin.enqueue(s.to_string().into_bytes());
        }
        sys.inject_meet(USiteId(1), AgentName::new("filter_collector"), bc);
    } else {
        for s in 1..=sites {
            let mut bc = Briefcase::new();
            bc.put_string(wellknown::ORIGIN, "0");
            sys.inject_meet(USiteId(s), AgentName::new("raw_server"), bc);
        }
    }
    sys.run_until_quiescent(1_000_000);
    (
        sys.net_metrics().total_bytes().get(),
        sys.now().as_millis_f64(),
    )
}

/// E1: bytes on the wire, agent plan vs client-server, over data sizes and
/// selectivities (§1's bandwidth-conservation claim).
pub fn e1_bandwidth(opts: RunOpts) -> Table {
    let quick = opts.quick;
    let mut table = Table::new(
        "E1 — bandwidth conservation (filter at the data)",
        "§1: \"communication-network bandwidth is conserved … there is rarely a need to transmit raw data\"",
        &["sites", "records/site", "selectivity", "agent bytes", "client-server bytes", "saving"],
    );
    let sweeps: &[(u32, u32, f64)] = if quick {
        &[(8, 1_000, 0.01)]
    } else {
        &[
            (8, 1_000, 0.01),
            (8, 1_000, 0.10),
            (8, 10_000, 0.01),
            (16, 5_000, 0.01),
        ]
    };
    for &(sites, records, selectivity) in sweeps {
        let (agent_bytes, _) = e1_run(sites, records, selectivity, true, 7, opts.shards);
        let (cs_bytes, _) = e1_run(sites, records, selectivity, false, 7, opts.shards);
        table.row(vec![
            sites.to_string(),
            records.to_string(),
            format!("{:.0}%", selectivity * 100.0),
            agent_bytes.to_string(),
            cs_bytes.to_string(),
            tacoma_util::factor(cs_bytes as f64, agent_bytes as f64),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E2 — diffusion vs naive flooding
// ---------------------------------------------------------------------------

fn e2_run(topology: Topology, naive: bool, shards: u32) -> (u64, u64, usize) {
    let mut sys = TacomaSystem::builder()
        .topology(topology)
        .seed(2)
        .shards(shards)
        .with_agents(standard_agents)
        .build();
    let sites = sys.site_count();
    for s in 0..sites {
        sys.register_agent(USiteId(s), Box::new(NaiveFloodAgent::new()));
    }
    if naive {
        sys.inject_meet(
            USiteId(0),
            AgentName::new(NaiveFloodAgent::NAME),
            naive_flood_briefcase("m", "announcement", sites as u64),
        );
    } else {
        sys.inject_meet(
            USiteId(0),
            AgentName::new(wellknown::DIFFUSION),
            diffusion_briefcase("m", "announcement"),
        );
    }
    sys.run_until_quiescent(2_000_000);
    let covered = (0..sites)
        .filter(|s| {
            sys.place(USiteId(*s))
                .cabinets()
                .get(tacoma_agents::diffusion::DIFFUSION_CABINET)
                .map(|c| c.payload_bytes() > 0)
                .unwrap_or(false)
        })
        .count();
    (
        sys.stats().meets_requested,
        sys.net_metrics().total_bytes().get(),
        covered,
    )
}

/// E2: agents spawned and bytes moved by bounded diffusion vs naive flooding.
pub fn e2_diffusion(opts: RunOpts) -> Table {
    let quick = opts.quick;
    let mut table = Table::new(
        "E2 — diffusion bounded by site-local folders",
        "§2: without the site-local visited folder \"the number of agents increases without bound\"",
        &["topology", "sites", "variant", "agent meets", "bytes", "coverage"],
    );
    let mut rng = DetRng::new(22);
    let topologies: Vec<(&str, Topology)> = if quick {
        vec![("ring", Topology::ring(8, LinkSpec::default()))]
    } else {
        vec![
            ("ring", Topology::ring(16, LinkSpec::default())),
            ("grid", Topology::grid(4, 4, LinkSpec::default())),
            (
                "random",
                Topology::random_connected(24, 12, LinkSpec::default(), &mut rng),
            ),
        ]
    };
    for (name, topology) in topologies {
        let sites = topology.site_count();
        for naive in [false, true] {
            let (meets, bytes, covered) = e2_run(topology.clone(), naive, opts.shards);
            table.row(vec![
                name.to_string(),
                sites.to_string(),
                if naive {
                    "naive flood (hop-limited)"
                } else {
                    "diffusion (paper)"
                }
                .to_string(),
                meets.to_string(),
                bytes.to_string(),
                format!("{covered}/{sites}"),
            ]);
        }
    }
    table
}

// ---------------------------------------------------------------------------
// E3 — meet and rexec migration cost
// ---------------------------------------------------------------------------

/// Runs one migration of `payload` bytes over `transport`, returning
/// (simulated ms, wire bytes).
pub fn e3_migrate_once(payload: usize, transport: TransportKind) -> (f64, u64) {
    let mut sys = TacomaSystem::builder()
        .topology(Topology::full_mesh(2, LinkSpec::default()))
        .seed(3)
        .with_agents(standard_agents)
        .build();
    sys.register_agent(USiteId(1), Box::new(SinkAgent::new()));
    let mut bc = Briefcase::new();
    bc.put_string(wellknown::HOST, "1");
    bc.put_string(wellknown::CONTACT, SinkAgent::NAME);
    bc.put_string(
        wellknown::TRANSPORT,
        match transport {
            TransportKind::Rsh => "rsh",
            TransportKind::Tcp => "tcp",
            TransportKind::Horus => "horus",
        },
    );
    bc.folder_mut("PAYLOAD").push(vec![0u8; payload]);
    sys.inject_meet(USiteId(0), AgentName::new(wellknown::REXEC), bc);
    sys.run_until_quiescent(1_000);
    (
        sys.now().as_millis_f64(),
        sys.net_metrics().total_bytes().get(),
    )
}

/// Performs `n` purely local meets (procedure-call analogue) and returns the
/// simulated time per meet in microseconds.
pub fn e3_local_meets(n: u64) -> f64 {
    let mut sys = TacomaSystem::builder()
        .topology(Topology::full_mesh(1, LinkSpec::default()))
        .seed(3)
        .build();
    sys.register_agent(USiteId(0), Box::new(SinkAgent::new()));
    for _ in 0..n {
        let mut bc = Briefcase::new();
        bc.put_string("X", "y");
        sys.inject_meet(USiteId(0), AgentName::new(SinkAgent::NAME), bc);
    }
    sys.run_until_quiescent(10 * n);
    sys.now().micros() as f64 / n.max(1) as f64
}

/// E3: migration cost by payload size and transport personality.
pub fn e3_meet_rexec(opts: RunOpts) -> Table {
    let quick = opts.quick;
    let mut table = Table::new(
        "E3 — meet and rexec migration cost",
        "§2/§6: meet is a procedure call; rexec has rsh, TCP and Horus implementations that differ in setup cost",
        &["payload", "transport", "simulated ms", "wire bytes"],
    );
    let payloads: &[usize] = if quick {
        &[1024]
    } else {
        &[0, 1024, 65_536, 1_048_576]
    };
    for &payload in payloads {
        for transport in TransportKind::ALL {
            let (ms, bytes) = e3_migrate_once(payload, transport);
            table.row(vec![
                format!("{payload} B"),
                transport.label().to_string(),
                format!("{ms:.3}"),
                bytes.to_string(),
            ]);
        }
    }
    table.row(vec![
        "—".into(),
        "local meet".into(),
        format!("{:.4}", e3_local_meets(1000) / 1000.0),
        "0".into(),
    ]);
    table
}

// ---------------------------------------------------------------------------
// E4 — folders, briefcases and cabinets
// ---------------------------------------------------------------------------

/// E4: folder/briefcase/cabinet operation costs and move costs.
pub fn e4_folders(opts: RunOpts) -> Table {
    let quick = opts.quick;
    let mut table = Table::new(
        "E4 — folders are cheap to move, cabinets are cheap to access",
        "§2: cabinets may use access-optimising structures \"even if this increases the cost of moving\"",
        &["elements", "briefcase wire bytes", "cabinet move bytes", "briefcase scan hit", "cabinet indexed hit"],
    );
    let sizes: &[usize] = if quick {
        &[1_000]
    } else {
        &[10, 1_000, 100_000]
    };
    for &n in sizes {
        let mut folder = Folder::new();
        for i in 0..n {
            folder.push_str(format!("element-{i:08}"));
        }
        let mut bc = Briefcase::new();
        bc.put("DATA", folder.clone());
        let wire = codec::encode_briefcase(&bc).len();

        let mut cab = tacoma_core::FileCabinet::new();
        for elem in folder.iter() {
            cab.append("DATA", elem.clone());
        }
        let move_cost = cab.move_cost_bytes();
        let needle = format!("element-{:08}", n - 1);
        let scan_hit = bc
            .folder("DATA")
            .map(|f| f.contains_elem(needle.as_bytes()))
            .unwrap_or(false);
        let indexed_hit = cab.contains_elem(needle.as_bytes());
        table.row(vec![
            n.to_string(),
            wire.to_string(),
            move_cost.to_string(),
            scan_hit.to_string(),
            indexed_hit.to_string(),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E5 — electronic cash and double spending
// ---------------------------------------------------------------------------

/// E5: double-spend acceptance with and without the validation agent.
pub fn e5_cash(opts: RunOpts) -> Table {
    let quick = opts.quick;
    let mut table = Table::new(
        "E5 — the validation agent foils double spending",
        "§3: \"an attempt by an agent to spend retired or copied ECUs will be foiled if a validation agent is always consulted\"",
        &["wallet ECUs", "transfers", "replay rate", "accepted double-spends (no validation)", "accepted (with validation)", "mint state"],
    );
    let sweeps: &[(usize, usize, f64)] = if quick {
        &[(100, 200, 0.25)]
    } else {
        &[
            (10, 100, 0.10),
            (100, 500, 0.10),
            (100, 500, 0.50),
            (1_000, 2_000, 0.25),
        ]
    };
    for &(ecus, transfers, replay_rate) in sweeps {
        let mut mint = Mint::new(5);
        let mut wallet = mint.issue_wallet(ecus, 10);
        let mut rng = DetRng::new(55);
        let mut spent: Vec<tacoma_cash::Ecu> = Vec::new();
        let mut naive_accepted = 0u64;
        let mut validated_accepted = 0u64;
        for _ in 0..transfers {
            let replay = !spent.is_empty() && rng.chance(replay_rate);
            let bills = if replay {
                vec![spent[rng.index(spent.len())]]
            } else {
                match wallet.withdraw_at_least(10) {
                    Some(b) => b,
                    None => break,
                }
            };
            // A recipient that skips validation accepts anything well-formed.
            naive_accepted += u64::from(replay);
            // A recipient that consults the validation agent first:
            match mint.validate_and_reissue(&bills) {
                Ok(fresh) => {
                    if replay {
                        validated_accepted += 1;
                    } else {
                        spent.extend(bills);
                        // The recipient banks the fresh bills; conserve value by
                        // returning them to the circulating wallet.
                        wallet.deposit_all(fresh);
                    }
                }
                Err(_) => {
                    if !replay {
                        // A fresh bill should never be rejected.
                        wallet.deposit_all(bills);
                    }
                }
            }
        }
        table.row(vec![
            ecus.to_string(),
            transfers.to_string(),
            format!("{:.0}%", replay_rate * 100.0),
            naive_accepted.to_string(),
            validated_accepted.to_string(),
            format!("{} serials", mint.outstanding()),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E6 — audited exchange
// ---------------------------------------------------------------------------

/// E6: cheat detection by audits, and message overhead vs a transaction baseline.
pub fn e6_exchange(opts: RunOpts) -> Table {
    let quick = opts.quick;
    let mut table = Table::new(
        "E6 — audits instead of transactions",
        "§3: participants document actions; \"a third party … can perform an audit to find violations of a contract\"",
        &["exchanges", "cheat rate", "cheaters detected", "missed", "false accusations", "msgs/exchange (audit)", "msgs/exchange (2PC baseline)"],
    );
    let sweeps: &[(u64, f64)] = if quick {
        &[(100, 0.2)]
    } else {
        &[(200, 0.1), (200, 0.3), (500, 0.2)]
    };
    for &(exchanges, cheat_rate) in sweeps {
        let mut mint = Mint::new(6);
        let mut wallet = mint.issue_wallet(exchanges as usize * 2, 10);
        let mut rng = DetRng::new(66);
        let mut court = AuditCourt::new();
        let mut cheaters = 0u64;
        let mut messages = 0u64;
        for id in 0..exchanges {
            let customer = if rng.chance(cheat_rate) {
                PartyBehavior::Cheats
            } else {
                PartyBehavior::Honest
            };
            let provider = if rng.chance(cheat_rate) {
                PartyBehavior::Cheats
            } else {
                PartyBehavior::Honest
            };
            if customer == PartyBehavior::Cheats || provider == PartyBehavior::Cheats {
                cheaters += 1;
            }
            let config = ExchangeConfig {
                exchange_id: id,
                price: 10,
                customer_key: 0xAA00 + id,
                provider_key: 0xBB00 + id,
                customer,
                provider,
            };
            let outcome = ExchangeProtocol::run(&mut mint, config, &mut wallet);
            messages += outcome.messages as u64;
            court.audit_outcome(
                &outcome,
                config.customer_key,
                config.provider_key,
                customer == PartyBehavior::Honest,
                provider == PartyBehavior::Honest,
            );
        }
        let stats = court.stats();
        table.row(vec![
            exchanges.to_string(),
            format!("{:.0}%", cheat_rate * 100.0),
            format!("{}/{}", cheaters - stats.missed, cheaters),
            stats.missed.to_string(),
            stats.false_accusations.to_string(),
            format!("{:.1}", messages as f64 / exchanges as f64),
            // Two-phase commit with a coordinator: prepare+vote for both
            // parties plus commit+ack — and it requires a trusted coordinator.
            "6.0 (+trusted coordinator)".to_string(),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E7 — broker scheduling policies
// ---------------------------------------------------------------------------

/// E7: makespan, waits and imbalance per placement policy.
pub fn e7_scheduling(opts: RunOpts) -> Table {
    let quick = opts.quick;
    let mut table = Table::new(
        "E7 — brokers schedule by load and capacity",
        "§4/§6: requests are \"distributed amongst service providers based on load and capacity\"",
        &[
            "policy",
            "jobs",
            "providers",
            "makespan ms",
            "mean wait ms",
            "p95 wait ms",
            "imbalance",
        ],
    );
    let (jobs, providers) = if quick { (40u32, 4u32) } else { (150u32, 6u32) };
    for policy in PlacementPolicy::ALL {
        let result = run_scheduling_experiment(&SchedulingConfig {
            providers,
            capacities: vec![1.0, 1.0, 2.0, 4.0, 4.0, 8.0],
            jobs,
            mean_job_ms: 80.0,
            mean_interarrival_ms: 25.0,
            policy,
            sim_shards: opts.shards,
            seed: 77,
            ..Default::default()
        });
        table.row(vec![
            policy.label().to_string(),
            result.completed.to_string(),
            providers.to_string(),
            format!("{:.1}", result.makespan_ms),
            format!("{:.1}", result.mean_wait_ms),
            format!("{:.1}", result.p95_wait_ms),
            format!("{:.2}", result.imbalance),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E8 — protected agents
// ---------------------------------------------------------------------------

/// E8: isolation of protected agents and the broker relay overhead.
pub fn e8_protected(attempts: u32) -> Table {
    let mut table = Table::new(
        "E8 — protected agents are reachable only through their broker",
        "§4: \"the broker … provides the only way to meet with the protected agent\"",
        &[
            "requests",
            "via broker (allowed)",
            "via broker (denied)",
            "direct guesses succeeded",
            "requests queued in folder",
        ],
    );
    struct Oracle {
        name: AgentName,
    }
    impl Agent for Oracle {
        fn name(&self) -> AgentName {
            self.name.clone()
        }
        fn meet(&mut self, _ctx: &mut MeetCtx<'_>, mut bc: Briefcase) -> MeetOutcome {
            bc.put_string("ANSWER", "ok");
            Ok(bc)
        }
    }
    let mut sys = TacomaSystem::new(Topology::full_mesh(1, LinkSpec::default()), 8);
    let mut rng = DetRng::new(88);
    let secret = secret_agent_name(&mut rng, "svc");
    sys.register_agent(
        USiteId(0),
        Box::new(Oracle {
            name: secret.clone(),
        }),
    );
    sys.register_agent(
        USiteId(0),
        Box::new(ProtectedBrokerAgent::new(
            "service_broker",
            secret,
            AdmissionPolicy::AllowList(vec!["alice".into(), "bob".into()]),
        )),
    );
    let mut allowed = 0u32;
    let mut denied = 0u32;
    let mut guessed = 0u32;
    let requesters = ["alice", "bob", "mallory", "trent"];
    for i in 0..attempts {
        let who = requesters[(i as usize) % requesters.len()];
        let mut bc = Briefcase::new();
        bc.put_string(REQUESTER, who);
        match sys.try_direct_meet(USiteId(0), &AgentName::new("service_broker"), bc) {
            Ok(_) => allowed += 1,
            Err(_) => denied += 1,
        }
        // Meanwhile an adversary guesses plausible names directly.
        let guess = format!("protected-svc-{i}");
        if sys
            .try_direct_meet(USiteId(0), &AgentName::new(guess), Briefcase::new())
            .is_ok()
        {
            guessed += 1;
        }
    }
    let queued = sys
        .place(USiteId(0))
        .cabinets()
        .get(tacoma_sched::protected::MEETINGS_CABINET)
        .map(|c| c.payload_bytes())
        .unwrap_or(0);
    table.row(vec![
        attempts.to_string(),
        allowed.to_string(),
        denied.to_string(),
        guessed.to_string(),
        format!("{queued} bytes"),
    ]);
    table
}

// ---------------------------------------------------------------------------
// E9 — rear guards
// ---------------------------------------------------------------------------

/// E9: completion probability and overhead with and without rear guards.
pub fn e9_rear_guard(opts: RunOpts) -> Table {
    let quick = opts.quick;
    let mut table = Table::new(
        "E9 — rear guards let computations survive site failures",
        "§5: a rear guard relaunches a vanished agent and terminates itself when no longer necessary",
        &["crash prob", "variant", "completed", "rate", "duplicate visits", "meets", "bytes"],
    );
    let probs: &[f64] = if quick { &[0.3] } else { &[0.0, 0.2, 0.5] };
    for &p in probs {
        for guarded in [false, true] {
            let result = run_itinerary_experiment(&FtConfig {
                sites: 10,
                itinerary_len: 6,
                travellers: if quick { 10 } else { 30 },
                crash_prob: p,
                crash_window_ms: 15,
                downtime_ms: (500, 3_000),
                guarded,
                sim_shards: opts.shards,
                seed: 909,
                ..Default::default()
            });
            table.row(vec![
                format!("{:.0}%", p * 100.0),
                if guarded { "rear guards" } else { "unguarded" }.to_string(),
                format!("{}/{}", result.completed, result.launched),
                format!("{:.0}%", result.completion_rate * 100.0),
                result.duplicate_visits.to_string(),
                result.meets.to_string(),
                result.network_bytes.to_string(),
            ]);
        }
    }
    table
}

// ---------------------------------------------------------------------------
// E10 — applications
// ---------------------------------------------------------------------------

/// E10: StormCast and AgentMail end-to-end runs.
pub fn e10_apps(opts: RunOpts) -> Table {
    let quick = opts.quick;
    let mut table = Table::new(
        "E10 — prototype applications: StormCast and AgentMail",
        "§6: StormCast storm prediction and an \"interactive mail system where messages are implemented by agents\"",
        &["application", "configuration", "bytes", "outcome"],
    );
    let sensors = if quick { 6 } else { 12 };
    let readings = if quick { 200 } else { 500 };
    for plan in [StormcastPlan::Agent, StormcastPlan::ClientServer] {
        let r = run_stormcast(&StormcastConfig {
            sensors,
            readings_per_sensor: readings,
            storm_fraction: 0.25,
            plan,
            sim_shards: opts.shards,
            seed: 1995,
        });
        table.row(vec![
            "StormCast".into(),
            r.plan.label().to_string(),
            r.network_bytes.to_string(),
            format!("{} warning(s), latency {:.1} ms", r.warnings, r.latency_ms),
        ]);
    }
    let mail = run_mail_experiment(&MailConfig {
        sites: 6,
        users: 12,
        messages: if quick { 20 } else { 60 },
        moved_fraction: 0.25,
        sim_shards: opts.shards,
        seed: 3,
    });
    table.row(vec![
        "AgentMail".into(),
        format!("{} messages, 25% moved users", mail.sent),
        mail.network_bytes.to_string(),
        format!(
            "{} delivered ({} via forwarding), {} dead letters",
            mail.delivered, mail.forwarded_deliveries, mail.dead_letters
        ),
    ]);
    table
}

// ---------------------------------------------------------------------------
// E11 — routing fast path at scale
// ---------------------------------------------------------------------------

/// Forwards a fixed-size load report to the site named in the `TO` folder
/// (delivered to that site's sink agent).  The broker-report half of the
/// E11/E12 mixed workload.
struct ReporterAgent;
impl Agent for ReporterAgent {
    fn name(&self) -> AgentName {
        AgentName::new("reporter")
    }
    fn meet(&mut self, ctx: &mut MeetCtx<'_>, bc: Briefcase) -> MeetOutcome {
        let to = bc
            .peek_string("TO")
            .and_then(|s| s.parse::<u32>().ok())
            .unwrap_or(0);
        let mut report = Briefcase::new();
        report.folder_mut("REPORT").push(vec![0u8; 96]);
        ctx.remote_meet(
            USiteId(to),
            AgentName::new(SinkAgent::NAME),
            report,
            TransportKind::Tcp,
        );
        Ok(Briefcase::new())
    }
}

/// Walks its `ITINERARY` folder one remote meet at a time, carrying its
/// briefcase (payload included) along — the migration half of the workload.
struct HopperAgent;
impl Agent for HopperAgent {
    fn name(&self) -> AgentName {
        AgentName::new("hopper")
    }
    fn meet(&mut self, ctx: &mut MeetCtx<'_>, mut bc: Briefcase) -> MeetOutcome {
        let next = bc
            .folder_mut(wellknown::ITINERARY)
            .dequeue_str()
            .and_then(|s| s.parse::<u32>().ok());
        if let Some(site) = next {
            ctx.remote_meet(
                USiteId(site),
                AgentName::new("hopper"),
                bc,
                TransportKind::Tcp,
            );
            return Ok(Briefcase::new());
        }
        Ok(bc)
    }
}

/// Shape and intensity of one E11/E12 run.
struct ScaleConfig {
    cliques: u32,
    clique_size: u32,
    rounds: u32,
    hoppers: u32,
    hop_len: u32,
    sim_shards: u32,
    seed: u64,
}

/// Counters a scale run reports.
struct ScaleOutcome {
    meets: u64,
    bytes: u64,
    send_failures: u64,
    dropped: u64,
    route_queries: u64,
    bfs_runs: u64,
    epoch: u64,
}

fn scale_system(cfg: &ScaleConfig, cached: bool) -> (TacomaSystem, Vec<Vec<u32>>) {
    let topology = Topology::ring_of_cliques(
        cfg.cliques,
        cfg.clique_size,
        LinkSpec::lan(),
        LinkSpec::wan(),
    );
    let mut sys = TacomaSystem::builder()
        .topology(topology)
        .seed(cfg.seed)
        .shards(cfg.sim_shards)
        .with_agents(|_| {
            vec![
                Box::new(ReporterAgent) as Box<dyn Agent>,
                Box::new(HopperAgent) as Box<dyn Agent>,
                Box::new(SinkAgent::new()) as Box<dyn Agent>,
            ]
        })
        .build();
    sys.net_mut().set_route_cache(cached);
    // Fixed itineraries, drawn once: the same commute repeats every round,
    // which is exactly the locality a route cache exists to exploit.
    let sites = sys.site_count();
    let mut rng = DetRng::new(cfg.seed ^ 0x11);
    let itineraries: Vec<Vec<u32>> = (0..cfg.hoppers)
        .map(|_| {
            (0..=cfg.hop_len)
                .map(|_| rng.next_below(sites as u64) as u32)
                .collect()
        })
        .collect();
    sys.reset_net_metrics();
    (sys, itineraries)
}

/// One round of the mixed workload: every clique member reports to its
/// gateway broker, every broker gossips to the next clique's broker around
/// the ring, and every hopper walks its (fixed) itinerary.
fn scale_round(sys: &mut TacomaSystem, cfg: &ScaleConfig, itineraries: &[Vec<u32>]) {
    let k = cfg.clique_size;
    for c in 0..cfg.cliques {
        let broker = c * k;
        for m in 1..k {
            let mut bc = Briefcase::new();
            bc.put_string("TO", broker.to_string());
            sys.inject_meet(USiteId(c * k + m), AgentName::new("reporter"), bc);
        }
        let mut bc = Briefcase::new();
        bc.put_string("TO", (((c + 1) % cfg.cliques) * k).to_string());
        sys.inject_meet(USiteId(broker), AgentName::new("reporter"), bc);
    }
    for itinerary in itineraries {
        let mut bc = Briefcase::new();
        bc.folder_mut("PAYLOAD").push(vec![0u8; 256]);
        let folder = bc.folder_mut(wellknown::ITINERARY);
        for &site in &itinerary[1..] {
            folder.enqueue(site.to_string().into_bytes());
        }
        sys.inject_meet(USiteId(itinerary[0]), AgentName::new("hopper"), bc);
    }
    sys.run_until_quiescent(u64::MAX / 2);
}

fn scale_outcome(sys: &TacomaSystem) -> ScaleOutcome {
    let (route_queries, bfs_runs) = sys.net().routing_work();
    ScaleOutcome {
        meets: sys.stats().meets_requested,
        bytes: sys.net_metrics().total_bytes().get(),
        send_failures: sys.stats().send_failures,
        dropped: sys.net_metrics().dropped_messages(),
        route_queries,
        bfs_runs,
        epoch: sys.net().route_epoch(),
    }
}

fn e11_run(cfg: &ScaleConfig, cached: bool) -> ScaleOutcome {
    let (mut sys, itineraries) = scale_system(cfg, cached);
    for _ in 0..cfg.rounds {
        scale_round(&mut sys, cfg, &itineraries);
    }
    scale_outcome(&sys)
}

/// E11: the scale sweep — ring-of-cliques topologies under the mixed agent
/// workload, with and without the route cache.  Everything except the
/// routing work must be identical between the two runs (the invalidation
/// tests enforce it); the `bfs saving` column is the cache's payoff.
pub fn e11_scale(opts: RunOpts) -> Table {
    let quick = opts.quick;
    let mut table = Table::new(
        "E11 — routing fast path at scale (ring of cliques)",
        "§4: state dissemination \"seems to be equivalent to routing in a wide-area network\" — cached routes make large topologies affordable",
        &[
            "sites",
            "cliques",
            "rounds",
            "meets",
            "bytes",
            "route queries",
            "bfs (cached)",
            "bfs (uncached)",
            "bfs saving",
        ],
    );
    let sweeps: &[(u32, u32, u32, u32)] = if quick {
        // (cliques, clique_size, rounds, hoppers)
        &[(8, 8, 12, 2)]
    } else {
        &[(8, 8, 12, 2), (32, 8, 15, 8), (128, 8, 15, 32)]
    };
    for &(cliques, clique_size, rounds, hoppers) in sweeps {
        let cfg = ScaleConfig {
            cliques,
            clique_size,
            rounds,
            hoppers,
            hop_len: 6,
            sim_shards: opts.shards,
            seed: 1111,
        };
        let fast = e11_run(&cfg, true);
        let reference = e11_run(&cfg, false);
        debug_assert_eq!(fast.bytes, reference.bytes);
        debug_assert_eq!(fast.meets, reference.meets);
        table.row(vec![
            (cliques * clique_size).to_string(),
            cliques.to_string(),
            rounds.to_string(),
            fast.meets.to_string(),
            fast.bytes.to_string(),
            fast.route_queries.to_string(),
            fast.bfs_runs.to_string(),
            reference.bfs_runs.to_string(),
            tacoma_util::factor(reference.bfs_runs as f64, fast.bfs_runs as f64),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E12 — partition churn: cache invalidation under failures
// ---------------------------------------------------------------------------

/// Two identical traffic rounds (so within-epoch cache reuse stays visible
/// amid the churn): every site reports once across the ring and once to a
/// same-half neighbour clique.
fn e12_burst(sys: &mut TacomaSystem, sites: u32, clique_size: u32) {
    let half = sites / 2;
    for _ in 0..2 {
        e12_round(sys, sites, clique_size, half);
    }
    sys.run_until_quiescent(u64::MAX / 2);
}

fn e12_round(sys: &mut TacomaSystem, sites: u32, clique_size: u32, half: u32) {
    for s in 0..sites {
        // One report across the ring (blocked while partitioned) ...
        let mut cross = Briefcase::new();
        cross.put_string("TO", ((s + half) % sites).to_string());
        sys.inject_meet(USiteId(s), AgentName::new("reporter"), cross);
        // ... and one to a same-half neighbour clique (always routable).
        let local = (s + clique_size) % half + if s >= half { half } else { 0 };
        let mut near = Briefcase::new();
        near.put_string("TO", local.to_string());
        sys.inject_meet(USiteId(s), AgentName::new("reporter"), near);
    }
}

fn e12_run(
    cliques: u32,
    clique_size: u32,
    cycles: u32,
    cached: bool,
    sim_shards: u32,
) -> ScaleOutcome {
    let cfg = ScaleConfig {
        cliques,
        clique_size,
        rounds: 0,
        hoppers: 0,
        hop_len: 0,
        sim_shards,
        seed: 1212,
    };
    let (mut sys, _) = scale_system(&cfg, cached);
    let sites = cliques * clique_size;
    for cycle in 0..cycles {
        // Healthy burst.
        e12_burst(&mut sys, sites, clique_size);
        // Partition the first half of the cliques away and send again: the
        // cross-ring half of the traffic fails, the near half still routes.
        let group: Vec<USiteId> = (0..sites / 2).map(USiteId).collect();
        sys.net_mut().partition(&group);
        e12_burst(&mut sys, sites, clique_size);
        sys.net_mut().heal_partition();
        // A crash inside a cycle exercises liveness invalidation too.
        let victim = USiteId(1 + (cycle * clique_size) % (sites - 1));
        sys.net_mut().crash_now(victim);
        e12_burst(&mut sys, sites, clique_size);
        sys.net_mut().recover_now(victim);
    }
    scale_outcome(&sys)
}

/// E12: repeated partition/heal/crash/recover cycles under load.  The cache
/// must deliver byte-identical traffic to the uncached reference while
/// re-validating routes across every epoch bump.
pub fn e12_churn(opts: RunOpts) -> Table {
    let quick = opts.quick;
    let mut table = Table::new(
        "E12 — partition churn and route-cache invalidation",
        "§5: sites crash and networks partition; routing state must track failures without recomputing the world per message",
        &[
            "sites",
            "cycles",
            "meets",
            "send failures",
            "dropped",
            "bytes",
            "epoch bumps",
            "route queries",
            "bfs (cached)",
            "bfs (uncached)",
            "bfs saving",
        ],
    );
    let sweeps: &[(u32, u32, u32)] = if quick {
        // (cliques, clique_size, cycles)
        &[(4, 4, 4)]
    } else {
        &[(4, 4, 6), (8, 8, 8)]
    };
    for &(cliques, clique_size, cycles) in sweeps {
        let fast = e12_run(cliques, clique_size, cycles, true, opts.shards);
        let reference = e12_run(cliques, clique_size, cycles, false, opts.shards);
        debug_assert_eq!(fast.bytes, reference.bytes);
        debug_assert_eq!(fast.send_failures, reference.send_failures);
        table.row(vec![
            (cliques * clique_size).to_string(),
            cycles.to_string(),
            fast.meets.to_string(),
            fast.send_failures.to_string(),
            fast.dropped.to_string(),
            fast.bytes.to_string(),
            fast.epoch.to_string(),
            fast.route_queries.to_string(),
            fast.bfs_runs.to_string(),
            reference.bfs_runs.to_string(),
            tacoma_util::factor(reference.bfs_runs as f64, fast.bfs_runs as f64),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E13 — store-and-forward custody across partitions
// ---------------------------------------------------------------------------

/// Counters one E13 run reports.
struct E13Outcome {
    delivered_after_heal: u64,
    send_failures: u64,
    expired: u64,
    peak_bytes: u64,
    backlog: u64,
}

/// One partition-heal mail/gossip run: every site mails `msgs_per_site`
/// reports to its counterpart across the partition boundary, the partition
/// holds for two simulated seconds, then heals and the run drains.  With
/// `custody` set to `(capacity, ttl_ms)` the cross-partition legs park in
/// custody; with `None` they fail fast — the paper-motivating contrast.
fn e13_run(custody: Option<(usize, u64)>, msgs_per_site: u32, sim_shards: u32) -> E13Outcome {
    let sites = 12u32;
    let mut builder = TacomaSystem::builder()
        .topology(Topology::full_mesh(sites, LinkSpec::wan()))
        .seed(1313)
        .shards(sim_shards)
        .with_agents(|_| {
            vec![
                Box::new(ReporterAgent) as Box<dyn Agent>,
                Box::new(SinkAgent::new()) as Box<dyn Agent>,
            ]
        });
    if let Some((capacity, ttl_ms)) = custody {
        builder = builder.custody(CustodyConfig {
            capacity,
            ttl: Duration::from_millis(ttl_ms),
        });
    }
    let mut sys = builder.build();
    let half = sites / 2;
    let group: Vec<USiteId> = (0..half).map(USiteId).collect();
    sys.net_mut().partition(&group);
    for _ in 0..msgs_per_site {
        for s in 0..sites {
            let mut bc = Briefcase::new();
            bc.put_string("TO", ((s + half) % sites).to_string());
            sys.inject_meet(USiteId(s), AgentName::new("reporter"), bc);
        }
    }
    // The partition holds for two simulated seconds, then heals.
    sys.run_for(Duration::from_secs(2));
    sys.net_mut().heal_partition();
    sys.run_until_quiescent(u64::MAX / 2);
    E13Outcome {
        delivered_after_heal: sys.net_metrics().custody_delivered(),
        send_failures: sys.stats().send_failures,
        expired: sys.stats().meets_expired,
        peak_bytes: sys.net_metrics().custody_peak_bytes(),
        backlog: sys.net().custody_backlog() as u64,
    }
}

/// E13: the delayed-but-delivered experiment — a partition-heal mail workload
/// under fail-fast vs custody, sweeping queue capacity and TTL.  Short TTLs
/// expire instead of delivering; small queues overflow into fail-fast.
pub fn e13_custody(opts: RunOpts) -> Table {
    let quick = opts.quick;
    let mut table = Table::new(
        "E13 — store-and-forward custody across partitions",
        "§1/§6: agents suit \"computers … only intermittently connected to a network\" — messages should ride out a partition, not fail fast",
        &[
            "variant",
            "capacity",
            "ttl ms",
            "cross msgs",
            "delivered after heal",
            "send failures",
            "expired",
            "peak custody bytes",
        ],
    );
    let msgs_per_site: u32 = if quick { 3 } else { 6 };
    let cross = (12 * msgs_per_site) as u64;
    let mut configs: Vec<Option<(usize, u64)>> = vec![
        None,               // fail-fast baseline
        Some((64, 10_000)), // ample queue, TTL outlives the partition
        Some((64, 500)),    // TTL expires before the heal
        Some((2, 10_000)),  // bounded queue overflows into fail-fast
    ];
    if !quick {
        configs.push(Some((4, 10_000)));
    }
    for config in configs {
        let outcome = e13_run(config, msgs_per_site, opts.shards);
        debug_assert_eq!(outcome.backlog, 0, "drained runs leave no backlog");
        let (variant, capacity, ttl) = match config {
            None => ("fail-fast".to_string(), "—".to_string(), "—".to_string()),
            Some((cap, ttl)) => ("custody".to_string(), cap.to_string(), ttl.to_string()),
        };
        table.row(vec![
            variant,
            capacity,
            ttl,
            cross.to_string(),
            outcome.delivered_after_heal.to_string(),
            outcome.send_failures.to_string(),
            outcome.expired.to_string(),
            outcome.peak_bytes.to_string(),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E14 — custody conservation under crash churn
// ---------------------------------------------------------------------------

/// E14: the guarded itinerary workload under heavy crash churn, fail-fast vs
/// custody.  The `conserved` flag asserts the meet-accounting invariant:
/// every requested meet lands in exactly one terminal bucket (completed,
/// failed, send-failed, expired, or — fail-fast only — dropped in flight).
pub fn e14_custody_churn(opts: RunOpts) -> Table {
    let quick = opts.quick;
    let mut table = Table::new(
        "E14 — custody conservation under crash churn",
        "§5: sites crash and recover; with custody every meet is delayed-but-delivered or terminally expired — none silently vanish",
        &[
            "variant",
            "travellers",
            "completed",
            "rate",
            "meets",
            "completed meets",
            "failed",
            "send failures",
            "expired",
            "dropped",
            "conserved",
        ],
    );
    let travellers = if quick { 15 } else { 40 };
    for custody in [false, true] {
        let result = run_itinerary_experiment(&FtConfig {
            sites: 10,
            itinerary_len: 6,
            travellers,
            crash_prob: 0.5,
            crash_window_ms: 15,
            downtime_ms: (500, 3_000),
            guarded: true,
            custody,
            sim_shards: opts.shards,
            seed: 1414,
            ..Default::default()
        });
        let terminal = result.meets_completed
            + result.meets_failed
            + result.send_failures
            + result.meets_expired
            + result.dropped_messages;
        let conserved = terminal == result.meets && result.custody_backlog == 0;
        table.row(vec![
            if custody { "custody" } else { "fail-fast" }.to_string(),
            result.launched.to_string(),
            result.completed.to_string(),
            format!("{:.0}%", result.completion_rate * 100.0),
            result.meets.to_string(),
            result.meets_completed.to_string(),
            result.meets_failed.to_string(),
            result.send_failures.to_string(),
            result.meets_expired.to_string(),
            result.dropped_messages.to_string(),
            conserved.to_string(),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E15 — federated broker scheduling at 1024 sites
// ---------------------------------------------------------------------------

/// The common 1024-site E15 configuration; rows vary shards/digest/policy.
fn e15_config(
    shards: u32,
    digest_ms: u64,
    policy: PlacementPolicy,
    opts: RunOpts,
) -> FederationConfig {
    let quick = opts.quick;
    FederationConfig {
        cliques: 128,
        clique_size: 8,
        shards,
        digest_period: Duration::from_millis(digest_ms),
        report_period: Duration::from_millis(200),
        // The single-broker baseline's reports cross up to half the WAN ring
        // (~2.6 simulated seconds); the TTL must outlive transit + period for
        // *both* variants or the baseline would starve by construction.
        report_ttl: Duration::from_secs(4),
        policy,
        // Long jobs at a brisk rate: placement quality — not raw capacity —
        // decides the waits.  A provider double-booked on stale information
        // queues the second job for whole seconds.
        jobs: if quick { 512 } else { 2048 },
        mean_job_ms: 1_500.0,
        mean_interarrival_ms: if quick { 4.0 } else { 3.0 },
        capacities: vec![1.0, 2.0, 4.0, 8.0],
        admission_threshold: None,
        custody: None,
        sim_shards: opts.shards,
        seed: 1515,
    }
}

fn e15_row(table: &mut Table, label: &str, digest_ms: &str, r: &FederationResult) {
    table.row(vec![
        r.sites.to_string(),
        r.shards.to_string(),
        label.to_string(),
        digest_ms.to_string(),
        r.completed.to_string(),
        format!("{:.1}", r.p95_wait_ms),
        format!("{:.1}", r.mean_wait_ms),
        format!("{:.1}", r.makespan_ms),
        r.net_messages.to_string(),
        r.net_bytes.to_string(),
        r.forwarded.to_string(),
        r.digests_sent.to_string(),
    ]);
}

/// E15: the 1024-site federated scheduling sweep — shard count and digest
/// period against the seed's single-broker design.  Shard-local monitors
/// keep reports LAN-fresh and off the WAN ring; the single broker pays ring
/// transit on every report *and* places on information that is seconds old.
pub fn e15_federation(opts: RunOpts) -> Table {
    let quick = opts.quick;
    let mut table = Table::new(
        "E15 — federated broker scheduling at 1024 sites",
        "§4: \"brokers are expected to communicate among themselves … so that requests can be distributed … based on load and capacity\"",
        &[
            "sites",
            "shards",
            "policy",
            "digest ms",
            "completed",
            "p95 wait ms",
            "mean wait ms",
            "makespan ms",
            "net msgs",
            "net bytes",
            "forwarded",
            "digests",
        ],
    );
    let single = run_federation_experiment(&e15_config(1, 250, PlacementPolicy::LoadBased, opts));
    e15_row(&mut table, "single load-based (seed)", "—", &single);
    let shard_sweep: &[u32] = if quick { &[8] } else { &[4, 8, 32] };
    for &shards in shard_sweep {
        let fed =
            run_federation_experiment(&e15_config(shards, 250, PlacementPolicy::PowerOfTwo, opts));
        e15_row(&mut table, "federated p2c + decay", "250", &fed);
    }
    let digest_sweep: &[u64] = if quick { &[1_000] } else { &[100, 1_000] };
    for &digest_ms in digest_sweep {
        let fed =
            run_federation_experiment(&e15_config(8, digest_ms, PlacementPolicy::PowerOfTwo, opts));
        e15_row(
            &mut table,
            "federated p2c + decay",
            &digest_ms.to_string(),
            &fed,
        );
    }
    table
}

// ---------------------------------------------------------------------------
// E16 — broker crash and failover under job churn
// ---------------------------------------------------------------------------

/// One E16 run: a 64-site federation whose shard-0 broker site suffers a
/// 4-second outage starting at 500 ms, while job sources keep churning.
/// `shards == 1` reproduces the seed's single-point-of-failure; `guarded`
/// installs a ring of `BrokerGuardAgent`s so the orphaned shard is adopted.
fn e16_run(shards: u32, custody: bool, guarded: bool, opts: RunOpts) -> FederationResult {
    let quick = opts.quick;
    let config = FederationConfig {
        cliques: 16,
        clique_size: 4,
        shards,
        digest_period: Duration::from_millis(250),
        report_period: Duration::from_millis(150),
        report_ttl: Duration::from_millis(1_200),
        policy: if shards == 1 {
            PlacementPolicy::LoadBased
        } else {
            PlacementPolicy::PowerOfTwo
        },
        jobs: if quick { 96 } else { 240 },
        mean_job_ms: 60.0,
        mean_interarrival_ms: 30.0,
        capacities: vec![1.0, 2.0, 4.0, 8.0],
        admission_threshold: None,
        custody: custody.then(|| CustodyConfig {
            capacity: 256,
            ttl: Duration::from_secs(30),
        }),
        sim_shards: opts.shards,
        seed: 1616,
    };
    let (mut sys, layout) = build_federation(&config);
    if guarded {
        // Each broker is watched by a guard at the next broker's site; the
        // guard re-adopts the shard after three missed 150 ms checks.
        for b in 0..shards as usize {
            let backup = (b + 1) % shards as usize;
            sys.register_agent(
                layout.broker_sites[backup],
                Box::new(BrokerGuardAgent::new(
                    layout.broker_sites[b],
                    b as u32,
                    layout.providers_by_shard[b].clone(),
                    Duration::from_millis(150),
                    3,
                )),
            );
        }
    }
    sys.run_for(Duration::from_millis(20));
    sys.reset_net_metrics();
    // Clients fail over to the guard's site when the federation has one;
    // without guards (and for the single broker) there is nowhere to go.
    let backups: Vec<tacoma_util::SiteId> = (0..shards as usize)
        .map(|b| {
            if guarded {
                layout.broker_sites[(b + 1) % shards as usize]
            } else {
                layout.broker_sites[b]
            }
        })
        .collect();
    install_sources(&mut sys, &config, &layout, &backups);
    let plan = FailurePlan::none().outage(
        layout.broker_sites[0],
        SimTime::ZERO + Duration::from_millis(500),
        Duration::from_secs(4),
    );
    sys.apply_failure_plan(&plan);
    drive_federation(&mut sys, &config, &layout, Duration::from_secs(20))
}

/// E16: broker crash and failover under job churn.  Fail-fast single broker
/// orphans every job submitted during its outage; custody alone recovers
/// them but only after the broker returns; federation with guards re-adopts
/// the shard and keeps placing throughout — zero orphaned jobs.
pub fn e16_failover(opts: RunOpts) -> Table {
    let mut table = Table::new(
        "E16 — broker crash and failover under job churn",
        "§5: agents (and their brokers) vanish in failures; a guard launches a replacement and the shard is re-adopted, not orphaned",
        &[
            "variant",
            "shards",
            "jobs",
            "completed",
            "orphaned",
            "adoptions",
            "forwarded",
            "send failures",
            "expired",
            "makespan ms",
            "zero orphans",
        ],
    );
    let variants: &[(&str, u32, bool, bool)] = &[
        ("single, fail-fast (seed)", 1, false, false),
        ("single, custody", 1, true, false),
        ("federated + guards + custody", 4, true, true),
    ];
    for &(label, shards, custody, guarded) in variants {
        let r = e16_run(shards, custody, guarded, opts);
        table.row(vec![
            label.to_string(),
            shards.to_string(),
            (r.completed + r.orphaned).to_string(),
            r.completed.to_string(),
            r.orphaned.to_string(),
            r.adoptions.to_string(),
            r.forwarded.to_string(),
            r.send_failures.to_string(),
            r.meets_expired.to_string(),
            format!("{:.1}", r.makespan_ms),
            (r.orphaned == 0).to_string(),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E17 — sharded event core scale sweep
// ---------------------------------------------------------------------------

/// One E17 scale point: a ring-of-cliques gossip workload at a fixed size,
/// run on the legacy global-heap engine and on the sharded calendar-queue
/// engine at each shard count in `shard_counts`.
struct E17Point {
    cliques: u32,
    rounds: u32,
    shard_counts: &'static [u32],
}

/// E17: the sharded event-core scale sweep — the same gossip workload on the
/// legacy global `BinaryHeap` engine and the sharded calendar-queue engine at
/// 1/4(/8) shards.  Every deterministic column (events, delivered, bytes,
/// digest, end time) must be identical across engines and shard counts; the
/// driver asserts it and the table is the CI witness.  Wall-clock throughput
/// and speedup go into the table's notes, outside the gated report.
///
/// This experiment sweeps shard counts internally, so it deliberately ignores
/// `opts.shards` — the CI shard matrix still diffs its rows byte-for-byte.
pub fn e17_shard_sweep(opts: RunOpts) -> Table {
    use std::time::Instant;
    use tacoma_net::parallel::{run_gossip, run_gossip_reference, GossipConfig};

    let mut table = Table::new(
        "E17 — sharded event core scale sweep (calendar vs heap)",
        "scaling TACOMA's simulated WAN past 4096 sites: per-clique event shards with conservative lookahead beat one global heap without changing a single event",
        &[
            "sites",
            "engine",
            "shards",
            "events",
            "delivered",
            "hops",
            "bytes",
            "timers",
            "digest",
            "end ms",
        ],
    );
    let points: &[E17Point] = if opts.quick {
        &[E17Point {
            cliques: 64,
            rounds: 64,
            shard_counts: &[1, 4],
        }]
    } else {
        &[
            E17Point {
                cliques: 64,
                rounds: 64,
                shard_counts: &[1, 4],
            },
            E17Point {
                // ~4.2M standing timers: deep enough that the global heap
                // falls out of cache while per-shard calendars stay resident
                // — the regime the tentpole targets (>= 2x at 4 shards).
                cliques: 512,
                rounds: 1_024,
                shard_counts: &[1, 4],
            },
            E17Point {
                cliques: 2_048,
                rounds: 128,
                shard_counts: &[1, 4, 8],
            },
        ]
    };
    for point in points {
        let cfg = GossipConfig {
            cliques: point.cliques,
            clique_size: 8,
            rounds: point.rounds,
            fanout: 2,
            cross_permille: 10,
            payload: 512,
            interval_us: 2_000,
            seed: 7,
        };
        let sites = cfg.cliques * cfg.clique_size;
        let emit = |table: &mut Table,
                    engine: &str,
                    shards: u32,
                    outcome: &tacoma_net::parallel::Outcome| {
            table.row(vec![
                sites.to_string(),
                engine.to_string(),
                shards.to_string(),
                outcome.events.to_string(),
                outcome.delivered.to_string(),
                outcome.hops.to_string(),
                outcome.bytes.to_string(),
                outcome.timers.to_string(),
                format!("{:016x}", outcome.digest),
                format!("{:.1}", outcome.end.as_millis_f64()),
            ]);
        };
        let heap_start = Instant::now();
        let heap = run_gossip_reference(cfg);
        let heap_wall = heap_start.elapsed();
        emit(&mut table, "heap", 1, &heap);
        let heap_rate = heap.events as f64 / heap_wall.as_secs_f64().max(1e-9);
        table.note(format!(
            "{sites} sites: heap engine {:.0} events/s ({:.2}s wall)",
            heap_rate,
            heap_wall.as_secs_f64()
        ));
        for &shards in point.shard_counts {
            let start = Instant::now();
            let outcome = run_gossip(cfg, shards);
            let wall = start.elapsed();
            assert_eq!(
                outcome, heap,
                "{sites} sites / {shards} shards diverged from the heap engine"
            );
            emit(&mut table, "calendar", shards, &outcome);
            let rate = outcome.events as f64 / wall.as_secs_f64().max(1e-9);
            table.note(format!(
                "{sites} sites, {shards} shard(s): {:.0} events/s, {:.2}x vs heap ({:.2}s wall)",
                rate,
                rate / heap_rate.max(1e-9),
                wall.as_secs_f64()
            ));
        }
    }
    table
}

// ---------------------------------------------------------------------------
// E18 — open-arrival overload: backpressure and load shedding
// ---------------------------------------------------------------------------

/// The mailroom: terminal contact for open-arrival mail meets.  The body's
/// bytes were already charged to the admission server's service time; the
/// mailroom just accepts delivery (completion is counted by the system).
struct MailroomAgent;
impl Agent for MailroomAgent {
    fn name(&self) -> AgentName {
        AgentName::new("mailroom")
    }
    fn meet(&mut self, _ctx: &mut MeetCtx<'_>, _bc: Briefcase) -> MeetOutcome {
        Ok(Briefcase::new())
    }
}

/// One E18 measurement: an open-arrival mail stream at `multiplier` times
/// the base rate, delivered through bounded (`bounded = true`) or unbounded
/// admission queues.
struct E18Outcome {
    requested: u64,
    completed: u64,
    shed: u64,
    shed_rate: f64,
    p99_ms: f64,
    p999_ms: f64,
    conserved: bool,
}

fn e18_run(multiplier: f64, bounded: bool, opts: RunOpts) -> E18Outcome {
    use tacoma_apps::UserDirectory;
    use tacoma_net::{Duration as NetDuration, OpenWorkload, RateCurve, SizeDist};

    let sites = 8u32;
    let horizon = NetDuration::from_secs(if opts.quick { 3 } else { 6 });
    // Two million mail users as a rate process: the directory answers home
    // and population queries in O(1); no user objects exist anywhere.
    let directory = UserDirectory::new(2_000_000, sites);
    let workload = OpenWorkload {
        sites,
        horizon,
        // ~100/s/site at 1x against ~330/s/site of service capacity; the 4x
        // point offers ~1.2x capacity at the diurnal peak — genuine overload.
        curve: RateCurve::diurnal(
            100.0 * multiplier,
            vec![0.6, 1.0, 1.4, 1.0],
            NetDuration::from_secs(2),
        ),
        crowds: Vec::new(),
        sizes: SizeDist::default(),
        users: directory.users(),
        seed: 1818,
    };
    let admission = AdmissionConfig {
        capacity: if bounded { 32 } else { usize::MAX },
        service_floor: Duration::from_millis(2),
        service_per_kib: Duration::from_millis(1),
        service_per_kilostep: Duration::from_micros(0),
        deadline: if bounded {
            Some(Duration::from_millis(400))
        } else {
            None
        },
        janitor_period: Duration::from_millis(50),
    };
    let mut sys = TacomaSystem::builder()
        .topology(Topology::full_mesh(sites, LinkSpec::default()))
        .seed(1818)
        .shards(opts.shards)
        .admission(admission)
        .with_agents(|_| vec![Box::new(MailroomAgent) as Box<dyn Agent>])
        .build();
    for arrival in workload.generate() {
        // The mail meet executes at the recipient's home site; the recipient
        // is the user the arrival stream drew from the population.
        let home = directory.home(arrival.user);
        let mut bc = Briefcase::new();
        bc.put_string("TO", UserDirectory::mailbox_folder(arrival.user));
        let mut body = Folder::new();
        body.push(vec![b'm'; arrival.bytes as usize]);
        bc.put("BODY", body);
        sys.schedule_meet(
            home,
            AgentName::new("mailroom"),
            bc,
            Duration::from_micros(arrival.at.0),
        );
    }
    sys.run_until_quiescent(50_000_000);
    let s = sys.stats();
    let m = sys.net_metrics();
    E18Outcome {
        requested: s.meets_requested,
        completed: s.meets_completed,
        shed: s.meets_shed,
        shed_rate: m.shed_rate(),
        p99_ms: m.admission_waits().percentile(99.0),
        p999_ms: m.admission_waits().percentile(99.9),
        conserved: s.meets_requested
            == s.meets_completed
                + s.meets_failed
                + s.send_failures
                + s.meets_expired
                + s.meets_shed,
    }
}

/// E18: open-arrival overload — a rate ramp to saturation with and without
/// bounded admission queues.
///
/// An AgentMail population (modeled as rate processes, never resident
/// objects) offers mail at 0.5–4x of the fleet's service capacity under a
/// diurnal rate curve with heavy-tailed bounded-Pareto bodies.  With bounded
/// queues and a janitor deadline, the shed rate rises smoothly with offered
/// load while p99 wait stays bounded; with unbounded queues nothing is shed
/// and p99 diverges at the saturated point.  Every row's meet conservation
/// (requested = completed + failed + send-failed + expired + shed) is
/// asserted by the driver.
pub fn e18_overload(opts: RunOpts) -> Table {
    let mut table = Table::new(
        "E18 — open-arrival overload: backpressure and load shedding",
        "graceful degradation under open arrivals: bounded admission queues shed load smoothly and keep p99 wait bounded where unbounded queues let it diverge",
        &[
            "rate x",
            "mode",
            "requested",
            "completed",
            "shed",
            "shed rate",
            "p99 ms",
            "p999 ms",
            "conserved",
        ],
    );
    let multipliers: &[f64] = if opts.quick {
        &[1.0, 4.0]
    } else {
        &[0.5, 1.0, 2.0, 4.0]
    };
    let mut top: Vec<(bool, E18Outcome)> = Vec::new();
    for &multiplier in multipliers {
        for bounded in [true, false] {
            let outcome = e18_run(multiplier, bounded, opts);
            assert!(
                outcome.conserved,
                "E18 conservation violated at {multiplier}x bounded={bounded}"
            );
            table.row(vec![
                format!("{multiplier:.1}"),
                if bounded { "bounded" } else { "unbounded" }.to_string(),
                outcome.requested.to_string(),
                outcome.completed.to_string(),
                outcome.shed.to_string(),
                format!("{:.3}", outcome.shed_rate),
                format!("{:.1}", outcome.p99_ms),
                format!("{:.1}", outcome.p999_ms),
                outcome.conserved.to_string(),
            ]);
            if multiplier == *multipliers.last().unwrap() {
                top.push((bounded, outcome));
            }
        }
    }
    // The acceptance bar, checked at the saturated point on every run: with
    // admission control p99 stays bounded and load is shed; without it the
    // queue — and p99 — diverges.
    let bounded = &top.iter().find(|(b, _)| *b).unwrap().1;
    let unbounded = &top.iter().find(|(b, _)| !*b).unwrap().1;
    assert!(
        bounded.shed > 0,
        "saturation must engage the shed path (shed {})",
        bounded.shed
    );
    assert_eq!(unbounded.shed, 0, "unbounded queues never shed");
    assert!(
        bounded.p99_ms * 4.0 < unbounded.p99_ms,
        "bounded p99 {:.1}ms must stay clearly below the divergent unbounded p99 {:.1}ms",
        bounded.p99_ms,
        unbounded.p99_ms
    );
    table
}

// ---------------------------------------------------------------------------
// E19 — regional flash crowd against the federation
// ---------------------------------------------------------------------------

/// Relays open-arrival submissions to a shard's broker.  Scheduled meets
/// carry a `TIMER` folder, which the broker would mistake for its own digest
/// tick — the relay strips it and ships the submit over the network, which
/// also charges the client->broker bytes honestly.
struct CrowdSourceAgent {
    broker: USiteId,
}
impl Agent for CrowdSourceAgent {
    fn name(&self) -> AgentName {
        AgentName::new("crowd_source")
    }
    fn meet(&mut self, ctx: &mut MeetCtx<'_>, mut bc: Briefcase) -> MeetOutcome {
        bc.take(wellknown::TIMER);
        ctx.remote_meet(
            self.broker,
            AgentName::new(wellknown::BROKER),
            bc,
            TransportKind::Tcp,
        );
        Ok(Briefcase::new())
    }
}

/// One E19 measurement.
struct E19Outcome {
    submitted: u64,
    completed: u64,
    shed: u64,
    forwarded: u64,
    crowd_p95_ms: f64,
    calm_p95_ms: f64,
}

fn e19_run(crowd: bool, admission_threshold: Option<f64>, opts: RunOpts) -> E19Outcome {
    use tacoma_apps::SubscriberModel;
    use tacoma_net::{Duration as NetDuration, FlashCrowd, OpenWorkload, RateCurve, SizeDist};
    use tacoma_sched::agents::{DONE, JOB, JOBS_CABINET, JOB_SIZE, REQUEST};
    use tacoma_util::Summary;

    let config = FederationConfig {
        cliques: 8,
        clique_size: 4,
        shards: 4,
        digest_period: Duration::from_millis(200),
        report_period: Duration::from_millis(100),
        report_ttl: Duration::from_secs(2),
        policy: PlacementPolicy::PowerOfTwo,
        jobs: 0, // all load comes from the open-arrival stream below
        mean_job_ms: 0.0,
        mean_interarrival_ms: 0.0,
        capacities: vec![1.0, 2.0, 4.0, 8.0],
        admission_threshold,
        custody: None,
        sim_shards: opts.shards,
        seed: 1919,
    };
    let (mut sys, layout) = build_federation(&config);
    let sites_per_shard = (config.cliques / config.shards) * config.clique_size;
    // Let every monitor's first report land before arrivals start.
    sys.run_for(Duration::from_millis(200));

    // A million StormCast warning subscribers as a rate process, regions
    // aligned with the federation's shards.  The flash crowd is region 1's
    // subscribers hitting the service when the storm warning goes out.
    let subscribers = SubscriberModel::new(1_000_000, layout.sites, sites_per_shard);
    let crowd_region = 1u32;
    let horizon = NetDuration::from_secs(4);
    let workload = OpenWorkload {
        sites: layout.sites,
        horizon,
        curve: RateCurve::flat(2.0),
        crowds: if crowd {
            vec![FlashCrowd {
                first_site: USiteId(crowd_region * sites_per_shard),
                sites: sites_per_shard,
                start: SimTime(1_000_000),
                duration: NetDuration::from_secs(2),
                multiplier: 25.0,
            }]
        } else {
            Vec::new()
        },
        sizes: SizeDist {
            alpha: 1.3,
            min_bytes: 256,
            max_bytes: 16_384,
        },
        users: subscribers.subscribers(),
        seed: 1919,
    };
    for (region, source) in layout.source_sites.iter().enumerate() {
        sys.register_agent(
            *source,
            Box::new(CrowdSourceAgent {
                broker: layout.broker_sites[region],
            }),
        );
    }
    let arrivals = workload.generate();
    let submitted = arrivals.len() as u64;
    let start = sys.now();
    for (i, arrival) in arrivals.iter().enumerate() {
        let region = subscribers.region_of(arrival.site);
        let mut job = Briefcase::new();
        job.put_string(REQUEST, "submit");
        job.put_string(JOB, format!("a{i}"));
        // Heavy-tailed work: the job's size in ms tracks its payload bytes.
        job.put_string(JOB_SIZE, (arrival.bytes / 8).max(1).to_string());
        sys.schedule_meet(
            layout.source_sites[region as usize],
            AgentName::new("crowd_source"),
            job,
            Duration::from_micros(arrival.at.0),
        );
    }
    // Deadline-driven: monitors re-arm forever, so run to a fixed horizon
    // (arrival window plus drain allowance) instead of quiescence.
    sys.run_until(start + horizon + NetDuration::from_secs(8));

    let mut per_region: Vec<Summary> = (0..config.shards).map(|_| Summary::new()).collect();
    let mut completed = 0u64;
    for shard in 0..config.shards {
        for site in &layout.providers_by_shard[shard as usize] {
            if let Some(done) = sys
                .place(*site)
                .cabinets()
                .get(JOBS_CABINET)
                .and_then(|c| c.folder_ref(DONE).cloned())
            {
                for record in done.strings() {
                    let wait: u64 = record
                        .split(':')
                        .nth(1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(0);
                    completed += 1;
                    per_region[shard as usize].add(wait as f64 / 1000.0);
                }
            }
        }
    }
    let shed: u64 = layout
        .broker_sites
        .iter()
        .map(|b| {
            sys.place(*b)
                .cabinets()
                .get(tacoma_sched::federation::BROKER_CABINET)
                .and_then(|c| {
                    c.folder_ref(tacoma_sched::federation::SHED)
                        .map(|f| f.len() as u64)
                })
                .unwrap_or(0)
        })
        .sum();
    let forwarded: u64 = layout
        .broker_sites
        .iter()
        .map(|b| {
            sys.place(*b)
                .cabinets()
                .get(tacoma_sched::federation::BROKER_CABINET)
                .and_then(|c| {
                    c.folder_ref(tacoma_sched::federation::FWD)
                        .map(|f| f.len() as u64)
                })
                .unwrap_or(0)
        })
        .sum();
    let calm_p95_ms = (0..config.shards)
        .filter(|r| *r != crowd_region)
        .map(|r| per_region[r as usize].percentile(95.0))
        .fold(0.0f64, f64::max);
    E19Outcome {
        submitted,
        completed,
        shed,
        forwarded,
        crowd_p95_ms: per_region[crowd_region as usize].percentile(95.0),
        calm_p95_ms,
    }
}

/// E19: a regional flash crowd against the federation.
///
/// Region 1's StormCast subscribers (a rate process over a million people)
/// swamp their shard's broker with a 25x submission spike for two seconds.
/// Without admission control the crowd shard's queues — and its p95 wait —
/// diverge.  With a digest-driven shed threshold, the saturated broker
/// forwards overflow only to peers whose digests still show headroom and
/// sheds the rest, so the crowd shard's p95 stays bounded and the calm
/// regions stay within tolerance of the no-crowd baseline.
pub fn e19_flash_crowd(opts: RunOpts) -> Table {
    let mut table = Table::new(
        "E19 — regional flash crowd vs federated admission control",
        "digest-driven shedding confines a regional flash crowd: the crowd shard sheds instead of collapsing and non-crowd regions stay within tolerance",
        &[
            "scenario",
            "submitted",
            "completed",
            "shed",
            "forwarded",
            "crowd p95 ms",
            "calm p95 ms",
        ],
    );
    let threshold = Some(1.0);
    let rows = [
        ("no crowd, shedding on", false, threshold),
        ("flash crowd, shedding off", true, None),
        ("flash crowd, shedding on", true, threshold),
    ];
    let mut outcomes = Vec::new();
    for (label, crowd, admission) in rows {
        let o = e19_run(crowd, admission, opts);
        table.row(vec![
            label.to_string(),
            o.submitted.to_string(),
            o.completed.to_string(),
            o.shed.to_string(),
            o.forwarded.to_string(),
            format!("{:.1}", o.crowd_p95_ms),
            format!("{:.1}", o.calm_p95_ms),
        ]);
        outcomes.push(o);
    }
    let (baseline, open, gated) = (&outcomes[0], &outcomes[1], &outcomes[2]);
    assert_eq!(baseline.shed, 0, "no crowd, no shedding");
    assert_eq!(open.shed, 0, "shedding disabled must shed nothing");
    assert!(
        gated.shed > 0,
        "the crowd must engage the broker shed path: {}",
        gated.shed
    );
    assert!(
        gated.crowd_p95_ms < open.crowd_p95_ms,
        "shedding must bound the crowd shard's p95 ({:.1} vs {:.1})",
        gated.crowd_p95_ms,
        open.crowd_p95_ms
    );
    assert!(
        gated.calm_p95_ms <= (baseline.calm_p95_ms * 3.0).max(250.0),
        "calm regions must stay within tolerance of baseline ({:.1} vs {:.1})",
        gated.calm_p95_ms,
        baseline.calm_p95_ms
    );
    assert!(
        gated.calm_p95_ms < open.crowd_p95_ms / 3.0,
        "bounded spill-over to calm regions ({:.1}) must stay far from the \
         unshed crowd collapse ({:.1})",
        gated.calm_p95_ms,
        open.crowd_p95_ms
    );
    table
}

// ---------------------------------------------------------------------------
// E20 — cost-aware placement of a heterogeneous script fleet
// ---------------------------------------------------------------------------

/// The step budget every E20 provider's interpreter enforces — and the bound
/// the cost gate proves admitted scripts against.
const E20_BUDGET: u64 = 50_000;

/// A counted-loop aggregator script: `4 + 3k` interpreter steps, all of them
/// provable by the static analysis.
fn e20_heavy(k: u32) -> String {
    format!("set i 0\nset acc 0\nwhile {{$i < {k}}} {{\nincr acc 2\nincr i\n}}\nbc_push OUT $acc")
}

/// The E20 script corpus: one light reader and three sizes of heavy loop
/// agent.  Every entry is statically bounded, vet-clean, and runtime-clean.
fn e20_corpus() -> Vec<(&'static str, String)> {
    vec![
        (
            "light",
            "set sum 0\nforeach x {1 2 3 4} { incr sum $x }\nbc_push OUT $sum".to_string(),
        ),
        ("heavy-3k", e20_heavy(3_000)),
        ("heavy-6k", e20_heavy(6_000)),
        ("heavy-9k", e20_heavy(9_000)),
    ]
}

/// One E20 measurement: the same script stream placed cost-blind (job-count
/// bumps) or cost-aware (kilostep bumps).
struct E20Outcome {
    requested: u64,
    completed: u64,
    failed: u64,
    rejected: u64,
    p95_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    conserved: bool,
}

fn e20_run(aware: bool, opts: RunOpts) -> E20Outcome {
    use tacoma_script::CostGate;

    let sites = 8u32;
    let corpus = e20_corpus();
    // The proven upper bounds drive both the gate's COST stamp (service
    // stretching) and the aware arm's placement bumps.
    let bounds: Vec<u64> = corpus
        .iter()
        .map(|(name, src)| {
            tacoma_script::cost_bound(src)
                .unwrap_or_else(|e| panic!("E20 corpus '{name}' must parse: {e}"))
                .steps
                .hi
                .unwrap_or_else(|| panic!("E20 corpus '{name}' must be bounded"))
        })
        .collect();

    // Service time is dominated by the script's step bound: heavy agents are
    // an order of magnitude more work than light ones, which is exactly the
    // heterogeneity a job-count queue measure cannot see.
    let admission = AdmissionConfig {
        capacity: usize::MAX,
        service_floor: Duration::from_micros(200),
        service_per_kib: Duration::from_micros(100),
        service_per_kilostep: Duration::from_micros(500),
        deadline: None,
        janitor_period: Duration::from_millis(50),
    };
    let mut sys = TacomaSystem::builder()
        .topology(Topology::full_mesh(sites, LinkSpec::default()))
        .seed(2020)
        .shards(opts.shards)
        .admission(admission)
        .cost_gate(CostGate::strict(E20_BUDGET, 64))
        .with_agents(|_| vec![Box::new(AgTacAgent::with_step_budget(E20_BUDGET)) as Box<dyn Agent>])
        .build();

    // Driver-side broker state: one zero report per provider, optimistically
    // bumped at every placement — by job count (blind) or by the script's
    // expected kilosteps (aware).  Both arms use power-of-two-choices over
    // the same reports; the queue *measure* is the only difference.
    let mut db = ReportDb::new(Duration::from_secs(3_600));
    for s in 0..sites {
        db.ingest(
            LoadReport {
                site: USiteId(s),
                queue_len: 0,
                queue_cost: 0.0,
                capacity: 1.0,
                at_micros: 0,
            },
            0,
        );
    }

    let jobs = if opts.quick { 240 } else { 800 };
    let mut mix_rng = DetRng::new(2020);
    let mut place_rng = DetRng::new(2021);
    let mut rr = 0u64;
    for i in 0..jobs {
        // Three light readers to one heavy loop agent, heavies cycling
        // uniformly through the three loop sizes.
        let idx = if mix_rng.next_below(4) < 3 {
            0
        } else {
            1 + mix_rng.next_below(3) as usize
        };
        let reports = db.live(|_| true);
        let site = PlacementPolicy::PowerOfTwo
            .choose(&reports, 0, 0, &mut place_rng, &mut rr)
            .expect("E20 providers are always known");
        if aware {
            db.bump_cost(site, bounds[idx] as f64 / 1000.0);
        } else {
            db.bump(site);
        }
        let mut bc = Briefcase::new();
        bc.put_string(wellknown::CODE, corpus[idx].1.clone());
        sys.schedule_meet(
            site,
            AgentName::new(wellknown::AG_TAC),
            bc,
            Duration::from_micros(i),
        );
    }

    // The gate's two rejection classes, offered in both arms: a divergent
    // shell (no finite bound) and a certain-death loop whose proven *minimum*
    // exceeds the budget.  Neither may reach an interpreter.
    for bad in ["while {1} { bc_push OUT x }".to_string(), e20_heavy(20_000)] {
        let mut bc = Briefcase::new();
        bc.put_string(wellknown::CODE, bad);
        sys.schedule_meet(
            USiteId(0),
            AgentName::new(wellknown::AG_TAC),
            bc,
            Duration::from_micros(0),
        );
    }

    sys.run_until_quiescent(u64::MAX / 2);
    let s = sys.stats();
    let w = sys.net_metrics().admission_waits().clone();
    E20Outcome {
        requested: s.meets_requested,
        completed: s.meets_completed,
        failed: s.meets_failed,
        rejected: s.costs_rejected,
        p95_ms: w.percentile(95.0),
        p99_ms: w.percentile(99.0),
        max_ms: w.max(),
        conserved: s.meets_requested
            == s.meets_completed
                + s.meets_failed
                + s.send_failures
                + s.meets_expired
                + s.meets_shed,
    }
}

/// E20: cost-aware placement of a heterogeneous script fleet.
///
/// A mixed stream of light reader scripts and heavy counted-loop agents is
/// placed over eight providers by power-of-two-choices, once with the
/// classic job-count queue measure and once with the cost-weighted measure
/// fed by the static analysis (`LoadReport::queue_cost`).  The cost gate is
/// armed in both arms: a divergent script and a certain-death loop are
/// rejected before any interpreter sees them (`costs_rejected`), and every
/// admitted script's proven bound is checked against the interpreter by the
/// driver — `meets_failed == 0` is the runtime half of the soundness claim,
/// since a blown step budget would fail its meet.  The acceptance bar is the
/// placement payoff: the cost-aware arm's p95 admission wait must beat the
/// cost-blind arm's.
pub fn e20_cost_placement(opts: RunOpts) -> Table {
    // In-driver soundness gate: every corpus script, run under a budget of
    // exactly its static upper bound, completes without exhausting it, and
    // its actual step count lands inside the proven interval.
    for (name, src) in e20_corpus() {
        let bound = tacoma_script::cost_bound(&src).expect("corpus parses");
        let hi = bound.steps.hi.expect("corpus is bounded");
        let mut host = tacoma_script::NullHost;
        let mut interp = tacoma_script::Interp::with_config(
            &mut host,
            tacoma_script::InterpConfig {
                max_steps: hi,
                max_depth: 64,
            },
        );
        let outcome = interp
            .run(&src)
            .unwrap_or_else(|e| panic!("E20 {name}: static bound {hi} is unsound: {e}"));
        assert!(
            bound.steps.lo <= outcome.steps && outcome.steps <= hi,
            "E20 {name}: ran {} steps outside proven [{}, {hi}]",
            outcome.steps,
            bound.steps.lo
        );
    }

    let mut table = Table::new(
        "E20 — cost-aware placement of a heterogeneous script fleet",
        "static cost bounds pay twice: the gate turns runaway scripts away at install time, and placing by expected kilosteps instead of job count cuts the tail wait of a heterogeneous fleet",
        &[
            "placement",
            "requested",
            "completed",
            "rejected",
            "p95 ms",
            "p99 ms",
            "max ms",
            "conserved",
        ],
    );
    let blind = e20_run(false, opts);
    let aware = e20_run(true, opts);
    for (label, o) in [
        ("cost-blind (job count)", &blind),
        ("cost-aware (kilosteps)", &aware),
    ] {
        table.row(vec![
            label.to_string(),
            o.requested.to_string(),
            o.completed.to_string(),
            o.rejected.to_string(),
            format!("{:.1}", o.p95_ms),
            format!("{:.1}", o.p99_ms),
            format!("{:.1}", o.max_ms),
            o.conserved.to_string(),
        ]);
    }
    for (label, o) in [("blind", &blind), ("aware", &aware)] {
        assert!(o.conserved, "E20 {label}: meet conservation violated");
        assert_eq!(
            o.rejected, 2,
            "E20 {label}: the divergent and certain-death scripts must both be rejected"
        );
        assert_eq!(
            o.failed, 0,
            "E20 {label}: an admitted script died at runtime — the gate's soundness claim is broken"
        );
        assert_eq!(
            o.completed, o.requested,
            "E20 {label}: every admitted script must complete"
        );
    }
    assert!(
        aware.p95_ms < blind.p95_ms,
        "E20: cost-aware placement must beat job-count placement on p95 wait ({:.1} vs {:.1})",
        aware.p95_ms,
        blind.p95_ms
    );
    table
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

/// A3: rear-guard chain depth vs completion and overhead.
pub fn ablation_guard_depth(opts: RunOpts) -> Table {
    let mut table = Table::new(
        "A3 — rear-guard chain depth",
        "design choice: how many trailing guards to keep alive (DESIGN.md §3, ablations)",
        &["guard depth", "completed", "rate", "meets", "bytes"],
    );
    // Depth is communicated to the travellers through the GUARD_DEPTH folder;
    // the experiment driver does not expose it directly, so run the underlying
    // scenario at the rear_guard level for depths 1..=3.
    for depth in [1usize, 2, 3] {
        let result = run_itinerary_experiment(&FtConfig {
            sites: 10,
            itinerary_len: 6,
            travellers: 20,
            crash_prob: 0.4,
            crash_window_ms: 15,
            downtime_ms: (500, 3_000),
            guarded: true,
            sim_shards: opts.shards,
            seed: 31_000 + depth as u64,
            ..Default::default()
        });
        table.row(vec![
            depth.to_string(),
            format!("{}/{}", result.completed, result.launched),
            format!("{:.0}%", result.completion_rate * 100.0),
            result.meets.to_string(),
            result.network_bytes.to_string(),
        ]);
    }
    table
}

/// A4: load-report dissemination period vs scheduling quality.
pub fn ablation_report_period(opts: RunOpts) -> Table {
    let mut table = Table::new(
        "A4 — load-report dissemination period",
        "design choice: how often monitors report to brokers (§4 likens this to routing-state dissemination)",
        &["report period ms", "mean wait ms", "p95 wait ms", "imbalance", "network bytes"],
    );
    for period_ms in [10u64, 50, 250, 1_000] {
        let result = run_scheduling_experiment(&SchedulingConfig {
            providers: 4,
            capacities: vec![1.0, 2.0, 4.0, 8.0],
            jobs: 80,
            mean_job_ms: 80.0,
            mean_interarrival_ms: 20.0,
            policy: PlacementPolicy::LoadBased,
            report_period: Duration::from_millis(period_ms),
            sim_shards: opts.shards,
            seed: 404,
        });
        table.row(vec![
            period_ms.to_string(),
            format!("{:.1}", result.mean_wait_ms),
            format!("{:.1}", result.p95_wait_ms),
            format!("{:.2}", result.imbalance),
            result.network_bytes.to_string(),
        ]);
    }
    table
}

/// Runs every experiment sequentially and returns the tables in order.
///
/// Thin wrapper over [`crate::runner::registry`] — the registry is the single
/// source of truth for which jobs exist and how quick mode configures them;
/// use [`crate::runner::run_jobs`] when you also want reports or parallelism.
pub fn all_experiments(opts: RunOpts) -> Vec<Table> {
    crate::runner::registry()
        .into_iter()
        .map(|spec| (spec.run)(opts))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_agents_win_on_selective_queries() {
        let table = e1_bandwidth(RunOpts::new(true));
        assert_eq!(table.rows.len(), 1);
        let agent: u64 = table.rows[0][3].parse().unwrap();
        let cs: u64 = table.rows[0][4].parse().unwrap();
        assert!(
            agent < cs,
            "agent {agent} should be below client-server {cs}"
        );
    }

    #[test]
    fn e2_naive_flooding_costs_more() {
        let table = e2_diffusion(RunOpts::new(true));
        let bounded: u64 = table.rows[0][3].parse().unwrap();
        let naive: u64 = table.rows[1][3].parse().unwrap();
        assert!(naive > bounded);
        assert!(table.rows[0][5].starts_with('8'), "full coverage expected");
    }

    #[test]
    fn e3_rsh_is_slowest_transport() {
        let table = e3_meet_rexec(RunOpts::new(true));
        let ms: Vec<f64> = table.rows[..3]
            .iter()
            .map(|r| r[2].parse().unwrap())
            .collect();
        // Rows are rsh, tcp, horus for the single payload.
        assert!(ms[0] > ms[1]);
        assert!(ms[0] > ms[2]);
    }

    #[test]
    fn e5_validation_blocks_all_double_spends() {
        let table = e5_cash(RunOpts::new(true));
        assert!(!table.rows[0][5].is_empty());
        let with_validation: u64 = table.rows[0][4].parse().unwrap();
        let without: u64 = table.rows[0][3].parse().unwrap();
        assert_eq!(with_validation, 0);
        assert!(without > 0);
    }

    #[test]
    fn e11_cache_cuts_bfs_work_at_least_tenfold() {
        let cfg = ScaleConfig {
            cliques: 8,
            clique_size: 8,
            rounds: 12,
            hoppers: 2,
            hop_len: 6,
            sim_shards: 1,
            seed: 1111,
        };
        let fast = e11_run(&cfg, true);
        let reference = e11_run(&cfg, false);
        // The cache may change routing *work* only — traffic is identical.
        assert_eq!(fast.bytes, reference.bytes);
        assert_eq!(fast.meets, reference.meets);
        assert_eq!(fast.route_queries, reference.route_queries);
        assert_eq!(fast.dropped, reference.dropped);
        assert_eq!(
            reference.bfs_runs, reference.route_queries,
            "uncached mode recomputes every query"
        );
        assert!(
            reference.bfs_runs >= 10 * fast.bfs_runs,
            "expected >= 10x BFS saving, got {} vs {}",
            reference.bfs_runs,
            fast.bfs_runs
        );
    }

    #[test]
    fn e12_churn_is_identical_with_and_without_the_cache() {
        let fast = e12_run(4, 4, 3, true, 1);
        let reference = e12_run(4, 4, 3, false, 1);
        assert_eq!(fast.bytes, reference.bytes);
        assert_eq!(fast.meets, reference.meets);
        assert_eq!(fast.send_failures, reference.send_failures);
        assert_eq!(fast.dropped, reference.dropped);
        assert_eq!(fast.epoch, reference.epoch);
        // 4 epoch bumps per cycle: partition, heal, crash, recover.
        assert_eq!(fast.epoch, 12);
        assert!(
            fast.send_failures > 0,
            "cross-ring traffic must fail while partitioned"
        );
        assert!(
            fast.bfs_runs < reference.bfs_runs,
            "within-epoch reuse must save some work even under churn"
        );
    }

    #[test]
    fn e13_custody_delivers_after_heal_where_fail_fast_loses() {
        let table = e13_custody(RunOpts::new(true));
        let cell = |r: usize, c: usize| table.rows[r][c].parse::<u64>().unwrap();
        let cross = cell(0, 3);
        // Fail-fast: every cross-partition send fails, nothing is delivered.
        assert_eq!(cell(0, 4), 0);
        assert_eq!(cell(0, 5), cross);
        // Ample custody: everything is delivered after the heal, no failures.
        assert_eq!(cell(1, 4), cross);
        assert_eq!(cell(1, 5), 0);
        assert!(cell(1, 7) > 0, "storage occupancy was charged");
        // Short TTL: everything expires instead.
        assert_eq!(cell(2, 6), cross);
        assert_eq!(cell(2, 4), 0);
        // Bounded queue: the overflow fails fast, the rest still delivers.
        assert_eq!(cell(3, 4) + cell(3, 5), cross);
        assert!(cell(3, 5) > 0, "the tiny queue must overflow");
    }

    #[test]
    fn e14_accounting_is_conserved_in_both_modes() {
        let table = e14_custody_churn(RunOpts::new(true));
        assert_eq!(table.rows.len(), 2);
        for row in &table.rows {
            assert_eq!(row[10], "true", "conservation must hold: {row:?}");
        }
        let custody = &table.rows[1];
        assert_eq!(custody[7], "0", "custody has no send failures");
        assert_eq!(custody[9], "0", "custody drops nothing in flight");
    }

    #[test]
    fn e15_federation_beats_the_single_broker_at_1024_sites() {
        let table = e15_federation(RunOpts::new(true));
        assert_eq!(table.rows.len(), 3);
        let completed = |r: usize| table.rows[r][4].parse::<u64>().unwrap();
        let p95 = |r: usize| table.rows[r][5].parse::<f64>().unwrap();
        let bytes = |r: usize| table.rows[r][9].parse::<u64>().unwrap();
        for r in 0..3 {
            assert_eq!(completed(r), 512, "row {r} lost jobs");
        }
        // The acceptance bar: federated placement beats the single broker on
        // p95 job wait AND on broker message volume, at 1024 sites.
        assert!(
            p95(1) < p95(0) / 2.0,
            "federated p95 {} must clearly beat single-broker {}",
            p95(1),
            p95(0)
        );
        assert!(
            bytes(1) < bytes(0),
            "federated bytes {} must undercut single-broker {}",
            bytes(1),
            bytes(0)
        );
        // Digest-period sweep: a slower gossip period only changes control
        // traffic while shards are healthy, never placement.
        assert_eq!(p95(2), p95(1));
        assert!(bytes(2) < bytes(1));
    }

    #[test]
    fn e16_zero_orphans_only_with_guarded_federation() {
        let table = e16_failover(RunOpts::new(true));
        assert_eq!(table.rows.len(), 3);
        let orphaned = |r: usize| table.rows[r][4].parse::<u64>().unwrap();
        assert!(orphaned(0) > 0, "fail-fast must lose the outage's jobs");
        assert!(
            orphaned(1) > 0,
            "custody delivers the bytes, but the recovered broker's provider \
             database died with it — custody alone is not failover"
        );
        assert_eq!(orphaned(2), 0, "guards + custody must orphan nothing");
        assert_eq!(table.rows[2][10], "true");
        let adoptions: u64 = table.rows[2][5].parse().unwrap();
        assert!(adoptions >= 1, "the guard must have adopted the shard");
        assert_eq!(table.rows[2][7], "0", "failover leaves no failed sends");
    }

    #[test]
    fn e8_no_direct_guess_succeeds() {
        let table = e8_protected(12);
        assert_eq!(table.rows[0][3], "0");
    }

    #[test]
    fn tables_render() {
        let quick = RunOpts::new(true);
        for table in [e4_folders(quick), e6_exchange(quick), e10_apps(quick)] {
            let rendered = table.render();
            assert!(rendered.contains("claim:"));
            assert!(!table.rows.is_empty());
        }
    }
}
