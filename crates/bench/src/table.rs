//! Minimal table type the harness prints experiment results with, plus the
//! bridge that turns rendered cells into typed metrics for reports.

use tacoma_util::{metric_key, MetricValue};

/// A printable experiment table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id and name, e.g. `"E1 — bandwidth conservation"`.
    pub title: String,
    /// The paper claim this table tests.
    pub claim: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (same arity as `headers`).
    pub rows: Vec<Vec<String>>,
    /// Wall-clock commentary (events/sec, speedups).  Deliberately outside
    /// the deterministic surface: excluded from [`Table::metrics`] and
    /// [`Table::render`], so reports and rendered tables stay byte-identical
    /// across machines and worker counts.  The harness prints notes in a
    /// separate section that CI lifts into the job summary.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, claim: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            claim: claim.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Appends a wall-clock note (not part of the deterministic report).
    pub fn note(&mut self, line: impl Into<String>) {
        self.notes.push(line.into());
    }

    /// Flattens every cell into a typed metric, keyed `r{row}.{header-slug}`.
    ///
    /// This is the bridge between the human-readable tables and the
    /// machine-readable [`Report`](crate::report::Report): scenario
    /// parameters (sites, rates) and measured quantities (bytes, waits)
    /// alike become comparable key/value pairs, in a deterministic order.
    pub fn metrics(&self) -> Vec<(String, MetricValue)> {
        let headers: Vec<String> = self.headers.iter().map(|h| metric_key(h)).collect();
        let mut out = Vec::with_capacity(self.rows.len() * headers.len());
        for (r, row) in self.rows.iter().enumerate() {
            // A ragged row would silently shrink gate coverage (zip stops at
            // the shorter side and a dropped new column has no baseline entry
            // to miss), so fail loudly in debug builds.
            debug_assert_eq!(
                row.len(),
                headers.len(),
                "row {r} of '{}' does not match the header count",
                self.title
            );
            for (header, cell) in headers.iter().zip(row) {
                out.push((format!("r{r}.{header}"), MetricValue::from_cell(cell)));
            }
        }
        out
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        out.push_str(&format!("claim: {}\n\n", self.claim));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("E0 — demo", "testing the table printer", &["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a much longer name".into(), "12345".into()]);
        let rendered = t.render();
        assert!(rendered.contains("E0 — demo"));
        assert!(rendered.contains("a much longer name"));
        let lines: Vec<&str> = rendered.lines().collect();
        // Header line and the two data lines align on the second column.
        let col = lines[3].find("value").unwrap();
        assert_eq!(lines[5].len().min(col), col);
    }

    #[test]
    fn notes_stay_out_of_metrics_and_render() {
        let mut t = Table::new("E0", "claim", &["n"]);
        t.row(vec!["1".into()]);
        t.note("4 shards: 2.35x (1.9s wall)");
        assert_eq!(t.metrics().len(), 1, "notes must not become gated metrics");
        assert!(
            !t.render().contains("2.35x"),
            "notes must not perturb the deterministic rendering"
        );
        assert_eq!(t.notes.len(), 1);
    }

    #[test]
    fn metrics_flatten_cells_with_typed_values() {
        let mut t = Table::new("E0", "claim", &["sites", "mean wait ms", "saving"]);
        t.row(vec!["8".into(), "21.4".into(), "15.3×".into()]);
        t.row(vec!["16".into(), "9.0".into(), "2.1×".into()]);
        let metrics = t.metrics();
        assert_eq!(metrics.len(), 6);
        assert_eq!(metrics[0], ("r0.sites".to_string(), MetricValue::Count(8)));
        assert_eq!(
            metrics[1],
            ("r0.mean_wait_ms".to_string(), MetricValue::Float(21.4))
        );
        assert_eq!(
            metrics[5],
            ("r1.saving".to_string(), MetricValue::Text("2.1×".into()))
        );
    }
}
