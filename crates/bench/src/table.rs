//! Minimal table type the harness prints experiment results with.

/// A printable experiment table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id and name, e.g. `"E1 — bandwidth conservation"`.
    pub title: String,
    /// The paper claim this table tests.
    pub claim: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (same arity as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, claim: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            claim: claim.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        out.push_str(&format!("claim: {}\n\n", self.claim));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("E0 — demo", "testing the table printer", &["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a much longer name".into(), "12345".into()]);
        let rendered = t.render();
        assert!(rendered.contains("E0 — demo"));
        assert!(rendered.contains("a much longer name"));
        let lines: Vec<&str> = rendered.lines().collect();
        // Header line and the two data lines align on the second column.
        let col = lines[3].find("value").unwrap();
        assert_eq!(lines[5].len().min(col), col);
    }
}
