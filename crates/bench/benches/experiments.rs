//! Criterion benches, one per system-level experiment table (E1–E2, E5–E10).
//!
//! Each bench times the same driver the harness uses to print its table, at a
//! reduced ("quick") configuration so a full `cargo bench` stays fast.  The
//! micro-benchmarks for E3 (meet/rexec) and E4 (folders) live in `micro.rs`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tacoma_bench as exp;
use tacoma_bench::RunOpts;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200))
}

fn bench_e1_bandwidth(c: &mut Criterion) {
    c.bench_function("e1_bandwidth_quick", |b| {
        b.iter(|| std::hint::black_box(exp::e1_bandwidth(RunOpts::new(true))))
    });
}

fn bench_e2_diffusion(c: &mut Criterion) {
    c.bench_function("e2_diffusion_quick", |b| {
        b.iter(|| std::hint::black_box(exp::e2_diffusion(RunOpts::new(true))))
    });
}

fn bench_e5_cash(c: &mut Criterion) {
    c.bench_function("e5_cash_quick", |b| {
        b.iter(|| std::hint::black_box(exp::e5_cash(RunOpts::new(true))))
    });
}

fn bench_e6_exchange(c: &mut Criterion) {
    c.bench_function("e6_exchange_quick", |b| {
        b.iter(|| std::hint::black_box(exp::e6_exchange(RunOpts::new(true))))
    });
}

fn bench_e7_scheduling(c: &mut Criterion) {
    c.bench_function("e7_scheduling_quick", |b| {
        b.iter(|| std::hint::black_box(exp::e7_scheduling(RunOpts::new(true))))
    });
}

fn bench_e8_protected(c: &mut Criterion) {
    c.bench_function("e8_protected_quick", |b| {
        b.iter(|| std::hint::black_box(exp::e8_protected(20)))
    });
}

fn bench_e9_rear_guard(c: &mut Criterion) {
    c.bench_function("e9_rear_guard_quick", |b| {
        b.iter(|| std::hint::black_box(exp::e9_rear_guard(RunOpts::new(true))))
    });
}

fn bench_e10_apps(c: &mut Criterion) {
    c.bench_function("e10_apps_quick", |b| {
        b.iter(|| std::hint::black_box(exp::e10_apps(RunOpts::new(true))))
    });
}

criterion_group! {
    name = experiments;
    config = config();
    targets = bench_e1_bandwidth, bench_e2_diffusion, bench_e5_cash, bench_e6_exchange,
              bench_e7_scheduling, bench_e8_protected, bench_e9_rear_guard, bench_e10_apps
}
criterion_main!(experiments);
