//! Criterion benches for the design-choice ablations called out in DESIGN.md
//! (A3: rear-guard chain depth, A4: load-report period).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tacoma_bench::{ablation_guard_depth, ablation_report_period, RunOpts};

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500))
}

fn bench_ablation_guard_depth(c: &mut Criterion) {
    c.bench_function("a3_guard_depth", |b| {
        b.iter(|| std::hint::black_box(ablation_guard_depth(RunOpts::new(true))))
    });
}

fn bench_ablation_report_period(c: &mut Criterion) {
    c.bench_function("a4_report_period", |b| {
        b.iter(|| std::hint::black_box(ablation_report_period(RunOpts::new(true))))
    });
}

criterion_group! {
    name = ablations;
    config = config();
    targets = bench_ablation_guard_depth, bench_ablation_report_period
}
criterion_main!(ablations);
