//! Criterion micro-benchmarks for E3 (meet / rexec migration) and E4
//! (folders, briefcases, cabinets), the routing fast path (cached vs
//! uncached shortest paths, E11's hot loop), plus the TacoScript interpreter
//! and the wire codec that both sit on every migration's critical path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tacoma_bench::{e3_local_meets, e3_migrate_once};
use tacoma_core::{codec, Briefcase, FileCabinet, Folder};
use tacoma_net::{LinkSpec, Router, Topology, TransportKind};
use tacoma_script::{analyze_with, AnalysisConfig, Interp, NullHost};
use tacoma_util::SiteId;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200))
}

fn bench_e3_meet_rexec(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_meet_rexec");
    group.bench_function("local_meet_x100", |b| {
        b.iter(|| std::hint::black_box(e3_local_meets(100)))
    });
    for payload in [1_024usize, 65_536] {
        for transport in TransportKind::ALL {
            group.bench_with_input(
                BenchmarkId::new(transport.label(), payload),
                &payload,
                |b, &payload| b.iter(|| std::hint::black_box(e3_migrate_once(payload, transport))),
            );
        }
    }
    group.finish();
}

fn bench_e4_folders(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_folders");
    for n in [100usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut f = Folder::new();
                for i in 0..n {
                    f.push_u64(i as u64);
                }
                while f.pop().is_some() {}
                std::hint::black_box(f)
            })
        });
        let mut bc = Briefcase::new();
        let mut cab = FileCabinet::new();
        for i in 0..n {
            bc.folder_mut("DATA").push_str(format!("element-{i:08}"));
            cab.append_str("DATA", format!("element-{i:08}"));
        }
        let needle = format!("element-{:08}", n - 1);
        group.bench_with_input(BenchmarkId::new("briefcase_scan_lookup", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(bc.folder("DATA").unwrap().contains_elem(needle.as_bytes()))
            })
        });
        group.bench_with_input(BenchmarkId::new("cabinet_indexed_lookup", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(cab.contains_elem(needle.as_bytes())))
        });
        group.bench_with_input(BenchmarkId::new("briefcase_encode", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(codec::encode_briefcase(&bc).len()))
        });
        let encoded = codec::encode_briefcase(&bc);
        group.bench_with_input(BenchmarkId::new("briefcase_decode", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(codec::decode_briefcase(&encoded).unwrap()))
        });
    }
    group.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    // The E11 shape at two scales: repeated queries over a fixed pair set,
    // the pattern the epoch-invalidated cache exists for.
    for cliques in [16u32, 128] {
        let topology = Topology::ring_of_cliques(cliques, 8, LinkSpec::lan(), LinkSpec::wan());
        let sites = topology.site_count();
        let pairs: Vec<(SiteId, SiteId)> = (0..64)
            .map(|i| {
                (
                    SiteId((i * 7) % sites),
                    SiteId((i * 13 + sites / 2) % sites),
                )
            })
            .collect();
        let alive = |_: SiteId| true;
        let unblocked = |_: SiteId, _: SiteId| false;
        for cached in [true, false] {
            let label = if cached { "cached" } else { "uncached" };
            group.bench_with_input(
                BenchmarkId::new(format!("route_{label}_x64"), sites),
                &pairs,
                |b, pairs| {
                    let mut router = Router::new(topology.clone());
                    router.set_cache_enabled(cached);
                    b.iter(|| {
                        let mut hops = 0usize;
                        for &(from, to) in pairs {
                            if let Some(p) = router.route(from, to, 0, alive, unblocked) {
                                hops += p.len() - 1;
                            }
                        }
                        std::hint::black_box(hops)
                    })
                },
            );
        }
        // The uncached reference API, for the per-BFS cost itself.
        group.bench_with_input(
            BenchmarkId::new("shortest_path_single", sites),
            &pairs[0],
            |b, &(from, to)| {
                let router = Router::new(topology.clone());
                b.iter(|| std::hint::black_box(router.shortest_path(from, to, alive)))
            },
        );
    }
    group.finish();
}

fn bench_tacoscript(c: &mut Criterion) {
    let mut group = c.benchmark_group("tacoscript");
    let loop_script = r#"
        set total 0
        set i 0
        while {$i < 200} { incr i; set total [expr $total + $i] }
        set total
    "#;
    group.bench_function("loop_200", |b| {
        b.iter(|| {
            let mut host = NullHost;
            let mut interp = Interp::new(&mut host);
            std::hint::black_box(interp.run(loop_script).unwrap().result)
        })
    });
    let proc_script = r#"
        proc fib {n} { if {$n < 2} { return $n }; expr [fib [expr $n - 1]] + [fib [expr $n - 2]] }
        fib 12
    "#;
    group.bench_function("fib_12", |b| {
        b.iter(|| {
            let mut host = NullHost;
            let mut interp = Interp::new(&mut host);
            std::hint::black_box(interp.run(proc_script).unwrap().result)
        })
    });
    group.finish();
}

/// taco-vet cost next to the interpreted run it gates.  The install gate runs
/// the analyzer once per injected agent, so its budget is "well under one
/// execution of the same script" (target: <5% of `run_200` / `run_fib_12`).
fn bench_taco_vet(c: &mut Criterion) {
    let mut group = c.benchmark_group("taco_vet");
    let tour_script = include_str!("../../../examples/scripts/quickstart_tour.taco");
    let scripts = [
        (
            "loop_200",
            "set total 0\nset i 0\nwhile {$i < 200} { incr i; set total [expr $total + $i] }\nset total",
        ),
        (
            "fib_12",
            "proc fib {n} { if {$n < 2} { return $n }; expr [fib [expr $n - 1]] + [fib [expr $n - 2]] }\nfib 12",
        ),
        ("quickstart_tour", tour_script),
    ];
    let config = AnalysisConfig::new().known_agents(
        ["ag_tac", "rexec", "courier", "diffusion", "broker"]
            .iter()
            .map(|a| a.to_string()),
    );
    for (name, script) in scripts {
        group.bench_function(BenchmarkId::new("analyze", name), |b| {
            b.iter(|| std::hint::black_box(analyze_with(script, &config).len()))
        });
    }
    // The interpreted runs the analyze cost is compared against (the paper's
    // loop and proc shapes; the tour script needs a live host to run).
    for (name, script) in &scripts[..2] {
        group.bench_function(BenchmarkId::new("run", name), |b| {
            b.iter(|| {
                let mut host = NullHost;
                let mut interp = Interp::new(&mut host);
                std::hint::black_box(interp.run(script).unwrap().result)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = micro;
    config = config();
    targets = bench_e3_meet_rexec, bench_e4_folders, bench_routing, bench_tacoscript, bench_taco_vet
}
criterion_main!(micro);
