//! Criterion micro-benchmarks for E3 (meet / rexec migration) and E4
//! (folders, briefcases, cabinets), plus the TacoScript interpreter and the
//! wire codec that both sit on every migration's critical path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tacoma_bench::{e3_local_meets, e3_migrate_once};
use tacoma_core::{codec, Briefcase, FileCabinet, Folder};
use tacoma_net::TransportKind;
use tacoma_script::{Interp, NullHost};

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200))
}

fn bench_e3_meet_rexec(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_meet_rexec");
    group.bench_function("local_meet_x100", |b| {
        b.iter(|| std::hint::black_box(e3_local_meets(100)))
    });
    for payload in [1_024usize, 65_536] {
        for transport in TransportKind::ALL {
            group.bench_with_input(
                BenchmarkId::new(transport.label(), payload),
                &payload,
                |b, &payload| b.iter(|| std::hint::black_box(e3_migrate_once(payload, transport))),
            );
        }
    }
    group.finish();
}

fn bench_e4_folders(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_folders");
    for n in [100usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut f = Folder::new();
                for i in 0..n {
                    f.push_u64(i as u64);
                }
                while f.pop().is_some() {}
                std::hint::black_box(f)
            })
        });
        let mut bc = Briefcase::new();
        let mut cab = FileCabinet::new();
        for i in 0..n {
            bc.folder_mut("DATA").push_str(format!("element-{i:08}"));
            cab.append_str("DATA", format!("element-{i:08}"));
        }
        let needle = format!("element-{:08}", n - 1);
        group.bench_with_input(BenchmarkId::new("briefcase_scan_lookup", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(bc.folder("DATA").unwrap().contains_elem(needle.as_bytes()))
            })
        });
        group.bench_with_input(BenchmarkId::new("cabinet_indexed_lookup", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(cab.contains_elem(needle.as_bytes())))
        });
        group.bench_with_input(BenchmarkId::new("briefcase_encode", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(codec::encode_briefcase(&bc).len()))
        });
        let encoded = codec::encode_briefcase(&bc);
        group.bench_with_input(BenchmarkId::new("briefcase_decode", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(codec::decode_briefcase(&encoded).unwrap()))
        });
    }
    group.finish();
}

fn bench_tacoscript(c: &mut Criterion) {
    let mut group = c.benchmark_group("tacoscript");
    let loop_script = r#"
        set total 0
        set i 0
        while {$i < 200} { incr i; set total [expr $total + $i] }
        set total
    "#;
    group.bench_function("loop_200", |b| {
        b.iter(|| {
            let mut host = NullHost;
            let mut interp = Interp::new(&mut host);
            std::hint::black_box(interp.run(loop_script).unwrap().result)
        })
    });
    let proc_script = r#"
        proc fib {n} { if {$n < 2} { return $n }; expr [fib [expr $n - 1]] + [fib [expr $n - 2]] }
        fib 12
    "#;
    group.bench_function("fib_12", |b| {
        b.iter(|| {
            let mut host = NullHost;
            let mut interp = Interp::new(&mut host);
            std::hint::black_box(interp.run(proc_script).unwrap().result)
        })
    });
    group.finish();
}

criterion_group! {
    name = micro;
    config = config();
    targets = bench_e3_meet_rexec, bench_e4_folders, bench_tacoscript
}
criterion_main!(micro);
