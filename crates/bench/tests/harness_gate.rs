//! End-to-end regression-gate test: re-runs the quick suite in-process and
//! compares it against the committed `BENCH_baseline.json`, the same check CI
//! performs with `harness --quick --compare BENCH_baseline.json`.

use std::path::PathBuf;
use tacoma_bench::{baseline, runner, ReportSet};
use tacoma_util::MetricValue;

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_baseline.json")
}

fn quick_run() -> ReportSet {
    let specs = runner::registry();
    let results = runner::run_jobs(&specs, runner::RunOpts::new(true), 4);
    ReportSet::new(true, results.into_iter().map(|r| r.report).collect())
}

#[test]
fn quick_run_matches_the_committed_baseline() {
    let baseline_set = ReportSet::load(&baseline_path())
        .expect("BENCH_baseline.json is committed at the repo root");
    let current = quick_run();
    let outcome = baseline::compare(&baseline_set, &current, &baseline::CompareConfig::new());
    assert!(
        outcome.passed(),
        "quick run drifted from BENCH_baseline.json — if intentional, refresh the baseline with \
         `cargo run --release -p tacoma_bench --bin harness -- --quick --json BENCH_baseline.json`:\n{outcome}"
    );
    // The gate actually inspected a meaningful number of metrics.
    assert!(
        outcome.metrics_checked > 100,
        "only {} metrics checked",
        outcome.metrics_checked
    );
}

#[test]
fn perturbed_metric_fails_the_gate() {
    let baseline_set = ReportSet::load(&baseline_path())
        .expect("BENCH_baseline.json is committed at the repo root");
    let mut drifted = baseline_set.clone();
    // Nudge the first numeric metric 10% past its baseline value — well
    // beyond the 2% default tolerance — and expect a non-zero gate.
    let (key, bumped) = drifted.reports[0]
        .metrics
        .iter()
        .find_map(|(k, v)| match v {
            MetricValue::Count(n) => Some((k.clone(), MetricValue::Count(n + n / 10 + 1))),
            _ => None,
        })
        .expect("baseline has at least one counter metric");
    for entry in drifted.reports[0].metrics.iter_mut() {
        if entry.0 == key {
            entry.1 = bumped.clone();
        }
    }
    let outcome = baseline::compare(&baseline_set, &drifted, &baseline::CompareConfig::new());
    assert!(!outcome.passed(), "a 10% drift on {key} must fail the gate");
    assert!(outcome.failures().any(|f| f.metric == key));
}

#[test]
fn baseline_file_is_canonical_serialization() {
    // The committed baseline must be exactly what the writer emits, so
    // regenerating it produces no spurious diff.
    let text = std::fs::read_to_string(baseline_path()).unwrap();
    let parsed = ReportSet::from_json_str(&text).unwrap();
    assert_eq!(parsed.to_json_string(), text);
}
