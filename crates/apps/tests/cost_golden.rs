//! Golden cost-bound report for the shipped TacoScript corpus.
//!
//! `examples/scripts/expected_costs.txt` pins the exact table `taco-vet
//! --cost` prints for every example script — one line per script, byte for
//! byte.  Any change to the analyzer that moves a bound (tighter, looser, or
//! a verdict flip) shows up here as a diff against the blessed file, so
//! precision regressions cannot land silently.  The file also encodes the CI
//! contract: no shipped script may be `unbounded`, which is what lets the
//! lint job run `--cost --deny-unbounded` over the corpus.

use std::path::PathBuf;
use tacoma_apps::{load_manifest, mail_agent_code};
use tacoma_script::cost_bound;

fn scripts_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/scripts")
}

/// Renders the corpus cost table exactly as the golden file stores it:
/// `name.taco: steps L..H depth L..H growth L..H [verdict]`, sorted by name.
fn corpus_table() -> String {
    let mut entries: Vec<_> = std::fs::read_dir(scripts_dir())
        .expect("examples/scripts exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "taco"))
        .collect();
    entries.sort();
    let mut out = String::new();
    for path in &entries {
        let src = std::fs::read_to_string(path).expect("readable script");
        let name = path.file_name().unwrap().to_string_lossy();
        let bound = cost_bound(&src).unwrap_or_else(|e| panic!("{}", e.render(&name)));
        out.push_str(&format!("{name}: {}\n", bound.summary()));
    }
    out
}

#[test]
fn example_corpus_matches_the_blessed_cost_table() {
    let expected = std::fs::read_to_string(scripts_dir().join("expected_costs.txt"))
        .expect("expected_costs.txt exists");
    assert_eq!(
        corpus_table(),
        expected,
        "cost bounds drifted from examples/scripts/expected_costs.txt — if the \
         analyzer legitimately got more (or less) precise, re-bless the file"
    );
}

#[test]
fn no_shipped_script_is_unbounded() {
    // The `--deny-unbounded` CI gate must hold for everything we ship: the
    // examples corpus, the fleet manifest's agents, and the application
    // scripts embedded in the crates.
    let table = corpus_table();
    assert!(
        !table.contains("[unbounded]"),
        "a shipped example lost its bound:\n{table}"
    );

    let manifest = load_manifest(&scripts_dir().join("fleet.audit")).expect("manifest parses");
    for agent in manifest.agents() {
        let Some(code) = &agent.code else { continue };
        let bound = cost_bound(code).expect("agent code parses");
        assert_ne!(
            bound.verdict(),
            "unbounded",
            "fleet agent '{}' has no finite bound",
            agent.name
        );
    }

    let mail = cost_bound(mail_agent_code()).expect("mail agent parses");
    assert_ne!(
        mail.verdict(),
        "unbounded",
        "agentmail script lost its bound"
    );
}

#[test]
fn loop_heavy_examples_keep_finite_worst_cases() {
    // The two scripts with counted retry/hop loops are the precision canary:
    // they must stay fully `bounded` (finite hi), not just input-bound.
    for name in ["retry_meet.taco", "hop_counter.taco"] {
        let src = std::fs::read_to_string(scripts_dir().join(name)).expect("readable script");
        let bound = cost_bound(&src).expect("parses");
        assert_eq!(bound.verdict(), "bounded", "{name} lost its finite bound");
        assert!(
            bound.steps.hi.is_some(),
            "{name}: counted-loop inference regressed"
        );
    }
}
