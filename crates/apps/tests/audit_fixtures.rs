//! Golden tests over the seeded-defect audit fixtures.
//!
//! Each directory under `examples/audit_fixtures/` is named after exactly one
//! diagnostic code (underscores for hyphens) and contains a `fleet.audit`
//! manifest, the scripts it references, and `expected.txt` — the full report
//! `taco-vet --audit` must produce.  The expectations are enforced *here*, by
//! a test, so CI never has to grep tool logs: the lint job just runs this.

use std::collections::BTreeSet;
use std::path::PathBuf;
use tacoma_apps::load_manifest;
use tacoma_script::{audit, render_audit};

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/audit_fixtures")
}

#[test]
fn every_fixture_produces_exactly_its_named_diagnostic() {
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(fixtures_dir())
        .expect("examples/audit_fixtures exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    assert_eq!(dirs.len(), 5, "one fixture per fleet-audit diagnostic code");

    for dir in dirs {
        let name = dir.file_name().unwrap().to_string_lossy().into_owned();
        let expected_code = name.replace('_', "-");
        let config = load_manifest(&dir.join("fleet.audit"))
            .unwrap_or_else(|e| panic!("fixture {name}: {e}"));
        let findings = audit(&config);

        // The report matches the blessed golden byte for byte.
        let expected = std::fs::read_to_string(dir.join("expected.txt"))
            .unwrap_or_else(|e| panic!("fixture {name}: expected.txt: {e}"));
        assert_eq!(
            render_audit(&findings),
            expected,
            "fixture {name}: report drifted from expected.txt"
        );

        // And the fixture is *pure*: exactly its named code, nothing else.
        let codes: BTreeSet<&str> = findings.iter().map(|f| f.diag.code).collect();
        assert_eq!(
            codes,
            BTreeSet::from([expected_code.as_str()]),
            "fixture {name}: expected only '{expected_code}'"
        );
    }
}
