//! Every shipped TacoScript — the examples corpus and the scripts embedded in
//! the applications — must pass taco-vet with zero diagnostics.  This is the
//! zero-false-positive guarantee: the analyzer may only flag real defects, so
//! known-good agents must come through completely clean.

use std::path::PathBuf;
use tacoma_apps::agentmail::MAIL_AGENT_SOURCE;
use tacoma_apps::{load_manifest, mail_agent_code};
use tacoma_core::wellknown;
use tacoma_script::{analyze_with, render_report, AnalysisConfig, AuditConfig};

fn config() -> AnalysisConfig {
    AnalysisConfig::new().known_agents(wellknown::AGENTS.iter().map(|a| a.to_string()))
}

#[track_caller]
fn assert_clean(name: &str, src: &str) {
    let diags = analyze_with(src, &config());
    assert!(
        diags.is_empty(),
        "expected {name} to vet clean, got:\n{}",
        render_report(&diags, name)
    );
}

#[test]
fn example_scripts_vet_clean() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/scripts");
    let mut seen = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("examples/scripts exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "taco"))
        .collect();
    entries.sort();
    for path in entries {
        let src = std::fs::read_to_string(&path).expect("readable script");
        assert_clean(&path.display().to_string(), &src);
        seen += 1;
    }
    assert!(seen >= 5, "expected the example corpus, found {seen} files");
}

#[test]
fn embedded_application_scripts_vet_clean() {
    assert_clean(MAIL_AGENT_SOURCE, mail_agent_code());
}

#[track_caller]
fn assert_fleet_clean(name: &str, config: &AuditConfig) {
    let findings = tacoma_script::audit(config);
    assert!(
        findings.is_empty(),
        "expected the {name} fleet to audit clean, got:\n{}",
        tacoma_script::render_audit(&findings)
    );
}

#[test]
fn the_example_fleet_audits_clean() {
    // The same manifest CI feeds to `taco-vet --audit`.
    let manifest =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/scripts/fleet.audit");
    let config = load_manifest(&manifest).expect("manifest parses");
    assert_eq!(config.agents().len(), 5, "every example script is declared");
    assert_fleet_clean("examples", &config);
}

#[test]
fn the_agentmail_fleet_audits_clean() {
    // One mail-message agent plus the folders run_mail_experiment injects.
    let config = AuditConfig::new()
        .site_count(6)
        .agent("mailer", MAIL_AGENT_SOURCE, mail_agent_code())
        .inject("TO")
        .inject("FROM")
        .inject("BODY")
        .inject("HOPS")
        .inject("ORIGCODE")
        .inject("CODE");
    assert_fleet_clean("agentmail", &config);
}

#[test]
fn the_stormcast_and_federation_fleets_audit_clean() {
    // These deployments are pure native (Rust) agents; the audit must accept
    // a script-free fleet without inventing findings.
    let config = AuditConfig::new()
        .site_count(8)
        .native("storm_expert")
        .native("storm_collector")
        .native("storm_sensor_server")
        .native("broker")
        .native("broker_guard");
    assert_fleet_clean("stormcast/federation", &config);
}
