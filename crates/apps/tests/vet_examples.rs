//! Every shipped TacoScript — the examples corpus and the scripts embedded in
//! the applications — must pass taco-vet with zero diagnostics.  This is the
//! zero-false-positive guarantee: the analyzer may only flag real defects, so
//! known-good agents must come through completely clean.

use std::path::PathBuf;
use tacoma_apps::mail_agent_code;
use tacoma_core::wellknown;
use tacoma_script::{analyze_with, render_report, AnalysisConfig};

fn config() -> AnalysisConfig {
    AnalysisConfig::new().known_agents(wellknown::AGENTS.iter().map(|a| a.to_string()))
}

#[track_caller]
fn assert_clean(name: &str, src: &str) {
    let diags = analyze_with(src, &config());
    assert!(
        diags.is_empty(),
        "expected {name} to vet clean, got:\n{}",
        render_report(&diags, name)
    );
}

#[test]
fn example_scripts_vet_clean() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/scripts");
    let mut seen = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("examples/scripts exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "taco"))
        .collect();
    entries.sort();
    for path in entries {
        let src = std::fs::read_to_string(&path).expect("readable script");
        assert_clean(&path.display().to_string(), &src);
        seen += 1;
    }
    assert!(seen >= 5, "expected the example corpus, found {seen} files");
}

#[test]
fn embedded_application_scripts_vet_clean() {
    assert_clean("mail_agent_code", mail_agent_code());
}
