//! Shared command-line plumbing for the TacoScript tool binaries.
//!
//! `taco-vet` grew three modes — per-script linting, whole-fleet `--audit`,
//! and static `--cost` bounds — and each needs the same input handling and
//! output shaping: a deterministic recursive walk for `.taco` files, a text
//! rendering that editors and CI problem-matchers can parse
//! (`file:line:col: severity[code]: message`), a `--format json` rendering
//! with a stable field order for machine consumers, and the common exit-code
//! contract (0 clean, 1 denied, 2 usage/I/O).  This module holds that
//! plumbing once so the modes cannot drift apart.
//!
//! JSON is rendered by hand (the workspace carries no serde derive support);
//! field order is part of the output contract: diagnostics are
//! `file, line, col, severity, code, message`, cost rows are
//! `file, steps, depth, growth, verdict`, and the trailing summary is
//! `files, errors, warnings`.

use std::path::{Path, PathBuf};
use tacoma_script::{CostBound, Diagnostic, Severity};

/// Exit code when no diagnostic was denied.
pub const EXIT_CLEAN: u8 = 0;
/// Exit code when at least one diagnostic was denied (errors always;
/// warnings under `--deny-warnings`; unbounded scripts under
/// `--deny-unbounded`).
pub const EXIT_DENIED: u8 = 1;
/// Exit code for usage, I/O, or manifest errors.
pub const EXIT_USAGE: u8 = 2;

/// Output format shared by every `taco-vet` mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Human- and problem-matcher-oriented lines on stdout.
    #[default]
    Text,
    /// One JSON document on stdout with a stable field order.
    Json,
}

impl OutputFormat {
    /// Parses a `--format` argument (`text` or `json`).
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "text" => Ok(OutputFormat::Text),
            "json" => Ok(OutputFormat::Json),
            other => Err(format!("unknown format '{other}' (expected text or json)")),
        }
    }
}

/// One diagnostic bound to the file it was found in.
///
/// The severity/code/message/span live in the underlying
/// [`Diagnostic`]; this pairs them with a path so batches from many
/// files can be rendered as one report.
#[derive(Debug, Clone)]
pub struct FileDiagnostic {
    /// Path of the script (or, for audit findings, the agent source label).
    pub file: String,
    /// The finding itself.
    pub diag: Diagnostic,
}

impl FileDiagnostic {
    /// The conventional text line: `file:line:col: severity[code]: message`.
    pub fn render_text(&self) -> String {
        self.diag.render(&self.file)
    }

    /// One JSON object with the stable field order
    /// `file, line, col, severity, code, message`.
    pub fn render_json(&self) -> String {
        format!(
            "{{\"file\":\"{}\",\"line\":{},\"col\":{},\"severity\":\"{}\",\"code\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&self.file),
            self.diag.span.line,
            self.diag.span.col,
            self.diag.severity,
            json_escape(self.diag.code),
            json_escape(&self.diag.message),
        )
    }
}

/// One per-script result row from `--cost` mode.
#[derive(Debug, Clone)]
pub struct CostRow {
    /// Path of the script (or `manifest#agent` for manifest-declared agents).
    pub file: String,
    /// The statically proven bound.
    pub bound: CostBound,
}

impl CostRow {
    /// The text table line: `file: steps L..H depth L..H growth L..H [verdict]`.
    pub fn render_text(&self) -> String {
        format!("{}: {}", self.file, self.bound.summary())
    }

    /// One JSON object with the stable field order
    /// `file, steps, depth, growth, verdict`; absent upper bounds are `null`.
    pub fn render_json(&self) -> String {
        format!(
            "{{\"file\":\"{}\",\"steps\":{},\"depth\":{},\"growth\":{},\"verdict\":\"{}\"}}",
            json_escape(&self.file),
            interval_json(self.bound.steps.lo, self.bound.steps.hi),
            interval_json(self.bound.depth.lo, self.bound.depth.hi),
            interval_json(self.bound.growth_bytes.lo, self.bound.growth_bytes.hi),
            self.bound.verdict(),
        )
    }
}

fn interval_json(lo: u64, hi: Option<u64>) -> String {
    match hi {
        Some(hi) => format!("{{\"lo\":{lo},\"hi\":{hi}}}"),
        None => format!("{{\"lo\":{lo},\"hi\":null}}"),
    }
}

/// Tally of findings across a run, driving the stderr summary and exit code.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunSummary {
    /// Scripts (or fleets, in audit mode) examined.
    pub files: usize,
    /// Error-severity diagnostics seen.
    pub errors: usize,
    /// Warning-severity diagnostics seen.
    pub warnings: usize,
}

impl RunSummary {
    /// Records one diagnostic in the tally.
    pub fn count(&mut self, diag: &Diagnostic) {
        match diag.severity {
            Severity::Error => self.errors += 1,
            Severity::Warning => self.warnings += 1,
        }
    }

    /// Whether the run should exit denied.
    pub fn denied(&self, deny_warnings: bool) -> bool {
        self.errors > 0 || (deny_warnings && self.warnings > 0)
    }

    /// The JSON summary object: `{"files":N,"errors":N,"warnings":N}`.
    pub fn render_json(&self) -> String {
        format!(
            "{{\"files\":{},\"errors\":{},\"warnings\":{}}}",
            self.files, self.errors, self.warnings
        )
    }
}

/// Renders the whole-run JSON document shared by all modes: a `diagnostics`
/// array, a `bounds` array when cost rows were produced (`--cost` mode), and
/// the trailing `summary`.
pub fn render_json_report(
    diags: &[FileDiagnostic],
    bounds: Option<&[CostRow]>,
    summary: &RunSummary,
) -> String {
    let mut out = String::from("{\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&d.render_json());
    }
    out.push(']');
    if let Some(rows) = bounds {
        out.push_str(",\"bounds\":[");
        for (i, r) in rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&r.render_json());
        }
        out.push(']');
    }
    out.push_str(",\"summary\":");
    out.push_str(&summary.render_json());
    out.push('}');
    out
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Recursively collects `.taco` files under `dir` in sorted order, so runs
/// are deterministic across filesystems.
pub fn collect_scripts(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut children: Vec<PathBuf> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    children.sort();
    for child in children {
        if child.is_dir() {
            collect_scripts(&child, out)?;
        } else if child.extension().is_some_and(|e| e == "taco") {
            out.push(child);
        }
    }
    Ok(())
}

/// Expands CLI inputs: files are kept as given, directories are walked for
/// `.taco` scripts.  A missing path is an error (exit 2 at the caller).
pub fn expand_inputs(inputs: &[PathBuf]) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    for input in inputs {
        if !input.exists() {
            return Err(format!("{}: no such file or directory", input.display()));
        }
        if input.is_dir() {
            collect_scripts(input, &mut files)?;
        } else {
            files.push(input.clone());
        }
    }
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tacoma_script::Span;

    #[test]
    fn json_rendering_has_stable_field_order() {
        let d = FileDiagnostic {
            file: "a \"b\".taco".to_string(),
            diag: Diagnostic::error("unknown-command", Span::new(3, 7), "unknown command 'foo'"),
        };
        assert_eq!(
            d.render_json(),
            "{\"file\":\"a \\\"b\\\".taco\",\"line\":3,\"col\":7,\"severity\":\"error\",\"code\":\"unknown-command\",\"message\":\"unknown command 'foo'\"}"
        );
        let row = CostRow {
            file: "x.taco".to_string(),
            bound: tacoma_script::cost_bound("set a 1\nset b 2").expect("parses"),
        };
        let json = row.render_json();
        assert!(json.starts_with("{\"file\":\"x.taco\",\"steps\":{\"lo\":2,\"hi\":2}"));
        assert!(json.ends_with("\"verdict\":\"bounded\"}"));

        let mut summary = RunSummary {
            files: 1,
            ..RunSummary::default()
        };
        summary.count(&d.diag);
        assert!(summary.denied(false));
        let report = render_json_report(&[d], Some(&[row]), &summary);
        assert!(report.contains("\"diagnostics\":["));
        assert!(report.contains("\"bounds\":["));
        assert!(report.ends_with("\"summary\":{\"files\":1,\"errors\":1,\"warnings\":0}}"));
        // No-bounds modes must not emit the key at all.
        assert!(!render_json_report(&[], None, &RunSummary::default()).contains("\"bounds\""));
    }

    #[test]
    fn escaping_covers_control_characters() {
        assert_eq!(
            json_escape("a\nb\t\"c\"\\d\u{1}"),
            "a\\nb\\t\\\"c\\\"\\\\d\\u0001"
        );
    }

    #[test]
    fn format_parses_and_defaults_to_text() {
        assert_eq!(OutputFormat::parse("json").unwrap(), OutputFormat::Json);
        assert_eq!(OutputFormat::parse("text").unwrap(), OutputFormat::Text);
        assert_eq!(OutputFormat::default(), OutputFormat::Text);
        assert!(OutputFormat::parse("xml").is_err());
    }

    #[test]
    fn warnings_deny_only_when_asked() {
        let mut s = RunSummary::default();
        s.count(&Diagnostic::warning("unreachable", Span::new(1, 1), "m"));
        assert!(!s.denied(false));
        assert!(s.denied(true));
    }
}
