//! `taco-vet`: lint TacoScript agent files before they are launched.
//!
//! The same analysis runs inside `tacoma-core` when a briefcase with a CODE
//! folder is injected; this binary exposes it for editors and CI so a
//! defective agent never reaches an install attempt at all.
//!
//! ```text
//! taco-vet [--deny-warnings] [--format FMT] [--agent NAME]... [--define VAR]... <file-or-dir>...
//! taco-vet --audit [--deny-warnings] [--format FMT] <manifest>...
//! taco-vet --cost [--deny-unbounded] [--deny-warnings] [--format FMT] <file-dir-or-manifest>...
//! ```
//!
//! Directories are walked recursively for `.taco` files.  The known-agent set
//! used to check `meet` targets starts from the well-known TACOMA agents and
//! grows with every `--agent`.  `--define` marks a variable as pre-bound by
//! the host (exempt from use-before-set).
//!
//! `--audit` switches to whole-fleet mode: each input is a fleet manifest
//! (see `tacoma_apps::audit_manifest` for the format) whose agents are
//! composed and checked for inter-agent defects — folder flow, itineraries
//! against the declared site count, and meet-graph livelocks.
//!
//! `--cost` switches to static cost mode: every script (and every script
//! agent of any `.audit` manifest given) gets one table line with its proven
//! worst-case step/depth/growth bounds and a verdict — `bounded`,
//! `input-bound` (finite per element, list length decided at runtime), or
//! `unbounded`.  `--deny-unbounded` turns the `unbounded` verdict into a
//! denied error, which is how CI keeps divergent agents out of the corpus.
//!
//! `--format json` replaces the text lines with one JSON document on stdout
//! (stable field order; see `tacoma_apps::cli`) shared by all three modes.
//!
//! Exit status (all modes): 0 clean, 1 when any diagnostic was denied
//! (errors always; warnings too under `--deny-warnings`), 2 on usage, I/O or
//! manifest errors.

use std::path::PathBuf;
use std::process::ExitCode;
use tacoma_apps::cli::{
    expand_inputs, render_json_report, CostRow, FileDiagnostic, OutputFormat, RunSummary,
    EXIT_DENIED, EXIT_USAGE,
};
use tacoma_apps::load_manifest;
use tacoma_core::wellknown;
use tacoma_script::{analyze_with, cost_bound, AnalysisConfig, Diagnostic, Span};

const USAGE: &str = "usage: taco-vet [--deny-warnings] [--format text|json] [--agent NAME]... [--define VAR]... <file-or-dir>...\n       taco-vet --audit [--deny-warnings] [--format text|json] <manifest>...\n       taco-vet --cost [--deny-unbounded] [--deny-warnings] [--format text|json] <file-dir-or-manifest>...";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Vet,
    Audit,
    Cost,
}

struct Options {
    deny_warnings: bool,
    deny_unbounded: bool,
    mode: Mode,
    format: OutputFormat,
    config: AnalysisConfig,
    inputs: Vec<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut deny_warnings = false;
    let mut deny_unbounded = false;
    let mut mode = Mode::Vet;
    let mut format = OutputFormat::Text;
    let mut config =
        AnalysisConfig::new().known_agents(wellknown::AGENTS.iter().map(|a| a.to_string()));
    let mut inputs = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--deny-unbounded" => deny_unbounded = true,
            "--audit" => mode = Mode::Audit,
            "--cost" => mode = Mode::Cost,
            "--format" => {
                let name = it.next().ok_or("--format requires an argument")?;
                format = OutputFormat::parse(name)?;
            }
            "--agent" => {
                let name = it.next().ok_or("--agent requires a name")?;
                config.add_known_agent(name.clone());
            }
            "--define" => {
                let var = it.next().ok_or("--define requires a variable name")?;
                config.add_predefined(var.clone());
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag '{other}'"));
            }
            path => inputs.push(PathBuf::from(path)),
        }
    }
    if deny_unbounded && mode != Mode::Cost {
        return Err("--deny-unbounded only applies to --cost mode".to_string());
    }
    if inputs.is_empty() {
        return Err(match mode {
            Mode::Audit => "no manifest files".to_string(),
            _ => "no input files".to_string(),
        });
    }
    Ok(Options {
        deny_warnings,
        deny_unbounded,
        mode,
        format,
        config,
        inputs,
    })
}

/// Emits the run's output in the selected format and maps the tally to the
/// process exit code.
fn finish(
    opts: &Options,
    diags: &[FileDiagnostic],
    bounds: Option<&[CostRow]>,
    summary: &RunSummary,
    noun: &str,
) -> ExitCode {
    match opts.format {
        OutputFormat::Text => {
            if let Some(rows) = bounds {
                for row in rows {
                    println!("{}", row.render_text());
                }
            }
            for d in diags {
                println!("{}", d.render_text());
            }
            if summary.errors + summary.warnings > 0 || summary.files > 1 {
                eprintln!(
                    "taco-vet: {} {noun}, {} error(s), {} warning(s)",
                    summary.files, summary.errors, summary.warnings
                );
            }
        }
        OutputFormat::Json => println!("{}", render_json_report(diags, bounds, summary)),
    }
    if summary.denied(opts.deny_warnings) {
        ExitCode::from(EXIT_DENIED)
    } else {
        ExitCode::SUCCESS
    }
}

/// Default mode: per-script lint over every `.taco` input.
fn run_vet(opts: &Options) -> ExitCode {
    let files = match expand_inputs(&opts.inputs) {
        Ok(files) => files,
        Err(msg) => {
            eprintln!("taco-vet: {msg}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let mut diags = Vec::new();
    let mut summary = RunSummary {
        files: files.len(),
        ..RunSummary::default()
    };
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(src) => src,
            Err(e) => {
                eprintln!("taco-vet: {}: {e}", file.display());
                return ExitCode::from(EXIT_USAGE);
            }
        };
        for diag in analyze_with(&src, &opts.config) {
            summary.count(&diag);
            diags.push(FileDiagnostic {
                file: file.display().to_string(),
                diag,
            });
        }
    }
    finish(opts, &diags, None, &summary, "file(s)")
}

/// `--audit` mode: every input is a fleet manifest.
fn run_audit(opts: &Options) -> ExitCode {
    let mut diags = Vec::new();
    let mut summary = RunSummary {
        files: opts.inputs.len(),
        ..RunSummary::default()
    };
    for manifest in &opts.inputs {
        let config = match load_manifest(manifest) {
            Ok(config) => config,
            Err(msg) => {
                eprintln!("taco-vet: {msg}");
                return ExitCode::from(EXIT_USAGE);
            }
        };
        for f in tacoma_script::audit(&config) {
            summary.count(&f.diag);
            diags.push(FileDiagnostic {
                file: f.source.clone(),
                diag: f.diag,
            });
        }
    }
    finish(opts, &diags, None, &summary, "fleet(s)")
}

/// Costs one script, recording its table row and any denial diagnostics.
fn cost_one(
    label: String,
    src: &str,
    opts: &Options,
    rows: &mut Vec<CostRow>,
    diags: &mut Vec<FileDiagnostic>,
    summary: &mut RunSummary,
) {
    summary.files += 1;
    match cost_bound(src) {
        Ok(bound) => {
            if opts.deny_unbounded && bound.verdict() == "unbounded" {
                let diag = Diagnostic::error(
                    "cost-unbounded",
                    Span::new(1, 1),
                    format!("no finite step bound (steps {})", bound.steps.render(true)),
                );
                summary.count(&diag);
                diags.push(FileDiagnostic {
                    file: label.clone(),
                    diag,
                });
            }
            rows.push(CostRow { file: label, bound });
        }
        Err(e) => {
            let diag = Diagnostic::error("parse-error", e.span(), e.message);
            summary.count(&diag);
            diags.push(FileDiagnostic { file: label, diag });
        }
    }
}

/// `--cost` mode: static worst-case bounds for every script input; `.audit`
/// manifests contribute one row per script agent.
fn run_cost(opts: &Options) -> ExitCode {
    let mut manifests = Vec::new();
    let mut scripts = Vec::new();
    for input in &opts.inputs {
        if input.extension().is_some_and(|e| e == "audit") {
            manifests.push(input.clone());
        } else {
            scripts.push(input.clone());
        }
    }
    let files = match expand_inputs(&scripts) {
        Ok(files) => files,
        Err(msg) => {
            eprintln!("taco-vet: {msg}");
            return ExitCode::from(EXIT_USAGE);
        }
    };

    let mut rows = Vec::new();
    let mut diags = Vec::new();
    let mut summary = RunSummary::default();
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(src) => src,
            Err(e) => {
                eprintln!("taco-vet: {}: {e}", file.display());
                return ExitCode::from(EXIT_USAGE);
            }
        };
        cost_one(
            file.display().to_string(),
            &src,
            opts,
            &mut rows,
            &mut diags,
            &mut summary,
        );
    }
    for manifest in &manifests {
        let config = match load_manifest(manifest) {
            Ok(config) => config,
            Err(msg) => {
                eprintln!("taco-vet: {msg}");
                return ExitCode::from(EXIT_USAGE);
            }
        };
        for agent in config.agents() {
            let Some(code) = &agent.code else {
                continue; // native agents have no TacoScript to bound
            };
            cost_one(
                format!("{}#{}", manifest.display(), agent.name),
                code,
                opts,
                &mut rows,
                &mut diags,
                &mut summary,
            );
        }
    }
    finish(opts, &diags, Some(&rows), &summary, "script(s)")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("taco-vet: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    match opts.mode {
        Mode::Vet => run_vet(&opts),
        Mode::Audit => run_audit(&opts),
        Mode::Cost => run_cost(&opts),
    }
}
