//! `taco-vet`: lint TacoScript agent files before they are launched.
//!
//! The same analysis runs inside `tacoma-core` when a briefcase with a CODE
//! folder is injected; this binary exposes it for editors and CI so a
//! defective agent never reaches an install attempt at all.
//!
//! ```text
//! taco-vet [--deny-warnings] [--agent NAME]... [--define VAR]... <file-or-dir>...
//! taco-vet --audit [--deny-warnings] <manifest>...
//! ```
//!
//! Directories are walked recursively for `.taco` files.  The known-agent set
//! used to check `meet` targets starts from the well-known TACOMA agents and
//! grows with every `--agent`.  `--define` marks a variable as pre-bound by
//! the host (exempt from use-before-set).
//!
//! `--audit` switches to whole-fleet mode: each input is a fleet manifest
//! (see `tacoma_apps::audit_manifest` for the format) whose agents are
//! composed and checked for inter-agent defects — folder flow, itineraries
//! against the declared site count, and meet-graph livelocks.
//!
//! Exit status (both modes): 0 clean, 1 when any diagnostic was denied
//! (errors always; warnings too under `--deny-warnings`), 2 on usage, I/O or
//! manifest errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use tacoma_apps::load_manifest;
use tacoma_core::wellknown;
use tacoma_script::{analyze_with, AnalysisConfig, Severity};

const USAGE: &str = "usage: taco-vet [--deny-warnings] [--agent NAME]... [--define VAR]... <file-or-dir>...\n       taco-vet --audit [--deny-warnings] <manifest>...";

struct Options {
    deny_warnings: bool,
    audit: bool,
    config: AnalysisConfig,
    inputs: Vec<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut deny_warnings = false;
    let mut audit = false;
    let mut config =
        AnalysisConfig::new().known_agents(wellknown::AGENTS.iter().map(|a| a.to_string()));
    let mut inputs = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--audit" => audit = true,
            "--agent" => {
                let name = it.next().ok_or("--agent requires a name")?;
                config.add_known_agent(name.clone());
            }
            "--define" => {
                let var = it.next().ok_or("--define requires a variable name")?;
                config.add_predefined(var.clone());
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag '{other}'"));
            }
            path => inputs.push(PathBuf::from(path)),
        }
    }
    if inputs.is_empty() {
        return Err(if audit {
            "no manifest files".to_string()
        } else {
            "no input files".to_string()
        });
    }
    Ok(Options {
        deny_warnings,
        audit,
        config,
        inputs,
    })
}

/// Runs `--audit` mode: every input is a fleet manifest.
fn run_audit(opts: &Options) -> ExitCode {
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for manifest in &opts.inputs {
        let config = match load_manifest(manifest) {
            Ok(config) => config,
            Err(msg) => {
                eprintln!("taco-vet: {msg}");
                return ExitCode::from(2);
            }
        };
        let findings = tacoma_script::audit(&config);
        for f in &findings {
            if f.diag.is_error() {
                errors += 1;
            } else {
                warnings += 1;
            }
        }
        print!("{}", tacoma_script::render_audit(&findings));
    }
    if errors + warnings > 0 || opts.inputs.len() > 1 {
        eprintln!(
            "taco-vet: audited {} fleet(s), {errors} error(s), {warnings} warning(s)",
            opts.inputs.len()
        );
    }
    if errors > 0 || (opts.deny_warnings && warnings > 0) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Recursively collects `.taco` files under a directory.
fn collect_scripts(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut children: Vec<PathBuf> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    children.sort();
    for child in children {
        if child.is_dir() {
            collect_scripts(&child, out)?;
        } else if child.extension().is_some_and(|e| e == "taco") {
            out.push(child);
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("taco-vet: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if opts.audit {
        return run_audit(&opts);
    }

    let mut files = Vec::new();
    for input in &opts.inputs {
        if !input.exists() {
            eprintln!("taco-vet: {}: no such file or directory", input.display());
            return ExitCode::from(2);
        }
        if input.is_dir() {
            if let Err(msg) = collect_scripts(input, &mut files) {
                eprintln!("taco-vet: {msg}");
                return ExitCode::from(2);
            }
        } else {
            files.push(input.clone());
        }
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(src) => src,
            Err(e) => {
                eprintln!("taco-vet: {}: {e}", file.display());
                return ExitCode::from(2);
            }
        };
        for d in analyze_with(&src, &opts.config) {
            match d.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
            }
            println!("{}", d.render(&file.display().to_string()));
        }
    }

    let denied = errors > 0 || (opts.deny_warnings && warnings > 0);
    if errors + warnings > 0 || files.len() > 1 {
        eprintln!(
            "taco-vet: {} file(s), {errors} error(s), {warnings} warning(s)",
            files.len()
        );
    }
    if denied {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
