//! `taco-vet`: lint TacoScript agent files before they are launched.
//!
//! The same analysis runs inside `tacoma-core` when a briefcase with a CODE
//! folder is injected; this binary exposes it for editors and CI so a
//! defective agent never reaches an install attempt at all.
//!
//! ```text
//! taco-vet [--deny-warnings] [--agent NAME]... [--define VAR]... <file-or-dir>...
//! ```
//!
//! Directories are walked recursively for `.taco` files.  The known-agent set
//! used to check `meet` targets starts from the well-known TACOMA agents and
//! grows with every `--agent`.  `--define` marks a variable as pre-bound by
//! the host (exempt from use-before-set).  Exit status: 0 clean, 1 when any
//! diagnostic was denied, 2 on usage or I/O errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use tacoma_core::wellknown;
use tacoma_script::{analyze_with, AnalysisConfig, Severity};

const USAGE: &str =
    "usage: taco-vet [--deny-warnings] [--agent NAME]... [--define VAR]... <file-or-dir>...";

struct Options {
    deny_warnings: bool,
    config: AnalysisConfig,
    inputs: Vec<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut deny_warnings = false;
    let mut config =
        AnalysisConfig::new().known_agents(wellknown::AGENTS.iter().map(|a| a.to_string()));
    let mut inputs = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--agent" => {
                let name = it.next().ok_or("--agent requires a name")?;
                config.add_known_agent(name.clone());
            }
            "--define" => {
                let var = it.next().ok_or("--define requires a variable name")?;
                config.add_predefined(var.clone());
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag '{other}'"));
            }
            path => inputs.push(PathBuf::from(path)),
        }
    }
    if inputs.is_empty() {
        return Err("no input files".to_string());
    }
    Ok(Options {
        deny_warnings,
        config,
        inputs,
    })
}

/// Recursively collects `.taco` files under a directory.
fn collect_scripts(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut children: Vec<PathBuf> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    children.sort();
    for child in children {
        if child.is_dir() {
            collect_scripts(&child, out)?;
        } else if child.extension().is_some_and(|e| e == "taco") {
            out.push(child);
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("taco-vet: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut files = Vec::new();
    for input in &opts.inputs {
        if !input.exists() {
            eprintln!("taco-vet: {}: no such file or directory", input.display());
            return ExitCode::from(2);
        }
        if input.is_dir() {
            if let Err(msg) = collect_scripts(input, &mut files) {
                eprintln!("taco-vet: {msg}");
                return ExitCode::from(2);
            }
        } else {
            files.push(input.clone());
        }
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(src) => src,
            Err(e) => {
                eprintln!("taco-vet: {}: {e}", file.display());
                return ExitCode::from(2);
            }
        };
        for d in analyze_with(&src, &opts.config) {
            match d.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
            }
            println!("{}", d.render(&file.display().to_string()));
        }
    }

    let denied = errors > 0 || (opts.deny_warnings && warnings > 0);
    if errors + warnings > 0 || files.len() > 1 {
        eprintln!(
            "taco-vet: {} file(s), {errors} error(s), {warnings} warning(s)",
            files.len()
        );
    }
    if denied {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
