//! AgentMail: the paper's "interactive mail system where messages are
//! implemented by agents" (§6).
//!
//! A mail message is a TacoScript agent: its CODE folder travels to the
//! recipient's home site, consults the site-local `mail_forwarding` cabinet
//! (users move; their old home site knows where they went), and either
//! deposits its body into the recipient's `mailbox` cabinet or hops onward.
//! Because the message is an agent, forwarding needs no central server and no
//! cooperation from the sender — exactly the argument the paper is making.

use tacoma_agents::{script_briefcase, standard_agents};
use tacoma_core::prelude::*;
use tacoma_core::TacomaSystem;
use tacoma_net::{LinkSpec, Topology};
use tacoma_util::DetRng;

/// Cabinet holding delivered mail, one folder per user.
pub const MAILBOX_CABINET: &str = "mailbox";
/// Cabinet holding forwarding addresses: folder per user, top element = new site.
pub const FORWARDING_CABINET: &str = "mail_forwarding";

/// Repository-relative path of the mail-message agent's source, so tooling
/// (vet reports, the fleet audit) can point diagnostics at the real file
/// instead of an embedded-string placeholder.
pub const MAIL_AGENT_SOURCE: &str = "crates/apps/src/mail_agent.taco";

/// The TacoScript source of a mail-message agent, shipped as a real `.taco`
/// file (see [`MAIL_AGENT_SOURCE`]).
///
/// Expects briefcase folders `TO` (user name), `BODY` (message text), and
/// `HOPS` (forwarding hops used so far).
pub fn mail_agent_code() -> &'static str {
    include_str!("mail_agent.taco")
}

/// Deterministic directory of an AgentMail *population*: millions of users
/// modeled as rate processes, not resident objects.
///
/// The open-arrival experiments (E18/E19) drive mail traffic for user counts
/// far beyond anything that could be materialised per-user.  The directory
/// answers the only questions a workload generator needs — where does user
/// `u` live, and how many users live at site `s` — in `O(1)` from closed
/// forms, so a six-million-user federation costs sixteen bytes.  Users are
/// homed round-robin (`u % sites`), which keeps per-site populations exactly
/// balanced and the arithmetic exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserDirectory {
    users: u64,
    sites: u32,
}

impl UserDirectory {
    /// A directory of `users` users homed round-robin across `sites` sites.
    ///
    /// # Panics
    ///
    /// Panics if `sites` is zero.
    pub fn new(users: u64, sites: u32) -> Self {
        assert!(sites > 0, "a user directory needs at least one site");
        UserDirectory { users, sites }
    }

    /// Total users in the population.
    pub fn users(&self) -> u64 {
        self.users
    }

    /// Sites the population is spread over.
    pub fn sites(&self) -> u32 {
        self.sites
    }

    /// Home site of user `user`.
    ///
    /// # Panics
    ///
    /// Panics if `user` is outside the population.
    pub fn home(&self, user: u64) -> SiteId {
        assert!(user < self.users, "user {user} outside population");
        SiteId((user % self.sites as u64) as u32)
    }

    /// Exact number of users homed at `site` — closed form, no enumeration.
    pub fn population(&self, site: SiteId) -> u64 {
        if site.0 >= self.sites {
            return 0;
        }
        let base = self.users / self.sites as u64;
        base + u64::from((site.0 as u64) < self.users % self.sites as u64)
    }

    /// This site's share of the total population, for splitting an aggregate
    /// arrival rate into per-site rates.
    pub fn share(&self, site: SiteId) -> f64 {
        if self.users == 0 {
            0.0
        } else {
            self.population(site) as f64 / self.users as f64
        }
    }

    /// Mailbox folder name for `user` (the per-user folder inside
    /// [`MAILBOX_CABINET`]).
    pub fn mailbox_folder(user: u64) -> String {
        format!("u{user}")
    }
}

/// Parameters of the mail experiment.
#[derive(Debug, Clone)]
pub struct MailConfig {
    /// Number of sites.
    pub sites: u32,
    /// Number of users (user `u<i>` starts at site `i % sites`).
    pub users: u32,
    /// Number of messages to send between random users.
    pub messages: u32,
    /// Fraction of users that have moved (and left a forwarding address).
    pub moved_fraction: f64,
    /// Event-queue shards for the network simulator (`1` = single queue;
    /// any value produces byte-identical results).
    pub sim_shards: u32,
    /// Random seed.
    pub seed: u64,
}

impl Default for MailConfig {
    fn default() -> Self {
        MailConfig {
            sites: 6,
            users: 12,
            messages: 40,
            moved_fraction: 0.25,
            sim_shards: 1,
            seed: 3,
        }
    }
}

/// What the mail experiment measured.
#[derive(Debug, Clone)]
pub struct MailResult {
    /// Messages sent.
    pub sent: u32,
    /// Messages found in some mailbox afterwards.
    pub delivered: u32,
    /// Messages delivered to users who had moved (i.e. needed forwarding).
    pub forwarded_deliveries: u32,
    /// Messages that gave up (dead letters).
    pub dead_letters: u32,
    /// Bytes moved over the network.
    pub network_bytes: u64,
}

/// Builds the system, places users, moves some of them, sends messages, and
/// counts deliveries.
pub fn run_mail_experiment(config: &MailConfig) -> MailResult {
    let mut sys = TacomaSystem::builder()
        .topology(Topology::full_mesh(config.sites, LinkSpec::default()))
        .seed(config.seed)
        .shards(config.sim_shards)
        .with_agents(standard_agents)
        .build();
    let mut rng = DetRng::new(config.seed ^ 0xA11);

    // Place users and move a fraction of them, leaving forwarding addresses.
    let mut home: Vec<SiteId> = (0..config.users)
        .map(|u| SiteId(u % config.sites))
        .collect();
    let mut moved = vec![false; config.users as usize];
    for u in 0..config.users as usize {
        if rng.chance(config.moved_fraction) {
            let old = home[u];
            let mut new = old;
            while new == old {
                new = SiteId(rng.next_below(config.sites as u64) as u32);
            }
            // Forwarding address at the old home site.
            sys.place_mut(old)
                .cabinets_mut()
                .cabinet(FORWARDING_CABINET)
                .append_str(format!("u{u}").as_str(), new.0.to_string());
            home[u] = new;
            moved[u] = true;
        }
    }

    // Send messages: each goes to the recipient's *original* home site (the
    // sender does not know about moves) and forwards itself if needed.
    let mut sent = 0;
    let mut to_moved = 0u32;
    for m in 0..config.messages {
        let from = rng.next_below(config.users as u64) as usize;
        let to = rng.next_below(config.users as u64) as usize;
        let original_home = SiteId(to as u32 % config.sites);
        if moved[to] {
            to_moved += 1;
        }
        let code = mail_agent_code();
        let mut bc = script_briefcase(
            code,
            &[
                ("TO", &format!("u{to}")),
                ("FROM", &format!("u{from}")),
                ("BODY", &format!("message {m} hello from u{from}")),
                ("HOPS", "0"),
            ],
        );
        bc.put_string("ORIGCODE", code);
        sys.inject_meet(original_home, AgentName::new(wellknown::AG_TAC), bc);
        sent += 1;
    }
    sys.run_until_quiescent(1_000_000);

    // Count deliveries in the mailboxes at each user's *current* home site.
    let mut delivered = 0u32;
    let mut forwarded_deliveries = 0u32;
    let mut dead_letters = 0u32;
    for u in 0..config.users as usize {
        let user = format!("u{u}");
        let count = sys
            .place(home[u])
            .cabinets()
            .get(MAILBOX_CABINET)
            .and_then(|c| c.folder_ref(&user).map(|f| f.len() as u32))
            .unwrap_or(0);
        delivered += count;
        if moved[u] {
            forwarded_deliveries += count;
        }
    }
    for s in 0..config.sites {
        dead_letters += sys
            .place(SiteId(s))
            .cabinets()
            .get(MAILBOX_CABINET)
            .and_then(|c| c.folder_ref("dead_letter").map(|f| f.len() as u32))
            .unwrap_or(0);
    }
    let _ = to_moved;

    MailResult {
        sent,
        delivered,
        forwarded_deliveries,
        dead_letters,
        network_bytes: sys.net_metrics().total_bytes().get(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_message_is_delivered_even_to_moved_users() {
        let result = run_mail_experiment(&MailConfig::default());
        assert_eq!(result.sent, 40);
        assert_eq!(result.delivered, 40, "no message may be lost");
        assert_eq!(result.dead_letters, 0);
        assert!(result.network_bytes > 0);
        assert!(
            result.forwarded_deliveries > 0,
            "with 25% moved users some deliveries must have required forwarding"
        );
    }

    #[test]
    fn no_moves_means_no_forwarded_deliveries() {
        let result = run_mail_experiment(&MailConfig {
            moved_fraction: 0.0,
            messages: 20,
            ..Default::default()
        });
        assert_eq!(result.delivered, 20);
        assert_eq!(result.forwarded_deliveries, 0);
    }

    #[test]
    fn results_are_deterministic() {
        let a = run_mail_experiment(&MailConfig::default());
        let b = run_mail_experiment(&MailConfig::default());
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.network_bytes, b.network_bytes);
    }

    #[test]
    fn chained_forwarding_follows_the_user() {
        // One user, moved twice: home site 0 -> 1 -> 2.  The message starts at
        // site 0 and must follow both forwarding addresses.
        let mut sys = TacomaSystem::builder()
            .topology(Topology::full_mesh(3, LinkSpec::default()))
            .seed(9)
            .with_agents(standard_agents)
            .build();
        sys.place_mut(SiteId(0))
            .cabinets_mut()
            .cabinet(FORWARDING_CABINET)
            .append_str("u0", "1");
        sys.place_mut(SiteId(1))
            .cabinets_mut()
            .cabinet(FORWARDING_CABINET)
            .append_str("u0", "2");
        let code = mail_agent_code();
        let mut bc = script_briefcase(
            code,
            &[
                ("TO", "u0"),
                ("FROM", "u1"),
                ("BODY", "find me"),
                ("HOPS", "0"),
            ],
        );
        bc.put_string("ORIGCODE", code);
        sys.inject_meet(SiteId(0), AgentName::new(wellknown::AG_TAC), bc);
        sys.run_until_quiescent(10_000);
        let mailbox = sys
            .place(SiteId(2))
            .cabinets()
            .get(MAILBOX_CABINET)
            .and_then(|c| c.folder_ref("u0").map(|f| f.strings()))
            .unwrap_or_default();
        assert_eq!(mailbox.len(), 1);
        assert!(mailbox[0].contains("find me"));
        assert_eq!(sys.stats().meets_failed, 0);
    }

    #[test]
    fn user_directory_populations_sum_exactly() {
        // Six million users over 7 sites: populations come from arithmetic,
        // not enumeration, and must cover the base exactly.
        let dir = UserDirectory::new(6_000_001, 7);
        let total: u64 = (0..7).map(|s| dir.population(SiteId(s))).sum();
        assert_eq!(total, dir.users());
        assert_eq!(dir.population(SiteId(7)), 0, "out-of-range site is empty");
        // Round-robin homing agrees with the closed-form populations.
        for u in 0..21 {
            let home = dir.home(u);
            assert!(dir.population(home) > 0);
            assert_eq!(home.0, (u % 7) as u32);
        }
        let shares: f64 = (0..7).map(|s| dir.share(SiteId(s))).sum();
        assert!((shares - 1.0).abs() < 1e-12);
        assert_eq!(UserDirectory::mailbox_folder(42), "u42");
    }
}
