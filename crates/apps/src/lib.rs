//! The paper's prototype applications (§6), rebuilt on the TACOMA runtime.
//!
//! * [`stormcast`] — StormCast \[J93\]: severe-storm prediction in the Arctic
//!   from a distributed network of weather sensors.  Sensor sites accumulate
//!   readings in site-local cabinets; a mobile *collector* agent visits the
//!   sensor sites, filters and aggregates the readings where they live, and
//!   delivers a compact summary to an expert-system agent that issues storm
//!   warnings.  A client–server variant ships every raw reading to the expert
//!   site instead — the comparison is the paper's central bandwidth-
//!   conservation claim (§1), measured by experiments E1 and E10.
//! * [`agentmail`] — the "interactive mail system where messages are
//!   implemented by agents": a mail message is an agent that travels to the
//!   recipient's home site, consults the site-local forwarding cabinet, and
//!   either deposits itself in the mailbox cabinet or hops onward.
//!
//! Both applications use only the public TACOMA API (system agents, folders,
//! briefcases, cabinets), which is the point: they are the paper's evidence
//! that the abstractions are sufficient.

#![warn(missing_docs)]

pub mod agentmail;
pub mod audit_manifest;
pub mod cli;
pub mod stormcast;

pub use agentmail::{mail_agent_code, run_mail_experiment, MailConfig, MailResult, UserDirectory};
pub use audit_manifest::load_manifest;
pub use cli::{
    collect_scripts, expand_inputs, render_json_report, CostRow, FileDiagnostic, OutputFormat,
    RunSummary,
};
pub use stormcast::{
    run_stormcast, StormcastConfig, StormcastPlan, StormcastResult, SubscriberModel,
};
