//! StormCast: distributed storm prediction from Arctic weather sensors.
//!
//! The real StormCast consumed live sensor feeds from northern Norway; we
//! substitute a seeded synthetic trace generator (see DESIGN.md) that injects
//! a storm front into a configurable subset of sensor sites.  What matters for
//! the paper's claims is the *architecture* comparison:
//!
//! * **Agent plan** — a collector agent visits every sensor site, filters the
//!   readings *at the site* down to the suspicious ones (high wind or steep
//!   pressure drop), carries only those onward, and finally meets the expert
//!   agent, which issues a warning.
//! * **Client–server plan** — every sensor site ships its complete raw
//!   reading log to the expert site, which filters centrally.
//!
//! Both plans reach the same verdict; the difference is bytes on the wire,
//! which is exactly the paper's §1 argument for agents.

use tacoma_agents::standard_agents;
use tacoma_core::prelude::*;
use tacoma_core::{Folder, TacomaSystem};
use tacoma_net::{LinkSpec, Topology};
use tacoma_util::DetRng;

/// Cabinet on each sensor site holding raw readings.
pub const SENSOR_CABINET: &str = "stormcast_sensor";
/// Folder of raw readings in the sensor cabinet.
pub const READINGS: &str = "READINGS";
/// Cabinet on the expert site holding issued warnings.
pub const EXPERT_CABINET: &str = "stormcast_expert";
/// Folder of issued warnings.
pub const WARNINGS: &str = "WARNINGS";
/// Folder of suspicious readings recorded at the expert site.
pub const SUSPICIOUS: &str = "SUSPICIOUS";
/// Folder of per-site summaries carried by the collector agent.
pub const SUMMARY: &str = "SUMMARY";
/// Folder of raw readings shipped by the client-server plan.
pub const RAW: &str = "RAW";

/// Which architecture a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StormcastPlan {
    /// Mobile collector agent filtering at the sensor sites.
    Agent,
    /// Sensors ship raw logs to the expert site (client–server).
    ClientServer,
}

impl StormcastPlan {
    /// Label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            StormcastPlan::Agent => "agent (filter at source)",
            StormcastPlan::ClientServer => "client-server (ship raw)",
        }
    }
}

/// Deterministic model of a StormCast *subscriber base*: a population of
/// warning subscribers spread over regions, modeled as rate processes.
///
/// The flash-crowd experiment (E19) needs "every subscriber in the storm
/// region hits the service at once" without materialising a subscriber
/// object per person.  Like [`crate::agentmail::UserDirectory`], this is a
/// closed-form mapping: subscribers are homed round-robin over sites, sites
/// are grouped into contiguous regions, and the per-region population — the
/// number that scales a region's arrival rate during a crowd — is exact
/// arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubscriberModel {
    subscribers: u64,
    sites: u32,
    sites_per_region: u32,
}

impl SubscriberModel {
    /// A subscriber base of `subscribers` spread round-robin over `sites`
    /// sites, grouped into regions of `sites_per_region` consecutive sites
    /// (the last region may be short).
    ///
    /// # Panics
    ///
    /// Panics if `sites` or `sites_per_region` is zero.
    pub fn new(subscribers: u64, sites: u32, sites_per_region: u32) -> Self {
        assert!(sites > 0, "a subscriber model needs at least one site");
        assert!(sites_per_region > 0, "regions need at least one site");
        SubscriberModel {
            subscribers,
            sites,
            sites_per_region,
        }
    }

    /// Total subscribers.
    pub fn subscribers(&self) -> u64 {
        self.subscribers
    }

    /// Number of regions.
    pub fn regions(&self) -> u32 {
        self.sites.div_ceil(self.sites_per_region)
    }

    /// Home site of subscriber `sub`.
    ///
    /// # Panics
    ///
    /// Panics if `sub` is outside the subscriber base.
    pub fn home(&self, sub: u64) -> SiteId {
        assert!(sub < self.subscribers, "subscriber {sub} outside base");
        SiteId((sub % self.sites as u64) as u32)
    }

    /// Region a site belongs to.
    pub fn region_of(&self, site: SiteId) -> u32 {
        site.0 / self.sites_per_region
    }

    /// The sites of `region`, in order.
    pub fn region_sites(&self, region: u32) -> impl Iterator<Item = SiteId> + '_ {
        let first = region * self.sites_per_region;
        (first..(first + self.sites_per_region).min(self.sites)).map(SiteId)
    }

    /// Exact number of subscribers homed at `site` — no enumeration.
    pub fn population(&self, site: SiteId) -> u64 {
        if site.0 >= self.sites {
            return 0;
        }
        let base = self.subscribers / self.sites as u64;
        base + u64::from((site.0 as u64) < self.subscribers % self.sites as u64)
    }

    /// Exact number of subscribers in `region`.
    pub fn region_population(&self, region: u32) -> u64 {
        self.region_sites(region).map(|s| self.population(s)).sum()
    }

    /// The region's share of the total subscriber base — what scales an
    /// aggregate arrival rate into a regional flash-crowd rate.
    pub fn region_share(&self, region: u32) -> f64 {
        if self.subscribers == 0 {
            0.0
        } else {
            self.region_population(region) as f64 / self.subscribers as f64
        }
    }
}

/// Parameters of one StormCast run.
#[derive(Debug, Clone)]
pub struct StormcastConfig {
    /// Number of sensor sites (the expert lives at site 0).
    pub sensors: u32,
    /// Readings accumulated at each sensor site over the observation window.
    pub readings_per_sensor: u32,
    /// Fraction of sensor sites inside the storm front.
    pub storm_fraction: f64,
    /// Architecture to run.
    pub plan: StormcastPlan,
    /// Event-queue shards for the network simulator (`1` = single queue;
    /// any value produces byte-identical results).
    pub sim_shards: u32,
    /// Random seed.
    pub seed: u64,
}

impl Default for StormcastConfig {
    fn default() -> Self {
        StormcastConfig {
            sensors: 8,
            readings_per_sensor: 200,
            storm_fraction: 0.25,
            plan: StormcastPlan::Agent,
            sim_shards: 1,
            seed: 1995,
        }
    }
}

/// What one StormCast run measured.
#[derive(Debug, Clone)]
pub struct StormcastResult {
    /// The plan that produced this result.
    pub plan: StormcastPlan,
    /// Bytes moved over the network.
    pub network_bytes: u64,
    /// Simulated milliseconds from kickoff until the warning verdict existed.
    pub latency_ms: f64,
    /// Number of storm warnings issued (one per stormy sensor site).
    pub warnings: usize,
    /// Number of suspicious readings that reached the expert.
    pub suspicious_readings: usize,
    /// Total raw readings generated across all sensor sites.
    pub total_readings: usize,
}

/// One synthetic weather reading (fixed-width record: 32 bytes of text keeps
/// byte accounting honest and readable).
fn reading_record(site: SiteId, idx: u32, wind: f64, pressure: f64) -> String {
    format!("{:>3},{:>5},{:>7.2},{:>9.2}", site.0, idx, wind, pressure)
}

fn is_suspicious(record: &str) -> bool {
    let mut parts = record.split(',');
    let wind: f64 = parts
        .nth(2)
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0.0);
    wind >= 20.0
}

/// The expert-system agent at site 0: receives suspicious readings and issues
/// a warning for every sensor site reporting sustained storm-force wind.
struct ExpertAgent;

impl Agent for ExpertAgent {
    fn name(&self) -> AgentName {
        AgentName::new("storm_expert")
    }

    fn meet(&mut self, ctx: &mut MeetCtx<'_>, bc: Briefcase) -> MeetOutcome {
        // Per-site suspicious-gust counts arrive either as compact summaries
        // (agent plan: "site,count,maxwind") or as raw logs the expert must
        // filter itself (client-server plan).
        let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
        if let Some(summaries) = bc.folder(SUMMARY) {
            for record in summaries.strings() {
                let mut parts = record.split(',');
                let site = parts.next().unwrap_or("?").trim().to_string();
                let count: usize = parts
                    .next()
                    .and_then(|s| s.trim().parse().ok())
                    .unwrap_or(0);
                *counts.entry(site).or_default() += count;
                ctx.cabinet(EXPERT_CABINET).append_str(SUSPICIOUS, &record);
            }
        }
        if let Some(raw) = bc.folder(RAW) {
            for record in raw.strings().into_iter().filter(|r| is_suspicious(r)) {
                let site = record.split(',').next().unwrap_or("?").trim().to_string();
                *counts.entry(site).or_default() += 1;
                ctx.cabinet(EXPERT_CABINET).append_str(SUSPICIOUS, &record);
            }
        }
        // Ten or more storm-force gusts at a site means a storm warning.
        for (site, count) in counts {
            if count >= 10 {
                let warning = format!("storm-warning:site{site}:{count} gusts");
                if !ctx
                    .cabinet(EXPERT_CABINET)
                    .folder_contains(WARNINGS, warning.as_bytes())
                {
                    ctx.cabinet(EXPERT_CABINET).append_str(WARNINGS, &warning);
                }
            }
        }
        Ok(Briefcase::new())
    }
}

/// The mobile collector agent (agent plan): filter locally, carry the
/// suspicious readings, move on; deliver to the expert at the end.
struct CollectorAgent;

impl Agent for CollectorAgent {
    fn name(&self) -> AgentName {
        AgentName::new("storm_collector")
    }

    fn meet(&mut self, ctx: &mut MeetCtx<'_>, mut bc: Briefcase) -> MeetOutcome {
        // Filter and *reduce* this site's readings where they live: the agent
        // carries only a per-site summary of the suspicious gusts onward
        // ("an agent typically will filter or otherwise reduce the data it
        // reads, carrying with it only the relevant information", §1).
        let readings: Vec<String> = ctx
            .cabinet(SENSOR_CABINET)
            .folder(READINGS)
            .map(|f| f.strings())
            .unwrap_or_default();
        let here = ctx.site();
        let mut count = 0usize;
        let mut max_wind = 0.0f64;
        for record in readings.iter().filter(|r| is_suspicious(r)) {
            count += 1;
            let wind: f64 = record
                .split(',')
                .nth(2)
                .and_then(|s| s.trim().parse().ok())
                .unwrap_or(0.0);
            max_wind = max_wind.max(wind);
        }
        if count > 0 {
            bc.folder_mut(SUMMARY)
                .push_str(format!("{},{count},{max_wind:.2}", here.0));
        }
        // Move to the next sensor site, or deliver to the expert.
        let next = bc
            .folder_mut(wellknown::ITINERARY)
            .dequeue_str()
            .and_then(|s| s.parse::<u32>().ok());
        match next {
            Some(site) => {
                ctx.remote_meet(
                    SiteId(site),
                    AgentName::new("storm_collector"),
                    bc,
                    TransportKind::Tcp,
                );
            }
            None => {
                let origin = bc
                    .peek_string(wellknown::ORIGIN)
                    .and_then(|s| s.parse::<u32>().ok())
                    .unwrap_or(0);
                ctx.remote_meet(
                    SiteId(origin),
                    AgentName::new("storm_expert"),
                    bc,
                    TransportKind::Tcp,
                );
            }
        }
        Ok(Briefcase::new())
    }
}

/// The sensor-server agent (client–server plan): on request, ship the whole
/// raw reading log to the expert site.
struct SensorServerAgent;

impl Agent for SensorServerAgent {
    fn name(&self) -> AgentName {
        AgentName::new("storm_sensor_server")
    }

    fn meet(&mut self, ctx: &mut MeetCtx<'_>, bc: Briefcase) -> MeetOutcome {
        let origin = bc
            .peek_string(wellknown::ORIGIN)
            .and_then(|s| s.parse::<u32>().ok())
            .unwrap_or(0);
        let readings: Vec<String> = ctx
            .cabinet(SENSOR_CABINET)
            .folder(READINGS)
            .map(|f| f.strings())
            .unwrap_or_default();
        let mut shipment = Briefcase::new();
        let raw = shipment.folder_mut(RAW);
        for record in readings {
            raw.push_str(record);
        }
        ctx.remote_meet(
            SiteId(origin),
            AgentName::new("storm_expert"),
            shipment,
            TransportKind::Tcp,
        );
        Ok(Briefcase::new())
    }
}

/// Generates the synthetic sensor data at each site.
fn seed_sensor_data(sys: &mut TacomaSystem, config: &StormcastConfig) -> usize {
    let mut rng = DetRng::new(config.seed ^ 0x5707);
    let stormy_count = ((config.sensors as f64) * config.storm_fraction).round() as u32;
    let mut total = 0;
    for s in 1..=config.sensors {
        let stormy = s <= stormy_count;
        let cab = sys
            .place_mut(SiteId(s))
            .cabinets_mut()
            .cabinet(SENSOR_CABINET);
        for i in 0..config.readings_per_sensor {
            let wind = if stormy && rng.chance(0.3) {
                rng.normal(28.0, 4.0).max(20.5)
            } else {
                rng.normal(8.0, 4.0).clamp(0.0, 19.5)
            };
            let pressure = rng.normal(if stormy { 975.0 } else { 1013.0 }, 5.0);
            cab.append_str(READINGS, reading_record(SiteId(s), i, wind, pressure));
            total += 1;
        }
    }
    total
}

/// Runs one StormCast experiment and returns its measurements.
pub fn run_stormcast(config: &StormcastConfig) -> StormcastResult {
    let sites = config.sensors + 1;
    let mut sys = TacomaSystem::builder()
        .topology(Topology::star(sites, LinkSpec::wan()))
        .seed(config.seed)
        .shards(config.sim_shards)
        .with_agents(standard_agents)
        .build();
    sys.register_agent(SiteId(0), Box::new(ExpertAgent));
    for s in 1..=config.sensors {
        sys.register_agent(SiteId(s), Box::new(CollectorAgent));
        sys.register_agent(SiteId(s), Box::new(SensorServerAgent));
    }
    let total_readings = seed_sensor_data(&mut sys, config);
    sys.reset_net_metrics();

    match config.plan {
        StormcastPlan::Agent => {
            // One collector visits every sensor site in turn.
            let mut bc = Briefcase::new();
            let mut itinerary = Folder::new();
            for s in 2..=config.sensors {
                itinerary.enqueue(s.to_string().into_bytes());
            }
            bc.put(wellknown::ITINERARY, itinerary);
            bc.put_string(wellknown::ORIGIN, "0");
            sys.inject_meet(SiteId(1), AgentName::new("storm_collector"), bc);
        }
        StormcastPlan::ClientServer => {
            // The expert polls every sensor server for its full log.
            for s in 1..=config.sensors {
                let mut bc = Briefcase::new();
                bc.put_string(wellknown::ORIGIN, "0");
                sys.inject_meet(SiteId(s), AgentName::new("storm_sensor_server"), bc);
            }
        }
    }
    sys.run_until_quiescent(1_000_000);

    let expert = sys.place(SiteId(0)).cabinets().get(EXPERT_CABINET);
    let warnings = expert
        .and_then(|c| c.folder_ref(WARNINGS).map(|f| f.len()))
        .unwrap_or(0);
    let suspicious = expert
        .and_then(|c| c.folder_ref(SUSPICIOUS).map(|f| f.len()))
        .unwrap_or(0);

    StormcastResult {
        plan: config.plan,
        network_bytes: sys.net_metrics().total_bytes().get(),
        latency_ms: sys.now().as_millis_f64(),
        warnings,
        suspicious_readings: suspicious,
        total_readings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(plan: StormcastPlan) -> StormcastConfig {
        StormcastConfig {
            sensors: 6,
            readings_per_sensor: 150,
            storm_fraction: 0.34,
            plan,
            sim_shards: 1,
            seed: 77,
        }
    }

    #[test]
    fn both_plans_issue_the_same_warnings() {
        let agent = run_stormcast(&config(StormcastPlan::Agent));
        let cs = run_stormcast(&config(StormcastPlan::ClientServer));
        assert_eq!(
            agent.warnings, cs.warnings,
            "the verdict must not depend on the plan"
        );
        assert_eq!(
            agent.warnings, 2,
            "two of six sensors are inside the storm front"
        );
        assert!(agent.suspicious_readings > 0);
        assert_eq!(agent.total_readings, 6 * 150);
    }

    #[test]
    fn agent_plan_moves_far_fewer_bytes() {
        let agent = run_stormcast(&config(StormcastPlan::Agent));
        let cs = run_stormcast(&config(StormcastPlan::ClientServer));
        assert!(
            (agent.network_bytes as f64) < 0.5 * cs.network_bytes as f64,
            "agent plan ({} B) should move far less than client-server ({} B)",
            agent.network_bytes,
            cs.network_bytes
        );
    }

    #[test]
    fn no_storm_no_warnings() {
        let result = run_stormcast(&StormcastConfig {
            storm_fraction: 0.0,
            ..config(StormcastPlan::Agent)
        });
        assert_eq!(result.warnings, 0);
    }

    #[test]
    fn results_are_deterministic() {
        let a = run_stormcast(&config(StormcastPlan::Agent));
        let b = run_stormcast(&config(StormcastPlan::Agent));
        assert_eq!(a.network_bytes, b.network_bytes);
        assert_eq!(a.warnings, b.warnings);
        assert_eq!(a.suspicious_readings, b.suspicious_readings);
    }

    #[test]
    fn reading_records_have_fixed_shape() {
        let r = reading_record(SiteId(3), 17, 22.5, 998.25);
        assert!(is_suspicious(&r));
        let calm = reading_record(SiteId(3), 18, 5.0, 1013.0);
        assert!(!is_suspicious(&calm));
        assert_eq!(r.split(',').count(), 4);
    }

    #[test]
    fn subscriber_model_regions_partition_the_base() {
        // 10 sites in regions of 4 → regions {0..3}, {4..7}, {8,9}.
        let model = SubscriberModel::new(1_000_003, 10, 4);
        assert_eq!(model.regions(), 3);
        assert_eq!(model.region_sites(2).count(), 2, "last region is short");
        let total: u64 = (0..model.regions())
            .map(|r| model.region_population(r))
            .sum();
        assert_eq!(total, model.subscribers());
        let shares: f64 = (0..model.regions()).map(|r| model.region_share(r)).sum();
        assert!((shares - 1.0).abs() < 1e-12);
        for sub in 0..30 {
            let home = model.home(sub);
            assert_eq!(model.region_of(home), home.0 / 4);
        }
    }
}
