//! Fleet manifests for `taco-vet --audit`.
//!
//! A manifest is a small line-oriented file (conventionally `fleet.audit`)
//! declaring the agents of a deployment and the folder environment they run
//! in, so the whole-fleet audit ([`tacoma_script::audit()`]) can check folder
//! flow, itineraries and the meet graph across scripts:
//!
//! ```text
//! # one directive per line; '#' starts a comment
//! sites 4
//! agent courier courier_summary.taco      # name, then path
//! native storm_expert                     # a Rust agent, opaque to the audit
//! inject HOPS ITINERARY                   # folders present in the briefcase
//! deliver TALLY SUMMARY                   # folders read by the outside world
//! ```
//!
//! Script paths are resolved relative to the manifest's directory, and
//! findings render against the path exactly as written in the manifest, so
//! reports stay stable regardless of where the tool is invoked from.

use std::path::Path;
use tacoma_script::AuditConfig;

/// Parses a manifest file and loads every referenced script, producing the
/// audit configuration.  Errors (unknown directives, unreadable scripts,
/// malformed site counts, duplicate agents) are rendered with the manifest
/// path and line number.
pub fn load_manifest(path: &Path) -> Result<AuditConfig, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let mut config = AuditConfig::new();
    let mut seen: Vec<String> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let at = |msg: String| format!("{}:{lineno}: {msg}", path.display());
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let directive = words.next().expect("non-empty line");
        let args: Vec<&str> = words.collect();
        match directive {
            "sites" => {
                let [count] = args.as_slice() else {
                    return Err(at("'sites' takes exactly one number".to_string()));
                };
                let n: u32 = count
                    .parse()
                    .map_err(|_| at(format!("invalid site count '{count}'")))?;
                config.set_site_count(n);
            }
            "agent" => {
                let [name, script] = args.as_slice() else {
                    return Err(at("'agent' takes a name and a script path".to_string()));
                };
                if seen.iter().any(|s| s == name) {
                    return Err(at(format!("agent '{name}' declared twice")));
                }
                seen.push((*name).to_string());
                let code = std::fs::read_to_string(dir.join(script))
                    .map_err(|e| at(format!("{script}: {e}")))?;
                config.add_agent(*name, *script, code);
            }
            "native" => {
                let [name] = args.as_slice() else {
                    return Err(at("'native' takes exactly one agent name".to_string()));
                };
                if seen.iter().any(|s| s == name) {
                    return Err(at(format!("agent '{name}' declared twice")));
                }
                seen.push((*name).to_string());
                config.add_native(*name);
            }
            "inject" => {
                if args.is_empty() {
                    return Err(at("'inject' takes one or more folder names".to_string()));
                }
                for folder in args {
                    config.add_injected(folder);
                }
            }
            "deliver" => {
                if args.is_empty() {
                    return Err(at("'deliver' takes one or more folder names".to_string()));
                }
                for folder in args {
                    config.add_delivered(folder);
                }
            }
            other => {
                return Err(at(format!(
                    "unknown directive '{other}' (expected sites/agent/native/inject/deliver)"
                )));
            }
        }
    }
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(dir: &Path, name: &str, content: &str) {
        std::fs::write(dir.join(name), content).unwrap();
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("taco_audit_manifest_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn manifests_parse_and_resolve_scripts_relatively() {
        let dir = tempdir("ok");
        write(&dir, "w.taco", "bc_put OUT 1\nreturn ok");
        write(
            &dir,
            "fleet.audit",
            "# demo fleet\nsites 3\nagent writer w.taco  # trailing comment\nnative helper\ninject SEED\ndeliver OUT RESULT\n",
        );
        let config = load_manifest(&dir.join("fleet.audit")).unwrap();
        assert_eq!(config.declared_site_count(), Some(3));
        assert_eq!(config.agents().len(), 2);
        assert_eq!(config.agents()[0].name, "writer");
        assert_eq!(config.agents()[0].source, "w.taco");
        assert!(config.agents()[1].code.is_none());
        assert!(tacoma_script::audit(&config).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_errors_carry_the_line_number() {
        let dir = tempdir("err");
        write(&dir, "fleet.audit", "sites 3\nfrobnicate x\n");
        let err = load_manifest(&dir.join("fleet.audit")).unwrap_err();
        assert!(err.contains("fleet.audit:2"), "{err}");
        assert!(err.contains("unknown directive 'frobnicate'"), "{err}");

        write(&dir, "fleet.audit", "agent ghost missing.taco\n");
        let err = load_manifest(&dir.join("fleet.audit")).unwrap_err();
        assert!(err.contains("missing.taco"), "{err}");

        write(&dir, "w.taco", "return ok");
        write(&dir, "fleet.audit", "agent a w.taco\nagent a w.taco\n");
        let err = load_manifest(&dir.join("fleet.audit")).unwrap_err();
        assert!(err.contains("declared twice"), "{err}");

        write(&dir, "fleet.audit", "sites many\n");
        let err = load_manifest(&dir.join("fleet.audit")).unwrap_err();
        assert!(err.contains("invalid site count"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
