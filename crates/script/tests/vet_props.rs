//! Property tests for the taco-vet analysis pass.
//!
//! The analyzer runs inside the kernel's install gate, where a panic would
//! take down the whole simulation, so the headline property is total
//! robustness: `analyze` must return diagnostics (possibly a parse error) for
//! *any* input, never panic or loop.

use proptest::prelude::*;
use tacoma_script::{analyze, parse_script};

proptest! {
    /// The analyzer never panics on arbitrary printable byte soup.
    #[test]
    fn analyze_never_panics_on_ascii_soup(src in "[ -~\n\t]{0,200}") {
        let diags = analyze(&src);
        for d in &diags {
            prop_assert!(d.span.line >= 1);
            prop_assert!(d.span.col >= 1);
        }
    }

    /// Dense Tcl metacharacter soup (braces, brackets, dollars, quotes,
    /// semicolons) exercises the nested-script recursion paths; the depth cap
    /// must keep the analyzer total.
    #[test]
    fn analyze_never_panics_on_tcl_soup(src in "[{}$\\[\\]\"; \nsetwhileafobcx0-9]{0,160}") {
        let _ = analyze(&src);
    }

    /// Diagnostics come back sorted by source position, so reports read
    /// top-to-bottom regardless of analysis order.
    #[test]
    fn diagnostics_are_position_sorted(src in "[ -~\n]{0,200}") {
        let diags = analyze(&src);
        for pair in diags.windows(2) {
            prop_assert!(pair[0].span <= pair[1].span);
        }
    }

    /// A script the parser rejects yields exactly one `parse` diagnostic and
    /// nothing else.  (A script that parses at the top level may still carry
    /// parse diagnostics from nested braced bodies, which are parsed lazily.)
    #[test]
    fn parse_failures_yield_one_diagnostic(src in "[ -~\n]{0,160}") {
        if parse_script(&src).is_err() {
            let diags = analyze(&src);
            prop_assert_eq!(diags.len(), 1);
            prop_assert_eq!(diags[0].code, "parse");
        }
    }
}
