//! Property tests for the static cost analysis (`taco-cost`).
//!
//! The analysis drives an install gate: a script the gate admits with a
//! proven finite bound must *never* blow a step budget set to that bound.
//! The headline property is therefore soundness against the interpreter —
//! generate random well-formed scripts from a grammar of bounded constructs
//! (literal counted loops, `foreach` over literal lists, nested `if`s,
//! procs, briefcase growth ops), run each one under `max_steps` equal to the
//! static upper bound, and require that [`ScriptError::BudgetExceeded`]
//! never fires.  The lower bound is checked on the same run: an interpreter
//! that completes must have spent at least `steps.lo`.
//!
//! A second property keeps the analyzer total on adversarial inputs: like
//! `analyze`, `cost_bound` runs inside the kernel, so it may reject byte
//! soup but must never panic or hang on it.

use proptest::prelude::*;
use tacoma_script::{cost_bound, Interp, InterpConfig, NullHost, ScriptError};

/// Deterministic splitmix64 stream driving the script builder, so each
/// proptest case (one `u64` of entropy) expands to one reproducible script.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Appends one random statement to `out`.  Every construct the builder can
/// emit is statically bounded and runtime-clean: fresh counter variables per
/// loop, only previously-`set` variables are read, and all commands exist.
fn push_statement(
    g: &mut Gen,
    depth: u32,
    fresh: &mut u32,
    vars: &mut Vec<String>,
    out: &mut String,
) {
    let choice = if depth >= 2 { g.below(4) } else { g.below(7) };
    match choice {
        // Plain assignment: introduces a readable variable.
        0 => {
            let v = format!("v{}", *fresh);
            *fresh += 1;
            out.push_str(&format!("set {v} {}\n", g.below(100)));
            vars.push(v);
        }
        // Arithmetic on a literal expr.
        1 => {
            let v = format!("v{}", *fresh);
            *fresh += 1;
            out.push_str(&format!(
                "set {v} [expr {} + {}]\n",
                g.below(50),
                g.below(50)
            ));
            vars.push(v);
        }
        // Briefcase growth (NullHost absorbs it; the analysis must bound it).
        2 => {
            out.push_str(&format!("bc_push OUT payload{}\n", g.below(10)));
        }
        // incr on an existing variable, or a fresh set when none exists.
        3 => match vars.last() {
            Some(v) => out.push_str(&format!("incr {v} {}\n", 1 + g.below(3))),
            None => {
                let v = format!("v{}", *fresh);
                *fresh += 1;
                out.push_str(&format!("set {v} 0\n"));
                vars.push(v);
            }
        },
        // Counted while loop over a fresh counter.
        4 => {
            let i = format!("i{}", *fresh);
            *fresh += 1;
            let bound = g.below(6);
            let mut body = String::new();
            let mut inner = vars.clone();
            for _ in 0..=g.below(2) {
                push_statement(g, depth + 1, fresh, &mut inner, &mut body);
            }
            body.push_str(&format!("incr {i}"));
            out.push_str(&format!(
                "set {i} 0\nwhile {{${i} < {bound}}} {{\n{body}\n}}\n"
            ));
        }
        // foreach over a literal list.
        5 => {
            // Numeric items so body statements may `incr`/compare the
            // iteration variable without tripping a runtime type error.
            let n = 1 + g.below(4);
            let items: Vec<String> = (0..n).map(|k| k.to_string()).collect();
            let x = format!("x{}", *fresh);
            *fresh += 1;
            let mut body = String::new();
            let mut inner = vars.clone();
            inner.push(x.clone());
            for _ in 0..=g.below(2) {
                push_statement(g, depth + 1, fresh, &mut inner, &mut body);
            }
            if body.is_empty() {
                body.push_str(&format!("set copy ${x}"));
            }
            out.push_str(&format!(
                "foreach {x} {{{}}} {{\n{body}\n}}\n",
                items.join(" ")
            ));
        }
        // Two-way branch on a literal or a known variable.
        _ => {
            let cond = match vars.last() {
                Some(v) if g.below(2) == 0 => format!("${v} < 50"),
                _ => format!("{}", g.below(2)),
            };
            let mut then_b = String::new();
            let mut else_b = String::new();
            let mut inner = vars.clone();
            push_statement(g, depth + 1, fresh, &mut inner, &mut then_b);
            let mut inner = vars.clone();
            push_statement(g, depth + 1, fresh, &mut inner, &mut else_b);
            out.push_str(&format!(
                "if {{{cond}}} {{\n{then_b}\n}} else {{\n{else_b}\n}}\n"
            ));
        }
    }
}

/// Builds one random bounded script from a 64-bit seed.
fn build_script(seed: u64) -> String {
    let mut g = Gen(seed);
    let mut out = String::new();
    let mut fresh = 0u32;
    let mut vars = Vec::new();
    let statements = 1 + g.below(6);
    for _ in 0..statements {
        push_statement(&mut g, 0, &mut fresh, &mut vars, &mut out);
    }
    out
}

fn run_with_budget(src: &str, max_steps: u64) -> Result<u64, ScriptError> {
    let mut host = NullHost;
    let mut interp = Interp::with_config(
        &mut host,
        InterpConfig {
            max_steps,
            max_depth: 64,
        },
    );
    interp.run(src).map(|outcome| outcome.steps)
}

proptest! {
    /// Soundness: when the analysis claims a finite step bound, running the
    /// script with exactly that budget never exhausts it, and the actual
    /// step count lands inside the proven interval.
    #[test]
    fn finite_static_bound_is_a_sound_budget(seed in any::<u64>()) {
        let src = build_script(seed);
        let bound = cost_bound(&src).expect("generated scripts parse");
        prop_assert!(!bound.divergent, "builder emits only bounded constructs:\n{src}");
        let hi = bound.steps.hi.unwrap_or_else(|| panic!(
            "builder emits only statically countable loops, got {}:\n{src}",
            bound.summary()
        ));
        match run_with_budget(&src, hi) {
            Ok(steps) => {
                prop_assert!(steps <= hi, "ran {steps} steps over bound {hi}:\n{src}");
                prop_assert!(
                    steps >= bound.steps.lo,
                    "ran {steps} steps under proven minimum {}:\n{src}",
                    bound.steps.lo
                );
            }
            Err(ScriptError::BudgetExceeded) => {
                panic!("static bound {hi} was not sound for:\n{src}");
            }
            Err(e) => panic!("generated script failed at runtime ({e}):\n{src}"),
        }
    }

    /// One step less than the proven *lower* bound must always trip the
    /// budget: the gate's certain-death rejection (lo > budget) relies on
    /// the lower bound being a true minimum.
    #[test]
    fn lower_bound_is_a_true_minimum(seed in any::<u64>()) {
        let src = build_script(seed);
        let bound = cost_bound(&src).expect("generated scripts parse");
        if bound.steps.lo > 0 {
            prop_assert!(matches!(
                run_with_budget(&src, bound.steps.lo - 1),
                Err(ScriptError::BudgetExceeded)
            ), "budget below the proven minimum did not trip for:\n{src}");
        }
    }

    /// Totality: the analyzer never panics on printable byte soup (it may
    /// return a parse error or an Unbounded verdict, both fine).
    #[test]
    fn cost_bound_is_total_on_ascii_soup(src in "[ -~\n\t]{0,200}") {
        let _ = cost_bound(&src);
    }

    /// Dense Tcl metacharacter soup exercises the nested-script walkers and
    /// the analysis depth cap.
    #[test]
    fn cost_bound_is_total_on_tcl_soup(src in "[{}$\\[\\]\"; \nsetwhileafobcx0-9]{0,160}") {
        let _ = cost_bound(&src);
    }
}
