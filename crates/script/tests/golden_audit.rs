//! Golden fleet-audit reports: multi-agent fleets with seeded protocol
//! defects must render exactly the expected findings, and well-formed
//! fleets must render nothing.

use tacoma_script::{audit, render_audit, AuditConfig};

#[track_caller]
fn expect(config: &AuditConfig, want: &[&str]) {
    let got = render_audit(&audit(config));
    let want = want
        .iter()
        .map(|l| format!("{l}\n"))
        .collect::<Vec<_>>()
        .join("");
    assert_eq!(got, want);
}

#[test]
fn a_whole_defective_fleet_renders_every_finding() {
    // Three agents, four seeded defects across them: a read nobody produces,
    // a write nobody consumes, an itinerary off the edge of the world, and a
    // two-agent meet livelock.
    let config = AuditConfig::new()
        .site_count(4)
        .agent(
            "navigator",
            "navigator.taco",
            "set plan [bc_pop FLIGHT_PLAN]\nbc_put BEACON $plan\nreturn ok",
        )
        .agent(
            "hopper",
            "hopper.taco",
            "bc_push LOG [my_site]\nmove_to 9\nreturn moving",
        )
        .agent("ping", "ping.taco", "meet pong")
        .agent("pong", "pong.taco", "meet ping")
        .deliver("LOG");
    expect(
        &config,
        &[
            "hopper.taco:2:1: error[itinerary-out-of-range]: 'move_to' targets site 9, but the fleet declares 4 site(s) (valid: 0..3)",
            "navigator.taco:1:10: error[folder-never-produced]: folder 'FLIGHT_PLAN' is read but never produced: no fleet agent writes it and it is not in the injected briefcase",
            "navigator.taco:2:1: warning[dead-folder-write]: folder 'BEACON' is written but never read: no fleet agent, wellknown consumer, or declared deliverable consumes it",
            "ping.taco:1:1: error[meet-cycle-no-exit]: meet cycle {ping -> pong} has no exit: every member meets back into the cycle unconditionally and none can halt",
        ],
    );
}

#[test]
fn unbounded_growth_warns_with_the_loop_site() {
    let config = AuditConfig::new().inject("QUEUE").deliver("QUEUE").agent(
        "hoarder",
        "hoarder.taco",
        "while {[bc_size QUEUE] > 0} {\n    bc_push QUEUE [bc_pop QUEUE]\n}\nreturn done",
    );
    expect(
        &config,
        &[
            "hoarder.taco:2:5: warning[unbounded-growth]: 'bc_push' into folder 'QUEUE' repeats inside a loop whose exit the analysis cannot see; it may grow without bound",
        ],
    );
}

#[test]
fn the_paper_migration_idiom_audits_clean() {
    // The rexec hop: CODE/HOST/CONTACT are consumed by the wellknown rexec
    // agent, which is pulled in implicitly by the literal meet target.
    let config = AuditConfig::new()
        .site_count(8)
        .inject("HOPS")
        .inject("ORIGCODE")
        .deliver("LANDED")
        .agent(
            "hopper",
            "hopper.taco",
            "set hops [bc_pop HOPS]\nif {$hops > 0} {\n  bc_put HOPS [expr $hops - 1]\n  bc_push CODE [bc_peek ORIGCODE]\n  bc_put HOST 1\n  bc_put CONTACT ag_tac\n  meet rexec\n} else {\n  bc_put LANDED [my_site]\n}",
        );
    expect(&config, &[]);
}

#[test]
fn a_producer_consumer_pair_audits_clean() {
    let config = AuditConfig::new()
        .agent(
            "producer",
            "producer.taco",
            "bc_put ORDERS bread\nbc_push SHIPPED [now]\nreturn ok",
        )
        .agent(
            "consumer",
            "consumer.taco",
            "set o [bc_pop ORDERS]\nforeach s [bc_list SHIPPED] { log $s }\nbc_put RECEIPT $o\nhalt done",
        )
        .deliver("RECEIPT");
    expect(&config, &[]);
}
