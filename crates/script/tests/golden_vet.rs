//! Golden-diagnostics tests: seeded-defect scripts must produce exactly the
//! expected report, and known-good scripts must produce none.
//!
//! Each case pins the full rendered output — spans, severities, codes and
//! message text — so any drift in the analyzer shows up as a diff here.

use tacoma_script::{analyze_with, render_report, AnalysisConfig};

fn config() -> AnalysisConfig {
    AnalysisConfig::new().known_agents(["ag_tac", "rexec", "courier", "diffusion", "broker"])
}

fn report(src: &str) -> String {
    render_report(&analyze_with(src, &config()), "t.taco")
}

#[track_caller]
fn expect(src: &str, want: &[&str]) {
    let got = report(src);
    let want = want
        .iter()
        .map(|l| format!("{l}\n"))
        .collect::<Vec<_>>()
        .join("");
    assert_eq!(got, want, "for script:\n{src}");
}

#[test]
fn unknown_commands() {
    expect(
        "set x 1\nfrobnicate $x\nmeeet rexec",
        &[
            "t.taco:2:1: error[unknown-command]: unknown command 'frobnicate'",
            "t.taco:3:1: error[unknown-command]: unknown command 'meeet'; did you mean 'meet'?",
        ],
    );
}

#[test]
fn wrong_arity() {
    expect(
        "set\nincr x 1 2\nlrange {a b} 0\nproc two {a b} { return $a }\ntwo 1 2 3",
        &[
            "t.taco:1:1: error[wrong-arity]: wrong number of arguments to 'set': expected 1 to 2, got 0",
            "t.taco:2:1: error[wrong-arity]: wrong number of arguments to 'incr': expected 1 to 2, got 3",
            "t.taco:3:1: error[wrong-arity]: wrong number of arguments to 'lrange': expected 3, got 2",
            "t.taco:5:1: error[wrong-arity]: proc 'two' expects 2 argument(s), got 3",
        ],
    );
}

#[test]
fn use_before_set_and_branch_joins() {
    expect(
        "if {[my_site] == 0} {\n    set mode primary\n}\nputs $mode\nset y $never",
        &[
            "t.taco:4:6: warning[possibly-unset]: variable 'mode' may be unset here: it is assigned on only some paths",
            "t.taco:5:1: warning[unused-variable]: variable 'y' is assigned but never read",
            "t.taco:5:7: error[use-before-set]: variable 'never' is used before it is set",
        ],
    );
    // Both branches assigning makes the variable definite: no diagnostics.
    expect(
        "if {[my_site] == 0} { set m a } else { set m b }\nputs $m",
        &[],
    );
}

#[test]
fn unreachable_and_after_migration() {
    expect(
        "return done\nset dead 1",
        &[
            "t.taco:2:1: warning[unreachable]: unreachable code after 'return'",
            "t.taco:2:1: warning[unused-variable]: variable 'dead' is assigned but never read",
        ],
    );
    expect(
        "move_to 2\nset x 1",
        &[
            "t.taco:2:1: warning[after-move-to]: code after 'move_to' still runs at the departing site before migration; conventionally only 'return' or 'halt' follow it",
            "t.taco:2:1: warning[unused-variable]: variable 'x' is assigned but never read",
        ],
    );
}

#[test]
fn unknown_meet_targets() {
    expect(
        "meet nobody_home\nmeet rexec",
        &[
            "t.taco:1:1: error[unknown-agent]: meet target 'nobody_home' is neither a wellknown agent nor installed locally",
        ],
    );
}

#[test]
fn loops_without_exits() {
    expect(
        "while {1} { set x 1 }",
        &[
            "t.taco:1:1: warning[no-loop-exit]: loop has no reachable exit: the condition is constant-true and the body cannot break out; it will exhaust the step budget",
            "t.taco:1:13: warning[unused-variable]: variable 'x' is assigned but never read",
        ],
    );
    // Touching the condition variable, breaking, or halting are all exits.
    expect("set i 0\nwhile {$i < 3} { incr i }", &[]);
    expect("while {1} { break }", &[]);
    expect("while {1} { halt done }", &[]);
}

#[test]
fn known_good_idioms_stay_clean() {
    // The paper's rexec migration idiom.
    expect(
        "set hops [bc_pop HOPS]\nif {$hops > 0} {\n  bc_put HOPS [expr $hops - 1]\n  bc_push CODE [bc_peek ORIGCODE]\n  bc_put HOST 1\n  bc_put CONTACT ag_tac\n  meet rexec\n} else {\n  bc_put LANDED [my_site]\n}",
        &[],
    );
    // catch suppresses analysis of its body; the result variable is bound.
    expect(
        "set failed [catch { undefined_thing $whatever } why]\nif {$failed} { log $why }",
        &[],
    );
    // procs may read outer variables under dynamic scoping.
    expect(
        "set base 10\nproc bump {d} { return [expr $base + $d] }\nbump 5",
        &[],
    );
}

#[test]
fn parse_errors_are_reported_with_position() {
    expect(
        "set x 1\nset y {unclosed",
        &["t.taco:2:16: error[parse]: unclosed brace"],
    );
}
