//! The TacoScript interpreter.
//!
//! [`Interp`] evaluates a parsed script against a [`ScriptHost`].  Evaluation
//! is metered: every command evaluation consumes one step from a configurable
//! budget, so a runaway agent is stopped with
//! [`ScriptError::BudgetExceeded`] rather than hanging its site — the paper's
//! §3 motivates exactly this kind of resource control ("charging for services
//! would limit possible damage by a run-away agent").

use crate::expr::eval_expr;
use crate::host::ScriptHost;
use crate::parser::{parse_script, Command, Word, WordKind, WordPart};
use crate::value::{as_int, format_list, is_truthy, parse_list};
use std::collections::HashMap;

/// Errors produced while evaluating a script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptError {
    /// The script failed to parse.
    Parse(String),
    /// A command failed at runtime (unknown command, bad arguments, host error).
    Runtime(String),
    /// The step budget was exhausted.
    BudgetExceeded,
    /// The script was rejected by static analysis before it ran (taco-vet).
    Rejected(String),
}

impl std::fmt::Display for ScriptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScriptError::Parse(m) => write!(f, "parse error: {m}"),
            ScriptError::Runtime(m) => write!(f, "runtime error: {m}"),
            ScriptError::BudgetExceeded => write!(f, "script step budget exceeded"),
            ScriptError::Rejected(m) => write!(f, "script rejected: {m}"),
        }
    }
}

impl std::error::Error for ScriptError {}

/// Interpreter limits.
#[derive(Debug, Clone, Copy)]
pub struct InterpConfig {
    /// Maximum number of command evaluations before the script is stopped.
    pub max_steps: u64,
    /// Maximum proc-call / control-structure nesting depth.
    pub max_depth: u32,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig {
            max_steps: 100_000,
            max_depth: 64,
        }
    }
}

/// The result of a successful evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptOutcome {
    /// The result of the last command executed (Tcl convention).
    pub result: String,
    /// How many command steps were consumed.
    pub steps: u64,
}

/// Control flow signal propagated by commands.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Flow {
    Normal(String),
    Return(String),
    /// `halt` — terminate the whole script immediately (propagates through
    /// loops, procs and `catch`, unlike `return`).
    Halt(String),
    Break,
    Continue,
}

impl Flow {
    fn value(self) -> String {
        match self {
            Flow::Normal(v) | Flow::Return(v) | Flow::Halt(v) => v,
            Flow::Break | Flow::Continue => String::new(),
        }
    }
}

#[derive(Debug, Clone)]
struct ProcDef {
    params: Vec<String>,
    body: String,
}

/// A TacoScript interpreter bound to a host.
pub struct Interp<'h> {
    host: &'h mut dyn ScriptHost,
    config: InterpConfig,
    scopes: Vec<HashMap<String, String>>,
    procs: HashMap<String, ProcDef>,
    steps: u64,
}

impl<'h> Interp<'h> {
    /// Creates an interpreter with default limits.
    pub fn new(host: &'h mut dyn ScriptHost) -> Self {
        Self::with_config(host, InterpConfig::default())
    }

    /// Creates an interpreter with explicit limits.
    pub fn with_config(host: &'h mut dyn ScriptHost, config: InterpConfig) -> Self {
        Interp {
            host,
            config,
            scopes: vec![HashMap::new()],
            procs: HashMap::new(),
            steps: 0,
        }
    }

    /// Number of command steps consumed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Sets a variable in the current (outermost, before run) scope — used to
    /// pre-bind arguments an agent receives.
    pub fn set_var(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.scopes
            .last_mut()
            .expect("at least one scope")
            .insert(name.into(), value.into());
    }

    /// Reads a variable, if defined in any visible scope.
    pub fn get_var(&self, name: &str) -> Option<&str> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(v.as_str());
            }
        }
        None
    }

    /// Parses and evaluates a script, returning the final command's result.
    pub fn run(&mut self, src: &str) -> Result<ScriptOutcome, ScriptError> {
        let flow = self.eval_script(src, 0)?;
        Ok(ScriptOutcome {
            result: flow.value(),
            steps: self.steps,
        })
    }

    fn eval_script(&mut self, src: &str, depth: u32) -> Result<Flow, ScriptError> {
        if depth > self.config.max_depth {
            return Err(ScriptError::Runtime("nesting too deep".into()));
        }
        let commands = parse_script(src).map_err(|e| ScriptError::Parse(e.to_string()))?;
        let mut last = Flow::Normal(String::new());
        for cmd in &commands {
            match self.eval_command(cmd, depth)? {
                Flow::Normal(v) => last = Flow::Normal(v),
                other => return Ok(other),
            }
        }
        Ok(last)
    }

    fn eval_command(&mut self, cmd: &Command, depth: u32) -> Result<Flow, ScriptError> {
        self.steps += 1;
        if self.steps > self.config.max_steps {
            return Err(ScriptError::BudgetExceeded);
        }
        let mut words = Vec::with_capacity(cmd.words.len());
        for w in &cmd.words {
            words.push(self.eval_word(w, depth)?);
        }
        if words.is_empty() {
            return Ok(Flow::Normal(String::new()));
        }
        let name = words[0].clone();
        let args = &words[1..];
        self.invoke(&name, args, cmd.line(), depth)
    }

    fn eval_word(&mut self, word: &Word, depth: u32) -> Result<String, ScriptError> {
        match &word.kind {
            WordKind::Braced(s) => Ok(s.clone()),
            WordKind::Parts(parts) => {
                let mut out = String::new();
                for part in parts {
                    match part {
                        WordPart::Literal(s) => out.push_str(s),
                        WordPart::Variable(name) => {
                            let v = self.get_var(name).ok_or_else(|| {
                                ScriptError::Runtime(format!("undefined variable '{name}'"))
                            })?;
                            out.push_str(v);
                        }
                        WordPart::Command(script) => {
                            let flow = self.eval_script(script, depth + 1)?;
                            out.push_str(&flow.value());
                        }
                    }
                }
                Ok(out)
            }
        }
    }

    fn arity_err(name: &str, usage: &str, line: u32) -> ScriptError {
        if usage.is_empty() {
            ScriptError::Runtime(format!("line {line}: usage: {name}"))
        } else {
            ScriptError::Runtime(format!("line {line}: usage: {name} {usage}"))
        }
    }

    #[allow(clippy::too_many_lines)]
    fn invoke(
        &mut self,
        name: &str,
        args: &[String],
        line: u32,
        depth: u32,
    ) -> Result<Flow, ScriptError> {
        // Arity is enforced once, from the shared table, so the interpreter
        // and taco-vet can never disagree about a builtin's signature.  The
        // per-command `match` arms below keep their structural patterns (and
        // a few residual arity errors for shapes the table cannot express,
        // like `split` with an empty separator).
        if let Some(spec) = crate::builtins::builtin(name) {
            if spec.arity_violated(args.len()) {
                return Err(Self::arity_err(name, spec.usage, line));
            }
        }
        match name {
            // --- variables & values ------------------------------------------
            "set" => match args {
                [var] => {
                    let v = self.get_var(var).ok_or_else(|| {
                        ScriptError::Runtime(format!("undefined variable '{var}'"))
                    })?;
                    Ok(Flow::Normal(v.to_string()))
                }
                [var, value] => {
                    self.set_in_scope(var, value.clone());
                    Ok(Flow::Normal(value.clone()))
                }
                _ => Err(Self::arity_err("set", "name ?value?", line)),
            },
            "unset" => {
                for var in args {
                    for scope in self.scopes.iter_mut().rev() {
                        if scope.remove(var).is_some() {
                            break;
                        }
                    }
                }
                Ok(Flow::Normal(String::new()))
            }
            "incr" => {
                let (var, by) = match args {
                    [var] => (var, 1),
                    [var, amount] => (
                        var,
                        as_int(amount).ok_or_else(|| {
                            ScriptError::Runtime(format!(
                                "incr amount '{amount}' is not an integer"
                            ))
                        })?,
                    ),
                    _ => return Err(Self::arity_err("incr", "name ?amount?", line)),
                };
                let current = self.get_var(var).and_then(as_int).unwrap_or(0);
                let next = (current + by).to_string();
                self.set_in_scope(var, next.clone());
                Ok(Flow::Normal(next))
            }
            "append" => match args {
                [var, rest @ ..] => {
                    let mut value = self.get_var(var).unwrap_or("").to_string();
                    for part in rest {
                        value.push_str(part);
                    }
                    self.set_in_scope(var, value.clone());
                    Ok(Flow::Normal(value))
                }
                _ => Err(Self::arity_err("append", "name ?value ...?", line)),
            },
            "expr" => {
                let joined = args.join(" ");
                eval_expr(&joined)
                    .map(Flow::Normal)
                    .map_err(|e| ScriptError::Runtime(format!("line {line}: {e}")))
            }
            // --- control flow -------------------------------------------------
            "if" => self.cmd_if(args, line, depth),
            "while" => self.cmd_while(args, line, depth),
            "foreach" => self.cmd_foreach(args, line, depth),
            "proc" => match args {
                [name, params, body] => {
                    self.procs.insert(
                        name.clone(),
                        ProcDef {
                            params: parse_list(params),
                            body: body.clone(),
                        },
                    );
                    Ok(Flow::Normal(String::new()))
                }
                _ => Err(Self::arity_err("proc", "name {params} {body}", line)),
            },
            "return" => Ok(Flow::Return(args.first().cloned().unwrap_or_default())),
            "halt" => Ok(Flow::Halt(args.first().cloned().unwrap_or_default())),
            "break" => Ok(Flow::Break),
            "continue" => Ok(Flow::Continue),
            "eval" => {
                let joined = args.join(" ");
                self.eval_script(&joined, depth + 1)
            }
            "error" => Err(ScriptError::Runtime(args.join(" "))),
            "catch" => match args {
                [body] => match self.eval_script(body, depth + 1) {
                    Ok(halt @ Flow::Halt(_)) => Ok(halt),
                    Ok(_) => Ok(Flow::Normal("0".into())),
                    Err(ScriptError::BudgetExceeded) => Err(ScriptError::BudgetExceeded),
                    Err(_) => Ok(Flow::Normal("1".into())),
                },
                [body, var] => match self.eval_script(body, depth + 1) {
                    Ok(halt @ Flow::Halt(_)) => Ok(halt),
                    Ok(flow) => {
                        self.set_in_scope(var, flow.value());
                        Ok(Flow::Normal("0".into()))
                    }
                    Err(ScriptError::BudgetExceeded) => Err(ScriptError::BudgetExceeded),
                    Err(e) => {
                        self.set_in_scope(var, e.to_string());
                        Ok(Flow::Normal("1".into()))
                    }
                },
                _ => Err(Self::arity_err("catch", "{body} ?resultVar?", line)),
            },
            // --- lists & strings ----------------------------------------------
            "list" => Ok(Flow::Normal(format_list(args.iter()))),
            "llength" => match args {
                [l] => Ok(Flow::Normal(parse_list(l).len().to_string())),
                _ => Err(Self::arity_err("llength", "list", line)),
            },
            "lindex" => match args {
                [l, idx] => {
                    let elems = parse_list(l);
                    let i = as_int(idx)
                        .ok_or_else(|| ScriptError::Runtime(format!("bad index '{idx}'")))?;
                    Ok(Flow::Normal(
                        elems.get(i.max(0) as usize).cloned().unwrap_or_default(),
                    ))
                }
                _ => Err(Self::arity_err("lindex", "list index", line)),
            },
            "lappend" => match args {
                [var, rest @ ..] => {
                    let mut elems = parse_list(self.get_var(var).unwrap_or(""));
                    elems.extend(rest.iter().cloned());
                    let formatted = format_list(&elems);
                    self.set_in_scope(var, formatted.clone());
                    Ok(Flow::Normal(formatted))
                }
                _ => Err(Self::arity_err("lappend", "name ?value ...?", line)),
            },
            "lrange" => match args {
                [l, from, to] => {
                    let elems = parse_list(l);
                    let from = as_int(from).unwrap_or(0).max(0) as usize;
                    let to = if to == "end" {
                        elems.len().saturating_sub(1)
                    } else {
                        as_int(to).unwrap_or(-1).max(-1) as usize
                    };
                    if from >= elems.len() || to < from {
                        return Ok(Flow::Normal(String::new()));
                    }
                    let to = to.min(elems.len() - 1);
                    Ok(Flow::Normal(format_list(&elems[from..=to])))
                }
                _ => Err(Self::arity_err("lrange", "list first last", line)),
            },
            "concat" => Ok(Flow::Normal(
                args.iter()
                    .map(|a| a.trim())
                    .filter(|a| !a.is_empty())
                    .collect::<Vec<_>>()
                    .join(" "),
            )),
            "split" => match args {
                [s] => Ok(Flow::Normal(format_list(s.split_whitespace()))),
                [s, sep] if !sep.is_empty() => Ok(Flow::Normal(format_list(
                    s.split(sep.as_str()).collect::<Vec<_>>(),
                ))),
                _ => Err(Self::arity_err("split", "string ?separator?", line)),
            },
            "join" => match args {
                [l] => Ok(Flow::Normal(parse_list(l).join(" "))),
                [l, sep] => Ok(Flow::Normal(parse_list(l).join(sep))),
                _ => Err(Self::arity_err("join", "list ?separator?", line)),
            },
            "string" => self.cmd_string(args, line),
            // --- output -------------------------------------------------------
            "puts" | "log" => {
                let msg = args.join(" ");
                self.host.log(&msg);
                Ok(Flow::Normal(String::new()))
            }
            // --- TACOMA briefcase ---------------------------------------------
            "bc_put" => match args {
                [folder, value] => {
                    self.host.bc_put(folder, value);
                    Ok(Flow::Normal(String::new()))
                }
                _ => Err(Self::arity_err("bc_put", "folder value", line)),
            },
            "bc_push" => match args {
                [folder, value] => {
                    self.host.bc_push(folder, value);
                    Ok(Flow::Normal(String::new()))
                }
                _ => Err(Self::arity_err("bc_push", "folder value", line)),
            },
            "bc_pop" => match args {
                [folder] => Ok(Flow::Normal(self.host.bc_pop(folder).unwrap_or_default())),
                _ => Err(Self::arity_err("bc_pop", "folder", line)),
            },
            "bc_dequeue" => match args {
                [folder] => Ok(Flow::Normal(
                    self.host.bc_dequeue(folder).unwrap_or_default(),
                )),
                _ => Err(Self::arity_err("bc_dequeue", "folder", line)),
            },
            "bc_peek" => match args {
                [folder] => Ok(Flow::Normal(self.host.bc_peek(folder).unwrap_or_default())),
                _ => Err(Self::arity_err("bc_peek", "folder", line)),
            },
            "bc_list" => match args {
                [folder] => Ok(Flow::Normal(format_list(self.host.bc_list(folder)))),
                _ => Err(Self::arity_err("bc_list", "folder", line)),
            },
            "bc_size" => match args {
                [folder] => Ok(Flow::Normal(self.host.bc_list(folder).len().to_string())),
                _ => Err(Self::arity_err("bc_size", "folder", line)),
            },
            "bc_del" => match args {
                [folder] => {
                    self.host.bc_delete(folder);
                    Ok(Flow::Normal(String::new()))
                }
                _ => Err(Self::arity_err("bc_del", "folder", line)),
            },
            // --- TACOMA cabinets ----------------------------------------------
            "cab_append" => match args {
                [cabinet, folder, value] => {
                    self.host.cab_append(cabinet, folder, value);
                    Ok(Flow::Normal(String::new()))
                }
                _ => Err(Self::arity_err("cab_append", "cabinet folder value", line)),
            },
            "cab_contains" => match args {
                [cabinet, folder, value] => Ok(Flow::Normal(
                    if self.host.cab_contains(cabinet, folder, value) {
                        "1"
                    } else {
                        "0"
                    }
                    .into(),
                )),
                _ => Err(Self::arity_err(
                    "cab_contains",
                    "cabinet folder value",
                    line,
                )),
            },
            "cab_list" => match args {
                [cabinet, folder] => Ok(Flow::Normal(format_list(
                    self.host.cab_list(cabinet, folder),
                ))),
                _ => Err(Self::arity_err("cab_list", "cabinet folder", line)),
            },
            "cab_pop" => match args {
                [cabinet, folder] => Ok(Flow::Normal(
                    self.host.cab_pop(cabinet, folder).unwrap_or_default(),
                )),
                _ => Err(Self::arity_err("cab_pop", "cabinet folder", line)),
            },
            // --- TACOMA agents & migration -------------------------------------
            "meet" => match args {
                [agent] => self
                    .host
                    .meet(agent)
                    .map(|_| Flow::Normal(String::new()))
                    .map_err(|e| ScriptError::Runtime(format!("line {line}: meet failed: {e}"))),
                _ => Err(Self::arity_err("meet", "agent", line)),
            },
            "move_to" => match args {
                [site] | [site, _] => {
                    let contact = args.get(1).map(|s| s.as_str()).unwrap_or("ag_tac");
                    let site_num = as_int(site)
                        .filter(|v| *v >= 0)
                        .ok_or_else(|| ScriptError::Runtime(format!("bad site '{site}'")))?;
                    self.host
                        .move_to(site_num as u64, contact)
                        .map(|_| Flow::Normal(String::new()))
                        .map_err(|e| {
                            ScriptError::Runtime(format!("line {line}: move_to failed: {e}"))
                        })
                }
                _ => Err(Self::arity_err("move_to", "site ?contact?", line)),
            },
            "send_remote" => match args {
                [site, contact, folders @ ..] => {
                    let site_num = as_int(site)
                        .filter(|v| *v >= 0)
                        .ok_or_else(|| ScriptError::Runtime(format!("bad site '{site}'")))?;
                    self.host
                        .send_remote(site_num as u64, contact, folders)
                        .map(|_| Flow::Normal(String::new()))
                        .map_err(|e| {
                            ScriptError::Runtime(format!("line {line}: send_remote failed: {e}"))
                        })
                }
                _ => Err(Self::arity_err(
                    "send_remote",
                    "site contact ?folder ...?",
                    line,
                )),
            },
            // --- TACOMA environment --------------------------------------------
            "my_site" => Ok(Flow::Normal(self.host.site().to_string())),
            "site_count" => Ok(Flow::Normal(self.host.site_count().to_string())),
            "neighbors" => Ok(Flow::Normal(format_list(
                self.host.neighbors().iter().map(|n| n.to_string()),
            ))),
            "random" => match args {
                [bound] => {
                    let b = as_int(bound)
                        .filter(|v| *v >= 0)
                        .ok_or_else(|| ScriptError::Runtime(format!("bad bound '{bound}'")))?;
                    Ok(Flow::Normal(self.host.random(b as u64).to_string()))
                }
                _ => Err(Self::arity_err("random", "bound", line)),
            },
            "now" => Ok(Flow::Normal(self.host.now_micros().to_string())),
            // --- user procs -----------------------------------------------------
            _ => self.call_proc(name, args, line, depth),
        }
    }

    fn set_in_scope(&mut self, name: &str, value: String) {
        // Writes always target the innermost scope (a proc's local frame), as
        // in Tcl: reading an outer variable is allowed, but assignment creates
        // or updates a local.
        self.scopes
            .last_mut()
            .expect("at least one scope")
            .insert(name.to_string(), value);
    }

    fn cmd_if(&mut self, args: &[String], line: u32, depth: u32) -> Result<Flow, ScriptError> {
        // if {cond} {body} ?elseif {cond} {body}?* ?else {body}?
        let mut i = 0;
        while i < args.len() {
            if i == 0 || args[i] == "elseif" {
                let offset = if i == 0 { 0 } else { 1 };
                let cond = args
                    .get(i + offset)
                    .ok_or_else(|| Self::arity_err("if", "{cond} {body} ...", line))?;
                let body = args
                    .get(i + offset + 1)
                    .ok_or_else(|| Self::arity_err("if", "{cond} {body} ...", line))?;
                let cond_result = self.eval_condition(cond, line, depth)?;
                if cond_result {
                    return self.eval_script(body, depth + 1);
                }
                i += offset + 2;
            } else if args[i] == "else" {
                let body = args
                    .get(i + 1)
                    .ok_or_else(|| Self::arity_err("if", "... else {body}", line))?;
                return self.eval_script(body, depth + 1);
            } else {
                return Err(ScriptError::Runtime(format!(
                    "line {line}: expected 'elseif' or 'else', got '{}'",
                    args[i]
                )));
            }
        }
        Ok(Flow::Normal(String::new()))
    }

    fn eval_condition(&mut self, cond: &str, line: u32, depth: u32) -> Result<bool, ScriptError> {
        // The condition text may contain $vars and [cmds]; run it through word
        // evaluation first, then expr.
        let substituted = self.substitute(cond, depth)?;
        match eval_expr(&substituted) {
            Ok(v) => Ok(is_truthy(&v)),
            Err(e) => Err(ScriptError::Runtime(format!("line {line}: {e}"))),
        }
    }

    /// Substitutes `$var` and `[cmd]` occurrences in a condition string
    /// (conditions arrive brace-quoted and therefore unsubstituted).
    ///
    /// Substituted values are spliced back in *double-quoted* so that empty
    /// strings and values containing spaces survive the trip into `expr`
    /// (Tcl's expr performs its own substitution and has the same property).
    /// Values already inside a quoted region are spliced verbatim.
    fn substitute(&mut self, src: &str, depth: u32) -> Result<String, ScriptError> {
        let chars: Vec<char> = src.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        let mut in_quotes = false;
        while i < chars.len() {
            match chars[i] {
                '"' => {
                    in_quotes = !in_quotes;
                    out.push('"');
                    i += 1;
                }
                '$' => {
                    i += 1;
                    let mut name = String::new();
                    if i < chars.len() && chars[i] == '{' {
                        i += 1;
                        while i < chars.len() && chars[i] != '}' {
                            name.push(chars[i]);
                            i += 1;
                        }
                        i += 1; // closing brace
                    } else {
                        while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                            name.push(chars[i]);
                            i += 1;
                        }
                    }
                    if name.is_empty() {
                        out.push('$');
                        continue;
                    }
                    let value = self
                        .get_var(&name)
                        .ok_or_else(|| {
                            ScriptError::Runtime(format!("undefined variable '{name}'"))
                        })?
                        .to_string();
                    if in_quotes {
                        out.push_str(&value);
                    } else {
                        out.push('"');
                        out.push_str(&value.replace('"', "\\\""));
                        out.push('"');
                    }
                }
                '[' => {
                    // Find the matching bracket.
                    let mut depth_brackets = 1;
                    let mut inner = String::new();
                    i += 1;
                    while i < chars.len() && depth_brackets > 0 {
                        match chars[i] {
                            '[' => {
                                depth_brackets += 1;
                                inner.push('[');
                            }
                            ']' => {
                                depth_brackets -= 1;
                                if depth_brackets > 0 {
                                    inner.push(']');
                                }
                            }
                            c => inner.push(c),
                        }
                        i += 1;
                    }
                    let value = self.eval_script(&inner, depth + 1)?.value();
                    if in_quotes {
                        out.push_str(&value);
                    } else {
                        out.push('"');
                        out.push_str(&value.replace('"', "\\\""));
                        out.push('"');
                    }
                }
                c => {
                    out.push(c);
                    i += 1;
                }
            }
        }
        Ok(out)
    }

    fn cmd_while(&mut self, args: &[String], line: u32, depth: u32) -> Result<Flow, ScriptError> {
        let [cond, body] = args else {
            return Err(Self::arity_err("while", "{cond} {body}", line));
        };
        loop {
            if !self.eval_condition(cond, line, depth)? {
                break;
            }
            match self.eval_script(body, depth + 1)? {
                Flow::Break => break,
                Flow::Continue | Flow::Normal(_) => {}
                ret @ (Flow::Return(_) | Flow::Halt(_)) => return Ok(ret),
            }
            self.steps += 1;
            if self.steps > self.config.max_steps {
                return Err(ScriptError::BudgetExceeded);
            }
        }
        Ok(Flow::Normal(String::new()))
    }

    fn cmd_foreach(&mut self, args: &[String], line: u32, depth: u32) -> Result<Flow, ScriptError> {
        let [var, list, body] = args else {
            return Err(Self::arity_err("foreach", "var {list} {body}", line));
        };
        for elem in parse_list(list) {
            self.set_in_scope(var, elem);
            match self.eval_script(body, depth + 1)? {
                Flow::Break => break,
                Flow::Continue | Flow::Normal(_) => {}
                ret @ (Flow::Return(_) | Flow::Halt(_)) => return Ok(ret),
            }
        }
        Ok(Flow::Normal(String::new()))
    }

    fn cmd_string(&mut self, args: &[String], line: u32) -> Result<Flow, ScriptError> {
        match args {
            [op, s] if op == "length" => Ok(Flow::Normal(s.chars().count().to_string())),
            [op, s] if op == "toupper" => Ok(Flow::Normal(s.to_uppercase())),
            [op, s] if op == "tolower" => Ok(Flow::Normal(s.to_lowercase())),
            [op, s] if op == "trim" => Ok(Flow::Normal(s.trim().to_string())),
            [op, a, b] if op == "equal" => Ok(Flow::Normal(if a == b { "1" } else { "0" }.into())),
            [op, needle, hay] if op == "first" => Ok(Flow::Normal(
                hay.find(needle.as_str())
                    .map(|i| i.to_string())
                    .unwrap_or_else(|| "-1".into()),
            )),
            [op, s, from, to] if op == "range" => {
                let chars: Vec<char> = s.chars().collect();
                let from = as_int(from).unwrap_or(0).max(0) as usize;
                let to = if to == "end" {
                    chars.len().saturating_sub(1)
                } else {
                    as_int(to).unwrap_or(0).max(0) as usize
                };
                if from >= chars.len() || to < from {
                    return Ok(Flow::Normal(String::new()));
                }
                let to = to.min(chars.len() - 1);
                Ok(Flow::Normal(chars[from..=to].iter().collect()))
            }
            _ => Err(Self::arity_err(
                "string",
                "length|toupper|tolower|trim|equal|first|range ...",
                line,
            )),
        }
    }

    fn call_proc(
        &mut self,
        name: &str,
        args: &[String],
        line: u32,
        depth: u32,
    ) -> Result<Flow, ScriptError> {
        let Some(def) = self.procs.get(name).cloned() else {
            return Err(ScriptError::Runtime(format!(
                "line {line}: unknown command '{name}'"
            )));
        };
        if args.len() != def.params.len() {
            return Err(ScriptError::Runtime(format!(
                "line {line}: proc '{name}' expects {} argument(s), got {}",
                def.params.len(),
                args.len()
            )));
        }
        let mut scope = HashMap::new();
        for (param, arg) in def.params.iter().zip(args) {
            scope.insert(param.clone(), arg.clone());
        }
        self.scopes.push(scope);
        let result = self.eval_script(&def.body, depth + 1);
        self.scopes.pop();
        match result? {
            Flow::Return(v) | Flow::Normal(v) => Ok(Flow::Normal(v)),
            halt @ Flow::Halt(_) => Ok(halt),
            Flow::Break | Flow::Continue => Err(ScriptError::Runtime(format!(
                "line {line}: break/continue outside a loop in proc '{name}'"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{HostCall, NullHost, RecordingHost};

    fn run(src: &str) -> String {
        let mut host = RecordingHost::new();
        let mut interp = Interp::new(&mut host);
        interp.run(src).unwrap().result
    }

    fn run_with(host: &mut RecordingHost, src: &str) -> Result<ScriptOutcome, ScriptError> {
        let mut interp = Interp::new(host);
        interp.run(src)
    }

    #[test]
    fn set_and_substitute() {
        assert_eq!(run("set x 5\nset y $x"), "5");
        assert_eq!(run("set x 5; expr $x + 1"), "6");
        assert_eq!(run("set x hello; set y \"$x world\""), "hello world");
    }

    #[test]
    fn undefined_variable_is_an_error() {
        let mut host = NullHost;
        let mut interp = Interp::new(&mut host);
        assert!(matches!(
            interp.run("set y $missing"),
            Err(ScriptError::Runtime(_))
        ));
    }

    #[test]
    fn command_substitution() {
        assert_eq!(run("set x [expr 2 * 3]"), "6");
        assert_eq!(run("expr [expr 1 + 1] + [expr 2 + 2]"), "6");
    }

    #[test]
    fn incr_append_unset() {
        assert_eq!(run("set x 1; incr x; incr x 10"), "12");
        assert_eq!(run("incr fresh"), "1");
        assert_eq!(run("set s ab; append s cd ef"), "abcdef");
        let mut host = NullHost;
        let mut interp = Interp::new(&mut host);
        assert!(matches!(
            interp.run("set x 1; unset x; set y $x"),
            Err(ScriptError::Runtime(_))
        ));
    }

    #[test]
    fn if_elseif_else() {
        assert_eq!(
            run("set x 5; if {$x > 3} { set r big } else { set r small }"),
            "big"
        );
        assert_eq!(
            run("set x 2; if {$x > 3} { set r big } else { set r small }"),
            "small"
        );
        assert_eq!(
            run("set x 3; if {$x > 5} {set r a} elseif {$x > 2} {set r b} else {set r c}"),
            "b"
        );
        assert_eq!(run("if {0} { set r never }"), "");
    }

    #[test]
    fn while_loop_with_break_and_continue() {
        let src = r#"
            set sum 0
            set i 0
            while {$i < 10} {
                incr i
                if {$i == 3} { continue }
                if {$i > 6} { break }
                set sum [expr $sum + $i]
            }
            set sum
        "#;
        // 1+2+4+5+6 = 18
        assert_eq!(run(src), "18");
    }

    #[test]
    fn foreach_iterates_lists() {
        let src = r#"
            set total 0
            foreach n {1 2 3 4} { set total [expr $total + $n] }
            set total
        "#;
        assert_eq!(run(src), "10");
        assert_eq!(
            run("set out {}; foreach w {a {b c} d} { append out < $w > }; set out"),
            "<a><b c><d>"
        );
    }

    #[test]
    fn procs_and_return() {
        let src = r#"
            proc double {x} { return [expr $x * 2] }
            proc add {a b} { expr $a + $b }
            add [double 3] [double 4]
        "#;
        assert_eq!(run(src), "14");
    }

    #[test]
    fn proc_scoping_is_local() {
        let src = r#"
            set x global
            proc f {} { set x local; return $x }
            f
            set x
        "#;
        assert_eq!(run(src), "global");
    }

    #[test]
    fn proc_arity_is_checked() {
        let mut host = NullHost;
        let mut interp = Interp::new(&mut host);
        let err = interp.run("proc f {a b} {expr $a + $b}; f 1").unwrap_err();
        assert!(matches!(err, ScriptError::Runtime(_)));
        assert!(err.to_string().contains("expects 2"));
    }

    #[test]
    fn unknown_command_is_an_error() {
        let mut host = NullHost;
        let mut interp = Interp::new(&mut host);
        let err = interp.run("frobnicate 1 2").unwrap_err();
        assert!(err.to_string().contains("unknown command"));
    }

    #[test]
    fn list_operations() {
        assert_eq!(run("llength {a b {c d}}"), "3");
        assert_eq!(run("lindex {a b c} 1"), "b");
        assert_eq!(run("lindex {a b c} 9"), "");
        assert_eq!(
            run("set l {}; lappend l x; lappend l {y z}; set l"),
            "x {y z}"
        );
        assert_eq!(run("lrange {a b c d e} 1 3"), "b c d");
        assert_eq!(run("lrange {a b c} 1 end"), "b c");
        assert_eq!(run("join {a b c} -"), "a-b-c");
        assert_eq!(run("split a,b,c ,"), "a b c");
        assert_eq!(run("list a {b c}"), "a {b c}");
        assert_eq!(run("concat {a b}  {c}"), "a b c");
    }

    #[test]
    fn string_operations() {
        assert_eq!(run("string length hello"), "5");
        assert_eq!(run("string toupper abc"), "ABC");
        assert_eq!(run("string tolower ABC"), "abc");
        assert_eq!(run("string equal a a"), "1");
        assert_eq!(run("string equal a b"), "0");
        assert_eq!(run("string range hello 1 3"), "ell");
        assert_eq!(run("string range hello 1 end"), "ello");
        assert_eq!(run("string first ll hello"), "2");
        assert_eq!(run("string first zz hello"), "-1");
        assert_eq!(run("string trim {  x  }"), "x");
    }

    #[test]
    fn catch_and_error() {
        assert_eq!(run("catch {error boom}"), "1");
        assert_eq!(run("catch {expr 1 + 1}"), "0");
        assert_eq!(
            run("catch {error boom} msg; set msg"),
            "runtime error: boom"
        );
        assert_eq!(run("catch {expr 2 + 2} v; set v"), "4");
    }

    #[test]
    fn halt_terminates_the_whole_script() {
        // Unlike `return`, `halt` punches through loops, procs and `catch`.
        assert_eq!(run("halt done\nset never reached"), "done");
        assert_eq!(
            run("set i 0\nwhile {1} { incr i; if {$i > 2} { halt $i } }\nset never x"),
            "3"
        );
        assert_eq!(run("proc f {} { halt inner }\nf\nset never x"), "inner");
        assert_eq!(run("catch { halt stop }\nset never x"), "stop");
        assert_eq!(run("halt"), "");
    }

    #[test]
    fn briefcase_commands_reach_the_host() {
        let mut host = RecordingHost::new();
        let src = r#"
            bc_push SITES 1
            bc_push SITES 2
            bc_put HOST 3
            set top [bc_peek SITES]
            set all [bc_list SITES]
            set n [bc_size SITES]
            set first [bc_dequeue SITES]
            list $top $all $n $first
        "#;
        let out = run_with(&mut host, src).unwrap().result;
        assert_eq!(out, "2 {1 2} 2 1");
        assert_eq!(host.briefcase.get("HOST").unwrap(), &vec!["3".to_string()]);
    }

    #[test]
    fn cabinet_commands_reach_the_host() {
        let mut host = RecordingHost::new();
        let src = r#"
            if {![cab_contains local VISITED [my_site]]} {
                cab_append local VISITED [my_site]
                set fresh 1
            } else {
                set fresh 0
            }
            set fresh
        "#;
        assert_eq!(run_with(&mut host, src).unwrap().result, "1");
        // Second run at the same site: already visited.
        assert_eq!(run_with(&mut host, src).unwrap().result, "0");
    }

    #[test]
    fn meet_and_move_to_and_logging() {
        let mut host = RecordingHost::new();
        let src = r#"
            puts "starting at [my_site] of [site_count]"
            meet courier
            move_to 2 ag_tac
            send_remote 1 courier RESULTS
        "#;
        run_with(&mut host, src).unwrap();
        assert_eq!(host.calls.len(), 4);
        assert!(matches!(host.calls[1], HostCall::Meet(ref a) if a == "courier"));
        assert!(matches!(host.calls[2], HostCall::MoveTo(2, ref c) if c == "ag_tac"));
        assert!(
            matches!(host.calls[3], HostCall::SendRemote(1, ref c, ref f) if c == "courier" && f == &vec!["RESULTS".to_string()])
        );
        assert_eq!(host.logs(), vec!["starting at 0 of 4"]);
    }

    #[test]
    fn meet_failure_is_a_runtime_error_catchable() {
        let mut host = RecordingHost::new();
        assert!(run_with(&mut host, "meet ghost").is_err());
        assert_eq!(
            run_with(&mut host, "catch {meet ghost}").unwrap().result,
            "1"
        );
    }

    #[test]
    fn environment_commands() {
        let mut host = RecordingHost::new();
        host.site = 3;
        let out = run_with(&mut host, "list [my_site] [site_count] [neighbors] [now]")
            .unwrap()
            .result;
        assert_eq!(out, "3 4 {1 2} 123000");
        let r = run_with(&mut host, "random 5").unwrap().result;
        let n: u64 = r.parse().unwrap();
        assert!(n < 5);
        assert_eq!(run_with(&mut host, "random 0").unwrap().result, "0");
    }

    #[test]
    fn budget_stops_infinite_loops() {
        let mut host = NullHost;
        let mut interp = Interp::with_config(
            &mut host,
            InterpConfig {
                max_steps: 500,
                max_depth: 32,
            },
        );
        let err = interp.run("while {1} { set x 1 }").unwrap_err();
        assert_eq!(err, ScriptError::BudgetExceeded);
        assert!(interp.steps() >= 500);
    }

    #[test]
    fn budget_not_laundered_through_catch() {
        let mut host = NullHost;
        let mut interp = Interp::with_config(
            &mut host,
            InterpConfig {
                max_steps: 200,
                max_depth: 32,
            },
        );
        let err = interp.run("catch {while {1} { set x 1 }}").unwrap_err();
        assert_eq!(err, ScriptError::BudgetExceeded);
    }

    #[test]
    fn deep_recursion_is_stopped() {
        let mut host = NullHost;
        let mut interp = Interp::new(&mut host);
        let err = interp
            .run("proc f {n} { f [expr $n + 1] }\nf 0")
            .unwrap_err();
        assert!(matches!(
            err,
            ScriptError::Runtime(_) | ScriptError::BudgetExceeded
        ));
    }

    #[test]
    fn pre_bound_variables_are_visible() {
        let mut host = RecordingHost::new();
        let mut interp = Interp::new(&mut host);
        interp.set_var("who", "tacoma");
        assert_eq!(
            interp.run("set greeting \"hi $who\"").unwrap().result,
            "hi tacoma"
        );
        assert_eq!(interp.get_var("who"), Some("tacoma"));
        assert_eq!(interp.get_var("nope"), None);
    }

    #[test]
    fn parse_errors_are_reported() {
        let mut host = NullHost;
        let mut interp = Interp::new(&mut host);
        assert!(matches!(
            interp.run("set x {oops"),
            Err(ScriptError::Parse(_))
        ));
    }

    #[test]
    fn diffusion_style_script_runs() {
        // A miniature of the paper's diffusion agent: deliver a message, mark
        // the site visited, clone to unvisited neighbours.
        let src = r#"
            set here [my_site]
            if {[cab_contains local VISITED $here]} {
                return done
            }
            cab_append local VISITED $here
            cab_append local MESSAGES [bc_peek MESSAGE]
            foreach n [neighbors] {
                if {![cab_contains local VISITED $n]} {
                    send_remote $n diffusion MESSAGE
                }
            }
            return spread
        "#;
        let mut host = RecordingHost::new();
        host.known_agents.push("diffusion".into());
        host.bc_push("MESSAGE", "storm warning");
        let out = run_with(&mut host, src).unwrap();
        assert_eq!(out.result, "spread");
        assert!(host.cab_contains("local", "VISITED", "0"));
        assert_eq!(host.cab_list("local", "MESSAGES"), vec!["storm warning"]);
        let sends = host
            .calls
            .iter()
            .filter(|c| matches!(c, HostCall::SendRemote(..)))
            .count();
        assert_eq!(sends, 2, "one clone per unvisited neighbour");
        // Running the same agent again at the same site terminates immediately.
        let out2 = run_with(&mut host, src).unwrap();
        assert_eq!(out2.result, "done");
    }
}
