//! The TacoScript parser: scripts → commands → words → word parts.
//!
//! Parsing follows Tcl's model: a script is a sequence of commands separated
//! by newlines or semicolons; a command is a sequence of words; a word is a
//! concatenation of parts, each of which is literal text, a `$variable`
//! substitution, or a `[command]` substitution.  Brace-quoted words `{...}`
//! are single literal parts with no substitution (that is how control-flow
//! bodies are passed around unevaluated), and double-quoted words allow
//! substitutions but group whitespace.

use std::fmt;

/// A 1-based source position (line and column), attached to every parsed
/// command and word so downstream passes (the analyzer, error reporting) can
/// point at the offending text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in characters, not bytes).
    pub col: u32,
}

impl Span {
    /// The start of a script.
    pub const START: Span = Span { line: 1, col: 1 };

    /// Creates a span at the given position.
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }
}

impl Default for Span {
    fn default() -> Self {
        Span::START
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One component of a word after parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WordPart {
    /// Literal text, copied as-is.
    Literal(String),
    /// A `$name` variable substitution.
    Variable(String),
    /// A `[script]` command substitution (the raw inner script).
    Command(String),
}

/// How a word's text is interpreted at evaluation time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WordKind {
    /// `{...}` — literal text, no substitution performed.
    Braced(String),
    /// Bare or double-quoted word made of parts to be substituted and joined.
    Parts(Vec<WordPart>),
}

/// A word with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Word {
    /// The word's content.
    pub kind: WordKind,
    /// Where the word starts in the source text.
    pub span: Span,
}

impl Word {
    /// A purely literal (non-braced) word, convenient for tests.
    pub fn literal(s: impl Into<String>) -> Self {
        Word {
            kind: WordKind::Parts(vec![WordPart::Literal(s.into())]),
            span: Span::START,
        }
    }

    /// The word's text when it is statically known (a braced word or a single
    /// literal part); `None` when the text depends on substitution.
    pub fn static_text(&self) -> Option<&str> {
        match &self.kind {
            WordKind::Braced(s) => Some(s),
            WordKind::Parts(parts) => match parts.as_slice() {
                [WordPart::Literal(s)] => Some(s),
                _ => None,
            },
        }
    }
}

/// One command: a non-empty list of words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Command {
    /// The words of the command; the first is the command name.
    pub words: Vec<Word>,
    /// Where the command starts (for error messages and diagnostics).
    pub span: Span,
}

impl Command {
    /// 1-based line number where the command starts.
    pub fn line(&self) -> u32 {
        self.span.line
    }
}

/// Errors produced by the parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl ParseError {
    /// The error's position as a [`Span`].
    pub fn span(&self) -> Span {
        Span::new(self.line, self.col)
    }

    /// Renders the error anchored to a named source file, in the conventional
    /// `file:line:col: message` shape.
    pub fn render(&self, file: &str) -> String {
        format!(
            "{file}:{}:{}: parse error: {}",
            self.line, self.col, self.message
        )
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `<script>` stands in for the file name, which the parser does not
        // know; callers with a real path use [`ParseError::render`].
        write!(f, "{}", self.render("<script>"))
    }
}

impl std::error::Error for ParseError {}

struct Cursor<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    _src: &'a str,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            _src: src,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.col)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line: self.line,
            col: self.col,
        }
    }
}

/// Parses a whole script into a list of commands.
pub fn parse_script(src: &str) -> Result<Vec<Command>, ParseError> {
    let mut cursor = Cursor::new(src);
    let mut commands = Vec::new();
    loop {
        skip_blank(&mut cursor);
        if cursor.peek().is_none() {
            break;
        }
        let span = cursor.span();
        let words = parse_command(&mut cursor)?;
        if !words.is_empty() {
            commands.push(Command { words, span });
        }
    }
    Ok(commands)
}

/// Skips whitespace, command separators and comments between commands.
fn skip_blank(cursor: &mut Cursor<'_>) {
    loop {
        match cursor.peek() {
            Some(c) if c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == ';' => {
                cursor.bump();
            }
            Some('#') => {
                // Comment to end of line.
                while let Some(c) = cursor.peek() {
                    if c == '\n' {
                        break;
                    }
                    cursor.bump();
                }
            }
            _ => break,
        }
    }
}

/// Parses one command (up to a newline or `;` at depth zero).
fn parse_command(cursor: &mut Cursor<'_>) -> Result<Vec<Word>, ParseError> {
    let mut words = Vec::new();
    loop {
        // Skip spaces/tabs inside the command.
        while matches!(cursor.peek(), Some(' ') | Some('\t') | Some('\r')) {
            cursor.bump();
        }
        match cursor.peek() {
            None => break,
            Some('\n') | Some(';') => {
                cursor.bump();
                break;
            }
            Some('#') if words.is_empty() => {
                // Comment-only line.
                while let Some(c) = cursor.peek() {
                    if c == '\n' {
                        break;
                    }
                    cursor.bump();
                }
                break;
            }
            Some('\\') => {
                // Line continuation: backslash-newline acts as a space.
                let save = cursor.pos;
                cursor.bump();
                if cursor.peek() == Some('\n') {
                    cursor.bump();
                    continue;
                }
                cursor.pos = save;
                words.push(parse_word(cursor)?);
            }
            Some(_) => {
                words.push(parse_word(cursor)?);
            }
        }
    }
    Ok(words)
}

fn parse_word(cursor: &mut Cursor<'_>) -> Result<Word, ParseError> {
    let span = cursor.span();
    let kind = match cursor.peek() {
        Some('{') => {
            let inner = parse_braced(cursor)?;
            WordKind::Braced(inner)
        }
        Some('"') => {
            cursor.bump();
            WordKind::Parts(parse_parts(cursor, true)?)
        }
        _ => WordKind::Parts(parse_parts(cursor, false)?),
    };
    Ok(Word { kind, span })
}

/// Parses a `{...}` word, returning the inner text with nested braces kept.
fn parse_braced(cursor: &mut Cursor<'_>) -> Result<String, ParseError> {
    cursor.bump(); // consume '{'
    let mut depth = 1;
    let mut out = String::new();
    loop {
        match cursor.bump() {
            None => return Err(cursor.err("unclosed brace")),
            Some('{') => {
                depth += 1;
                out.push('{');
            }
            Some('}') => {
                depth -= 1;
                if depth == 0 {
                    return Ok(out);
                }
                out.push('}');
            }
            Some('\\') => {
                // Inside braces, backslash is literal except before braces.
                match cursor.peek() {
                    Some('{') | Some('}') => {
                        out.push('\\');
                        out.push(cursor.bump().unwrap_or_default());
                    }
                    _ => out.push('\\'),
                }
            }
            Some(c) => out.push(c),
        }
    }
}

/// Parses a `[...]` substitution, returning the inner script text.
fn parse_bracketed(cursor: &mut Cursor<'_>) -> Result<String, ParseError> {
    cursor.bump(); // consume '['
    let mut depth = 1;
    let mut out = String::new();
    loop {
        match cursor.bump() {
            None => return Err(cursor.err("unclosed bracket")),
            Some('[') => {
                depth += 1;
                out.push('[');
            }
            Some(']') => {
                depth -= 1;
                if depth == 0 {
                    return Ok(out);
                }
                out.push(']');
            }
            Some(c) => out.push(c),
        }
    }
}

/// Parses the parts of a bare or quoted word.
fn parse_parts(cursor: &mut Cursor<'_>, quoted: bool) -> Result<Vec<WordPart>, ParseError> {
    let mut parts = Vec::new();
    let mut literal = String::new();
    macro_rules! flush {
        () => {
            if !literal.is_empty() {
                parts.push(WordPart::Literal(std::mem::take(&mut literal)));
            }
        };
    }
    loop {
        let Some(c) = cursor.peek() else {
            if quoted {
                return Err(cursor.err("unclosed quote"));
            }
            break;
        };
        match c {
            '"' if quoted => {
                cursor.bump();
                break;
            }
            ' ' | '\t' | '\n' | '\r' | ';' if !quoted => break,
            '$' => {
                cursor.bump();
                let mut name = String::new();
                // ${name} form.
                if cursor.peek() == Some('{') {
                    cursor.bump();
                    while let Some(c) = cursor.peek() {
                        if c == '}' {
                            cursor.bump();
                            break;
                        }
                        name.push(c);
                        cursor.bump();
                    }
                } else {
                    while let Some(c) = cursor.peek() {
                        if c.is_alphanumeric() || c == '_' {
                            name.push(c);
                            cursor.bump();
                        } else {
                            break;
                        }
                    }
                }
                if name.is_empty() {
                    literal.push('$');
                } else {
                    flush!();
                    parts.push(WordPart::Variable(name));
                }
            }
            '[' => {
                let inner = parse_bracketed(cursor)?;
                flush!();
                parts.push(WordPart::Command(inner));
            }
            '\\' => {
                cursor.bump();
                match cursor.bump() {
                    Some('n') => literal.push('\n'),
                    Some('t') => literal.push('\t'),
                    Some(c) => literal.push(c),
                    None => literal.push('\\'),
                }
            }
            _ => {
                literal.push(c);
                cursor.bump();
            }
        }
    }
    flush!();
    if parts.is_empty() {
        parts.push(WordPart::Literal(String::new()));
    }
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_commands() {
        let cmds = parse_script("set x 1\nset y 2").unwrap();
        assert_eq!(cmds.len(), 2);
        assert_eq!(cmds[0].words.len(), 3);
        assert_eq!(cmds[0].words[0].kind, Word::literal("set").kind);
        assert_eq!(cmds[1].span, Span::new(2, 1));
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let cmds = parse_script("set x 1\n  incr x; puts $x").unwrap();
        assert_eq!(cmds.len(), 3);
        assert_eq!(cmds[0].span, Span::new(1, 1));
        assert_eq!(cmds[0].words[2].span, Span::new(1, 7));
        assert_eq!(cmds[1].span, Span::new(2, 3));
        assert_eq!(cmds[2].span, Span::new(2, 11));
        assert_eq!(cmds[2].words[1].span, Span::new(2, 16));
    }

    #[test]
    fn semicolons_separate_commands() {
        let cmds = parse_script("set x 1; set y 2 ;; set z 3").unwrap();
        assert_eq!(cmds.len(), 3);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let cmds = parse_script("\n# a comment\n  # another\nset x 1\n\n").unwrap();
        assert_eq!(cmds.len(), 1);
        assert_eq!(cmds[0].span, Span::new(4, 1));
    }

    #[test]
    fn braced_words_keep_content_verbatim() {
        let cmds = parse_script("if {$x > 1} { set y [foo] }").unwrap();
        assert_eq!(cmds.len(), 1);
        assert_eq!(cmds[0].words[1].kind, WordKind::Braced("$x > 1".into()));
        assert_eq!(cmds[0].words[1].span, Span::new(1, 4));
        assert_eq!(
            cmds[0].words[2].kind,
            WordKind::Braced(" set y [foo] ".into())
        );
    }

    #[test]
    fn nested_braces() {
        let cmds = parse_script("proc f {a} { if {$a} { return 1 } }").unwrap();
        match &cmds[0].words[3].kind {
            WordKind::Braced(body) => assert!(body.contains("{ return 1 }")),
            other => panic!("expected braced body, got {other:?}"),
        }
    }

    #[test]
    fn variable_and_command_substitution_parts() {
        let cmds = parse_script("set msg \"x=$x y=[get y] done\"").unwrap();
        let WordKind::Parts(parts) = &cmds[0].words[2].kind else {
            panic!("expected parts")
        };
        assert_eq!(
            parts,
            &vec![
                WordPart::Literal("x=".into()),
                WordPart::Variable("x".into()),
                WordPart::Literal(" y=".into()),
                WordPart::Command("get y".into()),
                WordPart::Literal(" done".into()),
            ]
        );
    }

    #[test]
    fn bare_word_with_substitutions() {
        let cmds = parse_script("puts $a[b]c").unwrap();
        let WordKind::Parts(parts) = &cmds[0].words[1].kind else {
            panic!("expected parts")
        };
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], WordPart::Variable("a".into()));
        assert_eq!(parts[1], WordPart::Command("b".into()));
        assert_eq!(parts[2], WordPart::Literal("c".into()));
    }

    #[test]
    fn dollar_brace_variable() {
        let cmds = parse_script("puts ${long name}").unwrap();
        let WordKind::Parts(parts) = &cmds[0].words[1].kind else {
            panic!("expected parts")
        };
        assert_eq!(parts, &vec![WordPart::Variable("long name".into())]);
    }

    #[test]
    fn lone_dollar_is_literal() {
        let cmds = parse_script("puts $ x").unwrap();
        assert_eq!(cmds[0].words.len(), 3);
        assert_eq!(cmds[0].words[1].kind, Word::literal("$").kind);
    }

    #[test]
    fn escapes_in_words() {
        let cmds = parse_script(r#"puts "a\nb\t\"q\"""#).unwrap();
        let WordKind::Parts(parts) = &cmds[0].words[1].kind else {
            panic!("expected parts")
        };
        assert_eq!(parts, &vec![WordPart::Literal("a\nb\t\"q\"".into())]);
    }

    #[test]
    fn line_continuation_joins_commands() {
        let cmds = parse_script("set x \\\n 42").unwrap();
        assert_eq!(cmds.len(), 1);
        assert_eq!(cmds[0].words.len(), 3);
    }

    #[test]
    fn unclosed_constructs_error() {
        assert!(parse_script("set x {oops").is_err());
        assert!(parse_script("set x [oops").is_err());
        assert!(parse_script("set x \"oops").is_err());
        let err = parse_script("\n\nset x {").unwrap_err();
        assert_eq!(err.line, 3);
        assert_eq!(err.col, 8);
        assert!(err.to_string().contains("<script>:3:8"));
        assert!(err.render("a.taco").starts_with("a.taco:3:8: parse error"));
    }

    #[test]
    fn nested_brackets() {
        let cmds = parse_script("set x [a [b c] d]").unwrap();
        let WordKind::Parts(parts) = &cmds[0].words[2].kind else {
            panic!("expected parts")
        };
        assert_eq!(parts, &vec![WordPart::Command("a [b c] d".into())]);
    }

    #[test]
    fn empty_script_is_ok() {
        assert!(parse_script("").unwrap().is_empty());
        assert!(parse_script("   \n # only a comment \n")
            .unwrap()
            .is_empty());
    }
}
