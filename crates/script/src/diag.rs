//! Spanned diagnostics for the taco-vet analysis pass.
//!
//! A [`Diagnostic`] is one finding anchored to a source position.  Diagnostics
//! come in two severities: [`Severity::Error`] for defects that are certain to
//! fail at runtime (unknown command, wrong arity, a variable that is never
//! assigned), and [`Severity::Warning`] for likely-but-not-certain problems
//! (a variable assigned on only some paths, unreachable code, a loop with no
//! visible exit).  The install-time gate in `tacoma-core` rejects agents whose
//! CODE folder produces errors; warnings are advisory unless the `taco-vet`
//! CLI is run with `--deny-warnings`.

use crate::parser::Span;
use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: the script may still run correctly.
    Warning,
    /// The script is certain to fail (or never do what was written).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One analysis finding, anchored to where it occurs in the script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// A stable machine-readable code, e.g. `use-before-set`.
    pub code: &'static str,
    /// Human-readable description of the finding.
    pub message: String,
    /// Where the finding is (1-based line and column).
    pub span: Span,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(code: &'static str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code,
            message: message.into(),
            span,
        }
    }

    /// A warning-severity diagnostic.
    pub fn warning(code: &'static str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            code,
            message: message.into(),
            span,
        }
    }

    /// Whether this diagnostic is an error.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// Renders the diagnostic anchored to a named file, in the conventional
    /// `file:line:col: severity[code]: message` shape.
    pub fn render(&self, file: &str) -> String {
        format!(
            "{file}:{}:{}: {}[{}]: {}",
            self.span.line, self.span.col, self.severity, self.code, self.message
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render("<script>"))
    }
}

/// Renders a batch of diagnostics, one per line, anchored to `file`.
pub fn render_report(diags: &[Diagnostic], file: &str) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.render(file));
        out.push('\n');
    }
    out
}

/// True when any diagnostic in the slice is an error.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(Diagnostic::is_error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_points_at_the_source() {
        let d = Diagnostic::error("unknown-command", Span::new(3, 7), "unknown command 'foo'");
        assert_eq!(
            d.render("agent.taco"),
            "agent.taco:3:7: error[unknown-command]: unknown command 'foo'"
        );
        assert!(d.to_string().starts_with("<script>:3:7"));
        let w = Diagnostic::warning("unreachable", Span::new(9, 1), "unreachable code");
        assert!(!w.is_error());
        assert!(has_errors(&[w.clone(), d.clone()]));
        assert!(!has_errors(std::slice::from_ref(&w)));
        let report = render_report(&[d, w], "x.taco");
        assert_eq!(report.lines().count(), 2);
    }
}
